#include "dht/chord_node.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dht/chord_network.hpp"

namespace emergence::dht {

ChordNode::ChordNode(ChordNetwork& network, NodeId id,
                     std::size_t successor_list_size)
    : network_(network),
      id_(id),
      successor_list_size_(successor_list_size) {}

NodeId ChordNode::successor() const {
  for (const NodeId& s : successors_) {
    const ChordNode* n = network_.node(s);
    if (n != nullptr && n->alive()) return s;
  }
  return id_;
}

bool ChordNode::responsible_for(const NodeId& key) const {
  if (!predecessor_.has_value()) return true;  // alone or still joining
  return in_half_open_interval(key, *predecessor_, id_);
}

void ChordNode::create() {
  predecessor_.reset();
  successors_.clear();
  successors_.push_back(id_);
}

void ChordNode::join(const NodeId& bootstrap) {
  ChordNode* entry = network_.live_node(bootstrap);
  require(entry != nullptr, "ChordNode::join: bootstrap node is dead");
  predecessor_.reset();
  const LookupResult result = entry->find_successor(id_);
  require(result.ok, "ChordNode::join: lookup failed");
  successors_.clear();
  successors_.push_back(result.node);

  // Pull the keys this node is now responsible for from its successor.
  ChordNode* succ = network_.live_node(result.node);
  if (succ != nullptr && succ != this) {
    const std::optional<NodeId> succ_pred = succ->predecessor();
    const NodeId lower = succ_pred.value_or(result.node);
    for (const NodeId& key : succ->storage().keys_in_range(lower, id_)) {
      SharedBytes value = succ->storage().get(key);
      if (value != nullptr) store_local(key, std::move(value));
    }
    succ->notify(id_);
  }
}

void ChordNode::leave() {
  if (!alive_) return;
  // Hand all keys to the live successor before departing.
  ChordNode* succ = network_.live_node(successor());
  if (succ != nullptr && succ != this) {
    for (const NodeId& key : storage_.all_keys()) {
      SharedBytes value = storage_.get(key);
      if (value != nullptr) succ->store_local(key, std::move(value));
    }
    if (predecessor_.has_value()) succ->set_predecessor(predecessor_);
  }
  alive_ = false;
  storage_.clear();
}

void ChordNode::fail() {
  alive_ = false;
  storage_.clear();
  predecessor_.reset();
}

void ChordNode::reset_for_rejoin() {
  alive_ = true;
  predecessor_.reset();
  successors_.clear();
  fingers_.clear();
  next_finger_ = 0;
  storage_.clear();
  ++incarnation_;
}

void ChordNode::prune_dead_successors() {
  std::erase_if(successors_, [this](const NodeId& s) {
    const ChordNode* n = network_.node(s);
    return n == nullptr || !n->alive();
  });
}

void ChordNode::stabilize() {
  if (!alive_) return;
  prune_dead_successors();
  if (successors_.empty()) successors_.push_back(id_);

  const NodeId succ_id = successor();
  ChordNode* succ = network_.live_node(succ_id);
  if (succ == nullptr) return;

  // Adopt a node that slid between us and our successor.
  const std::optional<NodeId> x = succ->predecessor();
  if (x.has_value() && *x != id_ && in_open_interval(*x, id_, succ_id)) {
    const ChordNode* candidate = network_.live_node(*x);
    if (candidate != nullptr) {
      successors_.insert(successors_.begin(), *x);
      succ = network_.live_node(successor());
      if (succ == nullptr) return;
    }
  }

  // Refresh the successor list from the successor's list.
  std::vector<NodeId> fresh;
  fresh.push_back(successor());
  for (const NodeId& s : succ->successor_list()) {
    if (s == id_) continue;
    if (std::find(fresh.begin(), fresh.end(), s) != fresh.end()) continue;
    fresh.push_back(s);
    if (fresh.size() >= successor_list_size_) break;
  }
  successors_ = std::move(fresh);

  ChordNode* first = network_.live_node(successor());
  if (first != nullptr && first != this) first->notify(id_);
}

void ChordNode::notify(const NodeId& candidate) {
  if (!alive_) return;
  if (candidate == id_) return;
  const ChordNode* cand = network_.live_node(candidate);
  if (cand == nullptr) return;
  if (!predecessor_.has_value() ||
      in_open_interval(candidate, *predecessor_, id_) ||
      network_.live_node(*predecessor_) == nullptr) {
    predecessor_ = candidate;
  }
}

void ChordNode::fix_fingers() {
  if (!alive_) return;
  const NodeId target = id_.add_power_of_two(next_finger_);
  const LookupResult result = find_successor(target);
  if (result.ok) fingers_.set(next_finger_, result.node);
  next_finger_ = (next_finger_ + 1) % kIdBits;
}

void ChordNode::fix_all_fingers() {
  for (std::size_t i = 0; i < kIdBits; ++i) {
    const LookupResult result = find_successor(id_.add_power_of_two(i));
    if (result.ok) fingers_.set(i, result.node);
  }
}

void ChordNode::check_predecessor() {
  if (!alive_) return;
  if (predecessor_.has_value() &&
      network_.live_node(*predecessor_) == nullptr) {
    predecessor_.reset();
  }
}

void ChordNode::replica_maintenance(std::size_t replication_factor) {
  if (!alive_) return;
  if (storage_.size() == 0) return;
  // Push every key we hold to the nodes that should replicate it: the
  // responsible node and its replication_factor-1 successors.
  for (const NodeId& key : storage_.all_keys()) {
    const LookupResult result = find_successor(key);
    if (!result.ok) continue;
    const SharedBytes value = storage_.get(key);
    if (value == nullptr) continue;

    NodeId target = result.node;
    for (std::size_t copy = 0; copy < replication_factor; ++copy) {
      ChordNode* t = network_.live_node(target);
      if (t == nullptr) break;
      if (t != this && !t->storage().contains(key)) {
        t->store_local(key, value);  // shares the buffer
      }
      target = t->successor();
      if (target == t->id()) break;  // ring collapsed to one node
    }
  }
}

LookupResult ChordNode::find_successor(const NodeId& key) const {
  LookupResult result;
  const ChordNode* current = this;
  // A correct lookup takes O(log n) hops; the cap catches routing loops in
  // heavily churned rings.
  const int max_hops = static_cast<int>(kIdBits) + 16;
  for (int hop = 0; hop < max_hops; ++hop) {
    const NodeId succ = current->successor();
    if (succ == current->id() ||
        in_half_open_interval(key, current->id(), succ)) {
      result.node = succ;
      result.hops = hop;
      return result;
    }
    const NodeId next = current->closest_preceding_node(key);
    if (next == current->id()) {
      // No finger advances us: fall through to the successor.
      const ChordNode* succ_node = network_.node(succ);
      if (succ_node == nullptr || !succ_node->alive()) break;
      current = succ_node;
      continue;
    }
    const ChordNode* next_node = network_.node(next);
    if (next_node == nullptr || !next_node->alive()) break;
    current = next_node;
  }
  result.ok = false;
  result.node = id_;
  return result;
}

NodeId ChordNode::closest_preceding_node(const NodeId& key) const {
  // Scan fingers from farthest to nearest for a live node in (id_, key).
  // The run-compressed table visits each distinct finger once (highest
  // power first), which is exactly what the dense per-power scan reduced
  // to: whether a finger qualifies does not depend on the power.
  const std::vector<FingerTable::Run>& runs = fingers_.runs();
  for (std::size_t i = runs.size(); i-- > 0;) {
    const NodeId& f = runs[i].id;
    if (!in_open_interval(f, id_, key)) continue;
    const ChordNode* n = network_.node(f);
    if (n != nullptr && n->alive()) return f;
  }
  // Successor list can still make progress when fingers are stale.
  for (std::size_t i = successors_.size(); i-- > 0;) {
    const NodeId& s = successors_[i];
    if (!in_open_interval(s, id_, key)) continue;
    const ChordNode* n = network_.node(s);
    if (n != nullptr && n->alive()) return s;
  }
  return id_;
}

void ChordNode::store_local(const NodeId& key, SharedBytes value) {
  require(alive_, "ChordNode::store_local on a dead node");
  require(value != nullptr, "ChordNode::store_local: null value");
  storage_.put(key, value, network_.simulator().now());
  if (network_.store_observer()) {
    network_.store_observer()(id_, key, BytesView(*value));
  }
}

void ChordNode::set_successor_list(std::vector<NodeId> successors) {
  successors_ = std::move(successors);
  if (successors_.empty()) successors_.push_back(id_);
}

}  // namespace emergence::dht

// Abstract DHT network interface.
//
// The self-emerging protocol needs only a small contract from its substrate:
// key-based lookup, routed application messages, per-node blob storage with
// an exposure observer, and access to the simulation environment. Both the
// Chord implementation (chord_network.hpp) and the Kademlia implementation
// (kademlia.hpp) satisfy it, mirroring how the paper's Overlay Weaver
// toolkit hosts multiple DHT algorithms behind one runtime.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "dht/node_id.hpp"
#include "dht/transport.hpp"
#include "sim/simulator.hpp"

namespace emergence::dht {

/// Outcome of an iterative lookup (shared by all DHT implementations).
struct LookupResult {
  NodeId node;     ///< node responsible for the key
  int hops = 0;    ///< routing hops taken
  bool ok = true;  ///< false when routing failed
};

/// Aggregate lookup statistics, kept by both backends (hop counts feed the
/// micro benchmarks and the perf suite).
struct LookupStats {
  std::uint64_t lookups = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t failures = 0;

  double mean_hops() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(total_hops) /
                              static_cast<double>(lookups);
  }

  void record(const LookupResult& result) {
    ++lookups;
    total_hops += static_cast<std::uint64_t>(result.hops);
    if (!result.ok) ++failures;
  }

  /// Exact merge (integer sums): associative and commutative, so the
  /// executor's per-domain shards fold back in any order bit-identically.
  void merge(const LookupStats& other) {
    lookups += other.lookups;
    total_hops += other.total_hops;
    failures += other.failures;
  }
};

/// Handler for application messages delivered to a node.
using MessageHandler =
    std::function<void(const NodeId& from, const NodeId& to, BytesView payload)>;

/// Observer fired whenever any node stores a value (primary or replica);
/// the experiment layer uses it to track which nodes ever held key material.
using StoreObserver =
    std::function<void(const NodeId& node, const NodeId& key, BytesView value)>;

/// The substrate contract used by the emerge layer.
class Network {
 public:
  virtual ~Network() = default;

  // -- lookup / storage -------------------------------------------------------
  // Payloads travel as SharedBytes so that replication and message fan-out
  // copy reference counts, not buffers; the owning-Bytes overloads below
  // wrap once at the boundary for callers that build a fresh buffer.
  virtual LookupResult lookup(const NodeId& key) = 0;
  virtual bool put(const NodeId& key, SharedBytes value) = 0;
  /// The stored value (possibly a replica), or nullptr when unreachable.
  virtual SharedBytes get(const NodeId& key) = 0;
  /// Removes the key from the responsible node and its reachable replica
  /// set (the same walk get() reads from); returns how many copies were
  /// erased. Copies stranded on nodes the walk cannot reach (e.g. stale
  /// replicas past a partition of joins) may survive until their holder
  /// dies — callers use this for storage hygiene (retiring finished
  /// sessions), not for security guarantees.
  virtual std::size_t erase(const NodeId& key) = 0;

  // -- node-addressed storage (protocol key assignment / retrieval) -----------
  /// True when `node` exists and is alive.
  virtual bool is_alive(const NodeId& node) const = 0;
  /// Stores directly on a specific live node (fires the store observer);
  /// returns false when the node is dead.
  virtual bool store_on(const NodeId& node, const NodeId& key,
                        SharedBytes value) = 0;
  /// Reads a blob from a specific live node's local storage (nullptr when
  /// the node is dead or does not hold the key).
  virtual SharedBytes load_from(const NodeId& node, const NodeId& key) = 0;

  // -- application messaging ---------------------------------------------------
  virtual void set_message_handler(const NodeId& node,
                                   MessageHandler handler) = 0;
  virtual void set_default_message_handler(MessageHandler handler) = 0;
  /// The currently registered default handler (empty when none); a new
  /// registrant can capture it to chain deliveries.
  virtual const MessageHandler& default_message_handler() const = 0;
  /// Point-to-point: lost if the destination is dead at delivery time.
  virtual void send_message(const NodeId& from, const NodeId& to,
                            SharedBytes payload) = 0;
  /// Routed: delivered to whichever node is responsible for `ring_point`
  /// at delivery time.
  virtual void send_message_routed(const NodeId& from, const NodeId& ring_point,
                                   SharedBytes payload) = 0;

  // -- owning-buffer conveniences (wrap once, then share) ----------------------
  bool put(const NodeId& key, Bytes value) {
    return put(key, shared_bytes(std::move(value)));
  }
  bool store_on(const NodeId& node, const NodeId& key, Bytes value) {
    return store_on(node, key, shared_bytes(std::move(value)));
  }
  void send_message(const NodeId& from, const NodeId& to, Bytes payload) {
    send_message(from, to, shared_bytes(std::move(payload)));
  }
  void send_message_routed(const NodeId& from, const NodeId& ring_point,
                           Bytes payload) {
    send_message_routed(from, ring_point, shared_bytes(std::move(payload)));
  }

  // -- exposure tracking --------------------------------------------------------
  virtual void set_store_observer(StoreObserver observer) = 0;
  virtual const StoreObserver& store_observer() const = 0;

  // -- topology mutation (churn driving) ----------------------------------------
  /// Current live members, in backend-defined deterministic order.
  virtual const std::vector<NodeId>& alive_ids() const = 0;
  /// Abrupt failure: local state (storage, in-RAM packages) is lost.
  virtual void kill_node(const NodeId& id) = 0;
  /// Joins a fresh node through a random live bootstrap contact.
  virtual NodeId add_node() = 0;
  /// Rejoins with a specific id (transient outages re-use the old identity).
  virtual NodeId add_node_with_id(const NodeId& id) = 0;

  // -- environment ---------------------------------------------------------------
  virtual std::size_t alive_count() const = 0;
  virtual sim::Simulator& simulator() = 0;
  virtual Rng& rng() = 0;
  /// Worst-case latency of one successful message attempt (the transport's
  /// single-attempt bound L; the protocol's timing contract th > assembly +
  /// 4*L is stated against this, not the retry-inclusive worst case).
  virtual double max_message_latency() const = 0;
  /// The resolved transport model every application message travels through.
  virtual const TransportModel& transport() const = 0;
  /// Exact counters of everything the transport did on this network.
  virtual const TransportStats& transport_stats() const = 0;
};

}  // namespace emergence::dht

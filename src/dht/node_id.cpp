#include "dht/node_id.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/hex.hpp"
#include "crypto/sha256.hpp"

namespace emergence::dht {

NodeId NodeId::from_bytes(BytesView raw) {
  require(raw.size() == kIdBytes, "NodeId::from_bytes: expected 20 bytes");
  NodeId id;
  std::copy(raw.begin(), raw.end(), id.bytes_.begin());
  return id;
}

NodeId NodeId::hash_of(BytesView data) {
  const Bytes digest = crypto::sha256(data);
  return from_bytes(BytesView(digest.data(), kIdBytes));
}

NodeId NodeId::hash_of_text(std::string_view text) {
  return hash_of(bytes_of(text));
}

NodeId NodeId::from_hex(std::string_view hex) {
  return from_bytes(emergence::from_hex(hex));
}

std::string NodeId::to_hex() const {
  return emergence::to_hex(BytesView(bytes_.data(), bytes_.size()));
}

std::string NodeId::short_hex() const { return to_hex().substr(0, 8); }

NodeId NodeId::add_power_of_two(std::size_t power) const {
  require(power < kIdBits, "NodeId::add_power_of_two: power out of range");
  NodeId out = *this;
  // The bit `power` lives in byte (from the end) power/8, at bit power%8.
  std::size_t byte_index = kIdBytes - 1 - power / 8;
  std::uint16_t carry =
      static_cast<std::uint16_t>(1u << (power % 8));
  // Propagate the addition toward the most significant byte.
  for (std::size_t i = byte_index + 1; i-- > 0;) {
    const std::uint16_t sum =
        static_cast<std::uint16_t>(out.bytes_[i]) + carry;
    out.bytes_[i] = static_cast<std::uint8_t>(sum & 0xff);
    carry = static_cast<std::uint16_t>(sum >> 8);
    if (carry == 0) break;
  }
  return out;  // overflow wraps (mod 2^160)
}

NodeId NodeId::successor_value() const { return add_power_of_two(0); }

std::uint64_t NodeId::distance_low64(const NodeId& other) const {
  // other - this (mod 2^160), low 64 bits.
  std::array<std::uint8_t, kIdBytes> diff;
  int borrow = 0;
  for (std::size_t i = kIdBytes; i-- > 0;) {
    int d = static_cast<int>(other.bytes_[i]) - static_cast<int>(bytes_[i]) -
            borrow;
    borrow = d < 0 ? 1 : 0;
    if (d < 0) d += 256;
    diff[i] = static_cast<std::uint8_t>(d);
  }
  std::uint64_t low = 0;
  for (std::size_t i = kIdBytes - 8; i < kIdBytes; ++i)
    low = (low << 8) | diff[i];
  return low;
}

bool in_open_interval(const NodeId& x, const NodeId& a, const NodeId& b) {
  if (a < b) return a < x && x < b;
  if (a > b) return x > a || x < b;  // interval wraps through zero
  return false;                      // (a, a) is empty
}

bool in_half_open_interval(const NodeId& x, const NodeId& a, const NodeId& b) {
  if (x == b) return true;
  if (a == b) return x != a;  // (a, a] covers the whole ring except... a==b
  return in_open_interval(x, a, b);
}

std::size_t NodeIdHash::operator()(const NodeId& id) const {
  std::uint64_t v;
  std::memcpy(&v, id.bytes().data(), sizeof(v));
  return static_cast<std::size_t>(v);
}

}  // namespace emergence::dht

// Message-level transport model: latency, loss and bounded retries for
// every application message both DHT backends schedule.
//
// The paper's "delivery exactly at tr" guarantee was partly an artifact of
// the original zero-cost network: every send_message/send_message_routed
// sampled one uniform latency and nothing was ever lost in flight. A
// TransportModel generalizes that link into the models WAN experiments
// need — fixed, uniform, LogNormal (heavy-tail stragglers) and geo-zoned
// latency distributions, an iid drop probability, timeout + bounded-retry
// with exponential backoff, and a deterministic partition-heal window —
// while TransportModel::ideal() resolves to *exactly* the historical
// uniform draw (one Rng::real() per message, one scheduled event, no drop
// branch), so pinned-seed runs stay bit-for-bit identical to pre-transport
// history (golden-fingerprint regression in tests/test_transport.cpp).
//
// Determinism contract: all randomness flows through the owning network's
// Rng in send order; zone assignment is a pure function of
// (zone_seed, NodeId) via Rng::fork, and the partition window consumes no
// draws at all (a time-gated deterministic outage). Retransmits are real
// simulator events, so the Simulator's FIFO-among-equal-timestamps rule
// orders them after the sends that preceded them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dht/node_id.hpp"
#include "sim/simulator.hpp"

namespace emergence::obs {
class TraceShard;
}  // namespace emergence::obs

namespace emergence::dht {

/// Exact per-network transport counters. Integer counters plus the exact
/// Histogram64, so merge() is associative/commutative and any sharding of
/// the same worlds reproduces the serial stats bit-identically. Kept OUT of
/// FleetTally::fingerprint() (the pre-transport goldens stay anchored);
/// thread-invariance gates compare TransportStats::fingerprint() alongside.
struct TransportStats {
  std::uint64_t messages = 0;   ///< send() calls (logical messages)
  std::uint64_t attempts = 0;   ///< physical transmissions incl. retries
  std::uint64_t dropped = 0;    ///< attempts lost in flight
  std::uint64_t retried = 0;    ///< retransmissions scheduled
  std::uint64_t timed_out = 0;  ///< messages lost after the retry budget
  /// Delivered-attempt hop latency, quantized to integer microseconds.
  Histogram64 hop_latency_us;

  void merge(const TransportStats& other);
  /// FNV-1a digest of every field (same construction as
  /// FleetTally::fingerprint); equal stats <=> equal fingerprints.
  std::uint64_t fingerprint() const;
};

/// Per-link latency law.
enum class LatencyKind : std::uint8_t {
  kIdeal,      ///< placeholder: resolves to uniform over the network config
  kFixed,      ///< constant latency, no rng draw
  kUniform,    ///< uniform over [min_latency, max_latency], one draw
  kLogNormal,  ///< exp(N(log_mu, log_sigma)) truncated to cap, two draws
  kZoned,      ///< uniform intra/inter ranges keyed by deterministic zones
};

/// The transport configuration + sampling/scheduling engine. A plain value
/// type: NetworkConfig/KademliaConfig carry one, the network resolves it
/// against its min/max latency at construction and owns the resolved copy.
struct TransportModel {
  LatencyKind kind = LatencyKind::kIdeal;

  // -- latency (kFixed uses max_latency; kUniform draws over [min, max]) -------
  double min_latency = 0.0;
  double max_latency = 0.0;
  double log_mu = 0.0;     ///< kLogNormal: mean of the underlying normal
  double log_sigma = 0.0;  ///< kLogNormal: stddev of the underlying normal
  double cap = 0.0;        ///< kLogNormal: hard truncation (worst case)

  // -- geo zones (kZoned; partition-heal reuses them) --------------------------
  std::size_t zone_count = 1;
  std::uint64_t zone_seed = 0x9E0C0DE5ULL;
  double intra_min = 0.0, intra_max = 0.0;
  double inter_min = 0.0, inter_max = 0.0;

  // -- loss + bounded retry ----------------------------------------------------
  double drop_probability = 0.0;  ///< iid per attempt
  std::size_t max_retries = 0;    ///< retransmissions after the first attempt
  double retry_timeout = 0.5;     ///< first retransmit delay (seconds)
  double retry_backoff = 2.0;     ///< exponential backoff factor

  // -- partition-heal window ---------------------------------------------------
  /// During [partition_start, partition_end) every inter-zone attempt (or
  /// every attempt when zone_count <= 1: a global outage) is dropped
  /// deterministically — no rng draw, so healed reruns replay identically.
  double partition_start = 0.0;
  double partition_end = 0.0;

  // -- presets (the scenario registry's net= axes) -----------------------------
  static TransportModel ideal();
  static TransportModel lan();
  static TransportModel wan();
  static TransportModel lossy(double p = 0.05);
  static TransportModel straggler();
  static TransportModel partition_heal(double start = 60.0, double end = 180.0);

  /// Resolves the `net=` scenario-axis mini-grammar:
  ///   "wan"  "lossy:p=0.08"  "wan:drop=0.01;retries=5"
  ///   "partition-heal:start=100;end=220;zones=2"
  /// Preset name, then ';'-separated key=value params (p|drop, retries,
  /// timeout, backoff, zones, start, end, cap). Throws PreconditionError
  /// naming the offending token; the result is validate()d.
  static TransportModel parse(const std::string& text);

  /// One-line human description for bench/report captions.
  std::string describe() const;

  /// Throws PreconditionError on inconsistent parameters.
  void validate() const;

  /// kIdeal resolved against the owning network's configured latency range
  /// (the historical uniform law); every other kind passes through.
  TransportModel resolved(double cfg_min_latency, double cfg_max_latency) const;

  // -- derived bounds (the protocol timing contract reads these) ---------------
  /// Worst-case latency of one successful attempt (Network::
  /// max_message_latency; the session precondition th > assembly + 4*L).
  double max_single_latency() const;
  /// Best-case latency of one successful attempt: the floor of the latency
  /// law. This is the domain executor's conservative lookahead — the
  /// soonest a message sent at a window barrier can become a domain event.
  /// 0 for laws without a configured floor (the executor rejects that and
  /// asks for an explicit epsilon; resolved ideal() has the historical
  /// 10ms floor).
  double min_single_latency() const;
  /// Sum of all retransmit delays: timeout * (1 + b + ... + b^(r-1)).
  double retry_delay_sum() const;
  bool has_partition() const { return partition_end > partition_start; }
  double partition_length() const {
    return has_partition() ? partition_end - partition_start : 0.0;
  }
  bool partition_active(double now) const {
    return has_partition() && now >= partition_start && now < partition_end;
  }
  /// True when attempts can be lost (iid drop or a partition window).
  bool can_drop() const { return drop_probability > 0.0 || has_partition(); }
  /// The documented tolerance rule: delivery stays *exactly* at tr when no
  /// partition exists and a message retried to exhaustion still arrives
  /// inside its column's slack (retry_delay_sum + L + assembly < th).
  /// Scenarios violating this deliver late-but-bounded (protocol.cpp clamps
  /// its absolute-time schedules to now), and the exactness gates relax.
  bool guarantees_exact_delivery(double holding_period,
                                 double assembly_delay) const;
  /// Extra grace a fleet reaper must add after tr before recycling a
  /// session slot: per-hop worst lateness (retry chain + latency + assembly)
  /// times the path length, plus the partition window. 0 for pure-latency
  /// transports, so ideal() reap times stay bit-identical.
  double reap_slack(std::size_t path_length) const;

  // -- zones -------------------------------------------------------------------
  /// Deterministic zone of a node: Rng(zone_seed).fork(id-prefix) mod
  /// zone_count. Pure in (zone_seed, id). Reads the primed cache when the
  /// id is known, otherwise computes from scratch WITHOUT memoizing —
  /// zone_of is logically const and must stay safe to call concurrently
  /// from parallel domains (the old lazily-filled mutable cache was a data
  /// race the moment two domains sampled latencies on one resolved model).
  std::size_t zone_of(const NodeId& id) const;
  bool cross_zone(const NodeId& from, const NodeId& to) const;
  /// Precomputes `id`'s zone into the cache. Networks prime every node at
  /// bootstrap/add_node time — both are serial barrier-phase operations, so
  /// the cache is read-only whenever domains run in parallel.
  void prime_zone(const NodeId& id);

  // -- engine ------------------------------------------------------------------
  /// One latency sample for a (possibly cross-zone) link. Draw counts per
  /// kind are fixed (fixed: 0, uniform/zoned: 1, lognormal: 2) so draw
  /// sequences are reproducible run to run.
  double sample_latency(Rng& rng, bool cross) const;

  /// Schedules `deliver` for one logical message from->to: samples the
  /// drop/latency chain, records stats, and schedules retransmits as real
  /// simulator events on loss. With no loss configured this is exactly the
  /// historical path: one latency sample, one scheduled event. `trace`
  /// (may be null: tracing off) receives sampled per-attempt hop spans —
  /// the sampling decision is keyed on message content through the
  /// tracer's own forked stream, so it never consumes a draw from `rng`
  /// and schedules/stats stay bit-identical with tracing on or off.
  void send(sim::Simulator& sim, Rng& rng, TransportStats& stats,
            const NodeId& from, const NodeId& to,
            std::function<void()> deliver,
            obs::TraceShard* trace = nullptr) const;

 private:
  void attempt(sim::Simulator& sim, Rng& rng, TransportStats& stats,
               bool cross, std::function<void()> deliver,
               std::size_t attempt_index, obs::TraceShard* trace,
               std::string link) const;

  /// Zone cache: zone_of is pure in the id, so entries never invalidate
  /// (churn rejoins reuse ids). Filled ONLY via prime_zone() from serial
  /// code; const paths read it without ever inserting, keeping concurrent
  /// sampling race-free.
  std::size_t compute_zone(const NodeId& id) const;
  std::unordered_map<NodeId, std::size_t, NodeIdHash> zone_cache_;
};

}  // namespace emergence::dht

#include "dht/chord_network.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/execution_context.hpp"

namespace emergence::dht {
namespace {

/// floor(log2((to - from) mod 2^160)); requires to != from. Used by the
/// bootstrap finger construction: a finger at clockwise distance d serves
/// every power p with 2^p <= d, i.e. p <= floor_log2_distance.
std::size_t floor_log2_distance(const NodeId& from, const NodeId& to) {
  const auto& a = from.bytes();
  const auto& b = to.bytes();
  // d = b - a, big-endian with borrow (mod 2^160).
  std::array<std::uint8_t, kIdBytes> d{};
  int borrow = 0;
  for (std::size_t i = kIdBytes; i-- > 0;) {
    const int diff = static_cast<int>(b[i]) - static_cast<int>(a[i]) - borrow;
    d[i] = static_cast<std::uint8_t>(diff & 0xff);
    borrow = diff < 0 ? 1 : 0;
  }
  for (std::size_t i = 0; i < kIdBytes; ++i) {
    if (d[i] == 0) continue;
    int bit = 7;
    while (((d[i] >> bit) & 1) == 0) --bit;
    return (kIdBytes - 1 - i) * 8 + static_cast<std::size_t>(bit);
  }
  throw PreconditionError("floor_log2_distance: identical ids");
}

}  // namespace

ChordNetwork::ChordNetwork(sim::Simulator& simulator, Rng& rng,
                           NetworkConfig config)
    : simulator_(simulator),
      rng_(rng),
      config_(config),
      transport_(config_.transport.resolved(config_.min_message_latency,
                                            config_.max_message_latency)) {
  transport_.validate();
}

NodeId ChordNetwork::fresh_node_id() {
  // Hash a unique counter; collisions are astronomically unlikely but we
  // re-draw on one anyway.
  for (;;) {
    const std::string name = "node-" + std::to_string(node_counter_++);
    const NodeId id = NodeId::hash_of_text(name);
    if (nodes_.find(id) == nodes_.end()) return id;
  }
}

ChordNode& ChordNetwork::allocate_node(const NodeId& id) {
  // A rejoin of a dead id (transient churn outage) reuses its arena slot:
  // reset_for_rejoin restores the freshly-constructed state, so long
  // churned worlds do not accrete one dead instance per rejoin.
  auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    it->second->reset_for_rejoin();
    return *it->second;
  }
  arena_.emplace_back(*this, id, config_.successor_list_size);
  ChordNode& fresh = arena_.back();
  nodes_[id] = &fresh;
  return fresh;
}

void ChordNetwork::register_alive(const NodeId& id) {
  alive_index_[id] = alive_ids_.size();
  alive_ids_.push_back(id);
  live_ring_.insert(id);
  // Every node's zone is primed from serial code (bootstrap / churn joins),
  // so zone_of stays a pure read when domains sample latencies in parallel.
  transport_.prime_zone(id);
}

void ChordNetwork::unregister_alive(const NodeId& id) {
  auto it = alive_index_.find(id);
  if (it == alive_index_.end()) return;
  live_ring_.erase(id);  // before the swap-pop: `id` may alias alive_ids_
  const std::size_t pos = it->second;
  const NodeId last = alive_ids_.back();
  alive_ids_[pos] = last;
  alive_index_[last] = pos;
  alive_ids_.pop_back();
  alive_index_.erase(it);
}

void ChordNetwork::bootstrap(std::size_t count) {
  require(count > 0, "ChordNetwork::bootstrap: need at least one node");
  require(nodes_.empty(), "ChordNetwork::bootstrap: network already built");

  nodes_.reserve(count);
  alive_index_.reserve(count);
  alive_ids_.reserve(count);

  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = fresh_node_id();
    ids.push_back(id);
    allocate_node(id);
    register_alive(id);
  }
  std::sort(ids.begin(), ids.end());

  // Wire exact ring pointers.
  for (std::size_t i = 0; i < count; ++i) {
    ChordNode& n = *nodes_.at(ids[i]);
    std::vector<NodeId> succ;
    succ.reserve(std::min(config_.successor_list_size, count - 1));
    for (std::size_t s = 1; s <= config_.successor_list_size && s < count; ++s)
      succ.push_back(ids[(i + s) % count]);
    if (succ.empty()) succ.push_back(ids[i]);
    n.set_successor_list(std::move(succ));
    n.set_predecessor(ids[(i + count - 1) % count]);
  }

  // Exact fingers, built as runs. The finger for start = id + 2^p is the
  // node minimizing clockwise distance-from-start, equivalently the first
  // node at clockwise distance >= 2^p from id (self when no other node is
  // that far — matching a plain sorted lower_bound with wrap-around, which
  // is what a per-power construction computed here before). Distances
  // grow monotonically along the ring, so each node needs one monotone
  // sweep of ~log2(n) binary searches instead of kIdBits of them, and each
  // discovered finger covers the whole power range up to
  // floor(log2(distance)) in a single run.
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId& x = ids[i];
    FingerTable& table = nodes_.at(x)->finger_table();
    table.clear();
    std::size_t p = 0;
    std::size_t t_lo = 1;  // ring offset of the first candidate
    while (p < kIdBits) {
      const NodeId start = x.add_power_of_two(p);
      // Smallest ring offset t in [t_lo, count] whose node sits at
      // clockwise distance >= 2^p (offset `count` stands for self, which
      // always qualifies); y qualifies iff it is NOT strictly inside
      // (x, start), and the predicate is monotone in t.
      std::size_t lo = t_lo;
      std::size_t hi = count;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        const NodeId& y = ids[(i + mid) % count];
        if (!in_open_interval(y, x, start)) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      std::size_t hi_power = kIdBits - 1;
      NodeId finger = x;
      if (lo < count) {
        finger = ids[(i + lo) % count];
        hi_power = floor_log2_distance(x, finger);
      }
      table.append_run(p, hi_power, finger);
      p = hi_power + 1;
      t_lo = lo;
    }
  }

  if (config_.run_maintenance) {
    for (const NodeId& id : ids) schedule_maintenance(id);
  }
}

void ChordNetwork::schedule_maintenance(const NodeId& id) {
  // Jitter the initial phases so maintenance does not run in lockstep; each
  // timer then re-arms at its own fixed interval. (An earlier revision
  // re-armed repair from the stabilize callback, so repair fired at
  // stabilize_interval cadence with a fresh random phase every round —
  // ~4x the configured rate under the default intervals.)
  schedule_stabilize_in(rng_.real() * config_.stabilize_interval, id);
  schedule_repair_in(rng_.real() * config_.replica_repair_interval, id);
}

void ChordNetwork::schedule_stabilize_in(double delay, const NodeId& id) {
  // Capture the node's incarnation: a timer whose node died stops, and a
  // timer that outlived a kill-then-rejoin of the same id stops too (the
  // rejoin armed its own chain; without the check the node would run two).
  const std::uint64_t incarnation = nodes_.at(id)->incarnation();
  simulator_.schedule_in(delay, [this, id, incarnation]() {
    ChordNode* n = live_node(id);
    if (n == nullptr || n->incarnation() != incarnation) return;
    n->stabilize();
    n->fix_fingers();
    n->check_predecessor();
    ++maintenance_stats_.stabilize_rounds;
    schedule_stabilize_in(config_.stabilize_interval, id);
  });
}

void ChordNetwork::schedule_repair_in(double delay, const NodeId& id) {
  const std::uint64_t incarnation = nodes_.at(id)->incarnation();
  simulator_.schedule_in(delay, [this, id, incarnation]() {
    ChordNode* n = live_node(id);
    if (n == nullptr || n->incarnation() != incarnation) return;
    n->replica_maintenance(config_.replication_factor);
    ++maintenance_stats_.repair_rounds;
    schedule_repair_in(config_.replica_repair_interval, id);
  });
}

NodeId ChordNetwork::add_node() { return add_node_with_id(fresh_node_id()); }

NodeId ChordNetwork::add_node_with_id(const NodeId& id) {
  require(nodes_.find(id) == nodes_.end() || !nodes_.at(id)->alive(),
          "ChordNetwork::add_node_with_id: id already in use");
  ChordNode* raw = &allocate_node(id);

  if (alive_ids_.empty()) {
    raw->create();
  } else {
    const NodeId bootstrap = alive_ids_[rng_.index(alive_ids_.size())];
    raw->join(bootstrap);
  }
  register_alive(id);
  if (config_.exact_join_fingers) {
    raw->fix_all_fingers();
  } else {
    // O(log n) join: adopt the successor's (ring-adjacent, hence mostly
    // correct) finger table; periodic fix_fingers converges it.
    ChordNode* succ = live_node(raw->successor());
    if (succ != nullptr && succ != raw) {
      raw->finger_table() = succ->finger_table();
    }
    raw->set_finger(0, raw->successor());
  }
  if (config_.run_maintenance) schedule_maintenance(id);
  return id;
}

void ChordNetwork::kill_node(const NodeId& id) {
  ChordNode* n = live_node(id);
  if (n == nullptr) return;
  // Callers may pass a reference into alive_ids_ itself (e.g.
  // kill_node(alive_ids()[i])); unregister_alive's swap-pop overwrites that
  // slot, so work from a stable copy of the id.
  const NodeId victim = n->id();
  n->fail();
  unregister_alive(victim);
  handlers_.erase(victim);
}

void ChordNetwork::remove_node(const NodeId& id) {
  ChordNode* n = live_node(id);
  if (n == nullptr) return;
  const NodeId victim = n->id();  // see kill_node on aliasing
  n->leave();
  unregister_alive(victim);
  handlers_.erase(victim);
}

ChordNode* ChordNetwork::node(const NodeId& id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

const ChordNode* ChordNetwork::node(const NodeId& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

ChordNode* ChordNetwork::live_node(const NodeId& id) {
  ChordNode* n = node(id);
  return (n != nullptr && n->alive()) ? n : nullptr;
}

ChordNode& ChordNetwork::random_live_node() {
  require(!alive_ids_.empty(), "ChordNetwork: no live nodes");
  // In-window lookups draw the entry pick from the executing session's own
  // stream (domain-count invariant); barrier/serial code keeps the shared
  // network stream, preserving the legacy draw sequence bit-for-bit.
  auto* ctx = sim::ExecutionContext::active_on(&simulator_);
  Rng& rng = (ctx != nullptr && ctx->rng != nullptr) ? *ctx->rng : rng_;
  return *nodes_.at(alive_ids_[rng.index(alive_ids_.size())]);
}

LookupResult ChordNetwork::lookup(const NodeId& key) {
  const LookupResult result = random_live_node().find_successor(key);
  auto* ctx = sim::ExecutionContext::active_on(&simulator_);
  LookupStats& stats = (ctx != nullptr && ctx->lookup_stats != nullptr)
                           ? *ctx->lookup_stats
                           : lookup_stats_;
  stats.record(result);
  return result;
}

bool ChordNetwork::put(const NodeId& key, SharedBytes value) {
  require(value != nullptr, "ChordNetwork::put: null value");
  const LookupResult result = lookup(key);
  if (!result.ok) return false;
  ChordNode* primary = live_node(result.node);
  if (primary == nullptr) return false;
  primary->store_local(key, value);

  NodeId target = primary->successor();
  for (std::size_t copy = 1; copy < config_.replication_factor; ++copy) {
    ChordNode* t = live_node(target);
    if (t == nullptr || t == primary) break;
    t->store_local(key, value);  // replicas share the buffer
    target = t->successor();
  }
  return true;
}

SharedBytes ChordNetwork::get(const NodeId& key) {
  const LookupResult result = lookup(key);
  if (!result.ok) return nullptr;
  // Replicas live on the first replication_factor live successors of the
  // primary *at put/repair time*. When responsibility migrates afterwards
  // (the primary dies, or fresh nodes join between the key and the old
  // replica set), the current responsible node can sit several hops short
  // of the surviving copies, so a walk of exactly replication_factor nodes
  // misses reachable data. Walk up to successor_list_size extra live nodes
  // and stop when the ring wraps back to the start.
  NodeId target = result.node;
  const std::size_t max_visits =
      config_.replication_factor + config_.successor_list_size;
  for (std::size_t visit = 0; visit < max_visits; ++visit) {
    ChordNode* t = live_node(target);
    if (t == nullptr) break;
    SharedBytes value = t->storage().get(key);
    if (value != nullptr) return value;
    NodeId next = t->successor();
    if (next == t->id()) {
      // Successor list exhausted (e.g. a fresh joiner whose only successor
      // died before it re-stabilized; routed lookups would just bounce off
      // the same broken pointer). Step to the true ring successor through
      // the sorted live index — O(log n), and exactly the node one
      // stabilize round would restore as the successor.
      const std::optional<NodeId> step = live_ring_.successor_of(t->id());
      if (!step.has_value()) break;  // genuinely alone
      next = *step;
    }
    if (next == result.node) break;  // wrapped around
    target = next;
  }
  return nullptr;
}

std::size_t ChordNetwork::erase(const NodeId& key) {
  const LookupResult result = lookup(key);
  if (!result.ok) return 0;
  // Same walk as get(): the responsible node plus enough live successors to
  // cover replicas stranded behind interloper joins.
  std::size_t erased = 0;
  NodeId target = result.node;
  const std::size_t max_visits =
      config_.replication_factor + config_.successor_list_size;
  for (std::size_t visit = 0; visit < max_visits; ++visit) {
    ChordNode* t = live_node(target);
    if (t == nullptr) break;
    if (t->storage().erase(key)) ++erased;
    NodeId next = t->successor();
    if (next == t->id()) {
      const std::optional<NodeId> step = live_ring_.successor_of(t->id());
      if (!step.has_value()) break;  // genuinely alone
      next = *step;
    }
    if (next == result.node) break;  // wrapped around
    target = next;
  }
  return erased;
}

bool ChordNetwork::store_on(const NodeId& id, const NodeId& key,
                            SharedBytes value) {
  require(value != nullptr, "ChordNetwork::store_on: null value");
  ChordNode* n = live_node(id);
  if (n == nullptr) return false;
  n->store_local(key, std::move(value));
  return true;
}

SharedBytes ChordNetwork::load_from(const NodeId& id, const NodeId& key) {
  ChordNode* n = live_node(id);
  if (n == nullptr) return nullptr;
  return n->storage().get(key);
}

void ChordNetwork::set_message_handler(const NodeId& node_id,
                                       MessageHandler handler) {
  handlers_[node_id] = std::move(handler);
}

void ChordNetwork::send_message(const NodeId& from, const NodeId& to,
                                SharedBytes payload) {
  require(payload != nullptr, "ChordNetwork::send_message: null payload");
  auto* ctx = sim::ExecutionContext::active_on(&simulator_);
  Rng& rng = (ctx != nullptr && ctx->rng != nullptr) ? *ctx->rng : rng_;
  TransportStats& stats =
      (ctx != nullptr && ctx->transport_stats != nullptr)
          ? *ctx->transport_stats
          : transport_stats_;
  obs::TraceShard* trace =
      (ctx != nullptr && ctx->trace != nullptr) ? ctx->trace : trace_shard_;
  transport_.send(
      simulator_, rng, stats, from, to,
      [this, from, to, payload = std::move(payload)]() {
        ChordNode* dest = live_node(to);
        if (dest == nullptr) return;  // dead destination: lost
        auto it = handlers_.find(to);
        if (it != handlers_.end()) {
          it->second(from, to, *payload);
        } else if (default_handler_) {
          default_handler_(from, to, *payload);
        }
      },
      trace);
}

void ChordNetwork::send_message_routed(const NodeId& from,
                                       const NodeId& ring_point,
                                       SharedBytes payload) {
  require(payload != nullptr,
          "ChordNetwork::send_message_routed: null payload");
  auto* ctx = sim::ExecutionContext::active_on(&simulator_);
  Rng& rng = (ctx != nullptr && ctx->rng != nullptr) ? *ctx->rng : rng_;
  TransportStats& stats =
      (ctx != nullptr && ctx->transport_stats != nullptr)
          ? *ctx->transport_stats
          : transport_stats_;
  obs::TraceShard* trace =
      (ctx != nullptr && ctx->trace != nullptr) ? ctx->trace : trace_shard_;
  transport_.send(
      simulator_, rng, stats, from, ring_point,
      [this, from, ring_point, payload = std::move(payload)]() {
        const LookupResult result = lookup(ring_point);
        if (!result.ok) return;
        ChordNode* dest = live_node(result.node);
        if (dest == nullptr) return;
        auto it = handlers_.find(result.node);
        if (it != handlers_.end()) {
          it->second(from, result.node, *payload);
        } else if (default_handler_) {
          default_handler_(from, result.node, *payload);
        }
      },
      trace);
}

void ChordNetwork::run_maintenance_round() {
  // Snapshot ids: maintenance can change the alive set.
  const std::vector<NodeId> ids = alive_ids_;
  for (const NodeId& id : ids) {
    ChordNode* n = live_node(id);
    if (n == nullptr) continue;
    n->stabilize();
    n->check_predecessor();
  }
  for (const NodeId& id : ids) {
    ChordNode* n = live_node(id);
    if (n == nullptr) continue;
    n->fix_all_fingers();
    n->replica_maintenance(config_.replication_factor);
  }
}

}  // namespace emergence::dht

#include "dht/chord_network.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace emergence::dht {

ChordNetwork::ChordNetwork(sim::Simulator& simulator, Rng& rng,
                           NetworkConfig config)
    : simulator_(simulator), rng_(rng), config_(config) {}

NodeId ChordNetwork::fresh_node_id() {
  // Hash a unique counter; collisions are astronomically unlikely but we
  // re-draw on one anyway.
  for (;;) {
    const std::string name = "node-" + std::to_string(node_counter_++);
    const NodeId id = NodeId::hash_of_text(name);
    if (nodes_.find(id) == nodes_.end()) return id;
  }
}

void ChordNetwork::register_alive(const NodeId& id) {
  alive_index_[id] = alive_ids_.size();
  alive_ids_.push_back(id);
}

void ChordNetwork::unregister_alive(const NodeId& id) {
  auto it = alive_index_.find(id);
  if (it == alive_index_.end()) return;
  const std::size_t pos = it->second;
  const NodeId last = alive_ids_.back();
  alive_ids_[pos] = last;
  alive_index_[last] = pos;
  alive_ids_.pop_back();
  alive_index_.erase(it);
}

void ChordNetwork::bootstrap(std::size_t count) {
  require(count > 0, "ChordNetwork::bootstrap: need at least one node");
  require(nodes_.empty(), "ChordNetwork::bootstrap: network already built");

  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = fresh_node_id();
    ids.push_back(id);
    nodes_.emplace(id, std::make_unique<ChordNode>(
                           *this, id, config_.successor_list_size));
    register_alive(id);
  }
  std::sort(ids.begin(), ids.end());

  // Wire exact ring pointers.
  for (std::size_t i = 0; i < count; ++i) {
    ChordNode& n = *nodes_.at(ids[i]);
    std::vector<NodeId> succ;
    for (std::size_t s = 1; s <= config_.successor_list_size && s < count; ++s)
      succ.push_back(ids[(i + s) % count]);
    if (succ.empty()) succ.push_back(ids[i]);
    n.set_successor_list(std::move(succ));
    n.set_predecessor(ids[(i + count - 1) % count]);
  }

  // Exact fingers via binary search over the sorted id list: the finger for
  // start = id + 2^p is the first node id >= start (circularly).
  for (std::size_t i = 0; i < count; ++i) {
    ChordNode& n = *nodes_.at(ids[i]);
    for (std::size_t p = 0; p < kIdBits; ++p) {
      const NodeId start = ids[i].add_power_of_two(p);
      auto it = std::lower_bound(ids.begin(), ids.end(), start);
      const NodeId finger = (it == ids.end()) ? ids.front() : *it;
      n.set_finger(p, finger);
    }
  }

  if (config_.run_maintenance) {
    for (const NodeId& id : ids) schedule_maintenance(id);
  }
}

void ChordNetwork::schedule_maintenance(const NodeId& id) {
  // Jitter the phase so maintenance does not run in lockstep.
  const double phase = rng_.real() * config_.stabilize_interval;
  simulator_.schedule_in(phase, [this, id]() {
    ChordNode* n = live_node(id);
    if (n == nullptr) return;
    n->stabilize();
    n->fix_fingers();
    n->check_predecessor();
    schedule_maintenance(id);  // re-arm
  });
  const double repair_phase = rng_.real() * config_.replica_repair_interval;
  simulator_.schedule_in(repair_phase, [this, id]() {
    ChordNode* n = live_node(id);
    if (n == nullptr) return;
    n->replica_maintenance(config_.replication_factor);
  });
}

NodeId ChordNetwork::add_node() { return add_node_with_id(fresh_node_id()); }

NodeId ChordNetwork::add_node_with_id(const NodeId& id) {
  require(nodes_.find(id) == nodes_.end() ||
              !nodes_.at(id)->alive(),
          "ChordNetwork::add_node_with_id: id already in use");
  auto node =
      std::make_unique<ChordNode>(*this, id, config_.successor_list_size);
  ChordNode* raw = node.get();
  nodes_[id] = std::move(node);

  if (alive_ids_.empty()) {
    raw->create();
  } else {
    const NodeId bootstrap = alive_ids_[rng_.index(alive_ids_.size())];
    raw->join(bootstrap);
  }
  register_alive(id);
  raw->fix_all_fingers();
  if (config_.run_maintenance) schedule_maintenance(id);
  return id;
}

void ChordNetwork::kill_node(const NodeId& id) {
  ChordNode* n = live_node(id);
  if (n == nullptr) return;
  n->fail();
  unregister_alive(id);
  handlers_.erase(id);
}

void ChordNetwork::remove_node(const NodeId& id) {
  ChordNode* n = live_node(id);
  if (n == nullptr) return;
  n->leave();
  unregister_alive(id);
  handlers_.erase(id);
}

ChordNode* ChordNetwork::node(const NodeId& id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const ChordNode* ChordNetwork::node(const NodeId& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

ChordNode* ChordNetwork::live_node(const NodeId& id) {
  ChordNode* n = node(id);
  return (n != nullptr && n->alive()) ? n : nullptr;
}

ChordNode& ChordNetwork::random_live_node() {
  require(!alive_ids_.empty(), "ChordNetwork: no live nodes");
  return *nodes_.at(alive_ids_[rng_.index(alive_ids_.size())]);
}

LookupResult ChordNetwork::lookup(const NodeId& key) {
  const LookupResult result = random_live_node().find_successor(key);
  ++lookup_stats_.lookups;
  lookup_stats_.total_hops += static_cast<std::uint64_t>(result.hops);
  if (!result.ok) ++lookup_stats_.failures;
  return result;
}

bool ChordNetwork::put(const NodeId& key, Bytes value) {
  const LookupResult result = lookup(key);
  if (!result.ok) return false;
  ChordNode* primary = live_node(result.node);
  if (primary == nullptr) return false;
  primary->store_local(key, value);

  NodeId target = primary->successor();
  for (std::size_t copy = 1; copy < config_.replication_factor; ++copy) {
    ChordNode* t = live_node(target);
    if (t == nullptr || t == primary) break;
    t->store_local(key, value);
    target = t->successor();
  }
  return true;
}

std::optional<Bytes> ChordNetwork::get(const NodeId& key) {
  const LookupResult result = lookup(key);
  if (!result.ok) return std::nullopt;
  // Replicas live on the first replication_factor live successors of the
  // primary *at put/repair time*. When responsibility migrates afterwards
  // (the primary dies, or fresh nodes join between the key and the old
  // replica set), the current responsible node can sit several hops short
  // of the surviving copies, so a walk of exactly replication_factor nodes
  // misses reachable data. Walk up to successor_list_size extra live nodes
  // and stop when the ring wraps back to the start.
  NodeId target = result.node;
  const std::size_t max_visits =
      config_.replication_factor + config_.successor_list_size;
  for (std::size_t visit = 0; visit < max_visits; ++visit) {
    ChordNode* t = live_node(target);
    if (t == nullptr) break;
    auto value = t->storage().get(key);
    if (value.has_value()) return value;
    NodeId next = t->successor();
    if (next == t->id()) {
      // Successor list exhausted (e.g. a fresh joiner whose only successor
      // died before it re-stabilized; routed lookups would just bounce off
      // the same broken pointer). Step to the true ring successor directly
      // — an O(live) oracle step in the spirit of Kademlia's
      // closest_alive_brute_force, rare enough to be free, and equal to
      // what one stabilize round would restore anyway.
      bool have_next = false, have_wrap = false;
      NodeId wrap{};
      for (const NodeId& id : alive_ids_) {
        if (id == t->id()) continue;
        if (t->id() < id && (!have_next || id < next)) {
          next = id;
          have_next = true;
        }
        if (!have_wrap || id < wrap) {
          wrap = id;
          have_wrap = true;
        }
      }
      if (!have_next && !have_wrap) break;  // genuinely alone
      if (!have_next) next = wrap;
    }
    if (next == result.node) break;  // wrapped around
    target = next;
  }
  return std::nullopt;
}

bool ChordNetwork::store_on(const NodeId& id, const NodeId& key, Bytes value) {
  ChordNode* n = live_node(id);
  if (n == nullptr) return false;
  n->store_local(key, std::move(value));
  return true;
}

std::optional<Bytes> ChordNetwork::load_from(const NodeId& id,
                                             const NodeId& key) {
  ChordNode* n = live_node(id);
  if (n == nullptr) return std::nullopt;
  return n->storage().get(key);
}

void ChordNetwork::set_message_handler(const NodeId& node_id,
                                       MessageHandler handler) {
  handlers_[node_id] = std::move(handler);
}

void ChordNetwork::send_message(const NodeId& from, const NodeId& to,
                                Bytes payload) {
  const double latency =
      config_.min_message_latency +
      rng_.real() * (config_.max_message_latency - config_.min_message_latency);
  simulator_.schedule_in(latency, [this, from, to,
                                   payload = std::move(payload)]() {
    ChordNode* dest = live_node(to);
    if (dest == nullptr) return;  // message to a dead node is lost
    auto it = handlers_.find(to);
    if (it != handlers_.end()) {
      it->second(from, to, payload);
    } else if (default_handler_) {
      default_handler_(from, to, payload);
    }
  });
}

void ChordNetwork::send_message_routed(const NodeId& from,
                                       const NodeId& ring_point,
                                       Bytes payload) {
  const double latency =
      config_.min_message_latency +
      rng_.real() * (config_.max_message_latency - config_.min_message_latency);
  simulator_.schedule_in(latency, [this, from, ring_point,
                                   payload = std::move(payload)]() {
    const LookupResult result = lookup(ring_point);
    if (!result.ok) return;
    ChordNode* dest = live_node(result.node);
    if (dest == nullptr) return;
    auto it = handlers_.find(result.node);
    if (it != handlers_.end()) {
      it->second(from, result.node, payload);
    } else if (default_handler_) {
      default_handler_(from, result.node, payload);
    }
  });
}

void ChordNetwork::run_maintenance_round() {
  // Snapshot ids: maintenance can change the alive set.
  const std::vector<NodeId> ids = alive_ids_;
  for (const NodeId& id : ids) {
    ChordNode* n = live_node(id);
    if (n == nullptr) continue;
    n->stabilize();
    n->check_predecessor();
  }
  for (const NodeId& id : ids) {
    ChordNode* n = live_node(id);
    if (n == nullptr) continue;
    n->fix_all_fingers();
    n->replica_maintenance(config_.replication_factor);
  }
}

}  // namespace emergence::dht

// 160-bit identifiers on the Chord ring.
//
// IDs are big-endian 20-byte values; nodes and keys share the identifier
// space (consistent hashing, as in the Chord paper). All interval tests are
// circular: (a, b] wraps around the 2^160 boundary.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"

namespace emergence::dht {

constexpr std::size_t kIdBytes = 20;
constexpr std::size_t kIdBits = kIdBytes * 8;  // 160

/// An identifier on the ring.
class NodeId {
 public:
  NodeId() = default;

  /// Builds from exactly 20 raw bytes.
  static NodeId from_bytes(BytesView raw);

  /// SHA-256 of `data`, truncated to 160 bits (Chord's consistent hash).
  static NodeId hash_of(BytesView data);

  /// Convenience: hash of a textual name ("node-17", key labels, ...).
  static NodeId hash_of_text(std::string_view text);

  /// Parses 40 hex characters.
  static NodeId from_hex(std::string_view hex);

  const std::array<std::uint8_t, kIdBytes>& bytes() const { return bytes_; }
  std::string to_hex() const;
  /// First 8 hex chars; convenient for logs.
  std::string short_hex() const;

  auto operator<=>(const NodeId&) const = default;

  /// this + 2^power (mod 2^160); used for finger-table starts.
  NodeId add_power_of_two(std::size_t power) const;

  /// this + 1 (mod 2^160).
  NodeId successor_value() const;

  /// Clockwise distance from this to other (other - this mod 2^160),
  /// truncated to the low 64 bits (sufficient for ordering diagnostics).
  std::uint64_t distance_low64(const NodeId& other) const;

 private:
  std::array<std::uint8_t, kIdBytes> bytes_{};
};

/// True when x lies in the open interval (a, b) on the ring. Empty when
/// a == b (full-circle semantics are handled by callers that need them).
bool in_open_interval(const NodeId& x, const NodeId& a, const NodeId& b);

/// True when x lies in the half-open interval (a, b] on the ring; this is
/// the successor-responsibility test of Chord.
bool in_half_open_interval(const NodeId& x, const NodeId& a, const NodeId& b);

/// Hash functor so NodeId can key unordered containers.
struct NodeIdHash {
  std::size_t operator()(const NodeId& id) const;
};

}  // namespace emergence::dht

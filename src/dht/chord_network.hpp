// The simulated Chord network: owns nodes, runs maintenance, routes
// application messages, and exposes put/get with replication.
//
// The network plays the role Overlay Weaver played for the paper: a test
// harness that can instantiate thousands of node instances in one process.
// RPCs between nodes are direct calls guarded by liveness checks (a dead
// callee behaves like a timeout); application-level messages travel through
// the discrete-event simulator with a configurable latency model so that
// protocol timing (holding periods, release times) is meaningful.
//
// Scale notes (see docs/architecture.md, "Performance model"): nodes live
// in a stable deque arena (one allocation batch, pointers never move), the
// live set is indexed both by a swap-pop vector (O(1) sampling) and a
// sorted LiveRingIndex (O(log n) ring-successor queries), bootstrap wires
// exact fingers in O(n log^2 n) without per-power binary searches, and all
// stored/sent payloads are shared buffers (see common/bytes.hpp).
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "dht/chord_node.hpp"
#include "dht/network.hpp"
#include "dht/node_id.hpp"
#include "dht/ring_index.hpp"
#include "sim/simulator.hpp"

namespace emergence::dht {

/// Tuning knobs for the simulated network.
struct NetworkConfig {
  std::size_t successor_list_size = 8;
  std::size_t replication_factor = 3;
  double stabilize_interval = 30.0;          ///< seconds of virtual time
  double replica_repair_interval = 120.0;    ///< seconds of virtual time
  double min_message_latency = 0.010;        ///< seconds
  double max_message_latency = 0.100;        ///< seconds
  /// Message-level transport (latency law, loss, bounded retries). The
  /// default ideal() resolves to the historical uniform draw over
  /// [min_message_latency, max_message_latency]: bit-identical event
  /// sequences at pinned seeds (tests/test_transport.cpp golden).
  TransportModel transport;
  bool run_maintenance = true;  ///< schedule periodic stabilization tasks
  /// When false, a joining node copies its successor's finger table instead
  /// of running kIdBits lookups (fix_all_fingers); periodic fix_fingers
  /// converges the copies. Large churned worlds join in O(log n) this way;
  /// default keeps the historical exact-join behavior (and its sampled
  /// outcomes) for the cross-validation sweeps.
  bool exact_join_fingers = true;
};

/// Counters for the periodic maintenance timers (regression-tested: replica
/// repair must fire at replica_repair_interval, not stabilize_interval).
struct MaintenanceStats {
  std::uint64_t stabilize_rounds = 0;
  std::uint64_t repair_rounds = 0;
};

/// The in-process Chord DHT.
class ChordNetwork final : public Network {
 public:
  ChordNetwork(sim::Simulator& simulator, Rng& rng, NetworkConfig config = {});

  // -- topology --------------------------------------------------------------

  /// Creates `count` nodes with ids hash("node-<i>") and wires a correct ring
  /// (sorted successors, exact fingers). Equivalent to letting join/stabilize
  /// converge, but O(n log^2 n); maintenance keeps it correct afterwards.
  void bootstrap(std::size_t count);

  /// Adds one node via the Chord join protocol. Returns its id.
  NodeId add_node() override;
  NodeId add_node_with_id(const NodeId& id) override;

  /// Abrupt failure (data on the node is lost).
  void kill_node(const NodeId& id) override;

  /// Graceful departure (data handed off first).
  void remove_node(const NodeId& id);

  std::size_t alive_count() const override { return alive_ids_.size(); }
  std::size_t total_count() const { return nodes_.size(); }
  const std::vector<NodeId>& alive_ids() const override { return alive_ids_; }
  const LiveRingIndex& live_ring() const { return live_ring_; }

  ChordNode* node(const NodeId& id);
  const ChordNode* node(const NodeId& id) const;
  /// Node if it exists and is alive, else nullptr (RPC liveness guard).
  ChordNode* live_node(const NodeId& id);

  /// Uniformly random live node (entry point for lookups).
  ChordNode& random_live_node();

  // -- lookup / storage ------------------------------------------------------

  /// Iterative lookup from a random live entry point.
  LookupResult lookup(const NodeId& key) override;

  /// Stores `value` on the responsible node and its replicas (all replicas
  /// share one buffer).
  bool put(const NodeId& key, SharedBytes value) override;
  using Network::put;

  /// Fetches from the responsible node, falling back to replicas.
  SharedBytes get(const NodeId& key) override;
  std::size_t erase(const NodeId& key) override;

  // -- node-addressed storage --------------------------------------------------

  bool is_alive(const NodeId& id) const override {
    const ChordNode* n = node(id);
    return n != nullptr && n->alive();
  }
  bool store_on(const NodeId& id, const NodeId& key,
                SharedBytes value) override;
  using Network::store_on;
  SharedBytes load_from(const NodeId& id, const NodeId& key) override;

  // -- application messaging -------------------------------------------------

  /// Registers the handler invoked when messages arrive at `node_id`.
  void set_message_handler(const NodeId& node_id,
                           MessageHandler handler) override;

  /// Fallback handler for nodes without a specific one; routed messages to
  /// churn replacements land here.
  void set_default_message_handler(MessageHandler handler) override {
    default_handler_ = std::move(handler);
  }
  const MessageHandler& default_message_handler() const override {
    return default_handler_;
  }

  /// Sends an application payload; it is delivered after a sampled latency
  /// if (and only if) the destination is alive at delivery time.
  void send_message(const NodeId& from, const NodeId& to,
                    SharedBytes payload) override;
  using Network::send_message;

  /// Sends a payload to *whichever node is responsible for `ring_point` at
  /// delivery time* (a fresh lookup runs then). This is how the protocol
  /// layer addresses holders: a holder that died re-resolves to its
  /// successor, exactly like a DHT put/get would.
  void send_message_routed(const NodeId& from, const NodeId& ring_point,
                           SharedBytes payload) override;
  using Network::send_message_routed;

  /// Observer for every local store (see StoreObserver).
  void set_store_observer(StoreObserver observer) override {
    store_observer_ = std::move(observer);
  }
  const StoreObserver& store_observer() const override {
    return store_observer_;
  }

  // -- environment -----------------------------------------------------------

  sim::Simulator& simulator() override { return simulator_; }
  Rng& rng() override { return rng_; }
  double max_message_latency() const override {
    return transport_.max_single_latency();
  }
  const TransportModel& transport() const override { return transport_; }
  const TransportStats& transport_stats() const override {
    return transport_stats_;
  }
  /// Serial trace shard (null = tracing off). Parallel runs override it
  /// per-domain via ExecutionContext::trace, same as the stats shards.
  void set_trace_shard(obs::TraceShard* shard) { trace_shard_ = shard; }
  const NetworkConfig& config() const { return config_; }
  LookupStats& lookup_stats() { return lookup_stats_; }
  const MaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }

  /// Runs one maintenance round on every live node right now (tests use this
  /// instead of waiting for periodic timers).
  void run_maintenance_round();

 private:
  void schedule_maintenance(const NodeId& id);
  void schedule_stabilize_in(double delay, const NodeId& id);
  void schedule_repair_in(double delay, const NodeId& id);
  NodeId fresh_node_id();
  ChordNode& allocate_node(const NodeId& id);
  void register_alive(const NodeId& id);
  void unregister_alive(const NodeId& id);

  sim::Simulator& simulator_;
  Rng& rng_;
  NetworkConfig config_;
  /// config_.transport resolved against the configured latency range.
  TransportModel transport_;
  TransportStats transport_stats_;
  obs::TraceShard* trace_shard_ = nullptr;

  /// Node arena: stable addresses, no per-node unique_ptr allocation, dead
  /// nodes stay (peers probe their liveness, exactly as before).
  std::deque<ChordNode> arena_;
  std::unordered_map<NodeId, ChordNode*, NodeIdHash> nodes_;
  std::vector<NodeId> alive_ids_;
  std::unordered_map<NodeId, std::size_t, NodeIdHash> alive_index_;
  LiveRingIndex live_ring_;
  std::unordered_map<NodeId, MessageHandler, NodeIdHash> handlers_;
  MessageHandler default_handler_;
  StoreObserver store_observer_;
  LookupStats lookup_stats_;
  MaintenanceStats maintenance_stats_;
  std::uint64_t node_counter_ = 0;
};

}  // namespace emergence::dht

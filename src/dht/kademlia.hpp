// Kademlia DHT (Maymounkov & Mazieres, IPTPS 2002) as a second substrate.
//
// Nodes and keys share the 160-bit id space; distance is XOR interpreted as
// an unsigned integer. Each node keeps k-buckets -- one per distance prefix
// length -- of up to `bucket_size` contacts. Lookups are iterative: keep a
// shortlist of the closest known contacts, repeatedly query the closest
// unqueried one for *its* closest contacts, stop when no progress is made.
// A key is owned by the closest live node; puts replicate to the
// `replication_factor` closest.
//
// The paper's evaluation ran on Overlay Weaver, which hosts several DHT
// algorithms behind one runtime; this class plays that role for the
// dht::Network interface so the timed-release protocol runs unchanged over
// Chord or Kademlia (see tests/test_protocol.cpp).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "dht/network.hpp"
#include "dht/node_id.hpp"
#include "dht/ring_index.hpp"
#include "dht/storage.hpp"
#include "sim/simulator.hpp"

namespace emergence::dht {

/// XOR distance comparison: true when |a ^ target| < |b ^ target|.
bool xor_closer(const NodeId& a, const NodeId& b, const NodeId& target);

/// Index of the highest bit set in a ^ b (the k-bucket index); 0 for the
/// lowest-order bit. Requires a != b.
std::size_t bucket_index(const NodeId& a, const NodeId& b);

/// Tuning knobs.
struct KademliaConfig {
  std::size_t bucket_size = 20;       ///< Kademlia's k
  std::size_t lookup_parallelism = 3; ///< Kademlia's alpha (shortlist width)
  std::size_t replication_factor = 3;
  double min_message_latency = 0.010;
  double max_message_latency = 0.100;
  /// Message-level transport (see chord_network.hpp NetworkConfig): the
  /// default ideal() reproduces the historical uniform draw bit-for-bit.
  TransportModel transport;
  double republish_interval = 120.0;  ///< replica repair period
  bool run_maintenance = true;
};

/// One Kademlia participant.
class KademliaNode {
 public:
  KademliaNode(NodeId id, std::size_t buckets) : id_(id), buckets_(buckets) {}

  const NodeId& id() const { return id_; }
  bool alive() const { return alive_; }
  void mark_alive(bool alive) { alive_ = alive; }

  /// Restores freshly-constructed state so a dead instance can serve a
  /// rejoin of the same id (arena slots are reused, never destroyed).
  void reset_for_rejoin() {
    alive_ = true;
    for (auto& bucket : buckets_) bucket.clear();
    storage_.clear();
  }

  /// Inserts a contact into its bucket (drops it when the bucket is full,
  /// the classic least-recently-seen policy simplified to reject-new).
  void observe_contact(const NodeId& contact, std::size_t bucket_size);
  /// Removes a contact (after a failed RPC).
  void drop_contact(const NodeId& contact);

  /// Bulk bucket fill used by bootstrap (bucket membership is a set: every
  /// consumer re-sorts by XOR distance, so internal order is irrelevant).
  void seed_bucket(std::size_t index, std::vector<NodeId> contacts) {
    buckets_[index] = std::move(contacts);
  }

  /// The `count` known contacts closest to `target` (plus self).
  std::vector<NodeId> closest_contacts(const NodeId& target,
                                       std::size_t count) const;

  std::size_t contact_count() const;
  Storage& storage() { return storage_; }
  const Storage& storage() const { return storage_; }

 private:
  NodeId id_;
  bool alive_ = true;
  std::vector<std::vector<NodeId>> buckets_;
  Storage storage_;
};

/// The in-process Kademlia DHT.
class KademliaNetwork final : public Network {
 public:
  KademliaNetwork(sim::Simulator& simulator, Rng& rng,
                  KademliaConfig config = {});

  /// Creates `count` nodes and wires populated k-buckets in
  /// O(n * bits * (log n + k)) via prefix ranges over the sorted id list.
  void bootstrap(std::size_t count);

  /// Joins one node through a random live bootstrap contact.
  NodeId add_node() override;

  /// Rejoins with a specific id (transient churn outages; parity with
  /// ChordNetwork so the churn driver runs over either backend).
  NodeId add_node_with_id(const NodeId& id) override;

  /// Abrupt failure.
  void kill_node(const NodeId& id) override;

  KademliaNode* node(const NodeId& id);
  const KademliaNode* node(const NodeId& id) const;
  KademliaNode* live_node(const NodeId& id);

  /// True closest live node to `key`, answered by the sorted live index in
  /// O(bits * log n) (replaces the old O(live) brute-force oracle scan).
  NodeId closest_alive(const NodeId& key) const;

  // -- Network interface -------------------------------------------------------
  LookupResult lookup(const NodeId& key) override;
  bool put(const NodeId& key, SharedBytes value) override;
  using Network::put;
  SharedBytes get(const NodeId& key) override;
  std::size_t erase(const NodeId& key) override;
  bool is_alive(const NodeId& id) const override;
  bool store_on(const NodeId& id, const NodeId& key,
                SharedBytes value) override;
  using Network::store_on;
  SharedBytes load_from(const NodeId& id, const NodeId& key) override;
  void set_message_handler(const NodeId& node, MessageHandler handler) override;
  void set_default_message_handler(MessageHandler handler) override {
    default_handler_ = std::move(handler);
  }
  const MessageHandler& default_message_handler() const override {
    return default_handler_;
  }
  void send_message(const NodeId& from, const NodeId& to,
                    SharedBytes payload) override;
  using Network::send_message;
  void send_message_routed(const NodeId& from, const NodeId& ring_point,
                           SharedBytes payload) override;
  using Network::send_message_routed;
  void set_store_observer(StoreObserver observer) override {
    store_observer_ = std::move(observer);
  }
  const StoreObserver& store_observer() const override {
    return store_observer_;
  }
  std::size_t alive_count() const override { return alive_ids_.size(); }
  sim::Simulator& simulator() override { return simulator_; }
  Rng& rng() override { return rng_; }
  double max_message_latency() const override {
    return transport_.max_single_latency();
  }
  const TransportModel& transport() const override { return transport_; }
  const TransportStats& transport_stats() const override {
    return transport_stats_;
  }
  /// Serial trace shard (null = tracing off). Parallel runs override it
  /// per-domain via ExecutionContext::trace, same as the stats shards.
  void set_trace_shard(obs::TraceShard* shard) { trace_shard_ = shard; }

  const std::vector<NodeId>& alive_ids() const override { return alive_ids_; }
  const LiveRingIndex& live_ring() const { return live_ring_; }
  const KademliaConfig& config() const { return config_; }
  LookupStats& lookup_stats() { return lookup_stats_; }
  std::uint64_t lookup_count() const { return lookup_stats_.lookups; }
  double mean_lookup_hops() const { return lookup_stats_.mean_hops(); }

  /// Republishes every stored key to its current replica set (replica
  /// repair; scheduled periodically when run_maintenance is on).
  void republish_round();

 private:
  NodeId fresh_node_id();
  KademliaNode& allocate_node(const NodeId& id);
  NodeId join_node(const NodeId& id);
  void register_alive(const NodeId& id);
  void unregister_alive(const NodeId& id);
  void schedule_republish();
  void deliver(const NodeId& from, const NodeId& to, BytesView payload);

  /// Iterative node lookup: the closest live node to `key`, with hop count.
  /// Queried nodes learn the originator (Kademlia's implicit liveness
  /// advertisement), which is what integrates a joining node into the
  /// routing tables around its own id.
  LookupResult iterative_find_from(KademliaNode& origin, const NodeId& key);
  LookupResult iterative_find(const NodeId& key);

  sim::Simulator& simulator_;
  Rng& rng_;
  KademliaConfig config_;
  /// config_.transport resolved against the configured latency range.
  TransportModel transport_;
  TransportStats transport_stats_;
  obs::TraceShard* trace_shard_ = nullptr;
  /// Node arena (stable addresses, no per-node allocation churn).
  std::deque<KademliaNode> arena_;
  std::unordered_map<NodeId, KademliaNode*, NodeIdHash> nodes_;
  std::vector<NodeId> alive_ids_;
  std::unordered_map<NodeId, std::size_t, NodeIdHash> alive_index_;
  LiveRingIndex live_ring_;
  std::unordered_map<NodeId, MessageHandler, NodeIdHash> handlers_;
  MessageHandler default_handler_;
  StoreObserver store_observer_;
  LookupStats lookup_stats_;
  std::uint64_t node_counter_ = 0;
};

}  // namespace emergence::dht

#include "dht/churn_driver.hpp"

namespace emergence::dht {

ChurnDriver::ChurnDriver(Network& network, ChurnConfig config)
    : network_(network),
      config_(std::move(config)),
      lifetime_(config_.lifetime
                    ? config_.lifetime
                    : std::make_shared<workload::ExponentialLifetime>(
                          config_.mean_lifetime)) {}

void ChurnDriver::start() {
  running_ = true;
  // Residual lifetime of a node already in the network is again Exp(λ)
  // (memorylessness), so sampling fresh lifetimes at start is exact for the
  // default law; see the header note for heavy-tailed models.
  for (const NodeId& id : network_.alive_ids()) schedule_outage(id);
}

void ChurnDriver::schedule_outage(const NodeId& id) {
  const double lifetime = lifetime_->sample(network_.rng());
  network_.simulator().schedule_in(lifetime, [this, id]() {
    if (!running_) return;
    handle_outage(id);
  });
}

void ChurnDriver::handle_outage(const NodeId& id) {
  if (!network_.is_alive(id)) return;  // already gone

  const bool transient = network_.rng().chance(config_.transient_fraction);
  if (transient) {
    ++transients_;
    network_.kill_node(id);
    const double downtime = network_.rng().exponential(config_.mean_downtime);
    // The rejoin happens even after stop(): stopping ends *new* churn, it
    // does not strand nodes that were mid-outage.
    network_.simulator().schedule_in(downtime, [this, id]() {
      if (network_.alive_count() == 0) return;
      network_.add_node_with_id(id);
      if (running_) schedule_outage(id);
    });
    return;
  }

  ++deaths_;
  network_.kill_node(id);

  if (config_.replace_dead_nodes && network_.alive_count() > 0) {
    const NodeId replacement = network_.add_node();
    ++replacements_;
    schedule_outage(replacement);
    if (on_death) on_death(id, &replacement);
  } else {
    if (on_death) on_death(id, nullptr);
  }
}

}  // namespace emergence::dht

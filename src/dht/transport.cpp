#include "dht/transport.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "common/hex.hpp"
#include "obs/trace.hpp"

namespace emergence::dht {

void TransportStats::merge(const TransportStats& other) {
  messages += other.messages;
  attempts += other.attempts;
  dropped += other.dropped;
  retried += other.retried;
  timed_out += other.timed_out;
  hop_latency_us.merge(other.hop_latency_us);
}

std::uint64_t TransportStats::fingerprint() const {
  Fingerprint fp;
  fp.mix(messages);
  fp.mix(attempts);
  fp.mix(dropped);
  fp.mix(retried);
  fp.mix(timed_out);
  for (const auto& [key, weight] : hop_latency_us.bins()) {
    fp.mix(static_cast<std::uint64_t>(key));
    fp.mix(weight);
  }
  return fp.value();
}

TransportModel TransportModel::ideal() { return TransportModel{}; }

TransportModel TransportModel::lan() {
  TransportModel t;
  t.kind = LatencyKind::kUniform;
  t.min_latency = 0.0002;  // one switch hop ..
  t.max_latency = 0.002;   // .. to a congested rack, in virtual seconds
  return t;
}

TransportModel TransportModel::wan() {
  TransportModel t;
  t.kind = LatencyKind::kZoned;
  t.zone_count = 4;
  t.intra_min = 0.005;
  t.intra_max = 0.030;
  t.inter_min = 0.040;
  t.inter_max = 0.200;
  t.drop_probability = 0.001;
  t.max_retries = 3;
  t.retry_timeout = 0.5;
  t.retry_backoff = 2.0;
  return t;
}

TransportModel TransportModel::lossy(double p) {
  TransportModel t;
  // The historical latency law, with loss + bounded retry layered on top.
  t.kind = LatencyKind::kUniform;
  t.min_latency = 0.010;
  t.max_latency = 0.100;
  t.drop_probability = p;
  t.max_retries = 3;
  t.retry_timeout = 0.5;
  t.retry_backoff = 2.0;
  return t;
}

TransportModel TransportModel::straggler() {
  TransportModel t;
  t.kind = LatencyKind::kLogNormal;
  t.log_mu = std::log(0.030);  // 30ms median ..
  t.log_sigma = 1.3;           // .. with a p99 around 0.6s
  t.cap = 1.5;                 // hard truncation keeps L well-defined
  t.min_latency = 0.0005;
  return t;
}

TransportModel TransportModel::partition_heal(double start, double end) {
  TransportModel t;
  t.kind = LatencyKind::kZoned;
  t.zone_count = 2;
  t.intra_min = 0.005;
  t.intra_max = 0.030;
  t.inter_min = 0.040;
  t.inter_max = 0.120;
  t.partition_start = start;
  t.partition_end = end;
  // The retry ladder must be able to outlive the outage: 2+4+...+64 = 126s
  // of backoff spans the default 120s window, so messages sent into the
  // partition recover after the heal instead of timing out.
  t.max_retries = 6;
  t.retry_timeout = 2.0;
  t.retry_backoff = 2.0;
  return t;
}

namespace {

double parse_transport_real(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    throw PreconditionError("transport param '" + key + "=" + value +
                            "': not a number");
  }
  return parsed;
}

std::size_t parse_transport_size(const std::string& key,
                                 const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.find('-') != std::string::npos) {
    throw PreconditionError("transport param '" + key + "=" + value +
                            "': not a non-negative integer");
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

TransportModel TransportModel::parse(const std::string& text) {
  require(!text.empty(), "TransportModel::parse: empty net= spec");
  const std::size_t colon = text.find(':');
  const std::string preset = text.substr(0, colon);

  TransportModel t;
  if (preset == "ideal") {
    t = ideal();
  } else if (preset == "lan") {
    t = lan();
  } else if (preset == "wan") {
    t = wan();
  } else if (preset == "lossy") {
    t = lossy();
  } else if (preset == "straggler") {
    t = straggler();
  } else if (preset == "partition-heal") {
    t = partition_heal();
  } else {
    throw PreconditionError(
        "unknown transport preset '" + preset +
        "' (known: ideal, lan, wan, lossy, straggler, partition-heal)");
  }

  if (colon != std::string::npos) {
    const std::string params = text.substr(colon + 1);
    require(!params.empty(),
            "TransportModel::parse: trailing ':' without params in '" + text +
                "'");
    std::size_t start = 0;
    while (start <= params.size()) {
      const std::size_t semi = params.find(';', start);
      const std::string token = params.substr(
          start, semi == std::string::npos ? std::string::npos : semi - start);
      require(!token.empty(),
              "TransportModel::parse: empty param token in '" + text + "'");
      const std::size_t eq = token.find('=');
      require(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
              "TransportModel::parse: param '" + token + "' is not key=value");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "p" || key == "drop") {
        t.drop_probability = parse_transport_real(key, value);
      } else if (key == "retries") {
        t.max_retries = parse_transport_size(key, value);
      } else if (key == "timeout") {
        t.retry_timeout = parse_transport_real(key, value);
      } else if (key == "backoff") {
        t.retry_backoff = parse_transport_real(key, value);
      } else if (key == "zones") {
        t.zone_count = parse_transport_size(key, value);
      } else if (key == "start") {
        t.partition_start = parse_transport_real(key, value);
      } else if (key == "end") {
        t.partition_end = parse_transport_real(key, value);
      } else if (key == "cap") {
        t.cap = parse_transport_real(key, value);
      } else {
        throw PreconditionError("unknown transport param key '" + key + "'");
      }
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  t.validate();
  return t;
}

std::string TransportModel::describe() const {
  std::string out;
  switch (kind) {
    case LatencyKind::kIdeal:
      out = "ideal";
      break;
    case LatencyKind::kFixed:
      out = "fixed(" + std::to_string(max_latency) + "s)";
      break;
    case LatencyKind::kUniform:
      out = "uniform[" + std::to_string(min_latency) + ", " +
            std::to_string(max_latency) + "]";
      break;
    case LatencyKind::kLogNormal:
      out = "lognormal(mu=" + std::to_string(log_mu) +
            ", sigma=" + std::to_string(log_sigma) +
            ", cap=" + std::to_string(cap) + ")";
      break;
    case LatencyKind::kZoned:
      out = "zoned(" + std::to_string(zone_count) + " zones)";
      break;
  }
  if (drop_probability > 0.0) {
    out += " drop=" + std::to_string(drop_probability) +
           " retries=" + std::to_string(max_retries);
  }
  if (has_partition()) {
    out += " partition=[" + std::to_string(partition_start) + ", " +
           std::to_string(partition_end) + ")";
  }
  return out;
}

void TransportModel::validate() const {
  require(drop_probability >= 0.0 && drop_probability < 1.0,
          "TransportModel: drop probability must lie in [0, 1)");
  require(max_retries <= 16, "TransportModel: retry budget capped at 16");
  if (max_retries > 0) {
    require(retry_timeout > 0.0,
            "TransportModel: retry timeout must be positive");
    require(retry_backoff >= 1.0, "TransportModel: retry backoff must be >= 1");
  }
  require(zone_count >= 1, "TransportModel: need at least one zone");
  require(partition_end >= partition_start,
          "TransportModel: partition window end precedes start");
  switch (kind) {
    case LatencyKind::kIdeal:
      require(drop_probability == 0.0 && !has_partition() && max_retries == 0,
              "TransportModel: ideal() admits no loss model");
      break;
    case LatencyKind::kFixed:
      require(max_latency > 0.0, "TransportModel: fixed latency must be > 0");
      break;
    case LatencyKind::kUniform:
      require(min_latency >= 0.0 && max_latency >= min_latency &&
                  max_latency > 0.0,
              "TransportModel: bad uniform latency range");
      break;
    case LatencyKind::kLogNormal:
      require(log_sigma > 0.0, "TransportModel: lognormal sigma must be > 0");
      require(cap > 0.0 && cap >= min_latency,
              "TransportModel: lognormal cap must bound the floor");
      break;
    case LatencyKind::kZoned:
      require(zone_count >= 2, "TransportModel: zoned latency needs >= 2 zones");
      require(intra_min >= 0.0 && intra_max >= intra_min && intra_max > 0.0,
              "TransportModel: bad intra-zone latency range");
      require(inter_min >= 0.0 && inter_max >= inter_min && inter_max > 0.0,
              "TransportModel: bad inter-zone latency range");
      break;
  }
}

TransportModel TransportModel::resolved(double cfg_min_latency,
                                        double cfg_max_latency) const {
  if (kind != LatencyKind::kIdeal) return *this;
  TransportModel t = *this;
  t.kind = LatencyKind::kUniform;
  t.min_latency = cfg_min_latency;
  t.max_latency = cfg_max_latency;
  return t;
}

double TransportModel::max_single_latency() const {
  switch (kind) {
    case LatencyKind::kIdeal:
      return max_latency;  // resolved() replaces this before networks ask
    case LatencyKind::kFixed:
    case LatencyKind::kUniform:
      return max_latency;
    case LatencyKind::kLogNormal:
      return cap;
    case LatencyKind::kZoned:
      return intra_max > inter_max ? intra_max : inter_max;
  }
  return max_latency;
}

double TransportModel::min_single_latency() const {
  switch (kind) {
    case LatencyKind::kIdeal:
    case LatencyKind::kUniform:
      return min_latency;  // resolved() gives kIdeal the historical floor
    case LatencyKind::kFixed:
      return max_latency;  // the constant
    case LatencyKind::kLogNormal:
      return min_latency;  // the truncation floor (0 when unset)
    case LatencyKind::kZoned:
      return intra_min < inter_min ? intra_min : inter_min;
  }
  return min_latency;
}

double TransportModel::retry_delay_sum() const {
  double sum = 0.0;
  double delay = retry_timeout;
  for (std::size_t i = 0; i < max_retries; ++i) {
    sum += delay;
    delay *= retry_backoff;
  }
  return sum;
}

bool TransportModel::guarantees_exact_delivery(double holding_period,
                                               double assembly_delay) const {
  if (has_partition()) return false;
  return retry_delay_sum() + max_single_latency() + assembly_delay <
         holding_period;
}

double TransportModel::reap_slack(std::size_t path_length) const {
  // Pure-latency transports keep the historical reap cadence: the session
  // constructor precondition (th > assembly + 4L) already confines every
  // event to tr, and ideal() reap times must stay bit-identical.
  if (!can_drop() && max_retries == 0) return 0.0;
  // Worst per-hop lateness: a message retried to exhaustion arrives at most
  // retry_delay_sum + L after its deadline and is processed assembly later;
  // lateness can cascade once per column. The partition window is already
  // bounded by the retry ladder but is added as explicit margin.
  return static_cast<double>(path_length) *
             (retry_delay_sum() + max_single_latency() + 1.0) +
         partition_length();
}

std::size_t TransportModel::compute_zone(const NodeId& id) const {
  // Stream id: the id's first 8 bytes (big-endian). fork() is a pure
  // function of (zone_seed, stream), so the assignment is identical across
  // worlds, threads and reruns.
  std::uint64_t stream = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    stream = (stream << 8) | id.bytes()[i];
  }
  return Rng(zone_seed).fork(stream).index(zone_count);
}

std::size_t TransportModel::zone_of(const NodeId& id) const {
  if (zone_count <= 1) return 0;
  const auto cached = zone_cache_.find(id);
  if (cached != zone_cache_.end()) return cached->second;
  // Unprimed id (a test probing an arbitrary id): compute without
  // memoizing. Inserting here from a const path was the zone-cache data
  // race; correctness never depended on the memo, only speed.
  return compute_zone(id);
}

void TransportModel::prime_zone(const NodeId& id) {
  if (zone_count <= 1) return;
  zone_cache_.emplace(id, compute_zone(id));
}

bool TransportModel::cross_zone(const NodeId& from, const NodeId& to) const {
  if (zone_count <= 1) return false;
  return zone_of(from) != zone_of(to);
}

double TransportModel::sample_latency(Rng& rng, bool cross) const {
  switch (kind) {
    case LatencyKind::kIdeal:
    case LatencyKind::kUniform:
      return min_latency + rng.real() * (max_latency - min_latency);
    case LatencyKind::kFixed:
      return max_latency;  // no draw: constant links stay draw-free
    case LatencyKind::kLogNormal: {
      // Box-Muller from two uniform draws; 1-u1 keeps the log argument in
      // (0, 1]. Truncated to [min_latency, cap] so worst case stays bounded.
      const double u1 = rng.real();
      const double u2 = rng.real();
      const double n = std::sqrt(-2.0 * std::log(1.0 - u1)) *
                       std::cos(2.0 * 3.14159265358979323846 * u2);
      const double sample = std::exp(log_mu + log_sigma * n);
      if (sample < min_latency) return min_latency;
      if (sample > cap) return cap;
      return sample;
    }
    case LatencyKind::kZoned: {
      const double lo = cross ? inter_min : intra_min;
      const double hi = cross ? inter_max : intra_max;
      return lo + rng.real() * (hi - lo);
    }
  }
  return max_latency;
}

namespace {

/// The id's first 8 bytes, big-endian — the same prefix compute_zone keys
/// its fork on. Feeds the hop-span sampling key.
std::uint64_t id_prefix(const NodeId& id) {
  std::uint64_t prefix = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    prefix = (prefix << 8) | id.bytes()[i];
  }
  return prefix;
}

}  // namespace

void TransportModel::send(sim::Simulator& sim, Rng& rng, TransportStats& stats,
                          const NodeId& from, const NodeId& to,
                          std::function<void()> deliver,
                          obs::TraceShard* trace) const {
  ++stats.messages;
  const bool cross = kind == LatencyKind::kZoned && cross_zone(from, to);
  // Hop-span sampling is decided ONCE per logical message, keyed purely on
  // content (endpoint prefixes + send time) via the tracer's own forked
  // stream — no draw from `rng`, so schedules and stats are bit-identical
  // with tracing on or off, and the decision is independent of the domain
  // and thread layout. Retransmits inherit the decision through the
  // closure.
  std::string link;
  if (trace != nullptr &&
      trace->sample(obs::hop_sample_key(id_prefix(from), id_prefix(to),
                                        sim.now()))) {
    link = from.to_hex().substr(0, 8) + ">" + to.to_hex().substr(0, 8);
  } else {
    trace = nullptr;
  }
  attempt(sim, rng, stats, cross, std::move(deliver), 0, trace,
          std::move(link));
}

void TransportModel::attempt(sim::Simulator& sim, Rng& rng,
                             TransportStats& stats, bool cross,
                             std::function<void()> deliver,
                             std::size_t attempt_index, obs::TraceShard* trace,
                             std::string link) const {
  ++stats.attempts;
  bool lost = false;
  if (partition_active(sim.now()) && (zone_count <= 1 || cross)) {
    lost = true;  // deterministic outage: no draw, so heals replay exactly
  } else if (drop_probability > 0.0) {
    // Guarded so the no-loss path consumes zero extra draws — the ideal()
    // bit-identity contract (Rng::chance always draws for p in (0, 1)).
    lost = rng.chance(drop_probability);
  }
  auto hop_event = [&](const char* name, std::int64_t dur_us) {
    obs::TraceEvent e;
    e.ts_us = std::llround(sim.now() * 1e6);
    e.dur_us = dur_us;
    e.name = name;
    e.cat = "transport";
    e.args = {{"link", link},
              {"attempt", std::to_string(attempt_index)}};
    trace->record(std::move(e));
  };
  if (lost) {
    ++stats.dropped;
    if (attempt_index < max_retries) {
      ++stats.retried;
      if (trace != nullptr) hop_event("hop_drop", 0);
      const double rto = retry_timeout *
                         std::pow(retry_backoff,
                                  static_cast<double>(attempt_index));
      sim.schedule_in(rto, [this, &sim, &rng, &stats, cross,
                            deliver = std::move(deliver), attempt_index,
                            trace, link = std::move(link)]() mutable {
        attempt(sim, rng, stats, cross, std::move(deliver), attempt_index + 1,
                trace, std::move(link));
      });
    } else {
      ++stats.timed_out;
      if (trace != nullptr) hop_event("hop_timeout", 0);
    }
    return;
  }
  const double latency = sample_latency(rng, cross);
  const std::int64_t latency_us = std::llround(latency * 1e6);
  stats.hop_latency_us.add(latency_us);
  if (trace != nullptr) hop_event("hop", latency_us);
  sim.schedule_in(latency, std::move(deliver));
}

}  // namespace emergence::dht

// One Chord node: ring state, finger table, iterative lookup, storage.
//
// Follows Stoica et al., "Chord: A scalable peer-to-peer lookup service for
// internet applications" (SIGCOMM 2001): each node keeps a successor list
// (robustness to failures), a predecessor pointer and a 160-entry finger
// table; lookups walk closest-preceding fingers until the key falls between
// a node and its successor. Maintenance (stabilize / fix-fingers /
// check-predecessor / replica repair) runs as periodic simulator events
// scheduled by ChordNetwork.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dht/finger_table.hpp"
#include "dht/network.hpp"
#include "dht/node_id.hpp"
#include "dht/storage.hpp"

namespace emergence::dht {

class ChordNetwork;

/// A single DHT participant.
class ChordNode {
 public:
  ChordNode(ChordNetwork& network, NodeId id, std::size_t successor_list_size);

  const NodeId& id() const { return id_; }
  bool alive() const { return alive_; }

  // -- ring pointers ---------------------------------------------------------

  /// First live successor (self when the node is alone).
  NodeId successor() const;
  const std::vector<NodeId>& successor_list() const { return successors_; }
  std::optional<NodeId> predecessor() const { return predecessor_; }

  /// True when this node is responsible for `key`
  /// (key in (predecessor, self]).
  bool responsible_for(const NodeId& key) const;

  // -- protocol --------------------------------------------------------------

  /// Bootstraps a one-node ring.
  void create();

  /// Joins via any live node; acquires successor and pulls keys it now owns.
  void join(const NodeId& bootstrap);

  /// Graceful leave: hands keys to the successor and detaches.
  void leave();

  /// Abrupt death (churn): state is lost, peers discover via timeouts.
  void fail();

  /// Restores freshly-constructed state so a dead instance can serve a
  /// rejoin of the same id (arena slots are reused, never destroyed).
  void reset_for_rejoin();

  /// Bumped by every reset_for_rejoin. Maintenance timers capture it at
  /// scheduling time and abandon themselves when it moved on, so a
  /// kill-then-rejoin that beats a pending timer cannot leave the node
  /// with two concurrent stabilize/repair chains.
  std::uint64_t incarnation() const { return incarnation_; }

  /// Periodic: verify successor, adopt a closer one, refresh successor list.
  void stabilize();

  /// Remote call: `candidate` believes it may be our predecessor.
  void notify(const NodeId& candidate);

  /// Periodic: refreshes one finger per call, round-robin.
  void fix_fingers();

  /// Refreshes every finger (used after bulk bootstrap).
  void fix_all_fingers();

  /// Periodic: clears the predecessor if it died.
  void check_predecessor();

  /// Periodic: pushes each stored key to the current replica set so that
  /// `replication_factor` copies survive churn.
  void replica_maintenance(std::size_t replication_factor);

  /// Iterative lookup starting at this node.
  LookupResult find_successor(const NodeId& key) const;

  /// Closest finger/successor strictly between this node and `key`.
  NodeId closest_preceding_node(const NodeId& key) const;

  // -- storage ---------------------------------------------------------------

  Storage& storage() { return storage_; }
  const Storage& storage() const { return storage_; }

  /// Stores locally and fires the network's on_store observer. Replication
  /// shares the buffer: no copy per replica.
  void store_local(const NodeId& key, SharedBytes value);
  void store_local(const NodeId& key, Bytes value) {
    store_local(key, shared_bytes(std::move(value)));
  }

  // -- internals exposed for ChordNetwork / tests ----------------------------

  void set_successor_list(std::vector<NodeId> successors);
  void set_predecessor(std::optional<NodeId> pred) { predecessor_ = pred; }
  void set_finger(std::size_t i, const NodeId& id) { fingers_.set(i, id); }
  std::optional<NodeId> finger(std::size_t i) const { return fingers_.get(i); }
  FingerTable& finger_table() { return fingers_; }
  const FingerTable& finger_table() const { return fingers_; }
  void mark_alive(bool alive) { alive_ = alive; }

 private:
  void prune_dead_successors();

  ChordNetwork& network_;
  NodeId id_;
  bool alive_ = true;

  std::optional<NodeId> predecessor_;
  std::vector<NodeId> successors_;  // ordered, nearest first
  std::size_t successor_list_size_;
  FingerTable fingers_;  // run-compressed: ~log2(n) entries, not kIdBits
  std::size_t next_finger_ = 0;
  std::uint64_t incarnation_ = 0;

  Storage storage_;
};

}  // namespace emergence::dht

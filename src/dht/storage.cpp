#include "dht/storage.hpp"

namespace emergence::dht {

bool Storage::put(const NodeId& key, SharedBytes value, sim::Time now) {
  auto [it, inserted] = items_.insert_or_assign(
      key, StoredItem{std::move(value), now});
  (void)it;
  return inserted;
}

SharedBytes Storage::get(const NodeId& key) const {
  auto it = items_.find(key);
  if (it == items_.end()) return nullptr;
  return it->second.value;
}

bool Storage::contains(const NodeId& key) const {
  return items_.find(key) != items_.end();
}

bool Storage::erase(const NodeId& key) { return items_.erase(key) > 0; }

void Storage::clear() { items_.clear(); }

std::vector<NodeId> Storage::keys_in_range(const NodeId& from,
                                           const NodeId& to) const {
  std::vector<NodeId> out;
  for (const auto& [key, item] : items_) {
    if (in_half_open_interval(key, from, to)) out.push_back(key);
  }
  return out;
}

std::vector<NodeId> Storage::all_keys() const {
  std::vector<NodeId> out;
  out.reserve(items_.size());
  for (const auto& [key, item] : items_) out.push_back(key);
  return out;
}

}  // namespace emergence::dht

// Per-node key-value storage for the DHT.
//
// Values are immutable shared byte blobs keyed by ring identifiers:
// replicating a value to another node copies a reference count, not the
// bytes (see SharedBytes in common/bytes.hpp). The store records when each
// item arrived, which the replica-maintenance logic and the experiment
// instrumentation (exposure tracking) use.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "dht/node_id.hpp"
#include "sim/simulator.hpp"

namespace emergence::dht {

/// One stored item with its arrival timestamp.
struct StoredItem {
  SharedBytes value;
  sim::Time stored_at = 0.0;
};

/// In-memory blob store used by each DHT node.
class Storage {
 public:
  /// Inserts or overwrites. Returns true when the key was new.
  bool put(const NodeId& key, SharedBytes value, sim::Time now);
  /// Owning-buffer convenience: wraps once, then shares.
  bool put(const NodeId& key, Bytes value, sim::Time now) {
    return put(key, shared_bytes(std::move(value)), now);
  }

  /// The stored value, or nullptr when the key is absent. The returned
  /// handle stays valid after erase/clear/node death (immutably shared).
  SharedBytes get(const NodeId& key) const;
  bool contains(const NodeId& key) const;
  bool erase(const NodeId& key);
  void clear();

  std::size_t size() const { return items_.size(); }

  /// Keys whose id lies in the half-open ring interval (from, to]; used when
  /// transferring responsibility to a joining node.
  std::vector<NodeId> keys_in_range(const NodeId& from, const NodeId& to) const;

  /// All keys (replica maintenance iterates over these).
  std::vector<NodeId> all_keys() const;

  const std::unordered_map<NodeId, StoredItem, NodeIdHash>& items() const {
    return items_;
  }

 private:
  std::unordered_map<NodeId, StoredItem, NodeIdHash> items_;
};

}  // namespace emergence::dht

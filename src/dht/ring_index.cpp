#include "dht/ring_index.hpp"

#include <array>

namespace emergence::dht {

std::optional<NodeId> LiveRingIndex::successor_of(const NodeId& id) const {
  if (ids_.empty()) return std::nullopt;
  auto it = ids_.upper_bound(id);
  if (it == ids_.end()) it = ids_.begin();
  if (*it == id) return std::nullopt;  // `id` is the only member
  return *it;
}

std::optional<NodeId> LiveRingIndex::successor_inclusive(
    const NodeId& key) const {
  if (ids_.empty()) return std::nullopt;
  auto it = ids_.lower_bound(key);
  if (it == ids_.end()) it = ids_.begin();
  return *it;
}

std::optional<NodeId> LiveRingIndex::xor_closest(const NodeId& key) const {
  if (ids_.empty()) return std::nullopt;

  // Walk bits most-significant first, maintaining the [lo, hi] bounds of the
  // ids that share the prefix fixed so far. Preferring key's own bit at
  // every step minimizes the XOR lexicographically (the classic binary-trie
  // argument); when the preferred half is empty the other half cannot be —
  // the current range is non-empty and the two halves partition it.
  std::array<std::uint8_t, kIdBytes> lo{};
  std::array<std::uint8_t, kIdBytes> hi{};
  hi.fill(0xff);
  const auto& kb = key.bytes();

  for (std::size_t bit = 0; bit < kIdBits; ++bit) {
    const std::size_t byte = bit / 8;              // big-endian: byte 0 first
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1u << (7 - bit % 8));
    const bool desired = (kb[byte] & mask) != 0;

    // Candidate range with this bit fixed to `desired`.
    std::array<std::uint8_t, kIdBytes> cand_lo = lo;
    std::array<std::uint8_t, kIdBytes> cand_hi = hi;
    if (desired) {
      cand_lo[byte] |= mask;
    } else {
      cand_hi[byte] = static_cast<std::uint8_t>(cand_hi[byte] & ~mask);
    }

    const NodeId lo_id = NodeId::from_bytes(
        BytesView(cand_lo.data(), cand_lo.size()));
    const NodeId hi_id = NodeId::from_bytes(
        BytesView(cand_hi.data(), cand_hi.size()));
    auto it = ids_.lower_bound(lo_id);
    const bool non_empty = it != ids_.end() && !(hi_id < *it);

    if (non_empty == desired) {
      lo[byte] |= mask;  // bit fixed to 1
    } else {
      hi[byte] = static_cast<std::uint8_t>(hi[byte] & ~mask);  // fixed to 0
    }
  }
  return NodeId::from_bytes(BytesView(lo.data(), lo.size()));
}

}  // namespace emergence::dht

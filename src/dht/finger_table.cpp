#include "dht/finger_table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace emergence::dht {

std::size_t FingerTable::first_run_reaching(std::size_t power) const {
  auto it = std::lower_bound(
      runs_.begin(), runs_.end(), power,
      [](const Run& run, std::size_t p) { return run.hi < p; });
  return static_cast<std::size_t>(it - runs_.begin());
}

std::optional<NodeId> FingerTable::get(std::size_t power) const {
  require(power < kIdBits, "FingerTable::get: power out of range");
  const std::size_t i = first_run_reaching(power);
  if (i == runs_.size() || runs_[i].lo > power) return std::nullopt;
  return runs_[i].id;
}

void FingerTable::merge_around(std::size_t i) {
  // Merge with the following run first so index i stays valid.
  if (i + 1 < runs_.size() && runs_[i].id == runs_[i + 1].id &&
      runs_[i].hi + 1 == runs_[i + 1].lo) {
    runs_[i].hi = runs_[i + 1].hi;
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  }
  if (i > 0 && runs_[i - 1].id == runs_[i].id &&
      runs_[i - 1].hi + 1 == runs_[i].lo) {
    runs_[i - 1].hi = runs_[i].hi;
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void FingerTable::set(std::size_t power, const NodeId& id) {
  require(power < kIdBits, "FingerTable::set: power out of range");
  const std::uint8_t p = static_cast<std::uint8_t>(power);
  std::size_t i = first_run_reaching(power);

  if (i == runs_.size() || runs_[i].lo > p) {
    // Unset power: insert a fresh single-power run.
    runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(i),
                 Run{p, p, id});
    merge_around(i);
    return;
  }

  Run& run = runs_[i];
  if (run.id == id) return;  // already points there

  // Split the containing run around `power`.
  const Run old = run;
  if (old.lo == p && old.hi == p) {
    run.id = id;
    merge_around(i);
    return;
  }
  if (old.lo == p) {
    run.lo = static_cast<std::uint8_t>(p + 1);
    runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(i),
                 Run{p, p, id});
    merge_around(i);
    return;
  }
  if (old.hi == p) {
    run.hi = static_cast<std::uint8_t>(p - 1);
    runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                 Run{p, p, id});
    merge_around(i + 1);
    return;
  }
  // Interior split: [lo, p-1] id_old, [p, p] id, [p+1, hi] id_old.
  run.hi = static_cast<std::uint8_t>(p - 1);
  const Run tail{static_cast<std::uint8_t>(p + 1), old.hi, old.id};
  runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
               {Run{p, p, id}, tail});
}

void FingerTable::append_run(std::size_t lo, std::size_t hi,
                             const NodeId& id) {
  require(lo <= hi && hi < kIdBits, "FingerTable::append_run: bad range");
  require(runs_.empty() || static_cast<std::size_t>(runs_.back().hi) < lo,
          "FingerTable::append_run: runs must arrive in ascending order");
  if (!runs_.empty() && runs_.back().id == id &&
      static_cast<std::size_t>(runs_.back().hi) + 1 == lo) {
    runs_.back().hi = static_cast<std::uint8_t>(hi);
    return;
  }
  runs_.push_back(Run{static_cast<std::uint8_t>(lo),
                      static_cast<std::uint8_t>(hi), id});
}

}  // namespace emergence::dht

// Run-length-compressed Chord finger table.
//
// A dense finger table stores one entry per identifier bit (160 here), but
// in an n-node ring only ~log2(n) of them are distinct: every power whose
// 2^p span falls short of the next node points at the same successor. The
// dense std::vector<std::optional<NodeId>> representation cost ~3.4 KB per
// node (the dominant memory term of a 100k-node world) and made
// closest_preceding_node scan 160 slots per routing hop. This table stores
// maximal runs of consecutive powers that share a finger instead: ~log2(n)
// runs of ~22 bytes, O(#runs) per hop, and bulk construction during
// bootstrap appends runs directly.
//
// set() keeps exact per-power semantics (fix_fingers updates one power at a
// time), splitting and re-merging runs as needed; powers not covered by any
// run are "unset", matching the optional<NodeId> nullopt of the dense form.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dht/node_id.hpp"

namespace emergence::dht {

/// Compressed map from finger power (0..kIdBits-1) to ring id.
class FingerTable {
 public:
  /// One maximal run: powers lo..hi (inclusive) all point at `id`.
  struct Run {
    std::uint8_t lo = 0;
    std::uint8_t hi = 0;
    NodeId id;
  };

  /// The finger for `power`, nullopt when unset.
  std::optional<NodeId> get(std::size_t power) const;

  /// Points `power` at `id`, splitting/merging runs as needed.
  void set(std::size_t power, const NodeId& id);

  /// Bulk build: appends the run [lo, hi] -> id. Runs must arrive in
  /// ascending, non-overlapping power order (the bootstrap construction
  /// emits them that way); adjacent equal-id runs are coalesced.
  void append_run(std::size_t lo, std::size_t hi, const NodeId& id);

  void clear() { runs_.clear(); }
  std::size_t run_count() const { return runs_.size(); }

  /// Runs in ascending power order (closest_preceding_node iterates them
  /// in reverse: farthest fingers first).
  const std::vector<Run>& runs() const { return runs_; }

 private:
  /// Index of the first run with hi >= power (== runs_.size() when none).
  std::size_t first_run_reaching(std::size_t power) const;
  /// Coalesces runs_[i] with its neighbors where ranges touch and ids match.
  void merge_around(std::size_t i);

  std::vector<Run> runs_;  // sorted by lo, pairwise disjoint
};

}  // namespace emergence::dht

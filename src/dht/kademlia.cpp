#include "dht/kademlia.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "sim/execution_context.hpp"

namespace emergence::dht {

bool xor_closer(const NodeId& a, const NodeId& b, const NodeId& target) {
  // Compare a^target and b^target lexicographically (big-endian ids make
  // that the unsigned-integer comparison).
  const auto& ab = a.bytes();
  const auto& bb = b.bytes();
  const auto& tb = target.bytes();
  for (std::size_t i = 0; i < kIdBytes; ++i) {
    const std::uint8_t da = ab[i] ^ tb[i];
    const std::uint8_t db = bb[i] ^ tb[i];
    if (da != db) return da < db;
  }
  return false;
}

std::size_t bucket_index(const NodeId& a, const NodeId& b) {
  const auto& ab = a.bytes();
  const auto& bb = b.bytes();
  for (std::size_t i = 0; i < kIdBytes; ++i) {
    const std::uint8_t x = ab[i] ^ bb[i];
    if (x != 0) {
      // Highest set bit of x within this byte.
      int bit = 7;
      while (((x >> bit) & 1) == 0) --bit;
      return (kIdBytes - 1 - i) * 8 + static_cast<std::size_t>(bit);
    }
  }
  throw PreconditionError("bucket_index: identical ids");
}

void KademliaNode::observe_contact(const NodeId& contact,
                                   std::size_t bucket_size) {
  if (contact == id_) return;
  auto& bucket = buckets_[bucket_index(id_, contact)];
  if (std::find(bucket.begin(), bucket.end(), contact) != bucket.end()) return;
  if (bucket.size() >= bucket_size) return;  // bucket full: reject newcomer
  bucket.push_back(contact);
}

void KademliaNode::drop_contact(const NodeId& contact) {
  if (contact == id_) return;
  auto& bucket = buckets_[bucket_index(id_, contact)];
  std::erase(bucket, contact);
}

std::vector<NodeId> KademliaNode::closest_contacts(const NodeId& target,
                                                   std::size_t count) const {
  std::vector<NodeId> all;
  for (const auto& bucket : buckets_)
    all.insert(all.end(), bucket.begin(), bucket.end());
  all.push_back(id_);
  std::sort(all.begin(), all.end(), [&](const NodeId& a, const NodeId& b) {
    return xor_closer(a, b, target);
  });
  if (all.size() > count) all.resize(count);
  return all;
}

std::size_t KademliaNode::contact_count() const {
  std::size_t total = 0;
  for (const auto& bucket : buckets_) total += bucket.size();
  return total;
}

KademliaNetwork::KademliaNetwork(sim::Simulator& simulator, Rng& rng,
                                 KademliaConfig config)
    : simulator_(simulator),
      rng_(rng),
      config_(config),
      transport_(config_.transport.resolved(config_.min_message_latency,
                                            config_.max_message_latency)) {
  transport_.validate();
}

NodeId KademliaNetwork::fresh_node_id() {
  for (;;) {
    const std::string name = "kad-node-" + std::to_string(node_counter_++);
    const NodeId id = NodeId::hash_of_text(name);
    if (nodes_.find(id) == nodes_.end()) return id;
  }
}

KademliaNode& KademliaNetwork::allocate_node(const NodeId& id) {
  // A rejoin of a dead id reuses its arena slot (see ChordNetwork).
  auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    it->second->reset_for_rejoin();
    return *it->second;
  }
  arena_.emplace_back(id, kIdBits);
  KademliaNode& fresh = arena_.back();
  nodes_[id] = &fresh;
  return fresh;
}

void KademliaNetwork::register_alive(const NodeId& id) {
  alive_index_[id] = alive_ids_.size();
  alive_ids_.push_back(id);
  live_ring_.insert(id);
  // Every node's zone is primed from serial code (bootstrap / churn joins),
  // so zone_of stays a pure read when domains sample latencies in parallel.
  transport_.prime_zone(id);
}

void KademliaNetwork::unregister_alive(const NodeId& id) {
  auto it = alive_index_.find(id);
  if (it == alive_index_.end()) return;
  live_ring_.erase(id);  // before the swap-pop: `id` may alias alive_ids_
  const std::size_t pos = it->second;
  const NodeId last = alive_ids_.back();
  alive_ids_[pos] = last;
  alive_index_[last] = pos;
  alive_ids_.pop_back();
  alive_index_.erase(it);
}

void KademliaNetwork::bootstrap(std::size_t count) {
  require(count > 0, "KademliaNetwork::bootstrap: need at least one node");
  require(nodes_.empty(), "KademliaNetwork::bootstrap: already built");
  nodes_.reserve(count);
  alive_index_.reserve(count);
  alive_ids_.reserve(count);

  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = fresh_node_id();
    ids.push_back(id);
    allocate_node(id);
    register_alive(id);
  }

  // Bucket population via prefix ranges: node x's bucket b holds ids that
  // share bits above b with x and differ at bit b — a contiguous range of
  // the sorted id list, found with two binary searches instead of the old
  // all-pairs observe_contact sweep (O(n^2) -> O(n * bits * (log n + k))).
  // When a range holds more than bucket_size candidates the old sweep kept
  // the first k in node-creation (hash-random) order; here we keep an
  // evenly-strided sample of the range, a different but equally arbitrary
  // deterministic k-subset. Consumers re-sort contacts by XOR distance, so
  // only membership matters; near buckets (<= k candidates) are identical,
  // which is what lookup exactness rests on.
  std::vector<NodeId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  for (const NodeId& x : ids) {
    KademliaNode& n = *nodes_.at(x);
    const auto& xb = x.bytes();
    for (std::size_t b = 0; b < kIdBits; ++b) {
      const std::size_t byte = kIdBytes - 1 - b / 8;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (b % 8));

      std::array<std::uint8_t, kIdBytes> lo{};
      std::copy(xb.begin(), xb.end(), lo.begin());
      lo[byte] = static_cast<std::uint8_t>((lo[byte] ^ mask) & ~(mask - 1));
      std::array<std::uint8_t, kIdBytes> hi = lo;
      hi[byte] = static_cast<std::uint8_t>(hi[byte] | (mask - 1));
      for (std::size_t j = byte + 1; j < kIdBytes; ++j) {
        lo[j] = 0x00;
        hi[j] = 0xff;
      }

      const NodeId lo_id = NodeId::from_bytes(BytesView(lo.data(), lo.size()));
      const NodeId hi_id = NodeId::from_bytes(BytesView(hi.data(), hi.size()));
      const auto begin =
          std::lower_bound(sorted.begin(), sorted.end(), lo_id);
      const auto end = std::upper_bound(begin, sorted.end(), hi_id);
      const std::size_t found = static_cast<std::size_t>(end - begin);
      if (found == 0) continue;

      std::vector<NodeId> contacts;
      const std::size_t keep = std::min(found, config_.bucket_size);
      contacts.reserve(keep);
      for (std::size_t j = 0; j < keep; ++j) {
        contacts.push_back(*(begin + static_cast<std::ptrdiff_t>(
                                         j * found / keep)));
      }
      n.seed_bucket(b, std::move(contacts));
    }
  }
  if (config_.run_maintenance) schedule_republish();
}

NodeId KademliaNetwork::add_node() { return join_node(fresh_node_id()); }

NodeId KademliaNetwork::add_node_with_id(const NodeId& id) {
  require(nodes_.find(id) == nodes_.end() || !nodes_.at(id)->alive(),
          "KademliaNetwork::add_node_with_id: id already in use");
  return join_node(id);
}

NodeId KademliaNetwork::join_node(const NodeId& id) {
  KademliaNode& fresh = allocate_node(id);
  if (!alive_ids_.empty()) {
    // Learn the bootstrap contact, then run a self-lookup: every node on
    // the query path becomes a contact (and learns us).
    const NodeId bootstrap = alive_ids_[rng_.index(alive_ids_.size())];
    fresh.observe_contact(bootstrap, config_.bucket_size);
    register_alive(id);
    // Self-lookup from the fresh node: every queried node learns about it,
    // which populates the routing tables around its own id.
    const LookupResult self_lookup = iterative_find_from(fresh, id);
    (void)self_lookup;
  } else {
    register_alive(id);
  }
  return id;
}

void KademliaNetwork::kill_node(const NodeId& id) {
  KademliaNode* n = live_node(id);
  if (n == nullptr) return;
  // Callers may pass a reference into alive_ids_ itself; unregister_alive's
  // swap-pop overwrites that slot, so work from a stable copy of the id.
  const NodeId victim = n->id();
  n->mark_alive(false);
  n->storage().clear();
  unregister_alive(victim);
  handlers_.erase(victim);
}

KademliaNode* KademliaNetwork::node(const NodeId& id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

const KademliaNode* KademliaNetwork::node(const NodeId& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

KademliaNode* KademliaNetwork::live_node(const NodeId& id) {
  KademliaNode* n = node(id);
  return (n != nullptr && n->alive()) ? n : nullptr;
}

NodeId KademliaNetwork::closest_alive(const NodeId& key) const {
  require(!alive_ids_.empty(), "KademliaNetwork: no live nodes");
  return *live_ring_.xor_closest(key);
}

LookupResult KademliaNetwork::iterative_find(const NodeId& key) {
  LookupResult result;
  if (alive_ids_.empty()) {
    result.ok = false;
    return result;
  }
  // In-window lookups draw the entry pick from the executing session's own
  // stream (domain-count invariant); barrier/serial code keeps the shared
  // network stream, preserving the legacy draw sequence bit-for-bit.
  auto* ctx = sim::ExecutionContext::active_on(&simulator_);
  Rng& rng = (ctx != nullptr && ctx->rng != nullptr) ? *ctx->rng : rng_;
  KademliaNode& origin =
      *nodes_.at(alive_ids_[rng.index(alive_ids_.size())]);
  return iterative_find_from(origin, key);
}

LookupResult KademliaNetwork::iterative_find_from(KademliaNode& origin,
                                                  const NodeId& key) {
  LookupResult result;
  // Executor windows run lookups READ-ONLY: the k-bucket adaptation a
  // lookup normally performs (observe/drop contacts) would both race across
  // parallel domains and make routing tables depend on the domain count.
  // Barrier-time and legacy-serial lookups still adapt exactly as before.
  sim::ExecutionContext* ctx = sim::ExecutionContext::active_on(&simulator_);
  const bool read_only = ctx != nullptr;
  LookupStats& stats = (ctx != nullptr && ctx->lookup_stats != nullptr)
                           ? *ctx->lookup_stats
                           : lookup_stats_;
  // Shortlist of closest known contacts, queried nearest-first. The origin
  // never queries itself (but may legitimately be the result).
  std::vector<NodeId> shortlist =
      origin.closest_contacts(key, config_.bucket_size);
  std::unordered_map<NodeId, bool, NodeIdHash> queried;
  queried[origin.id()] = true;
  int hops = 0;

  auto sort_shortlist = [&]() {
    std::sort(shortlist.begin(), shortlist.end(),
              [&](const NodeId& a, const NodeId& b) {
                return xor_closer(a, b, key);
              });
    if (shortlist.size() > config_.bucket_size)
      shortlist.resize(config_.bucket_size);
  };
  sort_shortlist();

  const int max_hops = static_cast<int>(kIdBits);
  for (int round = 0; round < max_hops; ++round) {
    // Convergence: when the closest live shortlist entry (other than the
    // origin, which answers no queries) has already been queried, no closer
    // node exists among anyone we could still ask.
    std::erase_if(shortlist, [&](const NodeId& candidate) {
      return node(candidate) != nullptr && !node(candidate)->alive();
    });
    const auto first_peer =
        std::find_if(shortlist.begin(), shortlist.end(),
                     [&](const NodeId& c) { return c != origin.id(); });
    if (first_peer != shortlist.end() && queried[*first_peer]) break;

    // Query the closest unqueried live candidate.
    KademliaNode* target = nullptr;
    for (const NodeId& candidate : shortlist) {
      if (queried[candidate]) continue;
      queried[candidate] = true;
      KademliaNode* n = live_node(candidate);
      if (n == nullptr) {
        if (!read_only) origin.drop_contact(candidate);
        continue;
      }
      target = n;
      break;
    }
    if (target == nullptr) break;  // shortlist exhausted
    ++hops;

    // The queried node returns its closest contacts and learns about us.
    if (!read_only) target->observe_contact(origin.id(), config_.bucket_size);
    const std::vector<NodeId> contacts =
        target->closest_contacts(key, config_.bucket_size);
    bool improved = false;
    for (const NodeId& c : contacts) {
      if (std::find(shortlist.begin(), shortlist.end(), c) ==
          shortlist.end()) {
        shortlist.push_back(c);
        improved = true;
      }
      if (!read_only) origin.observe_contact(c, config_.bucket_size);
    }
    if (improved) sort_shortlist();
  }

  // The result is the closest live entry of the final shortlist.
  for (const NodeId& candidate : shortlist) {
    if (live_node(candidate) != nullptr) {
      result.node = candidate;
      result.hops = hops;
      stats.record(result);
      return result;
    }
  }
  result.ok = false;
  stats.record(result);
  return result;
}

LookupResult KademliaNetwork::lookup(const NodeId& key) {
  return iterative_find(key);
}

bool KademliaNetwork::put(const NodeId& key, SharedBytes value) {
  require(value != nullptr, "KademliaNetwork::put: null value");
  const LookupResult result = lookup(key);
  if (!result.ok) return false;
  // Replicate to the replication_factor closest live nodes around the key.
  KademliaNode* owner = live_node(result.node);
  if (owner == nullptr) return false;
  std::vector<NodeId> replicas =
      owner->closest_contacts(key, config_.bucket_size);
  std::size_t stored = 0;
  for (const NodeId& id : replicas) {
    KademliaNode* n = live_node(id);
    if (n == nullptr) continue;
    n->storage().put(key, value, simulator_.now());  // shares the buffer
    if (store_observer_) store_observer_(id, key, *value);
    if (++stored >= config_.replication_factor) break;
  }
  return stored > 0;
}

SharedBytes KademliaNetwork::get(const NodeId& key) {
  const LookupResult result = lookup(key);
  if (!result.ok) return nullptr;
  KademliaNode* owner = live_node(result.node);
  if (owner == nullptr) return nullptr;
  SharedBytes value = owner->storage().get(key);
  if (value != nullptr) return value;
  // Ask the nodes around the key.
  for (const NodeId& id : owner->closest_contacts(key, config_.bucket_size)) {
    KademliaNode* n = live_node(id);
    if (n == nullptr) continue;
    value = n->storage().get(key);
    if (value != nullptr) return value;
  }
  return nullptr;
}

std::size_t KademliaNetwork::erase(const NodeId& key) {
  const LookupResult result = lookup(key);
  if (!result.ok) return 0;
  KademliaNode* owner = live_node(result.node);
  if (owner == nullptr) return 0;
  // Same neighborhood put() replicated into and get() reads from.
  std::size_t erased = owner->storage().erase(key) ? 1 : 0;
  for (const NodeId& id : owner->closest_contacts(key, config_.bucket_size)) {
    KademliaNode* n = live_node(id);
    if (n == nullptr) continue;
    if (n->storage().erase(key)) ++erased;
  }
  return erased;
}

bool KademliaNetwork::is_alive(const NodeId& id) const {
  const KademliaNode* n = node(id);
  return n != nullptr && n->alive();
}

bool KademliaNetwork::store_on(const NodeId& id, const NodeId& key,
                               SharedBytes value) {
  require(value != nullptr, "KademliaNetwork::store_on: null value");
  KademliaNode* n = live_node(id);
  if (n == nullptr) return false;
  n->storage().put(key, value, simulator_.now());
  if (store_observer_) store_observer_(id, key, *value);
  return true;
}

SharedBytes KademliaNetwork::load_from(const NodeId& id, const NodeId& key) {
  KademliaNode* n = live_node(id);
  if (n == nullptr) return nullptr;
  return n->storage().get(key);
}

void KademliaNetwork::set_message_handler(const NodeId& id,
                                          MessageHandler handler) {
  handlers_[id] = std::move(handler);
}

void KademliaNetwork::deliver(const NodeId& from, const NodeId& to,
                              BytesView payload) {
  if (live_node(to) == nullptr) return;
  auto it = handlers_.find(to);
  if (it != handlers_.end()) {
    it->second(from, to, payload);
  } else if (default_handler_) {
    default_handler_(from, to, payload);
  }
}

void KademliaNetwork::send_message(const NodeId& from, const NodeId& to,
                                   SharedBytes payload) {
  require(payload != nullptr, "KademliaNetwork::send_message: null payload");
  auto* ctx = sim::ExecutionContext::active_on(&simulator_);
  Rng& rng = (ctx != nullptr && ctx->rng != nullptr) ? *ctx->rng : rng_;
  TransportStats& stats =
      (ctx != nullptr && ctx->transport_stats != nullptr)
          ? *ctx->transport_stats
          : transport_stats_;
  obs::TraceShard* trace =
      (ctx != nullptr && ctx->trace != nullptr) ? ctx->trace : trace_shard_;
  transport_.send(
      simulator_, rng, stats, from, to,
      [this, from, to, payload = std::move(payload)]() {
        deliver(from, to, *payload);
      },
      trace);
}

void KademliaNetwork::send_message_routed(const NodeId& from,
                                          const NodeId& ring_point,
                                          SharedBytes payload) {
  require(payload != nullptr,
          "KademliaNetwork::send_message_routed: null payload");
  auto* ctx = sim::ExecutionContext::active_on(&simulator_);
  Rng& rng = (ctx != nullptr && ctx->rng != nullptr) ? *ctx->rng : rng_;
  TransportStats& stats =
      (ctx != nullptr && ctx->transport_stats != nullptr)
          ? *ctx->transport_stats
          : transport_stats_;
  obs::TraceShard* trace =
      (ctx != nullptr && ctx->trace != nullptr) ? ctx->trace : trace_shard_;
  transport_.send(
      simulator_, rng, stats, from, ring_point,
      [this, from, ring_point, payload = std::move(payload)]() {
        const LookupResult result = lookup(ring_point);
        if (!result.ok) return;
        deliver(from, result.node, *payload);
      },
      trace);
}

void KademliaNetwork::republish_round() {
  const std::vector<NodeId> ids = alive_ids_;
  for (const NodeId& id : ids) {
    KademliaNode* n = live_node(id);
    if (n == nullptr) continue;
    for (const NodeId& key : n->storage().all_keys()) {
      const SharedBytes value = n->storage().get(key);
      if (value == nullptr) continue;
      std::size_t stored = 0;
      for (const NodeId& peer : n->closest_contacts(key, config_.bucket_size)) {
        KademliaNode* p = live_node(peer);
        if (p == nullptr) continue;
        if (p != n && !p->storage().contains(key)) {
          p->storage().put(key, value, simulator_.now());
          if (store_observer_) store_observer_(peer, key, *value);
        }
        if (++stored >= config_.replication_factor) break;
      }
    }
  }
}

void KademliaNetwork::schedule_republish() {
  simulator_.schedule_in(config_.republish_interval, [this]() {
    republish_round();
    schedule_republish();
  });
}

}  // namespace emergence::dht

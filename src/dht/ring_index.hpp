// Sorted index over the live node ids of a DHT backend.
//
// Both backends keep a swap-pop vector (O(1) uniform sampling) plus this
// ordered index so that the queries that used to fall back to O(live-set)
// scans — Chord's ring-successor step when a node's successor list is
// exhausted, Kademlia's closest-live-node-to-a-key — run in O(log n).
// The index is maintained by register_alive/unregister_alive, so it mirrors
// the alive set exactly at every instant.
#pragma once

#include <optional>
#include <set>

#include "dht/node_id.hpp"

namespace emergence::dht {

/// Ordered set of live node ids with ring-successor and XOR-closest queries.
class LiveRingIndex {
 public:
  void insert(const NodeId& id) { ids_.insert(id); }
  void erase(const NodeId& id) { ids_.erase(id); }
  bool contains(const NodeId& id) const { return ids_.count(id) > 0; }
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// First live id strictly after `id` in ring order (wrapping past the top
  /// of the id space). Returns nullopt when the index is empty or `id` is
  /// its only member — the "genuinely alone" case of Chord's successor walk.
  std::optional<NodeId> successor_of(const NodeId& id) const;

  /// The live node responsible for `key` under Chord's successor rule: the
  /// first live id >= key in ring order (wrapping). Nullopt when empty.
  std::optional<NodeId> successor_inclusive(const NodeId& key) const;

  /// The live id minimizing XOR distance to `key` (Kademlia's ownership
  /// rule). Resolved by a most-significant-bit-first prefix descent: fix
  /// `key`'s bit whenever the matching prefix range is non-empty, else the
  /// flipped bit — O(bits * log n) instead of the old O(n) brute force.
  std::optional<NodeId> xor_closest(const NodeId& key) const;

 private:
  std::set<NodeId> ids_;
};

}  // namespace emergence::dht

// Churn generation for the simulated DHT.
//
// Implements the paper's churn model: node lifetimes are exponentially
// distributed with mean `mean_lifetime` (Bhagwan et al.'s decay model,
// pdead = 1 - e^{-t/λ}). When a node dies the driver can optionally inject a
// replacement join, keeping the population size stationary the way a public
// DHT's arrival process does. Transient unavailability (leave-and-rejoin
// without data loss) is also supported; the paper mentions it as the
// short-term face of churn but evaluates death only, so it defaults off.
//
// The lifetime law is pluggable: the driver samples from a
// workload::LifetimeModel (Weibull/Pareto heavy tails, trace-driven
// empirical CDFs, ...). When no model is configured it builds the
// exponential model from `mean_lifetime`, which draws through exactly the
// Rng::exponential call this driver historically made inline — the default
// configuration replays the historical churn event sequence bit-for-bit at
// pinned seeds (tests/test_churn_models.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dht/network.hpp"
#include "sim/simulator.hpp"
#include "workload/lifetime.hpp"

namespace emergence::dht {

/// Configuration of the churn process.
struct ChurnConfig {
  double mean_lifetime = 3600.0;   ///< λ, seconds of virtual time
  bool replace_dead_nodes = true;  ///< keep population size stationary
  /// Probability that an outage is transient (node comes back with the same
  /// id after `mean_downtime`) rather than a death. 0 reproduces the paper.
  double transient_fraction = 0.0;
  double mean_downtime = 120.0;  ///< seconds, for transient outages
  /// Lifetime law. Null means Exp(mean_lifetime) — the paper's model and
  /// the historical behavior of this driver. A non-null model overrides
  /// `mean_lifetime` entirely (the model carries its own mean).
  std::shared_ptr<const workload::LifetimeModel> lifetime;
};

/// Drives node churn over any DHT backend (Chord or Kademlia) through the
/// Network topology-mutation contract, sampling lifetimes from the
/// configured LifetimeModel.
class ChurnDriver {
 public:
  ChurnDriver(Network& network, ChurnConfig config);

  /// Samples a residual lifetime for every live node and schedules its
  /// first outage. Call once after the network is bootstrapped.
  ///
  /// Residual-lifetime caveat: for the exponential law, sampling a fresh
  /// lifetime at start is exact (memorylessness). Heavy-tailed laws are not
  /// memoryless, so a freshly sampled lifetime models a population observed
  /// at its joint arrival instant, not a stationary one — fine for the
  /// fleet scenarios, which measure sessions, not node-age distributions.
  void start();

  /// Stops injecting new churn events (pending ones become no-ops).
  void stop() { running_ = false; }

  std::uint64_t deaths() const { return deaths_; }
  std::uint64_t transient_outages() const { return transients_; }
  std::uint64_t replacements() const { return replacements_; }
  const workload::LifetimeModel& lifetime_model() const { return *lifetime_; }

  /// Observer invoked as (dead_node, replacement_or_nullptr-id) when a death
  /// is processed; the experiment layer hooks exposure tracking here.
  std::function<void(const NodeId& dead, const NodeId* replacement)> on_death;

 private:
  void schedule_outage(const NodeId& id);
  void handle_outage(const NodeId& id);

  Network& network_;
  ChurnConfig config_;
  std::shared_ptr<const workload::LifetimeModel> lifetime_;
  bool running_ = false;
  std::uint64_t deaths_ = 0;
  std::uint64_t transients_ = 0;
  std::uint64_t replacements_ = 0;
};

}  // namespace emergence::dht

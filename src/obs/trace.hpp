// Deterministic structured tracing: spans that never perturb the world.
//
// Two families of spans are emitted through this layer:
//   * per-session lifecycle spans (submit -> onion build -> layer-key puts
//     -> each holding hop -> delivery/drop), recorded by the session fleet
//     at its serial reap barrier where every timing fact is known;
//   * per-message hop spans (one per transport attempt: delivered, dropped
//     + retried, or timed out), recorded by TransportModel::send, and the
//     wall-clock package/slot/deliver events of a live NodeDaemon.
//
// Determinism contract (the reason this is not just a logger):
//   1. Sampling decisions are pure functions of CONTENT, never of shard or
//      thread state: Rng(seed).fork(key) with the key derived from the
//      session index or the message's (from, to, send-time) — so the set
//      of sampled spans is identical at any thread or domain count and the
//      decision consumes ZERO draws from any world rng stream (fleet and
//      transport fingerprints are bit-identical with tracing on or off;
//      gated in CI).
//   2. Events land in per-shard append-only buffers (one shard per domain
//      plus the serial barrier shard — the same sharding idiom as the
//      TransportStats shards), so recording is lock-free on the hot path.
//   3. Exports canonically sort the merged event multiset by full content,
//      so the emitted bytes are invariant under any sharding of the same
//      events: a domains=1 run and a domains=8 run of the same scenario
//      write identical trace files.
//
// Sinks: write_chrome_trace() emits Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing; ts in microseconds of virtual time), and
// write_jsonl()/drain_jsonl() emit one JSON object per line — drain is the
// live daemon's incremental append, which skips the canonical sort because
// a wall-clock daemon has no cross-run determinism to protect.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace emergence::obs {

/// One span (dur_us > 0) or instant (dur_us == 0). `id` groups related
/// events onto one timeline track (the session id, or 0 for transport).
struct TraceEvent {
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::string name;
  std::string cat;
  std::uint64_t id = 0;
  std::vector<std::pair<std::string, std::string>> args;

  /// Full-content ordering — the canonical export sort. Content-equal
  /// events compare equal and are BOTH kept (the multiset is the
  /// invariant, not the set).
  auto tie() const { return std::tie(ts_us, dur_us, cat, name, id, args); }
  bool operator<(const TraceEvent& other) const { return tie() < other.tie(); }
};

class Tracer;

/// One lock-free event buffer with a single writer (a domain worker, the
/// serial barrier, or a daemon pump). Allocated and owned by the Tracer.
class TraceShard {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }

  /// The pure fork-keyed sampling decision (see Tracer::sample): safe to
  /// call from any shard without synchronization.
  bool sample(std::uint64_t key) const;

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  friend class Tracer;
  explicit TraceShard(const Tracer* owner) : owner_(owner) {}
  const Tracer* owner_;
  std::vector<TraceEvent> events_;
};

class Tracer {
 public:
  /// `sample_rate` in [0, 1]: the fraction of sampling keys admitted.
  /// `seed` keys the decisions; the same (seed, rate, key) always decides
  /// the same way, on any shard of any run.
  Tracer(std::uint64_t seed, double sample_rate)
      : seed_(seed), rate_(sample_rate) {}

  /// Allocates a new single-writer shard (thread-safe; called at world /
  /// domain setup, never on the hot path). The shard lives as long as the
  /// tracer.
  TraceShard* new_shard();

  /// Pure decision: rate >= 1 admits everything (no rng construction),
  /// rate <= 0 nothing, else Rng(seed).fork(key).real() < rate. Never
  /// touches a world rng stream.
  bool sample(std::uint64_t key) const;

  double sample_rate() const { return rate_; }
  std::uint64_t seed() const { return seed_; }

  /// Total events recorded so far across all shards.
  std::size_t event_count() const;

  /// The merged multiset in canonical content order — identical for any
  /// sharding of the same events.
  std::vector<TraceEvent> sorted_events() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), canonically sorted.
  void write_chrome_trace(std::ostream& os) const;
  /// One canonical JSON object per line.
  void write_jsonl(std::ostream& os) const;
  /// Live sink: appends every buffered event as JSONL in arrival order and
  /// clears the buffers. No canonical sort — incremental wall-clock use.
  void drain_jsonl(std::ostream& os);

 private:
  std::uint64_t seed_;
  double rate_;
  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<TraceShard>> shards_;
};

/// Derives a hop-span sampling key from a message's endpoint id prefixes
/// and its send time (bit pattern), so retransmits of one logical message
/// share the original decision and the key is independent of domain and
/// thread scheduling.
std::uint64_t hop_sample_key(std::uint64_t from_prefix,
                             std::uint64_t to_prefix, double send_time);

}  // namespace emergence::obs

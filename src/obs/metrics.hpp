// The metrics registry: one read model for every counter in the system.
//
// The repository accumulates its hot-path statistics in small lock-free
// structs (dht::TransportStats, dht::LookupStats, service::WireStats,
// dht::MaintenanceStats, workload::FleetTally) — per-domain / per-world
// shards merged commutatively at barriers, exactly-integer so any sharding
// reproduces the serial totals bit-identically. A MetricsRegistry is the
// uniform surface those structs are published onto (obs/bridge.hpp): named
// counters, gauges and Histogram64-backed histograms with optional label
// sets, themselves merged with the same commutative rules
//   counters: sum    gauges: max    histograms: Histogram64::merge
// so per-domain registries folded in ANY order produce one canonical
// registry (property-tested under permuted merge orders in
// tests/test_obs.cpp, mirroring the PR 7 merge-order tests).
//
// Sinks: to_prometheus() renders the text exposition format the live
// daemon dumps and `emerged status --metrics` prints; write_json() renders
// the "metrics" block every BENCH_*.json artifact carries (bench_common);
// flatten() is the wire form a MetricsResponse frame ships. Iteration
// order is the std::map key order, so every sink is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace emergence::obs {

/// Optional label set attached to a metric series, rendered
/// prometheus-style: name{key="value",...}. Keys are sorted at attach time
/// so the same labels always produce the same series identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Renders "name" or "name{k=\"v\",...}" with labels sorted by key.
/// Throws PreconditionError when `name` is not a valid metric name
/// ([a-zA-Z_][a-zA-Z0-9_]*) — the prometheus sink must never emit a line
/// a scraper would reject.
std::string series_key(const std::string& name, const Labels& labels);

class MetricsRegistry {
 public:
  /// The counter cell for (name, labels), created at zero on first use.
  /// Counters merge by summation.
  std::uint64_t& counter(const std::string& name, const Labels& labels = {});
  /// The gauge cell for (name, labels). Gauges merge by max — the one
  /// reduction that keeps real-valued level readings (peak live sessions,
  /// horizon) commutative and associative across shards.
  double& gauge(const std::string& name, const Labels& labels = {});
  /// The histogram cell for (name, labels); Histogram64 merges exactly.
  Histogram64& histogram(const std::string& name, const Labels& labels = {});

  /// Folds `other` in with the commutative rules above.
  void merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram64>& histograms() const {
    return histograms_;
  }

  /// Every series as (key, value) rows in deterministic key order:
  /// counters as exact doubles, gauges verbatim, histograms expanded to
  /// _count/_min/_max/_mean/_p50/_p99 pseudo-series. This is the payload a
  /// MetricsResponse wire frame carries.
  std::vector<std::pair<std::string, double>> flatten() const;

  /// Prometheus text exposition format: "# TYPE" lines plus one sample per
  /// series (histograms as the expanded pseudo-series, since the exact
  /// sparse Histogram64 has no native prometheus shape).
  std::string to_prometheus() const;

  /// The "metrics" JSON object for BENCH artifacts:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}.
  void write_json(std::ostream& os, const std::string& indent = "  ") const;

  /// Order-independent digest over every series (common/fingerprint.hpp):
  /// equal registries <=> equal fingerprints, used by the merge-order
  /// property tests.
  std::uint64_t fingerprint() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram64> histograms_;
};

}  // namespace emergence::obs

#include "obs/bridge.hpp"

#include <algorithm>

namespace emergence::obs {

void publish(MetricsRegistry& r, const dht::TransportStats& stats,
             const Labels& labels) {
  r.counter("emergence_transport_messages_total", labels) += stats.messages;
  r.counter("emergence_transport_attempts_total", labels) += stats.attempts;
  r.counter("emergence_transport_dropped_total", labels) += stats.dropped;
  r.counter("emergence_transport_retried_total", labels) += stats.retried;
  r.counter("emergence_transport_timed_out_total", labels) += stats.timed_out;
  r.histogram("emergence_transport_hop_latency_us", labels)
      .merge(stats.hop_latency_us);
}

void publish(MetricsRegistry& r, const dht::LookupStats& stats,
             const Labels& labels) {
  r.counter("emergence_lookup_lookups_total", labels) += stats.lookups;
  r.counter("emergence_lookup_hops_total", labels) += stats.total_hops;
  r.counter("emergence_lookup_failures_total", labels) += stats.failures;
}

void publish(MetricsRegistry& r, const dht::MaintenanceStats& stats,
             const Labels& labels) {
  r.counter("emergence_maintenance_stabilize_rounds_total", labels) +=
      stats.stabilize_rounds;
  r.counter("emergence_maintenance_repair_rounds_total", labels) +=
      stats.repair_rounds;
}

void publish(MetricsRegistry& r, const service::WireStats& stats,
             const Labels& labels) {
  r.counter("emergence_wire_frames_sent_total", labels) += stats.frames_sent;
  r.counter("emergence_wire_frames_received_total", labels) +=
      stats.frames_received;
  r.counter("emergence_wire_bad_magic_total", labels) += stats.bad_magic;
  r.counter("emergence_wire_version_mismatch_total", labels) +=
      stats.version_mismatch;
  r.counter("emergence_wire_truncated_frames_total", labels) +=
      stats.truncated_frames;
  r.counter("emergence_wire_oversized_frames_total", labels) +=
      stats.oversized_frames;
  r.counter("emergence_wire_unknown_type_total", labels) += stats.unknown_type;
  r.counter("emergence_wire_malformed_payload_total", labels) +=
      stats.malformed_payload;
  r.counter("emergence_wire_hops_exhausted_total", labels) +=
      stats.hops_exhausted;
  r.counter("emergence_wire_request_timeouts_total", labels) +=
      stats.request_timeouts;
  r.counter("emergence_wire_request_retries_total", labels) +=
      stats.request_retries;
}

void publish(MetricsRegistry& r, const service::DaemonReport& report,
             const Labels& labels) {
  r.counter("emergence_daemon_packages_sent_total", labels) +=
      report.packages_sent;
  r.counter("emergence_daemon_packages_received_total", labels) +=
      report.packages_received;
  r.counter("emergence_daemon_holders_stuck_total", labels) +=
      report.holders_stuck;
  r.counter("emergence_daemon_deliveries_total", labels) += report.deliveries;
  r.counter("emergence_daemon_submits_accepted_total", labels) +=
      report.submits_accepted;
  r.counter("emergence_daemon_submits_rejected_total", labels) +=
      report.submits_rejected;
  r.counter("emergence_daemon_keys_put_total", labels) += report.keys_put;
  r.counter("emergence_daemon_put_failures_total", labels) +=
      report.put_failures;
}

void publish(MetricsRegistry& r, const workload::FleetTally& tally,
             const Labels& labels) {
  r.counter("emergence_fleet_sessions_started_total", labels) +=
      tally.sessions_started;
  r.counter("emergence_fleet_sessions_delivered_total", labels) +=
      tally.sessions_delivered;
  r.counter("emergence_fleet_delivered_on_time_total", labels) +=
      tally.delivered_on_time;
  r.counter("emergence_fleet_releases_total", labels) +=
      tally.tally.release.successes();
  r.counter("emergence_fleet_drops_total", labels) +=
      tally.tally.drop.successes();
  r.counter("emergence_fleet_payload_mismatches_total", labels) +=
      tally.payload_mismatches;
  r.counter("emergence_fleet_packages_sent_total", labels) +=
      tally.packages_sent;
  r.counter("emergence_fleet_packages_delivered_total", labels) +=
      tally.packages_delivered;
  r.counter("emergence_fleet_packages_dropped_malicious_total", labels) +=
      tally.packages_dropped_malicious;
  r.counter("emergence_fleet_holders_stuck_total", labels) +=
      tally.holders_stuck;
  r.counter("emergence_fleet_key_assignments_total", labels) +=
      tally.key_assignments;
  r.counter("emergence_fleet_deliveries_total", labels) += tally.deliveries;
  r.counter("emergence_fleet_churn_deaths_total", labels) += tally.churn_deaths;
  r.counter("emergence_fleet_churn_transients_total", labels) +=
      tally.churn_transients;
  r.counter("emergence_fleet_churn_replacements_total", labels) +=
      tally.churn_replacements;
  r.counter("emergence_fleet_stray_packages_total", labels) +=
      tally.stray_packages;
  r.counter("emergence_fleet_arena_slots_total", labels) += tally.arena_slots;
  r.counter("emergence_fleet_events_executed_total", labels) +=
      tally.events_executed;
  r.counter("emergence_fleet_worlds_total", labels) += tally.worlds;
  auto& peak = r.gauge("emergence_fleet_peak_live_sessions", labels);
  peak = std::max(peak, static_cast<double>(tally.peak_live_sessions));
  auto& horizon = r.gauge("emergence_fleet_horizon_seconds", labels);
  horizon = std::max(horizon, tally.horizon);
  r.histogram("emergence_fleet_delivery_latency_us", labels)
      .merge(tally.latency_us);
  publish(r, tally.transport, labels);
}

}  // namespace emergence::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/error.hpp"
#include "common/fingerprint.hpp"

namespace emergence::obs {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || c == '_' || (digit && i > 0))) return false;
  }
  return true;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void json_real(std::ostream& os, double v) {
  if (v != v || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity()) {
    os << "null";
    return;
  }
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(old_precision);
}

/// The expanded pseudo-series of one histogram, shared by flatten() and
/// to_prometheus() so the wire and the scrape never disagree.
std::vector<std::pair<std::string, double>> expand_histogram(
    const std::string& key, const Histogram64& h) {
  return {{key + "_count", static_cast<double>(h.count())},
          {key + "_min", static_cast<double>(h.min())},
          {key + "_max", static_cast<double>(h.max())},
          {key + "_mean", h.mean()},
          {key + "_p50", static_cast<double>(h.percentile(0.50))},
          {key + "_p99", static_cast<double>(h.percentile(0.99))}};
}

}  // namespace

std::string series_key(const std::string& name, const Labels& labels) {
  require(valid_name(name),
          "MetricsRegistry: invalid metric name '" + name +
              "' (want [a-zA-Z_][a-zA-Z0-9_]*)");
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    require(valid_name(sorted[i].first),
            "MetricsRegistry: invalid label name '" + sorted[i].first + "'");
    if (i > 0) key += ",";
    key += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  key += "}";
  return key;
}

std::uint64_t& MetricsRegistry::counter(const std::string& name,
                                        const Labels& labels) {
  return counters_[series_key(name, labels)];
}

double& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[series_key(name, labels)];
}

Histogram64& MetricsRegistry::histogram(const std::string& name,
                                        const Labels& labels) {
  return histograms_[series_key(name, labels)];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, value] : other.counters_) counters_[key] += value;
  for (const auto& [key, value] : other.gauges_) {
    auto [it, inserted] = gauges_.emplace(key, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [key, value] : other.histograms_) {
    histograms_[key].merge(value);
  }
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flatten() const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, value] : counters_) {
    out.emplace_back(key, static_cast<double>(value));
  }
  for (const auto& [key, value] : gauges_) out.emplace_back(key, value);
  for (const auto& [key, h] : histograms_) {
    for (auto& row : expand_histogram(key, h)) out.push_back(std::move(row));
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  auto base_name = [](const std::string& key) {
    const std::size_t brace = key.find('{');
    return brace == std::string::npos ? key : key.substr(0, brace);
  };
  std::string last_typed;
  auto type_line = [&](const std::string& key, const char* type) {
    const std::string base = base_name(key);
    if (base == last_typed) return;
    last_typed = base;
    out += "# TYPE " + base + " " + type + "\n";
  };
  for (const auto& [key, value] : counters_) {
    type_line(key, "counter");
    out += key + " " + std::to_string(value) + "\n";
  }
  for (const auto& [key, value] : gauges_) {
    type_line(key, "gauge");
    out += key + " " + std::to_string(value) + "\n";
  }
  for (const auto& [key, h] : histograms_) {
    for (const auto& [name, value] : expand_histogram(key, h)) {
      type_line(name, "gauge");
      out += name + " " + std::to_string(value) + "\n";
    }
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& os,
                                 const std::string& indent) const {
  os << "{\n" << indent << "  \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : counters_) {
    os << (first ? "" : ",") << "\n" << indent << "    ";
    json_string(os, key);
    os << ": " << value;
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "},\n"
     << indent << "  \"gauges\": {";
  first = true;
  for (const auto& [key, value] : gauges_) {
    os << (first ? "" : ",") << "\n" << indent << "    ";
    json_string(os, key);
    os << ": ";
    json_real(os, value);
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "},\n"
     << indent << "  \"histograms\": {";
  first = true;
  for (const auto& [key, h] : histograms_) {
    os << (first ? "" : ",") << "\n" << indent << "    ";
    json_string(os, key);
    os << ": {\"count\": " << h.count() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"mean\": ";
    json_real(os, h.mean());
    os << ", \"p50\": " << h.percentile(0.50)
       << ", \"p99\": " << h.percentile(0.99) << "}";
    first = false;
  }
  os << (first ? "" : "\n" + indent + "  ") << "}\n" << indent << "}";
}

std::uint64_t MetricsRegistry::fingerprint() const {
  Fingerprint fp;
  auto mix_key = [&fp](const std::string& key) {
    for (char c : key) fp.mix(static_cast<std::uint64_t>(c));
  };
  for (const auto& [key, value] : counters_) {
    mix_key(key);
    fp.mix(value);
  }
  for (const auto& [key, value] : gauges_) {
    mix_key(key);
    fp.mix(std::bit_cast<std::uint64_t>(value));
  }
  for (const auto& [key, h] : histograms_) {
    mix_key(key);
    for (const auto& [bin, weight] : h.bins()) {
      fp.mix(static_cast<std::uint64_t>(bin));
      fp.mix(weight);
    }
  }
  return fp.value();
}

}  // namespace emergence::obs

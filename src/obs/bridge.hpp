// Publishes the repository's hot-path stats structs onto a MetricsRegistry.
//
// The five ad-hoc accumulators (dht::TransportStats, dht::LookupStats,
// dht::MaintenanceStats, service::WireStats, workload::FleetTally — plus
// service::DaemonReport) stay exactly what they are: small lock-free
// structs the hot paths bump and the barriers merge, with their own pinned
// fingerprints. This bridge is the PORT of those structs onto the unified
// registry: one publish() overload per struct maps every field to a named
// series, so benches, the wire MetricsResponse and the prometheus dump all
// read one model instead of six shapes.
//
// Layering note: like bench/ and the workload scenario layer, this file
// sits ABOVE dht/service/workload (it includes their headers); obs/metrics
// and obs/trace themselves depend only on common/.
#pragma once

#include "dht/chord_network.hpp"
#include "dht/network.hpp"
#include "dht/transport.hpp"
#include "obs/metrics.hpp"
#include "service/daemon.hpp"
#include "service/wire.hpp"
#include "workload/session_fleet.hpp"

namespace emergence::obs {

/// Transport counters -> emergence_transport_* series.
void publish(MetricsRegistry& registry, const dht::TransportStats& stats,
             const Labels& labels = {});

/// Lookup counters -> emergence_lookup_* series.
void publish(MetricsRegistry& registry, const dht::LookupStats& stats,
             const Labels& labels = {});

/// Chord maintenance counters -> emergence_maintenance_* series.
void publish(MetricsRegistry& registry, const dht::MaintenanceStats& stats,
             const Labels& labels = {});

/// Wire frame counters -> emergence_wire_* series.
void publish(MetricsRegistry& registry, const service::WireStats& stats,
             const Labels& labels = {});

/// Daemon engine counters -> emergence_daemon_* series.
void publish(MetricsRegistry& registry, const service::DaemonReport& report,
             const Labels& labels = {});

/// Fleet outcomes -> emergence_fleet_* series (includes the tally's
/// delivery-latency histogram and its embedded TransportStats).
void publish(MetricsRegistry& registry, const workload::FleetTally& tally,
             const Labels& labels = {});

}  // namespace emergence::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <bit>

#include "common/fingerprint.hpp"
#include "common/rng.hpp"

namespace emergence::obs {

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// One event as a Chrome trace_event "complete" record. Instants are
/// zero-duration complete events — Perfetto renders both on the `id`
/// track. Also the JSONL line format, so one writer serves both sinks.
void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\": ";
  json_string(os, e.name);
  os << ", \"cat\": ";
  json_string(os, e.cat);
  os << ", \"ph\": \"X\", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us
     << ", \"pid\": 1, \"tid\": " << e.id;
  if (!e.args.empty()) {
    os << ", \"args\": {";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) os << ", ";
      json_string(os, e.args[i].first);
      os << ": ";
      json_string(os, e.args[i].second);
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

bool TraceShard::sample(std::uint64_t key) const { return owner_->sample(key); }

TraceShard* Tracer::new_shard() {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  shards_.push_back(std::unique_ptr<TraceShard>(new TraceShard(this)));
  return shards_.back().get();
}

bool Tracer::sample(std::uint64_t key) const {
  if (rate_ >= 1.0) return true;
  if (rate_ <= 0.0) return false;
  // fork(key) is a pure function of (seed_, key): the decision depends on
  // content only, never on shard state or call order.
  return Rng(seed_).fork(key).real() < rate_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  std::size_t count = 0;
  for (const auto& shard : shards_) count += shard->events().size();
  return count;
}

std::vector<TraceEvent> Tracer::sorted_events() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(shards_mutex_);
    for (const auto& shard : shards_) {
      all.insert(all.end(), shard->events().begin(), shard->events().end());
    }
  }
  // stable_sort on the full content tuple: the output order is a pure
  // function of the event multiset, so any sharding of the same events
  // exports identical bytes.
  std::stable_sort(all.begin(), all.end());
  return all;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = sorted_events();
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    os << (i > 0 ? ",\n  " : "\n  ");
    write_event(os, events[i]);
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void Tracer::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& e : sorted_events()) {
    write_event(os, e);
    os << "\n";
  }
}

void Tracer::drain_jsonl(std::ostream& os) {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) {
    for (const TraceEvent& e : shard->events()) {
      write_event(os, e);
      os << "\n";
    }
    shard->events_.clear();
  }
}

std::uint64_t hop_sample_key(std::uint64_t from_prefix,
                             std::uint64_t to_prefix, double send_time) {
  Fingerprint fp;
  fp.mix(from_prefix);
  fp.mix(to_prefix);
  fp.mix(std::bit_cast<std::uint64_t>(send_time));
  return fp.value();
}

}  // namespace emergence::obs

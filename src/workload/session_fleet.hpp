// Open-loop traffic generation: fleets of TimedReleaseSessions streaming
// through one long-lived shared world.
//
// The e2e harness builds a fresh world per Monte-Carlo run and tears it
// down after at most 8 concurrent sessions; a *service* carries an open
// stream of sessions against one substrate. SessionFleet is that service
// model: an arrival process schedules session setups on the Simulator
// clock, each session runs the full protocol (paths, onions, holders,
// delivery at tr) against the shared DHT while the churn driver replays
// the scenario's lifetime law underneath, and a reaper collects every
// finished session's outcome into the exact-integer FleetTally before
// recycling its arena slot — so half a million sessions fit in the memory
// of the few tens of thousands that are ever concurrently live.
//
// Determinism contract (docs/architecture.md, "Workloads and scenarios"):
// a world's tally is a pure function of (spec, world_index). All
// randomness flows through Rng::fork sub-streams of the world stream
// (network, coalition marking, churn, arrivals, per-session drbg seeds),
// and a scenario's worlds shard over SweepRunner::run_shards with the
// ascending-index merge rule, so the scenario tally is bit-identical at
// any thread count — regression-tested at 1/2/8 threads like every other
// sweep in this repository.
//
// With ScenarioSpec::domains >= 1 a world additionally runs WITHIN-world
// parallel via sim::DomainExecutor: sessions are partitioned by
// index % domains, all shared-state mutation stays on the serial barrier
// (arrivals/setup, churn, maintenance, reaps), and each session's message
// traffic executes in its domain's queue drawing from its own rng stream.
// Executor tallies are bit-identical across ANY domains >= 1 and any
// worker count (the bench's 1-vs-8 fingerprint gate), forming their own
// fingerprint family distinct from the domains=0 legacy serial schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "emerge/sweep.hpp"
#include "workload/scenario.hpp"

namespace emergence::obs {
class Tracer;
}  // namespace emergence::obs

namespace emergence::workload {

/// Exact aggregate of fleet outcomes. Every field merges exactly (integer
/// sums, maxes, or the exact Histogram64), so any sharding of the same
/// worlds reproduces the serial tallies bit-identically; worlds are still
/// merged in ascending index order (the sweep rule).
struct FleetTally {
  /// One trial per session: release = coalition restored the secret
  /// strictly early (same event as the e2e harness — share scheme cascades
  /// from margin >= 2, pre-assigned-key schemes need margin == l); drop =
  /// no delivery by tr; suffix histogram = restore margins.
  core::RunTally tally;

  /// first_delivery - ts quantized to integer microseconds of virtual
  /// time. The protocol's timing contract makes this exactly T for every
  /// delivered session, so p50 == p99 == max is itself a gate; the
  /// histogram is the machinery that would surface any drift.
  Histogram64 latency_us;

  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_delivered = 0;
  std::uint64_t delivered_on_time = 0;  ///< within 1us of tr
  std::int64_t max_delivery_offset_ns = 0;
  /// Spot-check failures: every kPayloadCheckStride-th delivered session
  /// runs receiver_decrypt and compares against the sent payload.
  std::uint64_t payload_mismatches = 0;

  // Summed SessionReport counters across all sessions.
  std::uint64_t packages_sent = 0;
  std::uint64_t packages_delivered = 0;
  std::uint64_t packages_dropped_malicious = 0;
  std::uint64_t malformed_packages = 0;
  std::uint64_t holders_stuck = 0;
  std::uint64_t key_assignments = 0;
  std::uint64_t deliveries = 0;

  std::uint64_t churn_deaths = 0;
  std::uint64_t churn_transients = 0;
  std::uint64_t churn_replacements = 0;
  std::uint64_t stray_packages = 0;  ///< late packages for retired sessions

  std::uint64_t arena_slots = 0;        ///< slots ever allocated (sum)
  std::uint64_t peak_live_sessions = 0; ///< max concurrently live (max)
  std::uint64_t events_executed = 0;    ///< simulator events (sum)
  double horizon = 0.0;                 ///< virtual end time (max)
  std::uint64_t worlds = 0;

  /// Summed transport counters of every world's network. Deliberately NOT
  /// part of fingerprint(): the protocol-outcome digest is pinned to
  /// pre-transport history (the ideal() bit-identity golden); transport
  /// counters carry their own TransportStats::fingerprint() for the
  /// thread-invariance gates.
  dht::TransportStats transport;

  /// Executor mode only (ScenarioSpec::domains >= 1): window events
  /// executed per domain queue, summed elementwise across worlds. The
  /// partition itself changes with the domain count, so this is
  /// D-dependent by construction and — like transport — deliberately NOT
  /// part of fingerprint(); it feeds the bench's per-domain load report.
  std::vector<std::uint64_t> events_per_domain;

  void merge(const FleetTally& other);
  std::size_t trials() const { return tally.runs(); }
  double drop_rate() const { return tally.drop.rate(); }
  double release_rate() const { return tally.release.rate(); }
  /// Order-independent 64-bit digest of every exact field; two runs of the
  /// same scenario agree iff their fingerprints do (used by the
  /// thread-invariance gates in bench/service_load).
  std::uint64_t fingerprint() const;
};

/// Progress observer for long single-world runs: (virtual_now,
/// sessions_reaped, sessions_started), invoked once per drive chunk.
using FleetProgress =
    std::function<void(double, std::uint64_t, std::uint64_t)>;

/// One world of a scenario: builds the substrate, streams its share of the
/// session budget through it, reaps and recycles, returns the exact tally.
class SessionFleet {
 public:
  /// Sessions past tr wait this long (assembly + message latency headroom)
  /// before the reaper collects and recycles them.
  static constexpr double kReapGrace = 2.0;
  /// Every this-many-th delivered session is decrypt-verified end to end.
  static constexpr std::uint64_t kPayloadCheckStride = 997;

  /// `spec` must already be validate()d (run_scenario does). `tracer` (may
  /// be null: tracing off) receives the world's lifecycle + hop spans; its
  /// sampling is keyed on content, so the tally is bit-identical with
  /// tracing on or off.
  SessionFleet(const ScenarioSpec& spec, std::size_t world_index,
               obs::Tracer* tracer = nullptr)
      : spec_(spec), world_index_(world_index), tracer_(tracer) {}

  /// Runs the world to completion on the calling thread. `progress` (may
  /// be null) is invoked between drive chunks; it must not mutate the
  /// fleet. Deterministic: the tally is a pure function of (spec, index).
  FleetTally run(const FleetProgress& progress = nullptr);

 private:
  const ScenarioSpec& spec_;
  std::size_t world_index_;
  obs::Tracer* tracer_;
};

/// Runs every world of the scenario across the sweep pool and merges the
/// tallies in ascending world order — bit-identical at any thread count.
/// `progress` is forwarded only when worlds == 1 (a single serial world);
/// multi-world runs report nothing mid-flight.
FleetTally run_scenario(core::SweepRunner& sweeps, const ScenarioSpec& spec,
                        const FleetProgress& progress = nullptr,
                        obs::Tracer* tracer = nullptr);

}  // namespace emergence::workload

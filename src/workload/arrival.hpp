// Open-loop session arrival processes for traffic generation.
//
// A workload scenario schedules TimedReleaseSession setups on the
// Simulator clock by asking an ArrivalProcess for the next arrival instant
// after the previous one. Processes are stateless between calls — all
// randomness flows through the caller's Rng stream (the fleet dedicates a
// Rng::fork sub-stream to arrivals), so the arrival sequence is a pure
// function of (spec, seed) and the sharded fleet stays bit-identical at
// any thread count.
//
// Time-varying intensities (diurnal modulation, flash crowds) sample by
// Lewis-Shedler thinning: draw candidates from a homogeneous process at
// the peak rate and accept each with probability rate(t)/peak — exact for
// any bounded intensity, and deterministic given the Rng stream.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"

namespace emergence::workload {

/// A point process on the virtual-time axis.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The next arrival instant strictly after `t`, drawing from `rng`.
  virtual double next_after(double t, Rng& rng) const = 0;

  /// Long-run average intensity in sessions per virtual second.
  virtual double mean_rate() const = 0;

  virtual std::string name() const = 0;
};

/// Evenly spaced arrivals at a fixed rate (no randomness): closed-form
/// load, useful for calibration and for exact-throughput scenarios.
class DeterministicArrivals final : public ArrivalProcess {
 public:
  explicit DeterministicArrivals(double rate);

  double next_after(double t, Rng& rng) const override;
  double mean_rate() const override { return rate_; }
  std::string name() const override { return "deterministic"; }

 private:
  double rate_;
};

/// Homogeneous Poisson process: i.i.d. Exp(1/rate) inter-arrivals.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);

  double next_after(double t, Rng& rng) const override;
  double mean_rate() const override { return rate_; }
  std::string name() const override { return "poisson"; }

 private:
  double rate_;
};

/// Non-homogeneous Poisson with sinusoidal day/night modulation:
/// rate(t) = base * (1 + amplitude * sin(2*pi*t / period)), sampled by
/// thinning against the peak rate base * (1 + amplitude).
class DiurnalArrivals final : public ArrivalProcess {
 public:
  /// amplitude in [0, 1): the trough rate stays positive.
  DiurnalArrivals(double base_rate, double amplitude, double period);

  double next_after(double t, Rng& rng) const override;
  double mean_rate() const override { return base_rate_; }
  double rate_at(double t) const;
  std::string name() const override { return "diurnal"; }

 private:
  double base_rate_;
  double amplitude_;
  double period_;
};

/// Piecewise-constant intensity with periodic bursts: baseline rate
/// everywhere, burst rate inside [start + i*period, start + i*period + len)
/// windows. Models flash crowds (a release event, a news spike) recurring
/// on a cadence; a single burst is period = +infinity in spirit — pass a
/// period far beyond the horizon.
class FlashCrowdArrivals final : public ArrivalProcess {
 public:
  FlashCrowdArrivals(double base_rate, double burst_rate, double burst_start,
                     double burst_length, double burst_period);

  double next_after(double t, Rng& rng) const override;
  double mean_rate() const override;
  double rate_at(double t) const;
  std::string name() const override { return "flash-crowd"; }

 private:
  double base_rate_;
  double burst_rate_;
  double burst_start_;
  double burst_length_;
  double burst_period_;
};

/// Which process a scenario asks for.
enum class ArrivalKind : std::uint8_t {
  kDeterministic,
  kPoisson,
  kDiurnal,
  kFlashCrowd,
};

std::string to_string(ArrivalKind kind);

/// Declarative arrival description, buildable into a process. Fields
/// beyond `rate` only apply to the kinds that read them.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 1.0;            ///< base intensity, sessions per second
  double amplitude = 0.5;       ///< diurnal: modulation depth in [0, 1)
  double period = 1200.0;       ///< diurnal: virtual "day" length
  double burst_rate = 10.0;     ///< flash crowd: intensity inside bursts
  double burst_start = 60.0;    ///< flash crowd: first burst onset
  double burst_length = 30.0;   ///< flash crowd: burst duration
  double burst_period = 600.0;  ///< flash crowd: burst cadence

  /// Throws PreconditionError on invalid parameters.
  std::shared_ptr<const ArrivalProcess> build() const;
};

}  // namespace emergence::workload

#include "workload/scenario.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace emergence::workload {

std::size_t ScenarioSpec::malicious_count() const {
  return static_cast<std::size_t>(malicious_p *
                                  static_cast<double>(population));
}

std::size_t ScenarioSpec::sessions_in_world(std::size_t index) const {
  const std::size_t base = sessions / worlds;
  const std::size_t remainder = sessions % worlds;
  return base + (index < remainder ? 1 : 0);
}

void ScenarioSpec::validate() const {
  require(!name.empty(), "ScenarioSpec: name must not be empty");
  require(sessions >= 1, "ScenarioSpec '" + name + "': sessions must be >= 1");
  require(worlds >= 1, "ScenarioSpec '" + name + "': worlds must be >= 1");
  require(worlds <= sessions,
          "ScenarioSpec '" + name + "': worlds must not exceed sessions");
  require(emerging_time > 0.0,
          "ScenarioSpec '" + name + "': emerging time T must be positive");
  require(shape.k >= 1 && shape.l >= 1,
          "ScenarioSpec '" + name + "': degenerate path shape");
  // TimedReleaseSession's timing contract needs th > assembly_delay +
  // 4 * max single-attempt message latency (1.0 + 4 * 0.1 at the default
  // network config; slower transports raise the floor). The historical
  // 1.5s minimum is kept as a floor so scenario validity never loosens.
  const dht::TransportModel net = transport.resolved(0.010, 0.100);
  net.validate();
  const double min_th = std::max(1.5, 1.0 + 4.0 * net.max_single_latency());
  require(holding_period() > min_th,
          "ScenarioSpec '" + name +
              "': holding period T/l too short for the network timing "
              "contract (need > " + std::to_string(min_th) +
              " virtual seconds)");
  require(malicious_p >= 0.0 && malicious_p <= 1.0,
          "ScenarioSpec '" + name + "': p must lie in [0, 1]");
  require(domains <= 1024,
          "ScenarioSpec '" + name + "': domains capped at 1024");
  require(transient_fraction >= 0.0 && transient_fraction < 1.0,
          "ScenarioSpec '" + name + "': transient fraction must lie in [0, 1)");
  if (churn) {
    require(churn_alpha > 0.0,
            "ScenarioSpec '" + name + "': churn alpha must be positive");
  }

  // Same per-column holder demand as build_path_layout (path.cpp): the
  // share scheme staffs carriers_n per non-terminal column, k elsewhere.
  std::size_t holders_needed = 0;
  const bool share = scheme == core::SchemeKind::kShare;
  for (std::size_t c = 1; c <= shape.l; ++c) {
    holders_needed += (share && c < shape.l) ? resolved_carriers() : shape.k;
  }
  require(population > holders_needed + 1,
          "ScenarioSpec '" + name +
              "': population too small for distinct holders");
  if (share) {
    require(resolved_carriers() >= shape.k,
            "ScenarioSpec '" + name + "': share scheme needs carriers >= k");
    require(resolved_threshold() >= 1 &&
                resolved_threshold() <= resolved_carriers(),
            "ScenarioSpec '" + name + "': invalid share threshold");
  }
  if (scheme == core::SchemeKind::kCentralized) {
    require(shape.k == 1 && shape.l == 1,
            "ScenarioSpec '" + name + "': centralized scheme is a 1x1 layout");
  }

  // Delegate the law-specific checks (rates, shapes, amplitudes).
  (void)arrival.build();
  (void)lifetime.build(churn ? mean_lifetime() : emerging_time);
}

namespace {

ScenarioSpec base_scenario(std::string name, std::string summary) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.summary = std::move(summary);
  return s;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> registry;

  {
    ScenarioSpec s = base_scenario(
        "steady-trickle", "evenly spaced arrivals, exponential churn");
    s.arrival.kind = ArrivalKind::kDeterministic;
    s.arrival.rate = 20.0;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "poisson-open", "memoryless open-loop arrivals, exponential churn");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    registry.push_back(std::move(s));
  }
  {
    // The acceptance scenario: day/night-modulated metropolitan load with
    // the heavy-tailed session times measured on deployed DHTs.
    ScenarioSpec s = base_scenario(
        "metro-diurnal",
        "day/night-modulated load over Weibull heavy-tail churn");
    s.arrival.kind = ArrivalKind::kDiurnal;
    s.arrival.rate = 250.0;
    s.arrival.amplitude = 0.6;
    s.arrival.period = 900.0;
    s.lifetime.kind = LifetimeKind::kWeibull;
    s.lifetime.shape = 0.6;
    s.churn_alpha = 0.006;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "flash-crowd", "20x arrival bursts on a cadence (release-day spikes)");
    s.arrival.kind = ArrivalKind::kFlashCrowd;
    s.arrival.rate = 20.0;
    s.arrival.burst_rate = 400.0;
    s.arrival.burst_start = 60.0;
    s.arrival.burst_length = 30.0;
    s.arrival.burst_period = 600.0;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "heavy-tail-churn", "Pareto(1.5) node lifetimes: many brief cameos");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.lifetime.kind = LifetimeKind::kPareto;
    s.lifetime.shape = 1.5;
    s.churn_alpha = 0.02;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "trace-replay", "lifetimes from the bundled measured-CDF trace");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.lifetime.kind = LifetimeKind::kTrace;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "kademlia-steady", "the Kademlia backend under steady Poisson load");
    s.backend = core::DhtBackend::kKademlia;
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 30.0;
    s.population = 512;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "covert-mix", "20% covert coalition exfiltrating under live churn");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 40.0;
    s.malicious_p = 0.2;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "dropping-storm", "flash crowds against a 20% dropping coalition");
    s.arrival.kind = ArrivalKind::kFlashCrowd;
    s.arrival.rate = 20.0;
    s.arrival.burst_rate = 300.0;
    s.arrival.burst_start = 30.0;
    s.arrival.burst_length = 20.0;
    s.arrival.burst_period = 300.0;
    s.malicious_p = 0.2;
    s.attack_mode = core::AttackMode::kDropping;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "share-threshold", "key-share routing (n=4, m=2) vs a 20% coalition");
    s.scheme = core::SchemeKind::kShare;
    s.carriers_n = 4;
    s.threshold_m = 2;
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 30.0;
    s.malicious_p = 0.2;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "calm-transients", "half the outages are leave-and-rejoin, not death");
    s.arrival.kind = ArrivalKind::kDeterministic;
    s.arrival.rate = 10.0;
    s.transient_fraction = 0.5;
    s.churn_alpha = 0.02;
    registry.push_back(std::move(s));
  }

  // -- transport axes (PR 6): the same diurnal metro load over non-ideal
  // message transports. Appended after the historical scenarios so every
  // earlier registry entry keeps its position and pinned tallies.
  {
    ScenarioSpec s = base_scenario(
        "lan-fabric", "sub-millisecond datacenter links, no loss");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::lan();
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "wan-geo", "four geo zones, 40-200ms cross-zone RTTs, rare loss");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::wan();
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "lossy-links", "5% iid message loss with three bounded retries");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::lossy(0.05);
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "straggler-tail", "log-normal latency with a heavy straggler tail");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::straggler();
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "partition-heal", "two zones split for [60s, 180s), then heal");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.emerging_time = 240.0;  // sessions straddle the window and its heal
    s.transport = dht::TransportModel::partition_heal(60.0, 180.0);
    registry.push_back(std::move(s));
  }

  for (const ScenarioSpec& s : registry) s.validate();
  return registry;
}

}  // namespace

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> kRegistry = build_registry();
  return kRegistry;
}

ScenarioSpec find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : scenario_registry()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const ScenarioSpec& s : scenario_registry()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw PreconditionError("unknown scenario '" + name + "' (known: " + known +
                          ")");
}

void add_protocol_options(OptionTable& table, core::SchemeKind& scheme,
                          core::PathShape& shape, std::size_t& carriers_n,
                          std::size_t& threshold_m, double& emerging_time) {
  table.add_size("k", "replication factor: onion slots per column", &shape.k);
  table.add_size("l", "path length: columns / holding periods", &shape.l);
  table.add_size("carriers",
                 "share scheme: holders per column (0 = k+1)", &carriers_n);
  table.add_size("threshold",
                 "share scheme: Shamir threshold m (0 = k)", &threshold_m);
  table.add_real("T", "emerging period in seconds", &emerging_time);
  table.add_choice(
      "scheme", "routing scheme",
      {{"centralized",
        [&scheme, &shape] {
          scheme = core::SchemeKind::kCentralized;
          shape = core::PathShape{1, 1};
        }},
       {"disjoint", [&scheme] { scheme = core::SchemeKind::kDisjoint; }},
       {"joint", [&scheme] { scheme = core::SchemeKind::kJoint; }},
       {"share", [&scheme] { scheme = core::SchemeKind::kShare; }}});
}

OptionTable scenario_option_table(ScenarioSpec& spec) {
  OptionTable table;
  table.add_size("population", "DHT nodes in each world", &spec.population);
  table.add_size("sessions", "session budget across worlds", &spec.sessions);
  table.add_size("worlds", "independent worlds sharded over the pool",
                 &spec.worlds);
  // 0 = legacy serial loop; >= 1 = the windowed domain executor.
  table.add_size("domains", "parallel domains within each world (0 = serial)",
                 &spec.domains);
  table.add_u64("seed", "root seed (decimal or 0x hex)", &spec.seed);
  add_protocol_options(table, spec.scheme, spec.shape, spec.carriers_n,
                       spec.threshold_m, spec.emerging_time);
  table.add("alpha", "X", "churn ratio T / mean lifetime (0 disables churn)",
            [&spec](const std::string& v) {
              spec.churn_alpha = parse_real_option("alpha", v);
              spec.churn = spec.churn_alpha > 0.0;
            });
  table.add_real("p", "malicious coalition fraction of the population",
                 &spec.malicious_p);
  table.add_real("rate", "mean arrival rate (sessions/s)", &spec.arrival.rate);
  table.add_real("amplitude", "diurnal modulation depth",
                 &spec.arrival.amplitude);
  table.add_real("period", "diurnal period in seconds", &spec.arrival.period);
  table.add_real("burst-rate", "flash-crowd burst rate (sessions/s)",
                 &spec.arrival.burst_rate);
  table.add_real("burst-start", "first burst onset (s)",
                 &spec.arrival.burst_start);
  table.add_real("burst-length", "burst duration (s)",
                 &spec.arrival.burst_length);
  table.add_real("burst-period", "burst cadence (s)",
                 &spec.arrival.burst_period);
  table.add_real("transient", "fraction of outages that rejoin",
                 &spec.transient_fraction);
  table.add_real("lifetime-shape", "Weibull/Pareto shape parameter",
                 &spec.lifetime.shape);
  table.add("net", "PRESET[:k=v;...]",
            "transport model (ideal|lan|wan|lossy|straggler|partition-heal)",
            [&spec](const std::string& v) {
              // Delegates the preset[:sub-key=value;...] mini-grammar (and
              // its diagnostics) to the transport model itself.
              spec.transport = dht::TransportModel::parse(v);
            });
  table.add_choice(
      "backend", "DHT substrate",
      {{"chord", [&spec] { spec.backend = core::DhtBackend::kChord; }},
       {"kademlia",
        [&spec] { spec.backend = core::DhtBackend::kKademlia; }}});
  table.add_choice(
      "arrival", "arrival process",
      {{"deterministic",
        [&spec] { spec.arrival.kind = ArrivalKind::kDeterministic; }},
       {"poisson", [&spec] { spec.arrival.kind = ArrivalKind::kPoisson; }},
       {"diurnal", [&spec] { spec.arrival.kind = ArrivalKind::kDiurnal; }},
       {"flash-crowd",
        [&spec] { spec.arrival.kind = ArrivalKind::kFlashCrowd; }}});
  table.add_choice(
      "lifetime", "node lifetime law",
      {{"exponential",
        [&spec] { spec.lifetime.kind = LifetimeKind::kExponential; }},
       {"weibull", [&spec] { spec.lifetime.kind = LifetimeKind::kWeibull; }},
       {"pareto", [&spec] { spec.lifetime.kind = LifetimeKind::kPareto; }},
       {"trace", [&spec] { spec.lifetime.kind = LifetimeKind::kTrace; }}});
  return table;
}

ScenarioSpec parse_scenario(const std::string& text) {
  require(!text.empty(), "parse_scenario: empty scenario spec");
  const std::size_t colon = text.find(':');
  ScenarioSpec spec = find_scenario(text.substr(0, colon));
  if (colon != std::string::npos) {
    std::string overrides = text.substr(colon + 1);
    require(!overrides.empty(),
            "parse_scenario: trailing ':' without overrides in '" + text + "'");
    const OptionTable table = scenario_option_table(spec);
    std::size_t start = 0;
    while (start <= overrides.size()) {
      const std::size_t comma = overrides.find(',', start);
      const std::string token =
          overrides.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
      require(!token.empty(),
              "parse_scenario: empty override token in '" + text + "'");
      const std::size_t eq = token.find('=');
      require(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
              "parse_scenario: override '" + token + "' is not key=value");
      table.apply(token.substr(0, eq), token.substr(eq + 1),
                  "scenario override");
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  spec.validate();
  return spec;
}

core::E2eScenario to_e2e_scenario(const ScenarioSpec& spec, std::size_t runs) {
  core::E2eScenario e2e;
  e2e.name = spec.name;
  e2e.kind = spec.scheme;
  e2e.backend = spec.backend;
  e2e.shape = spec.shape;
  e2e.carriers_n = spec.carriers_n;
  e2e.threshold_m = spec.threshold_m;
  e2e.population = spec.population;
  e2e.p = spec.malicious_p;
  e2e.attack_mode = spec.attack_mode;
  e2e.churn = spec.churn;
  e2e.churn_alpha = spec.churn_alpha;
  e2e.sessions = 1;
  e2e.emerging_time = spec.emerging_time;
  e2e.runs = runs;
  e2e.seed = spec.seed ^ 0xE2EB41D6Eull;
  e2e.transport = spec.transport;
  return e2e;
}

}  // namespace emergence::workload

#include "workload/scenario.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace emergence::workload {

std::size_t ScenarioSpec::malicious_count() const {
  return static_cast<std::size_t>(malicious_p *
                                  static_cast<double>(population));
}

std::size_t ScenarioSpec::sessions_in_world(std::size_t index) const {
  const std::size_t base = sessions / worlds;
  const std::size_t remainder = sessions % worlds;
  return base + (index < remainder ? 1 : 0);
}

void ScenarioSpec::validate() const {
  require(!name.empty(), "ScenarioSpec: name must not be empty");
  require(sessions >= 1, "ScenarioSpec '" + name + "': sessions must be >= 1");
  require(worlds >= 1, "ScenarioSpec '" + name + "': worlds must be >= 1");
  require(worlds <= sessions,
          "ScenarioSpec '" + name + "': worlds must not exceed sessions");
  require(emerging_time > 0.0,
          "ScenarioSpec '" + name + "': emerging time T must be positive");
  require(shape.k >= 1 && shape.l >= 1,
          "ScenarioSpec '" + name + "': degenerate path shape");
  // TimedReleaseSession's timing contract needs th > assembly_delay +
  // 4 * max single-attempt message latency (1.0 + 4 * 0.1 at the default
  // network config; slower transports raise the floor). The historical
  // 1.5s minimum is kept as a floor so scenario validity never loosens.
  const dht::TransportModel net = transport.resolved(0.010, 0.100);
  net.validate();
  const double min_th = std::max(1.5, 1.0 + 4.0 * net.max_single_latency());
  require(holding_period() > min_th,
          "ScenarioSpec '" + name +
              "': holding period T/l too short for the network timing "
              "contract (need > " + std::to_string(min_th) +
              " virtual seconds)");
  require(malicious_p >= 0.0 && malicious_p <= 1.0,
          "ScenarioSpec '" + name + "': p must lie in [0, 1]");
  require(domains <= 1024,
          "ScenarioSpec '" + name + "': domains capped at 1024");
  require(transient_fraction >= 0.0 && transient_fraction < 1.0,
          "ScenarioSpec '" + name + "': transient fraction must lie in [0, 1)");
  if (churn) {
    require(churn_alpha > 0.0,
            "ScenarioSpec '" + name + "': churn alpha must be positive");
  }

  // Same per-column holder demand as build_path_layout (path.cpp): the
  // share scheme staffs carriers_n per non-terminal column, k elsewhere.
  std::size_t holders_needed = 0;
  const bool share = scheme == core::SchemeKind::kShare;
  for (std::size_t c = 1; c <= shape.l; ++c) {
    holders_needed += (share && c < shape.l) ? resolved_carriers() : shape.k;
  }
  require(population > holders_needed + 1,
          "ScenarioSpec '" + name +
              "': population too small for distinct holders");
  if (share) {
    require(resolved_carriers() >= shape.k,
            "ScenarioSpec '" + name + "': share scheme needs carriers >= k");
    require(resolved_threshold() >= 1 &&
                resolved_threshold() <= resolved_carriers(),
            "ScenarioSpec '" + name + "': invalid share threshold");
  }
  if (scheme == core::SchemeKind::kCentralized) {
    require(shape.k == 1 && shape.l == 1,
            "ScenarioSpec '" + name + "': centralized scheme is a 1x1 layout");
  }

  // Delegate the law-specific checks (rates, shapes, amplitudes).
  (void)arrival.build();
  (void)lifetime.build(churn ? mean_lifetime() : emerging_time);
}

namespace {

ScenarioSpec base_scenario(std::string name, std::string summary) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.summary = std::move(summary);
  return s;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> registry;

  {
    ScenarioSpec s = base_scenario(
        "steady-trickle", "evenly spaced arrivals, exponential churn");
    s.arrival.kind = ArrivalKind::kDeterministic;
    s.arrival.rate = 20.0;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "poisson-open", "memoryless open-loop arrivals, exponential churn");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    registry.push_back(std::move(s));
  }
  {
    // The acceptance scenario: day/night-modulated metropolitan load with
    // the heavy-tailed session times measured on deployed DHTs.
    ScenarioSpec s = base_scenario(
        "metro-diurnal",
        "day/night-modulated load over Weibull heavy-tail churn");
    s.arrival.kind = ArrivalKind::kDiurnal;
    s.arrival.rate = 250.0;
    s.arrival.amplitude = 0.6;
    s.arrival.period = 900.0;
    s.lifetime.kind = LifetimeKind::kWeibull;
    s.lifetime.shape = 0.6;
    s.churn_alpha = 0.006;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "flash-crowd", "20x arrival bursts on a cadence (release-day spikes)");
    s.arrival.kind = ArrivalKind::kFlashCrowd;
    s.arrival.rate = 20.0;
    s.arrival.burst_rate = 400.0;
    s.arrival.burst_start = 60.0;
    s.arrival.burst_length = 30.0;
    s.arrival.burst_period = 600.0;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "heavy-tail-churn", "Pareto(1.5) node lifetimes: many brief cameos");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.lifetime.kind = LifetimeKind::kPareto;
    s.lifetime.shape = 1.5;
    s.churn_alpha = 0.02;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "trace-replay", "lifetimes from the bundled measured-CDF trace");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.lifetime.kind = LifetimeKind::kTrace;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "kademlia-steady", "the Kademlia backend under steady Poisson load");
    s.backend = core::DhtBackend::kKademlia;
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 30.0;
    s.population = 512;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "covert-mix", "20% covert coalition exfiltrating under live churn");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 40.0;
    s.malicious_p = 0.2;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "dropping-storm", "flash crowds against a 20% dropping coalition");
    s.arrival.kind = ArrivalKind::kFlashCrowd;
    s.arrival.rate = 20.0;
    s.arrival.burst_rate = 300.0;
    s.arrival.burst_start = 30.0;
    s.arrival.burst_length = 20.0;
    s.arrival.burst_period = 300.0;
    s.malicious_p = 0.2;
    s.attack_mode = core::AttackMode::kDropping;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "share-threshold", "key-share routing (n=4, m=2) vs a 20% coalition");
    s.scheme = core::SchemeKind::kShare;
    s.carriers_n = 4;
    s.threshold_m = 2;
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 30.0;
    s.malicious_p = 0.2;
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "calm-transients", "half the outages are leave-and-rejoin, not death");
    s.arrival.kind = ArrivalKind::kDeterministic;
    s.arrival.rate = 10.0;
    s.transient_fraction = 0.5;
    s.churn_alpha = 0.02;
    registry.push_back(std::move(s));
  }

  // -- transport axes (PR 6): the same diurnal metro load over non-ideal
  // message transports. Appended after the historical scenarios so every
  // earlier registry entry keeps its position and pinned tallies.
  {
    ScenarioSpec s = base_scenario(
        "lan-fabric", "sub-millisecond datacenter links, no loss");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::lan();
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "wan-geo", "four geo zones, 40-200ms cross-zone RTTs, rare loss");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::wan();
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "lossy-links", "5% iid message loss with three bounded retries");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::lossy(0.05);
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "straggler-tail", "log-normal latency with a heavy straggler tail");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.transport = dht::TransportModel::straggler();
    registry.push_back(std::move(s));
  }
  {
    ScenarioSpec s = base_scenario(
        "partition-heal", "two zones split for [60s, 180s), then heal");
    s.arrival.kind = ArrivalKind::kPoisson;
    s.arrival.rate = 50.0;
    s.emerging_time = 240.0;  // sessions straddle the window and its heal
    s.transport = dht::TransportModel::partition_heal(60.0, 180.0);
    registry.push_back(std::move(s));
  }

  for (const ScenarioSpec& s : registry) s.validate();
  return registry;
}

}  // namespace

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> kRegistry = build_registry();
  return kRegistry;
}

ScenarioSpec find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : scenario_registry()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const ScenarioSpec& s : scenario_registry()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw PreconditionError("unknown scenario '" + name + "' (known: " + known +
                          ")");
}

namespace {

double parse_real(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    throw PreconditionError("scenario override '" + key + "=" + value +
                            "': not a number");
  }
  return parsed;
}

std::size_t parse_size(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.find('-') != std::string::npos) {
    throw PreconditionError("scenario override '" + key + "=" + value +
                            "': not a non-negative integer");
  }
  return static_cast<std::size_t>(parsed);
}

std::uint64_t parse_seed(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 0);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.find('-') != std::string::npos) {
    throw PreconditionError("scenario override '" + key + "=" + value +
                            "': not a seed");
  }
  return parsed;
}

void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value) {
  if (key == "population") {
    spec.population = parse_size(key, value);
  } else if (key == "sessions") {
    spec.sessions = parse_size(key, value);
  } else if (key == "worlds") {
    spec.worlds = parse_size(key, value);
  } else if (key == "domains") {
    // 0 = legacy serial loop; >= 1 = the windowed domain executor.
    spec.domains = parse_size(key, value);
  } else if (key == "seed") {
    spec.seed = parse_seed(key, value);
  } else if (key == "T") {
    spec.emerging_time = parse_real(key, value);
  } else if (key == "alpha") {
    spec.churn_alpha = parse_real(key, value);
    spec.churn = spec.churn_alpha > 0.0;
  } else if (key == "p") {
    spec.malicious_p = parse_real(key, value);
  } else if (key == "rate") {
    spec.arrival.rate = parse_real(key, value);
  } else if (key == "amplitude") {
    spec.arrival.amplitude = parse_real(key, value);
  } else if (key == "period") {
    spec.arrival.period = parse_real(key, value);
  } else if (key == "burst-rate") {
    spec.arrival.burst_rate = parse_real(key, value);
  } else if (key == "burst-start") {
    spec.arrival.burst_start = parse_real(key, value);
  } else if (key == "burst-length") {
    spec.arrival.burst_length = parse_real(key, value);
  } else if (key == "burst-period") {
    spec.arrival.burst_period = parse_real(key, value);
  } else if (key == "k") {
    spec.shape.k = parse_size(key, value);
  } else if (key == "l") {
    spec.shape.l = parse_size(key, value);
  } else if (key == "carriers") {
    spec.carriers_n = parse_size(key, value);
  } else if (key == "threshold") {
    spec.threshold_m = parse_size(key, value);
  } else if (key == "transient") {
    spec.transient_fraction = parse_real(key, value);
  } else if (key == "lifetime-shape") {
    spec.lifetime.shape = parse_real(key, value);
  } else if (key == "net") {
    // Delegates the preset[:sub-key=value;...] mini-grammar (and its
    // diagnostics) to the transport model itself.
    spec.transport = dht::TransportModel::parse(value);
  } else if (key == "backend") {
    if (value == "chord") {
      spec.backend = core::DhtBackend::kChord;
    } else if (value == "kademlia") {
      spec.backend = core::DhtBackend::kKademlia;
    } else {
      throw PreconditionError("scenario override 'backend=" + value +
                              "': expected chord or kademlia");
    }
  } else if (key == "scheme") {
    if (value == "centralized") {
      spec.scheme = core::SchemeKind::kCentralized;
      spec.shape = core::PathShape{1, 1};
    } else if (value == "disjoint") {
      spec.scheme = core::SchemeKind::kDisjoint;
    } else if (value == "joint") {
      spec.scheme = core::SchemeKind::kJoint;
    } else if (value == "share") {
      spec.scheme = core::SchemeKind::kShare;
    } else {
      throw PreconditionError(
          "scenario override 'scheme=" + value +
          "': expected centralized, disjoint, joint or share");
    }
  } else if (key == "arrival") {
    if (value == "deterministic") {
      spec.arrival.kind = ArrivalKind::kDeterministic;
    } else if (value == "poisson") {
      spec.arrival.kind = ArrivalKind::kPoisson;
    } else if (value == "diurnal") {
      spec.arrival.kind = ArrivalKind::kDiurnal;
    } else if (value == "flash-crowd") {
      spec.arrival.kind = ArrivalKind::kFlashCrowd;
    } else {
      throw PreconditionError(
          "scenario override 'arrival=" + value +
          "': expected deterministic, poisson, diurnal or flash-crowd");
    }
  } else if (key == "lifetime") {
    if (value == "exponential") {
      spec.lifetime.kind = LifetimeKind::kExponential;
    } else if (value == "weibull") {
      spec.lifetime.kind = LifetimeKind::kWeibull;
    } else if (value == "pareto") {
      spec.lifetime.kind = LifetimeKind::kPareto;
    } else if (value == "trace") {
      spec.lifetime.kind = LifetimeKind::kTrace;
    } else {
      throw PreconditionError(
          "scenario override 'lifetime=" + value +
          "': expected exponential, weibull, pareto or trace");
    }
  } else {
    throw PreconditionError("unknown scenario override key '" + key + "'");
  }
}

}  // namespace

ScenarioSpec parse_scenario(const std::string& text) {
  require(!text.empty(), "parse_scenario: empty scenario spec");
  const std::size_t colon = text.find(':');
  ScenarioSpec spec = find_scenario(text.substr(0, colon));
  if (colon != std::string::npos) {
    std::string overrides = text.substr(colon + 1);
    require(!overrides.empty(),
            "parse_scenario: trailing ':' without overrides in '" + text + "'");
    std::size_t start = 0;
    while (start <= overrides.size()) {
      const std::size_t comma = overrides.find(',', start);
      const std::string token =
          overrides.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
      require(!token.empty(),
              "parse_scenario: empty override token in '" + text + "'");
      const std::size_t eq = token.find('=');
      require(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
              "parse_scenario: override '" + token + "' is not key=value");
      apply_override(spec, token.substr(0, eq), token.substr(eq + 1));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  spec.validate();
  return spec;
}

core::E2eScenario to_e2e_scenario(const ScenarioSpec& spec, std::size_t runs) {
  core::E2eScenario e2e;
  e2e.name = spec.name;
  e2e.kind = spec.scheme;
  e2e.backend = spec.backend;
  e2e.shape = spec.shape;
  e2e.carriers_n = spec.carriers_n;
  e2e.threshold_m = spec.threshold_m;
  e2e.population = spec.population;
  e2e.p = spec.malicious_p;
  e2e.attack_mode = spec.attack_mode;
  e2e.churn = spec.churn;
  e2e.churn_alpha = spec.churn_alpha;
  e2e.sessions = 1;
  e2e.emerging_time = spec.emerging_time;
  e2e.runs = runs;
  e2e.seed = spec.seed ^ 0xE2EB41D6Eull;
  e2e.transport = spec.transport;
  return e2e;
}

}  // namespace emergence::workload

// Pluggable node-lifetime laws for churn generation.
//
// The paper evaluates one law only — exponential lifetimes with mean λ
// (Bhagwan et al.'s decay model) — but measured DHT session times are
// famously heavy-tailed (Weibull with shape < 1 fits Kad; Pareto tails show
// up in Gnutella traces). This layer puts the law behind a LifetimeModel
// interface that dht::ChurnDriver is generalized over, so workload
// scenarios can swap laws without touching the driver. The exponential
// model draws through exactly the Rng::exponential call the driver used to
// make inline, so the default configuration reproduces the historical event
// sequence bit-for-bit at pinned seeds (regression-tested in
// tests/test_churn_models.cpp).
//
// Layering: this header sits *below* dht (it depends only on common/), so
// the churn driver can include it without inverting the layer order; the
// rest of src/workload/ (arrival, scenario, fleet) sits above emerge.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace emergence::workload {

/// A node-lifetime distribution. Implementations are immutable and
/// shareable; all randomness flows through the caller's Rng, so a model
/// instance can serve many deterministic worlds concurrently.
class LifetimeModel {
 public:
  virtual ~LifetimeModel() = default;

  /// Draws one lifetime in virtual seconds (> 0).
  virtual double sample(Rng& rng) const = 0;

  /// The analytic mean of the law (used to pin T = alpha * mean).
  virtual double mean() const = 0;

  virtual std::string name() const = 0;
};

/// The paper's law: Exp(mean). sample() is exactly Rng::exponential(mean) —
/// one draw, same distribution object — so a driver defaulting to this
/// model replays the historical churn event sequence bit-for-bit.
class ExponentialLifetime final : public LifetimeModel {
 public:
  explicit ExponentialLifetime(double mean);

  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override { return "exponential"; }

 private:
  double mean_;
};

/// Weibull(shape k, scale λ) via inverse-CDF over one uniform draw:
/// λ * (-ln(1-u))^(1/k). Shape < 1 gives the heavy-tailed session times
/// measured on deployed DHTs; shape == 1 degenerates to Exp(λ) as a
/// distribution (but draws differently from ExponentialLifetime, which
/// goes through std::exponential_distribution).
class WeibullLifetime final : public LifetimeModel {
 public:
  /// Constructs from the target mean: scale = mean / Γ(1 + 1/shape).
  WeibullLifetime(double shape, double mean);

  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double shape() const { return shape_; }
  double scale() const { return scale_; }
  std::string name() const override { return "weibull"; }

 private:
  double shape_;
  double scale_;
  double mean_;
};

/// Pareto type II (Lomax: tail index alpha > 1, scale λ) via inverse CDF:
/// λ * ((1-u)^(-1/alpha) - 1). Support starts at 0 — unlike Pareto I,
/// whose minimum x_m would forbid any lifetime below it — so a churn
/// scenario gets the "many brief cameos, few marathon nodes" shape at any
/// horizon. Constructed from the target mean: λ = mean * (alpha - 1).
class ParetoLifetime final : public LifetimeModel {
 public:
  ParetoLifetime(double alpha, double mean);

  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double alpha() const { return alpha_; }
  double scale() const { return scale_; }
  std::string name() const override { return "pareto"; }

 private:
  double alpha_;
  double scale_;
  double mean_;
};

/// One knot of a sampled CDF: P(X <= value) == quantile.
struct CdfPoint {
  double quantile = 0.0;  ///< in [0, 1], strictly increasing across knots
  double value = 0.0;     ///< in seconds, non-decreasing across knots
};

/// Empirical trace-driven lifetimes: inverse-transform sampling over a
/// piecewise-linear sampled CDF (binary search on the quantile, linear
/// interpolation between knots). The table is validated at construction and
/// rescaled so the piecewise-linear mean hits the requested target — that
/// keeps T = alpha * mean exact for trace scenarios too.
class TraceLifetime final : public LifetimeModel {
 public:
  /// `table` must start at quantile 0, end at quantile 1, have strictly
  /// increasing quantiles, non-decreasing non-negative values, and a
  /// positive mean. Throws PreconditionError otherwise.
  TraceLifetime(std::vector<CdfPoint> table, double mean,
                std::string trace_name = "trace");

  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override { return name_; }
  const std::vector<CdfPoint>& table() const { return table_; }

 private:
  std::vector<CdfPoint> table_;  ///< values rescaled to the target mean
  double mean_;
  std::string name_;
};

/// The bundled trace: a 17-knot sampled CDF shaped like measured Kad
/// session times (most sessions are minutes-short, a long tail stays for
/// many hours), normalized to unit mean before rescaling. Useful as a
/// stand-in for a real measurement file in hermetic builds.
const std::vector<CdfPoint>& bundled_session_trace();

/// Which law a scenario asks for.
enum class LifetimeKind : std::uint8_t {
  kExponential,
  kWeibull,
  kPareto,
  kTrace,
};

std::string to_string(LifetimeKind kind);

/// Declarative lifetime description, buildable into a model. `shape` is the
/// Weibull shape / Pareto tail index (ignored by the other laws).
struct LifetimeSpec {
  LifetimeKind kind = LifetimeKind::kExponential;
  double shape = 1.0;

  /// Builds the model at the given mean. Throws PreconditionError on
  /// invalid parameters (mean <= 0, Weibull shape <= 0, Pareto alpha <= 1).
  std::shared_ptr<const LifetimeModel> build(double mean) const;
};

}  // namespace emergence::workload

#include "workload/lifetime.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace emergence::workload {

ExponentialLifetime::ExponentialLifetime(double mean) : mean_(mean) {
  require(mean > 0.0, "ExponentialLifetime: mean must be positive");
}

double ExponentialLifetime::sample(Rng& rng) const {
  // Exactly the draw ChurnDriver used to make inline; the bit-for-bit
  // default-behavior regression in tests/test_churn_models.cpp rests on it.
  return rng.exponential(mean_);
}

WeibullLifetime::WeibullLifetime(double shape, double mean)
    : shape_(shape), mean_(mean) {
  require(shape > 0.0, "WeibullLifetime: shape must be positive");
  require(mean > 0.0, "WeibullLifetime: mean must be positive");
  scale_ = mean / std::tgamma(1.0 + 1.0 / shape);
}

double WeibullLifetime::sample(Rng& rng) const {
  const double u = rng.real();  // in [0, 1): log1p(-u) is finite
  return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

ParetoLifetime::ParetoLifetime(double alpha, double mean)
    : alpha_(alpha), mean_(mean) {
  require(alpha > 1.0, "ParetoLifetime: alpha must exceed 1 (finite mean)");
  require(mean > 0.0, "ParetoLifetime: mean must be positive");
  scale_ = mean * (alpha - 1.0);
}

double ParetoLifetime::sample(Rng& rng) const {
  const double u = rng.real();  // in [0, 1): 1-u > 0
  return scale_ * (std::pow(1.0 - u, -1.0 / alpha_) - 1.0);
}

namespace {

/// Mean of the piecewise-linear CDF: each knot interval contributes
/// (q_{i+1} - q_i) of probability mass spread uniformly over
/// [v_i, v_{i+1}], so its mean contribution is the interval midpoint.
double piecewise_linear_mean(const std::vector<CdfPoint>& table) {
  double mean = 0.0;
  for (std::size_t i = 1; i < table.size(); ++i) {
    mean += (table[i].quantile - table[i - 1].quantile) *
            (table[i].value + table[i - 1].value) * 0.5;
  }
  return mean;
}

}  // namespace

TraceLifetime::TraceLifetime(std::vector<CdfPoint> table, double mean,
                             std::string trace_name)
    : table_(std::move(table)), mean_(mean), name_(std::move(trace_name)) {
  require(mean > 0.0, "TraceLifetime: mean must be positive");
  require(table_.size() >= 2, "TraceLifetime: need at least two CDF knots");
  require(table_.front().quantile == 0.0,
          "TraceLifetime: CDF must start at quantile 0");
  require(table_.back().quantile == 1.0,
          "TraceLifetime: CDF must end at quantile 1");
  for (std::size_t i = 0; i < table_.size(); ++i) {
    require(table_[i].value >= 0.0,
            "TraceLifetime: CDF values must be non-negative");
    if (i == 0) continue;
    require(table_[i].quantile > table_[i - 1].quantile,
            "TraceLifetime: CDF quantiles must be strictly increasing");
    require(table_[i].value >= table_[i - 1].value,
            "TraceLifetime: CDF values must be non-decreasing");
  }
  const double raw_mean = piecewise_linear_mean(table_);
  require(raw_mean > 0.0, "TraceLifetime: CDF mean must be positive");
  const double scale = mean / raw_mean;
  for (CdfPoint& point : table_) point.value *= scale;
}

double TraceLifetime::sample(Rng& rng) const {
  const double u = rng.real();
  // First knot with quantile >= u; u < 1 and the last quantile is 1, so a
  // successor always exists.
  const auto it = std::lower_bound(
      table_.begin(), table_.end(), u,
      [](const CdfPoint& p, double q) { return p.quantile < q; });
  if (it == table_.begin()) return it->value;
  const CdfPoint& hi = *it;
  const CdfPoint& lo = *(it - 1);
  const double t = (u - lo.quantile) / (hi.quantile - lo.quantile);
  return lo.value + t * (hi.value - lo.value);
}

const std::vector<CdfPoint>& bundled_session_trace() {
  // Shaped like measured Kad/Gnutella session-time CDFs: a short-session
  // bulk (half the sessions are gone within ~0.25x the mean) and a long
  // tail (the top 2% stay ~8-30x the mean). Values are in unit-mean
  // seconds; TraceLifetime rescales them to the scenario's target mean.
  static const std::vector<CdfPoint> kTrace = {
      {0.00, 0.000}, {0.05, 0.016}, {0.10, 0.034}, {0.20, 0.075},
      {0.30, 0.125}, {0.40, 0.190}, {0.50, 0.270}, {0.60, 0.380},
      {0.70, 0.540}, {0.80, 0.800}, {0.88, 1.200}, {0.93, 1.800},
      {0.96, 2.700}, {0.98, 4.200}, {0.99, 6.500}, {0.998, 13.00},
      {1.00, 30.00},
  };
  return kTrace;
}

std::string to_string(LifetimeKind kind) {
  switch (kind) {
    case LifetimeKind::kExponential: return "exponential";
    case LifetimeKind::kWeibull: return "weibull";
    case LifetimeKind::kPareto: return "pareto";
    case LifetimeKind::kTrace: return "trace";
  }
  return "unknown";
}

std::shared_ptr<const LifetimeModel> LifetimeSpec::build(double mean) const {
  require(mean > 0.0, "LifetimeSpec: mean lifetime must be positive");
  switch (kind) {
    case LifetimeKind::kExponential:
      return std::make_shared<ExponentialLifetime>(mean);
    case LifetimeKind::kWeibull:
      return std::make_shared<WeibullLifetime>(shape, mean);
    case LifetimeKind::kPareto:
      return std::make_shared<ParetoLifetime>(shape, mean);
    case LifetimeKind::kTrace:
      return std::make_shared<TraceLifetime>(bundled_session_trace(), mean);
  }
  throw PreconditionError("LifetimeSpec: unknown lifetime kind");
}

}  // namespace emergence::workload

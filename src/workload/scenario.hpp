// Declarative workload scenarios: one spec describes a whole service run.
//
// A ScenarioSpec pins everything a SessionFleet world needs — DHT backend
// and population, routing scheme and geometry, the arrival process feeding
// new TimedReleaseSessions, the churn lifetime law, the adversary, the
// emerging period T and its churn ratio alpha, and the session budget. The
// registry names ~10 curated scenarios (README table); parse_scenario()
// resolves "name" or "name:key=value,key=value" override strings with
// validated error.hpp diagnostics, which is what bench/service_load and
// the workload-smoke CI job drive.
//
// Scale knobs (population, sessions, worlds, seed) deliberately override
// cleanly: the named scenarios define the *shape* of the load, the caller
// sizes it — the same metro-diurnal spec runs as a 384-node CI smoke and
// as the 100k-node / 500k-session acceptance world.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "emerge/e2e_runner.hpp"
#include "emerge/types.hpp"
#include "workload/arrival.hpp"
#include "workload/lifetime.hpp"

namespace emergence::workload {

/// Everything one service-load run needs, in one declarative value.
struct ScenarioSpec {
  std::string name;
  std::string summary;  ///< one-line registry description

  // -- substrate ---------------------------------------------------------------
  core::DhtBackend backend = core::DhtBackend::kChord;
  std::size_t population = 1000;

  // -- scheme ------------------------------------------------------------------
  core::SchemeKind scheme = core::SchemeKind::kJoint;
  core::PathShape shape{2, 3};
  std::size_t carriers_n = 0;   ///< share scheme: holders per column (0 = k+1)
  std::size_t threshold_m = 0;  ///< share scheme: Shamir threshold (0 = k)

  // -- traffic -----------------------------------------------------------------
  ArrivalSpec arrival;
  std::size_t sessions = 10000;  ///< session budget (total across worlds)
  double emerging_time = 120.0;  ///< T in virtual seconds

  // -- churn -------------------------------------------------------------------
  bool churn = true;
  /// T = alpha * mean node lifetime (the paper's churn ratio). A service
  /// world outlives any one session, so realistic service scenarios use
  /// alpha << 1 (nodes live much longer than one emerging period).
  double churn_alpha = 0.01;
  LifetimeSpec lifetime;
  double transient_fraction = 0.0;

  // -- adversary ---------------------------------------------------------------
  core::AttackMode attack_mode = core::AttackMode::kCovert;
  double malicious_p = 0.0;  ///< coalition fraction of the population

  // -- transport ---------------------------------------------------------------
  /// Message-level transport every world's network runs on (latency law,
  /// iid loss, bounded retries, optional partition window). The default
  /// ideal() resolves to the historical uniform[10ms, 100ms] draw and is
  /// bit-identical to pre-transport tallies at pinned seeds; the net=
  /// override selects lan / wan / lossy / straggler / partition-heal axes.
  dht::TransportModel transport;

  // -- execution ---------------------------------------------------------------
  /// Independent worlds the budget is split across. Worlds shard over the
  /// sweep pool and merge in ascending index order, so the scenario tally
  /// is bit-identical at any thread count. 1 = one big shared world (the
  /// acceptance configuration).
  std::size_t worlds = 1;
  /// Parallel domains WITHIN each world. 0 (the default) runs the legacy
  /// serial event loop, byte-for-byte identical to pre-executor history;
  /// any value >= 1 drives the world through sim::DomainExecutor's
  /// conservative windows (sessions partitioned by index % domains).
  /// Executor tallies form their own fingerprint family — bit-identical
  /// across ANY domains >= 1 and any worker count, but not comparable to
  /// domains=0 (the executor's barrier-eager global ordering and per-
  /// session rng streams are a deliberately different schedule).
  std::size_t domains = 0;
  std::uint64_t seed = 0x5EA51CE;

  double mean_lifetime() const { return emerging_time / churn_alpha; }
  double holding_period() const {
    return emerging_time / static_cast<double>(shape.l);
  }
  /// Share-scheme defaults, one home (mirrors E2eScenario::resolved_*):
  /// carriers_n == 0 means k+1, threshold_m == 0 means k.
  std::size_t resolved_carriers() const {
    if (scheme != core::SchemeKind::kShare) return shape.k;
    return carriers_n != 0 ? carriers_n : shape.k + 1;
  }
  std::size_t resolved_threshold() const {
    return threshold_m != 0 ? threshold_m : shape.k;
  }
  std::size_t malicious_count() const;
  /// Budget of world `index` (earlier worlds absorb the remainder).
  std::size_t sessions_in_world(std::size_t index) const;
  /// True when the transport keeps the exact-at-tr delivery contract for
  /// this geometry (mirrors E2eScenario::exact_delivery; 1.0 is the
  /// SessionConfig assembly_delay every fleet world uses). The timing
  /// gates in bench/service_load switch from strict equality to the
  /// reap_slack lateness bound when this is false.
  bool exact_delivery() const {
    return transport.resolved(0.010, 0.100)
        .guarantees_exact_delivery(holding_period(), 1.0);
  }

  /// Throws PreconditionError with a field-naming message on any invalid
  /// combination (zero population/sessions, p outside [0,1], alpha <= 0,
  /// share-threshold violations, th too short for the network, ...).
  void validate() const;
};

/// The curated named scenarios (stable order; names are unique).
const std::vector<ScenarioSpec>& scenario_registry();

/// Registry lookup; throws PreconditionError listing the known names when
/// `name` is not one of them.
ScenarioSpec find_scenario(const std::string& name);

/// Resolves "name" or "name:key=value,key=value,...". Override keys:
///   population, sessions, worlds, domains, seed, T, alpha, p, rate,
///   amplitude,
///   period, burst-rate, burst-start, burst-length, burst-period, k, l,
///   carriers, threshold, transient, backend (chord|kademlia),
///   scheme (centralized|disjoint|joint|share),
///   arrival (deterministic|poisson|diurnal|flash-crowd),
///   lifetime (exponential|weibull|pareto|trace), lifetime-shape,
///   net (ideal|lan|wan|lossy|straggler|partition-heal, with optional
///   ';'-separated sub-keys after a ':', e.g. net=lossy:p=0.05;retries=2 —
///   see dht::TransportModel::parse).
/// Throws PreconditionError with the offending token on malformed input;
/// the result is validate()d before it is returned.
ScenarioSpec parse_scenario(const std::string& text);

/// Registers the protocol-shape keys — scheme, k, l, carriers, threshold,
/// T — on `table`, writing through to the given fields. This is the ONE
/// home of those key spellings: scenario_option_table() uses it for
/// "name:key=value" overrides and the `emerged` daemon/submit command
/// lines use it for their flags, so the two surfaces can never drift.
void add_protocol_options(OptionTable& table, core::SchemeKind& scheme,
                          core::PathShape& shape, std::size_t& carriers_n,
                          std::size_t& threshold_m, double& emerging_time);

/// The full override table for one spec: every key parse_scenario accepts,
/// bound to `spec` (which must outlive the table). Exposed so help surfaces
/// (bench drivers, the daemon) render the real key list instead of a copy.
OptionTable scenario_option_table(ScenarioSpec& spec);

/// Bridges a workload scenario onto the e2e cross-validation runner: same
/// backend/scheme/geometry/population/adversary point, `runs` independent
/// single-session worlds. Lets service scenarios reuse the "two engines,
/// one truth" gates where the stat engine defines the same events.
core::E2eScenario to_e2e_scenario(const ScenarioSpec& spec, std::size_t runs);

}  // namespace emergence::workload

#include "workload/session_fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/cloud_store.hpp"
#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "dht/chord_network.hpp"
#include "dht/churn_driver.hpp"
#include "dht/kademlia.hpp"
#include "emerge/e2e_runner.hpp"
#include "emerge/protocol.hpp"
#include "emerge/session_dispatcher.hpp"
#include "obs/trace.hpp"
#include "sim/domain_executor.hpp"
#include "sim/execution_context.hpp"
#include "sim/simulator.hpp"

namespace emergence::workload {

void FleetTally::merge(const FleetTally& other) {
  tally.merge(other.tally);
  latency_us.merge(other.latency_us);
  sessions_started += other.sessions_started;
  sessions_delivered += other.sessions_delivered;
  delivered_on_time += other.delivered_on_time;
  max_delivery_offset_ns =
      std::max(max_delivery_offset_ns, other.max_delivery_offset_ns);
  payload_mismatches += other.payload_mismatches;
  packages_sent += other.packages_sent;
  packages_delivered += other.packages_delivered;
  packages_dropped_malicious += other.packages_dropped_malicious;
  malformed_packages += other.malformed_packages;
  holders_stuck += other.holders_stuck;
  key_assignments += other.key_assignments;
  deliveries += other.deliveries;
  churn_deaths += other.churn_deaths;
  churn_transients += other.churn_transients;
  churn_replacements += other.churn_replacements;
  stray_packages += other.stray_packages;
  arena_slots += other.arena_slots;
  peak_live_sessions = std::max(peak_live_sessions, other.peak_live_sessions);
  events_executed += other.events_executed;
  horizon = std::max(horizon, other.horizon);
  worlds += other.worlds;
  transport.merge(other.transport);
  if (events_per_domain.size() < other.events_per_domain.size()) {
    events_per_domain.resize(other.events_per_domain.size(), 0);
  }
  for (std::size_t i = 0; i < other.events_per_domain.size(); ++i) {
    events_per_domain[i] += other.events_per_domain[i];
  }
}

std::uint64_t FleetTally::fingerprint() const {
  Fingerprint fp;
  fp.mix(tally.release.trials());
  fp.mix(tally.release.successes());
  fp.mix(tally.drop.successes());
  for (std::uint64_t bin : tally.suffix_histogram) fp.mix(bin);
  for (const auto& [key, weight] : latency_us.bins()) {
    fp.mix(static_cast<std::uint64_t>(key));
    fp.mix(weight);
  }
  fp.mix(sessions_started);
  fp.mix(sessions_delivered);
  fp.mix(delivered_on_time);
  fp.mix(static_cast<std::uint64_t>(max_delivery_offset_ns));
  fp.mix(payload_mismatches);
  fp.mix(packages_sent);
  fp.mix(packages_delivered);
  fp.mix(packages_dropped_malicious);
  fp.mix(malformed_packages);
  fp.mix(holders_stuck);
  fp.mix(key_assignments);
  fp.mix(deliveries);
  fp.mix(churn_deaths);
  fp.mix(churn_transients);
  fp.mix(churn_replacements);
  fp.mix(stray_packages);
  fp.mix(arena_slots);
  fp.mix(peak_live_sessions);
  fp.mix(events_executed);
  fp.mix(worlds);
  // horizon is a double but merges exactly (max), so its bits belong in
  // the digest too.
  std::uint64_t horizon_bits = 0;
  static_assert(sizeof(horizon_bits) == sizeof(horizon));
  std::memcpy(&horizon_bits, &horizon, sizeof(horizon_bits));
  fp.mix(horizon_bits);
  return fp.value();
}

namespace {

/// Per-session state parked in a stable-address arena slot. A slot is
/// reused (optional re-emplaced) as soon as its session is reaped; every
/// simulator event a session schedules fires at or before tr plus the
/// transport's reap_slack (zero for ideal), and the reaper runs kReapGrace
/// past that, so no event can outlive its slot tenancy.
struct Slot {
  std::optional<core::TimedReleaseSession> session;
  std::unique_ptr<core::Adversary> adversary;
  cloud::BlobId blob;
  std::uint64_t index = 0;  ///< global session index in this world
  double send_time = 0.0;
  double release_time = 0.0;
  /// Executor mode: the session's private draw stream (transport samples,
  /// lookup entry picks) and its domain assignment (index % domains). The
  /// stream must live in the slot — transport retry closures capture a
  /// reference to it across windows.
  Rng rng{0};
  std::size_t domain = 0;
};

}  // namespace

FleetTally SessionFleet::run(const FleetProgress& progress) {
  const ScenarioSpec& s = spec_;
  const std::size_t budget = s.sessions_in_world(world_index_);
  FleetTally out;
  out.worlds = 1;
  if (budget == 0) return out;

  // Sub-streams of the world stream; each consumer owns one so the draw
  // sequences stay independent of interleaving (the determinism contract).
  const Rng root = Rng(s.seed).fork(world_index_);
  Rng net_rng = root.fork(1);
  Rng mark_rng = root.fork(2);
  Rng churn_mark_rng = root.fork(3);
  Rng arrival_rng = root.fork(4);

  sim::Simulator sim;
  std::unique_ptr<dht::ChordNetwork> chord;
  std::unique_ptr<dht::KademliaNetwork> kademlia;
  dht::Network* net = nullptr;
  if (s.backend == core::DhtBackend::kChord) {
    dht::NetworkConfig cfg;
    cfg.run_maintenance = s.churn;
    // Perf-suite cadence, not the e2e harness's: a service world has
    // population * horizon / interval maintenance events, and replica
    // repair scans every stored key it holds — at 100k nodes and ~180k
    // live stored layer keys those two terms dominate the wall clock.
    // Repair still runs ~5x per mean emerging period, far above the churn
    // rates any scenario in the registry drives.
    cfg.stabilize_interval = 60.0;
    cfg.replica_repair_interval = 240.0;
    // O(log n) joins: a service world sees thousands of churn joins, and
    // periodic fix_fingers converges the copied tables (perf suite model).
    cfg.exact_join_fingers = false;
    cfg.transport = s.transport;
    chord = std::make_unique<dht::ChordNetwork>(sim, net_rng, cfg);
    chord->bootstrap(s.population);
    net = chord.get();
  } else {
    dht::KademliaConfig cfg;
    cfg.run_maintenance = s.churn;
    cfg.republish_interval = 240.0;
    cfg.transport = s.transport;
    kademlia = std::make_unique<dht::KademliaNetwork>(sim, net_rng, cfg);
    kademlia->bootstrap(s.population);
    net = kademlia.get();
  }

  cloud::CloudStore cloud;
  core::SessionDispatcher dispatcher(*net);

  // Serial trace shard: barrier-phase network traffic (maintenance, churn,
  // legacy-mode sessions) plus the lifecycle spans the reaper emits. Null
  // leaves tracing entirely off — no recording, no sampling.
  obs::TraceShard* serial_trace = nullptr;
  if (tracer_ != nullptr) {
    serial_trace = tracer_->new_shard();
    if (chord) chord->set_trace_shard(serial_trace);
    if (kademlia) kademlia->set_trace_shard(serial_trace);
  }

  // -- executor mode (spec.domains >= 1): conservative-window parallel
  // execution of this one world. The lookahead is the transport's
  // single-attempt latency floor (min_single_latency; the constructor
  // rejects 0 and asks for an explicit epsilon), clamped strictly below
  // kReapGrace so a reap — a barrier-eager global event — can never share
  // a window with its session's still-pending domain events (slot
  // recycling safety; see sim/domain_executor.hpp).
  std::optional<sim::DomainExecutor> exec;
  std::vector<dht::TransportStats> domain_tstats;
  std::vector<dht::LookupStats> domain_lstats;
  std::vector<obs::TraceShard*> domain_traces;
  if (s.domains >= 1) {
    const double lookahead =
        std::min(net->transport().min_single_latency(), kReapGrace / 2.0);
    exec.emplace(sim, s.domains, lookahead);
    domain_tstats.resize(s.domains);
    domain_lstats.resize(s.domains);
    if (tracer_ != nullptr) {
      // One single-writer shard per domain, same idiom as the stats shards.
      // Exports content-sort the merged multiset, so the trace bytes are
      // invariant across domain counts just like the merged stats.
      domain_traces.resize(s.domains);
      for (std::size_t d = 0; d < s.domains; ++d) {
        domain_traces[d] = tracer_->new_shard();
      }
    }
  }

  // One shared coalition, marked once per world; per-session Adversary
  // instances share it (adversary.hpp Config::coalition) while keeping
  // their captured knowledge private — concurrent sessions reuse
  // LayerKeyId coordinates, so knowledge must never be pooled.
  std::shared_ptr<core::Coalition> coalition;
  const std::size_t coalition_size = s.malicious_count();
  if (coalition_size > 0) {
    coalition = std::make_shared<core::Coalition>();
    const std::vector<dht::NodeId>& initial = net->alive_ids();
    for (std::uint32_t pick :
         mark_rng.sample_without_replacement(initial.size(), coalition_size)) {
      coalition->insert(initial[pick]);
    }
  }

  std::optional<dht::ChurnDriver> churn;
  if (s.churn) {
    dht::ChurnConfig cfg;
    cfg.replace_dead_nodes = true;
    cfg.transient_fraction = s.transient_fraction;
    cfg.lifetime = s.lifetime.build(s.mean_lifetime());
    churn.emplace(*net, cfg);
    if (coalition) {
      // Replacement joins are malicious i.i.d. at the coalition rate; one
      // insert into the shared set marks them for every live session.
      const double fresh_rate = static_cast<double>(coalition_size) /
                                static_cast<double>(s.population);
      churn->on_death = [&churn_mark_rng, &coalition, fresh_rate](
                            const dht::NodeId&, const dht::NodeId* replacement) {
        if (replacement == nullptr) return;
        if (churn_mark_rng.chance(fresh_rate)) coalition->insert(*replacement);
      };
    }
    churn->start();
  }

  const core::PathShape shape = s.scheme == core::SchemeKind::kCentralized
                                    ? core::PathShape{1, 1}
                                    : s.shape;
  const double th = s.emerging_time / static_cast<double>(shape.l);
  // A lossy/partitioned transport can land a session's last protocol
  // events (clamped forwards, retransmitted deliveries) after tr +
  // kReapGrace; widen the reap schedule so no session event can outlive
  // its slot tenancy. Exactly zero for the ideal default, keeping every
  // historical reap instant — and therefore the tally fingerprint —
  // bit-identical.
  const double reap_slack = s.transport.reap_slack(shape.l);

  core::SessionConfig config;
  config.kind = s.scheme == core::SchemeKind::kCentralized
                    ? core::SchemeKind::kJoint
                    : s.scheme;
  config.shape = shape;
  if (s.scheme == core::SchemeKind::kShare) {
    config.carriers_n = s.resolved_carriers();
    config.threshold_m = s.resolved_threshold();
  }
  config.emerging_time = s.emerging_time;

  const Bytes payload = bytes_of("service-load-payload");
  const std::shared_ptr<const ArrivalProcess> arrivals = s.arrival.build();

  std::vector<std::unique_ptr<Slot>> arena;
  std::vector<std::size_t> free_slots;
  std::uint64_t started = 0;
  std::uint64_t reaped = 0;

  auto reap = [&](std::size_t slot_index) {
    Slot& slot = *arena[slot_index];
    const core::TimedReleaseSession& session = *slot.session;
    const core::SessionReport& report = session.report();

    // Shared reduction (e2e_runner.hpp): the release rule and delivery
    // tolerance live there, matched to the stat engine.
    const core::SessionOutcome outcome = core::reduce_session_outcome(
        session, slot.adversary.get(), s.scheme, th, shape.l);
    out.tally.add(outcome.stat);

    if (outcome.delivered) {
      ++out.sessions_delivered;
      if (outcome.on_time) ++out.delivered_on_time;
      out.max_delivery_offset_ns =
          std::max(out.max_delivery_offset_ns, outcome.abs_offset_ns);
      out.latency_us.add(outcome.latency_us);
      if (slot.index % kPayloadCheckStride == 0) {
        // Full receiver-side decrypt against the cloud ciphertext.
        const std::optional<Bytes> plain = slot.session->receiver_decrypt(
            "svc-" + std::to_string(slot.index));
        if (!plain.has_value() || *plain != payload) ++out.payload_mismatches;
      }
    }
    // Lifecycle spans, emitted here at the serial reap barrier where every
    // timing fact of the session is known. The sampling key is pure content
    // (world, session index) — never a world rng draw — so the sampled set
    // is identical at any domain/thread count and with tracing on or off
    // the tally bytes cannot differ.
    if (serial_trace != nullptr) {
      Fingerprint key;
      key.mix(world_index_);
      key.mix(slot.index);
      if (serial_trace->sample(key.value())) {
        const std::uint64_t span_id =
            (static_cast<std::uint64_t>(world_index_) << 40) | slot.index;
        auto record = [&](const char* name, double at, double dur,
                          std::vector<std::pair<std::string, std::string>>
                              extra = {}) {
          obs::TraceEvent ev;
          ev.ts_us = static_cast<std::int64_t>(std::llround(at * 1e6));
          ev.dur_us = static_cast<std::int64_t>(std::llround(dur * 1e6));
          ev.name = name;
          ev.cat = "session";
          ev.id = span_id;
          ev.args = {{"world", std::to_string(world_index_)},
                     {"session", std::to_string(slot.index)}};
          for (auto& kv : extra) ev.args.push_back(std::move(kv));
          serial_trace->record(std::move(ev));
        };
        record("submit", slot.send_time, 0.0);
        record("onion_build", slot.send_time, 0.0,
               {{"k", std::to_string(shape.k)},
                {"l", std::to_string(shape.l)}});
        record("layer_key_puts", slot.send_time, 0.0,
               {{"count", std::to_string(report.key_assignments)}});
        for (std::size_t c = 1; c <= shape.l; ++c) {
          record("hold", slot.send_time + static_cast<double>(c - 1) * th, th,
                 {{"column", std::to_string(c)}});
        }
        if (outcome.delivered) {
          record("reassemble", slot.release_time, 0.0);
          record("deliver", slot.release_time, 0.0,
                 {{"on_time", outcome.on_time ? "1" : "0"}});
        } else {
          record("drop", slot.release_time, 0.0);
        }
      }
    }
    out.packages_sent += report.packages_sent;
    out.packages_delivered += report.packages_delivered;
    out.packages_dropped_malicious += report.packages_dropped_malicious;
    out.malformed_packages += report.malformed_packages;
    out.holders_stuck += report.holders_stuck;
    out.key_assignments += report.key_assignments;
    out.deliveries += report.deliveries;

    // Recycle: erase the session's stored layer keys from the world,
    // deregister from the dispatcher, release the cloud blob, free the slot.
    slot.session->retire();
    cloud.remove(slot.blob);
    slot.session.reset();
    slot.adversary.reset();
    free_slots.push_back(slot_index);
    ++reaped;
    if (reaped == budget && churn.has_value()) churn->stop();
  };

  auto start_one = [&]() {
    std::size_t slot_index;
    if (!free_slots.empty()) {
      slot_index = free_slots.back();
      free_slots.pop_back();
    } else {
      slot_index = arena.size();
      arena.push_back(std::make_unique<Slot>());
    }
    Slot& slot = *arena[slot_index];
    slot.index = started++;
    out.peak_live_sessions =
        std::max(out.peak_live_sessions, started - reaped);

    core::Adversary* adversary = nullptr;
    if (coalition) {
      core::Adversary::Config acfg;
      acfg.mode = s.attack_mode;
      acfg.onion_slots_k =
          s.scheme == core::SchemeKind::kShare ? 0 : shape.k;
      acfg.share_threshold_m =
          s.scheme == core::SchemeKind::kShare ? s.resolved_threshold() : 1;
      acfg.coalition = coalition;
      slot.adversary = std::make_unique<core::Adversary>(acfg);
      adversary = slot.adversary.get();
    }

    {
      // Executor mode: the whole setup runs under the session's execution
      // context, so every simulator event it schedules (package deliveries,
      // retransmits, assembly, forwards, probes) lands in the session's
      // domain queue, every transport/lookup draw comes from the session's
      // private stream, and stats accumulate into per-domain shards. Setup
      // itself fires at the serial barrier, so its shared-state writes
      // (store_on, dispatcher registration, cloud upload) are race-free.
      // Legacy mode (no executor) leaves the scope disengaged: identical
      // statements, identical draws, identical event ids.
      std::optional<sim::ExecutionContext::Scope> scope;
      if (exec.has_value()) {
        slot.domain =
            static_cast<std::size_t>(slot.index) % exec->domain_count();
        slot.rng = root.fork(16 + slot.index).fork(1);
        sim::ExecutionContext ctx;
        ctx.world = &sim;
        ctx.domain = &exec->domain(slot.domain);
        ctx.clock = &sim;
        ctx.rng = &slot.rng;
        ctx.transport_stats = &domain_tstats[slot.domain];
        ctx.lookup_stats = &domain_lstats[slot.domain];
        if (!domain_traces.empty()) ctx.trace = domain_traces[slot.domain];
        scope.emplace(ctx);
      }
      slot.session.emplace(core::SessionArgs{
          net, &cloud, adversary, config,
          root.fork(16 + slot.index).seed(), &dispatcher});
      slot.blob =
          slot.session->send(payload, "svc-" + std::to_string(slot.index));
      slot.send_time = sim.now();
      slot.release_time = slot.session->release_time();

      if (adversary != nullptr) {
        // Coalition knowledge grows at package-arrival instants ts +
        // (c-1)*th; one probe shortly after each wave pins the earliest
        // possession time (same model as the e2e harness). Probes fire
        // before tr, the reaper after tr + grace, so the adversary pointer
        // outlives every probe. Under a context the probes are session
        // events (domain queue) — they read/mutate only this session's
        // adversary plus the frozen coalition set.
        const double probe_offset = std::min(0.5, th / 4.0);
        for (std::size_t c = 1; c <= shape.l; ++c) {
          sim.schedule_at(
              slot.send_time + static_cast<double>(c - 1) * th + probe_offset,
              [adversary, &sim]() { adversary->attempt_restore(sim.now()); });
        }
      }
    }
    // The reap stays a GLOBAL event in both modes: it mutates shared state
    // (network erase, dispatcher deregistration, slot recycling) and so
    // belongs to the serial barrier.
    sim.schedule_at(slot.release_time + kReapGrace + reap_slack,
                    [&reap, slot_index]() { reap(slot_index); });
  };

  // Open-loop arrivals: each arrival event starts one session and
  // schedules the next arrival until the budget is exhausted.
  std::function<void()> arrive = [&]() {
    start_one();
    if (started < static_cast<std::uint64_t>(budget)) {
      sim.schedule_at(arrivals->next_after(sim.now(), arrival_rng), arrive);
    }
  };
  sim.schedule_at(arrivals->next_after(0.0, arrival_rng), arrive);

  constexpr double kChunk = 120.0;
  if (exec.has_value()) {
    // Window-barrier drive: rounds until the budget is reaped (reaps are
    // barrier events, so the predicate — checked between rounds — observes
    // them race-free). Progress heartbeats are throttled to the serial
    // drive's virtual-time chunk.
    double next_report = kChunk;
    const bool stopped = exec->run([&]() {
      if (progress && sim.raw_now() >= next_report) {
        progress(sim.raw_now(), reaped, started);
        next_report = sim.raw_now() + kChunk;
      }
      return reaped >= static_cast<std::uint64_t>(budget);
    });
    if (!stopped) {
      throw ProtocolError(
          "SessionFleet: event queues drained before the session budget "
          "completed (scenario '" + s.name + "')");
    }
    if (progress) progress(sim.raw_now(), reaped, started);
  } else {
    // Drive in fixed virtual-time chunks (fixed regardless of thread count,
    // so chunking cannot affect determinism) to give the progress observer
    // a heartbeat on long single-world runs. When the next pending event
    // lies beyond the chunk (a trickle scenario idling between arrivals),
    // jump straight to it instead of spinning empty chunks — the jump
    // target is a pure function of the event queue, so determinism is
    // unaffected.
    while (reaped < static_cast<std::uint64_t>(budget)) {
      const std::optional<double> next = sim.next_event_time();
      if (!next.has_value()) {
        throw ProtocolError(
            "SessionFleet: event queue drained before the session budget "
            "completed (scenario '" + s.name + "')");
      }
      sim.run_until(std::max(sim.now() + kChunk, *next));
      if (progress) progress(sim.now(), reaped, started);
    }
  }

  out.sessions_started = started;
  out.arena_slots = arena.size();
  out.events_executed = sim.executed_events();
  out.horizon = sim.now();
  out.stray_packages = dispatcher.stray_packages();
  out.transport.merge(net->transport_stats());
  if (exec.has_value()) {
    out.events_executed += exec->domain_events_executed();
    out.events_per_domain = exec->events_per_domain();
    // Per-domain shards fold back in ascending domain order (the merges
    // are commutative; the fixed order keeps the reduction canonical).
    for (const dht::TransportStats& t : domain_tstats) out.transport.merge(t);
    dht::LookupStats merged_lookups;
    for (const dht::LookupStats& l : domain_lstats) merged_lookups.merge(l);
    if (chord) chord->lookup_stats().merge(merged_lookups);
    if (kademlia) kademlia->lookup_stats().merge(merged_lookups);
  }
  if (churn.has_value()) {
    out.churn_deaths = churn->deaths();
    out.churn_transients = churn->transient_outages();
    out.churn_replacements = churn->replacements();
  }
  return out;
}

FleetTally run_scenario(core::SweepRunner& sweeps, const ScenarioSpec& spec,
                        const FleetProgress& progress, obs::Tracer* tracer) {
  spec.validate();
  std::vector<FleetTally> tallies(spec.worlds);
  sweeps.run_shards(spec.worlds, [&](std::size_t world) {
    SessionFleet fleet(spec, world, tracer);
    tallies[world] =
        fleet.run(spec.worlds == 1 ? progress : FleetProgress{});
  });
  // Merge rule: ascending world index (see sweep.cpp).
  FleetTally total;
  for (const FleetTally& tally : tallies) total.merge(tally);
  return total;
}

}  // namespace emergence::workload

#include "workload/arrival.hpp"

#include <cmath>

#include "common/error.hpp"

namespace emergence::workload {

DeterministicArrivals::DeterministicArrivals(double rate) : rate_(rate) {
  require(rate > 0.0, "DeterministicArrivals: rate must be positive");
}

double DeterministicArrivals::next_after(double t, Rng& rng) const {
  (void)rng;  // closed-form: no draws, so the stream stays untouched
  return t + 1.0 / rate_;
}

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  require(rate > 0.0, "PoissonArrivals: rate must be positive");
}

double PoissonArrivals::next_after(double t, Rng& rng) const {
  return t + rng.exponential(1.0 / rate_);
}

DiurnalArrivals::DiurnalArrivals(double base_rate, double amplitude,
                                 double period)
    : base_rate_(base_rate), amplitude_(amplitude), period_(period) {
  require(base_rate > 0.0, "DiurnalArrivals: base rate must be positive");
  require(amplitude >= 0.0 && amplitude < 1.0,
          "DiurnalArrivals: amplitude must lie in [0, 1)");
  require(period > 0.0, "DiurnalArrivals: period must be positive");
}

double DiurnalArrivals::rate_at(double t) const {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return base_rate_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_));
}

double DiurnalArrivals::next_after(double t, Rng& rng) const {
  // Lewis-Shedler thinning against the peak rate. The acceptance loop
  // terminates with probability 1 (the acceptance ratio is bounded below
  // by (1-amplitude)/(1+amplitude) > 0).
  const double peak = base_rate_ * (1.0 + amplitude_);
  double candidate = t;
  for (;;) {
    candidate += rng.exponential(1.0 / peak);
    if (rng.real() * peak <= rate_at(candidate)) return candidate;
  }
}

FlashCrowdArrivals::FlashCrowdArrivals(double base_rate, double burst_rate,
                                       double burst_start, double burst_length,
                                       double burst_period)
    : base_rate_(base_rate),
      burst_rate_(burst_rate),
      burst_start_(burst_start),
      burst_length_(burst_length),
      burst_period_(burst_period) {
  require(base_rate > 0.0, "FlashCrowdArrivals: base rate must be positive");
  require(burst_rate >= base_rate,
          "FlashCrowdArrivals: burst rate must be >= base rate");
  require(burst_start >= 0.0,
          "FlashCrowdArrivals: burst start must be non-negative");
  require(burst_length > 0.0,
          "FlashCrowdArrivals: burst length must be positive");
  require(burst_period >= burst_length,
          "FlashCrowdArrivals: burst period must be >= burst length");
}

double FlashCrowdArrivals::rate_at(double t) const {
  if (t < burst_start_) return base_rate_;
  const double phase = std::fmod(t - burst_start_, burst_period_);
  return phase < burst_length_ ? burst_rate_ : base_rate_;
}

double FlashCrowdArrivals::mean_rate() const {
  const double duty = burst_length_ / burst_period_;
  return base_rate_ + (burst_rate_ - base_rate_) * duty;
}

double FlashCrowdArrivals::next_after(double t, Rng& rng) const {
  // Thinning against the burst rate; acceptance ratio >= base/burst > 0.
  double candidate = t;
  for (;;) {
    candidate += rng.exponential(1.0 / burst_rate_);
    if (rng.real() * burst_rate_ <= rate_at(candidate)) return candidate;
  }
}

std::string to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kDeterministic: return "deterministic";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kFlashCrowd: return "flash-crowd";
  }
  return "unknown";
}

std::shared_ptr<const ArrivalProcess> ArrivalSpec::build() const {
  switch (kind) {
    case ArrivalKind::kDeterministic:
      return std::make_shared<DeterministicArrivals>(rate);
    case ArrivalKind::kPoisson:
      return std::make_shared<PoissonArrivals>(rate);
    case ArrivalKind::kDiurnal:
      return std::make_shared<DiurnalArrivals>(rate, amplitude, period);
    case ArrivalKind::kFlashCrowd:
      return std::make_shared<FlashCrowdArrivals>(rate, burst_rate, burst_start,
                                                  burst_length, burst_period);
  }
  throw PreconditionError("ArrivalSpec: unknown arrival kind");
}

}  // namespace emergence::workload

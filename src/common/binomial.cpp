#include "common/binomial.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace emergence {

double log_choose(std::size_t n, std::size_t k) {
  require(k <= n, "log_choose: k > n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binom_pmf(std::size_t n, std::size_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double lp = std::log(p);
  const double lq = std::log1p(-p);
  const double logpmf = log_choose(n, k) + static_cast<double>(k) * lp +
                        static_cast<double>(n - k) * lq;
  return std::exp(logpmf);
}

double binom_tail_ge(std::size_t n, std::size_t m, double p) {
  if (m == 0) return 1.0;
  if (m > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Sum pmf from m upward, iterating with the pmf ratio to avoid n calls to
  // lgamma. Start from the log pmf at k = m.
  const double lp = std::log(p);
  const double lq = std::log1p(-p);
  double log_term = log_choose(n, m) + static_cast<double>(m) * lp +
                    static_cast<double>(n - m) * lq;
  double term = std::exp(log_term);
  double sum = 0.0;
  const double ratio_base = p / (1.0 - p);
  for (std::size_t k = m; k <= n; ++k) {
    sum += term;
    if (k < n) {
      // pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p)
      term *= ratio_base * static_cast<double>(n - k) /
              static_cast<double>(k + 1);
    }
    if (term < 1e-320) break;  // further terms cannot affect the sum
  }
  return std::min(sum, 1.0);
}

std::vector<double> binom_tail_table(std::size_t n, double p) {
  std::vector<double> tail(n + 2, 0.0);
  if (p <= 0.0) {
    tail[0] = 1.0;
    return tail;
  }
  if (p >= 1.0) {
    for (std::size_t m = 0; m <= n; ++m) tail[m] = 1.0;
    return tail;
  }
  // Build pmf values with the recurrence starting at k=0, then suffix-sum.
  // Accumulate in long double to keep the suffix sums stable.
  std::vector<long double> pmf(n + 1, 0.0L);
  const double lq = std::log1p(-p);
  pmf[0] = std::exp(static_cast<long double>(n) * lq);
  const long double ratio_base = static_cast<long double>(p) / (1.0L - p);
  for (std::size_t k = 0; k < n; ++k) {
    pmf[k + 1] = pmf[k] * ratio_base * static_cast<long double>(n - k) /
                 static_cast<long double>(k + 1);
  }
  // If p*n is large, pmf[0] underflows; rebuild from the mode in that case.
  const auto mode = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(n),
                       std::floor((static_cast<double>(n) + 1.0) * p)));
  if (pmf[mode] <= 0.0L) {
    const double lp = std::log(p);
    for (std::size_t k = 0; k <= n; ++k) {
      pmf[k] = std::exp(static_cast<long double>(
          log_choose(n, k) + static_cast<double>(k) * lp +
          static_cast<double>(n - k) * lq));
    }
  }
  long double acc = 0.0L;
  for (std::size_t m = n + 1; m-- > 0;) {
    acc += pmf[m];
    tail[m] = static_cast<double>(std::min(acc, 1.0L));
  }
  return tail;
}

double pow_one_minus(double p, double k) {
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;
  return std::exp(k * std::log1p(-p));
}

double one_minus_pow_one_minus(double x, double k) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return -std::expm1(k * std::log1p(-x));
}

}  // namespace emergence

// One FNV-1a digest for every fingerprint in the repository.
//
// TransportStats::fingerprint and FleetTally::fingerprint each grew their
// own copy of the same byte-wise FNV-1a loop; the observability layer adds
// two more digest users (MetricsRegistry, trace sampling keys). This header
// is the single implementation. The construction is pinned by golden tests
// (tests/test_obs.cpp): offset 0xcbf29ce484222325, prime 0x100000001b3,
// mixed over the 8 little-endian bytes of each u64 — changing it would
// silently invalidate every recorded fingerprint in BENCH artifacts and CI
// gates, so don't.
#pragma once

#include <cstdint>

namespace emergence {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Mixes the 8 bytes of `v` (low byte first) into the running hash `h`.
inline void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// Streaming FNV-1a accumulator over u64 values. Equal value sequences
/// yield equal digests; the digest of the empty sequence is kFnvOffset.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) {
    fnv1a_mix(h_, v);
    return *this;
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

}  // namespace emergence

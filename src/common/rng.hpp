// Deterministic random source for simulations and experiments.
//
// Every experiment in this repository is reproducible from a single 64-bit
// seed. Rng wraps a std::mt19937_64 and adds the sampling helpers the
// protocol simulations need (population sampling without replacement,
// exponential lifetimes for churn, Bernoulli trials).
//
// Cryptographic randomness is NOT drawn from this class; see
// crypto/drbg.hpp for the ChaCha20-based DRBG used for keys and shares.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/bytes.hpp"

namespace emergence {

/// Seedable pseudo-random source with simulation-oriented helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform real in [0, 1).
  double real();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential variate with the given mean (= 1/rate). Requires mean > 0.
  double exponential(double mean);

  /// Raw 64 random bits.
  std::uint64_t bits();

  /// `count` random bytes (simulation quality, not cryptographic).
  Bytes bytes(std::size_t count);

  /// Chooses `count` distinct indices uniformly from [0, n) without
  /// replacement. Uses Floyd's algorithm: O(count) memory, no O(n) shuffle.
  std::vector<std::uint32_t> sample_without_replacement(std::size_t n,
                                                        std::size_t count);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream by drawing from this engine
  /// (stateful: each call advances the parent and yields a new stream).
  Rng fork();

  /// Derives the independent child stream `stream_id` of this source's
  /// construction seed. Counter-based: the child depends only on
  /// (seed, stream_id), never on engine state or call order, so run *i* of a
  /// sweep gets the same stream no matter which thread executes it or how
  /// many runs came before — the property the parallel SweepRunner builds
  /// its thread-count invariance on. The derivation is a SplitMix64-style
  /// finalizer over an odd-multiplier encoding of the stream id, which is
  /// bijective per seed: distinct stream ids can never collide.
  Rng fork(std::uint64_t stream_id) const;

  /// The seed this source was constructed with (the fork(stream_id) base).
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace emergence

// One key=value configuration surface for the whole repository.
//
// Before this table existed there were three ad-hoc config parsers: the
// scenario override grammar in workload/scenario.cpp (an if/else chain of
// keys), the bench drivers' --flag handling, and the daemon's command line.
// Each kept its own duplicated key list and its own diagnostics. An
// OptionTable replaces all of them: a target struct registers its knobs
// once (name, value hint, help line, typed setter), and the same table then
// serves
//   * scenario strings  — "name:key=value,key=value" overrides,
//   * command lines     — "--key=value" flags (parse_cli),
//   * --help            — a rendered, aligned description of every key.
//
// Diagnostics are validated and uniform: unknown keys list every known key,
// malformed values name the offending token (PreconditionError, as
// everywhere else in the library).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace emergence {

/// A named, documented, validated configuration surface.
class OptionTable {
 public:
  /// Typed setter invoked with the raw value text; throws PreconditionError
  /// (usually via the parse_* helpers below) on malformed input.
  using Apply = std::function<void(const std::string& value)>;

  struct Entry {
    std::string name;
    std::string value_hint;  ///< e.g. "N", "SECONDS", "chord|kademlia"
    std::string help;
    Apply apply;
    bool is_flag = false;  ///< value-less on a command line (--verbose)
  };

  /// Registers a key. Names must be unique; duplicate registration throws.
  OptionTable& add(std::string name, std::string value_hint, std::string help,
                   Apply apply);

  // -- typed conveniences (shared diagnostics) --------------------------------
  OptionTable& add_size(std::string name, std::string help, std::size_t* out);
  OptionTable& add_u16(std::string name, std::string help, std::uint16_t* out);
  OptionTable& add_real(std::string name, std::string help, double* out);
  /// Accepts decimal or 0x-prefixed hex (seeds).
  OptionTable& add_u64(std::string name, std::string help, std::uint64_t* out);
  OptionTable& add_string(std::string name, std::string value_hint,
                          std::string help, std::string* out);
  /// Value-less command-line flag; sets *out = true when present. In
  /// key=value surfaces it accepts explicit true/false.
  OptionTable& add_flag(std::string name, std::string help, bool* out);
  /// Enumerated value: `choices` maps the accepted spellings to setters.
  OptionTable& add_choice(
      std::string name, std::string help,
      std::vector<std::pair<std::string, std::function<void()>>> choices);

  /// Applies one key=value pair; throws PreconditionError with the known-key
  /// list on an unknown key and with the offending token on a bad value.
  /// `context` prefixes diagnostics (e.g. "scenario override").
  void apply(const std::string& key, const std::string& value,
             const std::string& context = "option") const;

  bool contains(const std::string& key) const;
  const std::vector<Entry>& entries() const { return entries_; }
  /// Comma-separated known keys (for diagnostics).
  std::string known_keys() const;

  /// Parses "--key=value" / "--flag" arguments starting at argv[first].
  /// Returns the positional (non --) arguments in order; throws on unknown
  /// or malformed flags. "--" ends flag parsing.
  std::vector<std::string> parse_cli(int argc, const char* const* argv,
                                     int first = 1) const;

  /// Renders the aligned help table, one "  --name=HINT  help" line per
  /// entry (prefix defaults to the command-line form).
  std::string help(const std::string& prefix = "--") const;

 private:
  const Entry* find(const std::string& key) const;

  std::vector<Entry> entries_;
};

// -- shared value parsers (uniform diagnostics; used by the typed helpers
// and by bespoke setters that need them) --------------------------------------
double parse_real_option(const std::string& key, const std::string& value);
std::size_t parse_size_option(const std::string& key, const std::string& value);
/// Decimal or 0x hex, no sign.
std::uint64_t parse_u64_option(const std::string& key,
                               const std::string& value);
bool parse_bool_option(const std::string& key, const std::string& value);

}  // namespace emergence

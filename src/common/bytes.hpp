// Byte-buffer primitives shared by every subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace emergence {

/// Owning byte buffer. The library works in terms of this alias so that the
/// representation can be swapped (e.g. for a secure-wiping allocator) in one
/// place.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Immutable shared byte buffer: the zero-copy currency of the DHT layer.
/// A payload is allocated once at its producer and then travels through
/// send/store/replicate by reference count; replicas on many nodes and
/// messages in flight all alias one allocation. Dropping a node only drops
/// references, so views handed out earlier stay valid for their holders.
using SharedBytes = std::shared_ptr<const Bytes>;

/// Moves an owning buffer into a SharedBytes (the single copy/allocation a
/// payload pays on its way into the zero-copy paths).
inline SharedBytes shared_bytes(Bytes&& data) {
  return std::make_shared<const Bytes>(std::move(data));
}

/// Builds a buffer from a string literal / std::string (no encoding applied).
Bytes bytes_of(std::string_view text);

/// Renders a buffer as a std::string (bytes copied verbatim).
std::string string_of(BytesView data);

/// Returns `a || b`.
Bytes concat(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Constant-time equality; resists timing side channels when comparing MACs.
bool constant_time_equal(BytesView a, BytesView b);

/// XORs `b` into `a` elementwise. Both spans must have equal length.
void xor_into(std::span<std::uint8_t> a, BytesView b);

}  // namespace emergence

#include "common/rng.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace emergence {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::uniform: empty range");
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  require(n > 0, "Rng::index: empty range");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double Rng::real() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

double Rng::exponential(double mean) {
  require(mean > 0.0, "Rng::exponential: mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::uint64_t Rng::bits() { return engine_(); }

Bytes Rng::bytes(std::size_t count) {
  Bytes out(count);
  std::size_t i = 0;
  while (i < count) {
    std::uint64_t word = bits();
    for (int b = 0; b < 8 && i < count; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::size_t n,
                                                           std::size_t count) {
  require(count <= n, "sample_without_replacement: count > population");
  // Floyd's algorithm: for j in [n-count, n), pick t in [0, j]; insert t or,
  // if taken, insert j. Produces a uniform sample of `count` distinct values.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(count * 2);
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t j = n - count; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(uniform(0, j));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(static_cast<std::uint32_t>(j));
      out.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(bits()); }

namespace {

/// SplitMix64 finalizer (Steele, Lea, Flood 2014): a bijective avalanche
/// mix on 64 bits.
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;  // 2^64 / phi, odd

}  // namespace

Rng Rng::fork(std::uint64_t stream_id) const {
  // mix64 is bijective and stream_id * kGolden is bijective (odd multiplier),
  // so for a fixed seed the child seeds are a permutation of the stream ids:
  // distinct streams get distinct seeds by construction.
  const std::uint64_t base = mix64(seed_ + kGolden);
  return Rng(mix64(base ^ (stream_id * kGolden + 0x6a09e667f3bcc909ULL)));
}

}  // namespace emergence

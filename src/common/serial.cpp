#include "common/serial.hpp"

#include <limits>

#include "common/error.hpp"

namespace emergence {

void BinaryWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void BinaryWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void BinaryWriter::blob(BytesView data) {
  require(data.size() <= std::numeric_limits<std::uint32_t>::max(),
          "BinaryWriter::blob: payload too large");
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void BinaryWriter::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void BinaryWriter::str(std::string_view s) {
  blob(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void BinaryReader::need(std::size_t n) const {
  if (remaining() < n) throw CodecError("BinaryReader: truncated input");
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t BinaryReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t BinaryReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes BinaryReader::blob() {
  const std::uint32_t n = u32();
  return raw(n);
}

Bytes BinaryReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

std::string BinaryReader::str() {
  Bytes b = blob();
  return std::string(b.begin(), b.end());
}

void BinaryReader::expect_done() const {
  if (!done()) throw CodecError("BinaryReader: trailing bytes");
}

}  // namespace emergence

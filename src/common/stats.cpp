#include "common/stats.hpp"

#include <cmath>

namespace emergence {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStat::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

void RateStat::add(bool success) {
  ++trials_;
  if (success) ++successes_;
}

double RateStat::rate() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

double RateStat::stderr_rate() const {
  if (trials_ == 0) return 0.0;
  const double r = rate();
  return std::sqrt(r * (1.0 - r) / static_cast<double>(trials_));
}

}  // namespace emergence

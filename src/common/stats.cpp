#include "common/stats.hpp"

#include <cmath>

namespace emergence {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan, Golub, LeVeque (1983): combine two Welford partials.
  const double delta = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  const double nb = static_cast<double>(other.n_);
  const double ratio = static_cast<double>(n_) * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * ratio;
  mean_ += delta * nb / static_cast<double>(n);
  n_ = n;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStat::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

void RateStat::add(bool success) {
  ++trials_;
  if (success) ++successes_;
}

void RateStat::merge(const RateStat& other) {
  trials_ += other.trials_;
  successes_ += other.successes_;
}

double RateStat::rate() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

double RateStat::stderr_rate() const {
  if (trials_ == 0) return 0.0;
  const double r = rate();
  return std::sqrt(r * (1.0 - r) / static_cast<double>(trials_));
}

}  // namespace emergence

#include "common/stats.hpp"

#include <cmath>

namespace emergence {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan, Golub, LeVeque (1983): combine two Welford partials.
  const double delta = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  const double nb = static_cast<double>(other.n_);
  const double ratio = static_cast<double>(n_) * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * ratio;
  mean_ += delta * nb / static_cast<double>(n);
  n_ = n;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStat::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

void RateStat::add(bool success) {
  ++trials_;
  if (success) ++successes_;
}

void RateStat::merge(const RateStat& other) {
  trials_ += other.trials_;
  successes_ += other.successes_;
}

double RateStat::rate() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

double RateStat::stderr_rate() const {
  if (trials_ == 0) return 0.0;
  const double r = rate();
  return std::sqrt(r * (1.0 - r) / static_cast<double>(trials_));
}

void Histogram64::add(std::int64_t key, std::uint64_t weight) {
  if (weight == 0) return;
  bins_[key] += weight;
  count_ += weight;
}

void Histogram64::merge(const Histogram64& other) {
  for (const auto& [key, weight] : other.bins_) bins_[key] += weight;
  count_ += other.count_;
}

std::int64_t Histogram64::min() const {
  return bins_.empty() ? 0 : bins_.begin()->first;
}

std::int64_t Histogram64::max() const {
  return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::int64_t Histogram64::percentile(double q) const {
  if (count_ == 0) return 0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const double target_real = q * static_cast<double>(count_);
  std::uint64_t target = static_cast<std::uint64_t>(std::ceil(target_real));
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  std::uint64_t cumulative = 0;
  for (const auto& [key, weight] : bins_) {
    cumulative += weight;
    if (cumulative >= target) return key;
  }
  return bins_.rbegin()->first;  // unreachable: counts sum to count_
}

double Histogram64::mean() const {
  if (count_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [key, weight] : bins_) {
    sum += static_cast<double>(key) * static_cast<double>(weight);
  }
  return sum / static_cast<double>(count_);
}

}  // namespace emergence

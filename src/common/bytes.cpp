#include "common/bytes.hpp"

#include "common/error.hpp"

namespace emergence {

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string string_of(BytesView data) {
  return std::string(data.begin(), data.end());
}

Bytes concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void xor_into(std::span<std::uint8_t> a, BytesView b) {
  require(a.size() == b.size(), "xor_into: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

}  // namespace emergence

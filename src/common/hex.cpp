#include "common/hex.hpp"

#include "common/error.hpp"

namespace emergence {
namespace {

constexpr char kDigits[] = "0123456789abcdef";

int nibble_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw CodecError("from_hex: invalid hex digit");
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw CodecError("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble_value(hex[i]);
    const int lo = nibble_value(hex[i + 1]);
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace emergence

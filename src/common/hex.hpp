// Hexadecimal encoding/decoding for byte buffers.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace emergence {

/// Lower-case hex encoding of `data`.
std::string to_hex(BytesView data);

/// Decodes hex text (case-insensitive). Throws CodecError on odd length or
/// non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace emergence

#include "common/options.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/error.hpp"

namespace emergence {

double parse_real_option(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    throw PreconditionError("option '" + key + "=" + value +
                            "': not a number");
  }
  return parsed;
}

std::size_t parse_size_option(const std::string& key,
                              const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.find('-') != std::string::npos) {
    throw PreconditionError("option '" + key + "=" + value +
                            "': not a non-negative integer");
  }
  return static_cast<std::size_t>(parsed);
}

std::uint64_t parse_u64_option(const std::string& key,
                               const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 0);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      value.find('-') != std::string::npos) {
    throw PreconditionError("option '" + key + "=" + value +
                            "': not a 64-bit value");
  }
  return parsed;
}

bool parse_bool_option(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes" || value == "on")
    return true;
  if (value == "false" || value == "0" || value == "no" || value == "off")
    return false;
  throw PreconditionError("option '" + key + "=" + value +
                          "': expected a boolean (true/false)");
}

OptionTable& OptionTable::add(std::string name, std::string value_hint,
                              std::string help, Apply apply) {
  require(!name.empty(), "OptionTable: empty option name");
  require(find(name) == nullptr,
          "OptionTable: duplicate option '" + name + "'");
  entries_.push_back(
      Entry{std::move(name), std::move(value_hint), std::move(help),
            std::move(apply), false});
  return *this;
}

OptionTable& OptionTable::add_size(std::string name, std::string help,
                                   std::size_t* out) {
  const std::string key = name;
  return add(std::move(name), "N", std::move(help),
             [key, out](const std::string& v) {
               *out = parse_size_option(key, v);
             });
}

OptionTable& OptionTable::add_u16(std::string name, std::string help,
                                  std::uint16_t* out) {
  const std::string key = name;
  return add(std::move(name), "N", std::move(help),
             [key, out](const std::string& v) {
               const std::size_t parsed = parse_size_option(key, v);
               if (parsed > 0xFFFF) {
                 throw PreconditionError("option '" + key + "=" + v +
                                         "': exceeds 65535");
               }
               *out = static_cast<std::uint16_t>(parsed);
             });
}

OptionTable& OptionTable::add_real(std::string name, std::string help,
                                   double* out) {
  const std::string key = name;
  return add(std::move(name), "X", std::move(help),
             [key, out](const std::string& v) {
               *out = parse_real_option(key, v);
             });
}

OptionTable& OptionTable::add_u64(std::string name, std::string help,
                                  std::uint64_t* out) {
  const std::string key = name;
  return add(std::move(name), "N", std::move(help),
             [key, out](const std::string& v) {
               *out = parse_u64_option(key, v);
             });
}

OptionTable& OptionTable::add_string(std::string name, std::string value_hint,
                                     std::string help, std::string* out) {
  return add(std::move(name), std::move(value_hint), std::move(help),
             [out](const std::string& v) { *out = v; });
}

OptionTable& OptionTable::add_flag(std::string name, std::string help,
                                   bool* out) {
  const std::string key = name;
  add(std::move(name), "", std::move(help),
      [key, out](const std::string& v) {
        *out = v.empty() ? true : parse_bool_option(key, v);
      });
  entries_.back().is_flag = true;
  return *this;
}

OptionTable& OptionTable::add_choice(
    std::string name, std::string help,
    std::vector<std::pair<std::string, std::function<void()>>> choices) {
  std::string hint;
  std::string expected;  // "a, b or c" prose for diagnostics
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (!hint.empty()) hint += "|";
    hint += choices[i].first;
    if (i > 0) expected += (i + 1 == choices.size()) ? " or " : ", ";
    expected += choices[i].first;
  }
  const std::string key = name;
  return add(std::move(name), std::move(hint), std::move(help),
             [key, expected, choices = std::move(choices)](
                 const std::string& v) {
               for (const auto& [spelling, setter] : choices) {
                 if (v == spelling) {
                   setter();
                   return;
                 }
               }
               throw PreconditionError("option '" + key + "=" + v +
                                       "': expected " + expected);
             });
}

const OptionTable::Entry* OptionTable::find(const std::string& key) const {
  for (const Entry& e : entries_) {
    if (e.name == key) return &e;
  }
  return nullptr;
}

bool OptionTable::contains(const std::string& key) const {
  return find(key) != nullptr;
}

std::string OptionTable::known_keys() const {
  std::string known;
  for (const Entry& e : entries_) {
    if (!known.empty()) known += ", ";
    known += e.name;
  }
  return known;
}

void OptionTable::apply(const std::string& key, const std::string& value,
                        const std::string& context) const {
  const Entry* entry = find(key);
  if (entry == nullptr) {
    throw PreconditionError("unknown " + context + " key '" + key +
                            "' (known: " + known_keys() + ")");
  }
  entry->apply(value);
}

std::vector<std::string> OptionTable::parse_cli(int argc,
                                                const char* const* argv,
                                                int first) const {
  std::vector<std::string> positional;
  bool flags_done = false;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || arg.size() < 2 || arg[0] != '-' || arg[1] != '-') {
      positional.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    const std::string key = body.substr(0, eq);
    const Entry* entry = find(key);
    if (entry == nullptr) {
      throw PreconditionError("unknown flag '--" + key +
                              "' (known: " + known_keys() + ")");
    }
    if (eq == std::string::npos) {
      require(entry->is_flag,
              "flag '--" + key + "' needs a value (--" + key + "=" +
                  entry->value_hint + ")");
      entry->apply("");
    } else {
      entry->apply(body.substr(eq + 1));
    }
  }
  return positional;
}

std::string OptionTable::help(const std::string& prefix) const {
  std::size_t width = 0;
  std::vector<std::string> lefts;
  lefts.reserve(entries_.size());
  for (const Entry& e : entries_) {
    std::string left = prefix + e.name;
    if (!e.value_hint.empty()) left += "=" + e.value_hint;
    width = std::max(width, left.size());
    lefts.push_back(std::move(left));
  }
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "  " + lefts[i];
    out.append(width - lefts[i].size() + 2, ' ');
    out += entries_[i].help;
    out += "\n";
  }
  return out;
}

}  // namespace emergence

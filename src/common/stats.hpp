// Streaming statistics for Monte-Carlo experiment aggregation.
#pragma once

#include <cstddef>

namespace emergence {

/// Welford streaming mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderr_mean() const;
  /// Half-width of a 95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Accumulates Bernoulli outcomes (success counts) and reports the success
/// frequency; used for resilience probabilities.
class RateStat {
 public:
  void add(bool success);

  std::size_t trials() const { return trials_; }
  std::size_t successes() const { return successes_; }
  double rate() const;
  /// Standard error of the estimated rate.
  double stderr_rate() const;

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

}  // namespace emergence

// Streaming statistics for Monte-Carlo experiment aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace emergence {

/// Welford streaming mean/variance accumulator. Mergeable: per-shard
/// accumulators built in parallel combine with merge() (Chan et al.'s
/// pairwise update), which the sweep layer uses to aggregate sharded
/// Monte-Carlo runs. Merging is exact for counts and associative up to
/// floating-point rounding for mean/m2, so deterministic pipelines must
/// merge shards in a fixed order (see docs/architecture.md, "Concurrency
/// and reproducibility").
class RunningStat {
 public:
  void add(double x);

  /// Folds another accumulator into this one as if its samples had been
  /// add()ed here.
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderr_mean() const;
  /// Half-width of a 95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Accumulates Bernoulli outcomes (success counts) and reports the success
/// frequency; used for resilience probabilities.
class RateStat {
 public:
  void add(bool success);

  /// Folds another accumulator into this one. Integer counters only, so the
  /// merge is exact and order-independent: any sharding of the same trials
  /// reproduces the serial tallies bit-identically.
  void merge(const RateStat& other);

  std::size_t trials() const { return trials_; }
  std::size_t successes() const { return successes_; }
  double rate() const;
  /// Standard error of the estimated rate.
  double stderr_rate() const;

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

/// Exact histogram over 64-bit integer keys (e.g. latencies quantized to
/// microseconds). Counters only, so merge() is associative and commutative
/// and any sharding of the same samples reproduces the serial histogram
/// bit-identically — the property that lets the sweep/fleet layers carry
/// latency percentiles without breaking thread-count invariance. Bins are
/// sparse (a service scenario sees a handful of distinct delivery offsets),
/// so an ordered map costs O(distinct keys), not O(range).
class Histogram64 {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);
  void merge(const Histogram64& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::int64_t min() const;  ///< smallest key (0 when empty)
  std::int64_t max() const;  ///< largest key (0 when empty)
  /// Nearest-rank percentile: the smallest key whose cumulative count
  /// reaches ceil(q * count). q is clamped to [0, 1]; 0 when empty.
  std::int64_t percentile(double q) const;
  double mean() const;

  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t count_ = 0;
};

}  // namespace emergence

// Numerically careful binomial and power helpers.
//
// Algorithm 1 of the paper and the closed-form resilience models (eqs. 1-3)
// need binomial tail probabilities for n up to ~10000 and expressions like
// 1-(1-(1-p)^k)^l that underflow in naive arithmetic. Everything here works
// in log space where it matters.
#pragma once

#include <cstddef>
#include <vector>

namespace emergence {

/// log(n choose k); 0 <= k <= n.
double log_choose(std::size_t n, std::size_t k);

/// P[X = k] for X ~ Binom(n, p).
double binom_pmf(std::size_t n, std::size_t k, double p);

/// Upper tail P[X >= m] for X ~ Binom(n, p). m > n yields 0; m == 0 yields 1.
double binom_tail_ge(std::size_t n, std::size_t m, double p);

/// Full upper-tail table: out[m] = P[X >= m] for m in [0, n+1].
/// Computed with one O(n) pass; out[n+1] = 0.
std::vector<double> binom_tail_table(std::size_t n, double p);

/// (1-p)^k computed as exp(k*log1p(-p)); exact at the endpoints.
double pow_one_minus(double p, double k);

/// 1-(1-x)^k computed stably for tiny x (uses expm1/log1p).
double one_minus_pow_one_minus(double x, double k);

}  // namespace emergence

// Exception hierarchy for the emergence library.
//
// All library errors derive from emergence::Error so callers can catch one
// type at the API boundary. Sub-types distinguish programmer errors
// (precondition violations surfaced during development) from data errors
// (malformed or tampered wire bytes) and protocol errors (a peer or the
// simulated network misbehaved).
#pragma once

#include <stdexcept>
#include <string>

namespace emergence {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// Serialized bytes failed to parse or failed authentication.
class CodecError : public Error {
 public:
  using Error::Error;
};

/// Cryptographic operation failed (bad MAC, not enough shares, ...).
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// A protocol-level invariant was violated by a peer or the environment.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Throws PreconditionError with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw PreconditionError(msg);
}

}  // namespace emergence

// Minimal binary serialization used by the onion format and DHT messages.
//
// All integers are little-endian fixed width. Variable-size payloads are
// length-prefixed with u32. The reader throws CodecError on truncation so a
// malformed (or maliciously crafted) buffer can never read out of bounds.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace emergence {

/// Appends primitive values to a growing byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Writes a u32 length prefix followed by the raw bytes.
  void blob(BytesView data);
  /// Writes raw bytes with no length prefix (fixed-size fields).
  void raw(BytesView data);
  void str(std::string_view s);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Consumes primitive values from a byte buffer; throws CodecError when the
/// requested read would run past the end.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes blob();
  Bytes raw(std::size_t n);
  std::string str();

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws CodecError unless the whole buffer has been consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace emergence

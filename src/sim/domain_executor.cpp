#include "sim/domain_executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace emergence::sim {

/// Round barrier shared with the workers: the driver publishes a window end
/// and a generation bump, workers run their domains and report back. All
/// handoffs go through one mutex, which also establishes the happens-before
/// edges the frozen-world reads rely on.
struct DomainExecutor::PoolState {
  std::mutex mutex;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  std::size_t running = 0;
  Time window_end = 0.0;
  bool shutdown = false;
};

DomainExecutor::DomainExecutor(Simulator& global, std::size_t domains,
                               double lookahead, std::size_t threads)
    : global_(global), lookahead_(lookahead) {
  require(domains >= 1, "DomainExecutor: need at least one domain");
  require(domains <= 1024, "DomainExecutor: domain count capped at 1024");
  require(lookahead > 0.0,
          "DomainExecutor: lookahead must be > 0 (a zero-latency transport "
          "has no conservative window; configure an explicit epsilon — see "
          "docs/architecture.md, 'Parallel execution model')");
  for (std::size_t i = 0; i < domains; ++i) domains_.emplace_back();

  std::size_t pool = threads;
  if (pool == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    pool = std::min<std::size_t>(domains, hw == 0 ? 1 : hw);
  }
  pool = std::min(pool, domains);
  if (pool > 1) {
    pool_ = std::make_unique<PoolState>();
    workers_.reserve(pool);
    for (std::size_t w = 0; w < pool; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

DomainExecutor::~DomainExecutor() {
  if (pool_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(pool_->mutex);
      pool_->shutdown = true;
    }
    pool_->start_cv.notify_all();
    for (std::thread& w : workers_) w.join();
  }
}

void DomainExecutor::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    Time end = 0.0;
    {
      std::unique_lock<std::mutex> lock(pool_->mutex);
      pool_->start_cv.wait(lock, [&] {
        return pool_->shutdown || pool_->generation != seen;
      });
      if (pool_->shutdown) return;
      seen = pool_->generation;
      end = pool_->window_end;
    }
    // Static stride: domain d belongs to worker d % workers. Results do not
    // depend on the assignment (domains are independent); only wall-clock
    // does.
    for (std::size_t d = worker_index; d < domains_.size();
         d += workers_.size()) {
      domains_[d].rebind_owner();
      domains_[d].run_before(end);
    }
    {
      std::lock_guard<std::mutex> lock(pool_->mutex);
      --pool_->running;
    }
    pool_->done_cv.notify_one();
  }
}

void DomainExecutor::run_window(Time end) {
  if (pool_ == nullptr) {
    // Serial window pass: identical schedule, no handoff. The single-core /
    // single-domain fallback the bit-identity gates compare against.
    for (Simulator& d : domains_) {
      d.rebind_owner();
      d.run_before(end);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_->mutex);
    pool_->window_end = end;
    pool_->running = workers_.size();
    ++pool_->generation;
  }
  pool_->start_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(pool_->mutex);
    pool_->done_cv.wait(lock, [&] { return pool_->running == 0; });
  }
}

bool DomainExecutor::run_round() {
  // The earliest pending event anywhere. The union of queues is invariant
  // under the domain partition, so the resulting window sequence is too.
  // All queues are quiescent between rounds, so peeking (and the tombstone
  // purge inside next_event_time) is safe from the driver thread.
  std::optional<Time> earliest = global_.next_event_time();
  for (Simulator& d : domains_) {
    d.rebind_owner();
    const std::optional<Time> t = d.next_event_time();
    if (t.has_value() && (!earliest.has_value() || *t < *earliest)) {
      earliest = t;
    }
  }
  if (!earliest.has_value()) return false;

  const Time window_start = std::max(global_.raw_now(), *earliest);
  const Time window_end = window_start + lookahead_;

  // Barrier phase: every shared-state mutation, serial, in (time, seq)
  // order. Session setups redirect their future events into domain queues.
  global_.rebind_owner();
  global_.run_before(window_end);

  // Window phase: frozen world, per-domain queues in parallel.
  run_window(window_end);
  ++rounds_;
  return true;
}

bool DomainExecutor::run(const std::function<bool()>& stop) {
  for (;;) {
    if (stop && stop()) return true;
    if (!run_round()) return false;
  }
}

std::uint64_t DomainExecutor::domain_events_executed() const {
  std::uint64_t total = 0;
  for (const Simulator& d : domains_) total += d.executed_events();
  return total;
}

std::vector<std::uint64_t> DomainExecutor::events_per_domain() const {
  std::vector<std::uint64_t> out;
  out.reserve(domains_.size());
  for (const Simulator& d : domains_) out.push_back(d.executed_events());
  return out;
}

}  // namespace emergence::sim

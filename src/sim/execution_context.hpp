// Thread-local execution context for domain-sharded parallel execution.
//
// The protocol stack schedules everything on "the" world Simulator it got
// from its Network. The domain executor (sim/domain_executor.hpp) instead
// runs session traffic on D per-domain event queues inside conservative
// time windows, and it must do so WITHOUT teaching every layer about
// domains. An ExecutionContext is the seam: while one is active on the
// current thread, calls to the intercepted world simulator's schedule_at /
// schedule_in / now() are redirected to the context's domain queue and
// clock, and the DHT layers swap their shared Rng / TransportStats /
// LookupStats for the context's per-session / per-domain instances (the
// shared ones would race across domains and make draw order depend on the
// domain count).
//
// Events scheduled through a context inherit it: the redirect wraps the
// action so the same context (with the domain queue as its clock) is
// reinstalled when the event later fires on a worker thread. A session's
// whole event tree — package deliveries, assembly, forwards, transport
// retransmits, adversary probes — therefore carries one context and one
// private draw stream, which is what makes the executor's schedule
// independent of both the domain count and the thread count.
//
// The dht:: stats types are forward-declared; this header adds no
// dependency from sim/ onto dht/ (only pointers cross the seam).
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace emergence {
class Rng;
}
namespace emergence::dht {
struct TransportStats;
struct LookupStats;
}  // namespace emergence::dht
namespace emergence::obs {
class TraceShard;
}  // namespace emergence::obs

namespace emergence::sim {

/// The per-event execution environment of domain-sharded runs. Plain value:
/// Scope installs a copy thread-locally, redirected events capture a copy.
class ExecutionContext {
 public:
  /// The simulator being intercepted (the world sim every layer holds).
  Simulator* world = nullptr;
  /// The domain event queue redirected schedules land on.
  Simulator* domain = nullptr;
  /// Authoritative clock for now(): the world sim while a barrier-phase
  /// event (session setup) runs, the domain sim while a window event runs.
  const Simulator* clock = nullptr;
  /// Per-session draw stream replacing the network's shared Rng (transport
  /// latency/drop draws, lookup entry sampling).
  Rng* rng = nullptr;
  /// Per-domain stats replacing the network's shared accumulators; merged
  /// commutatively after the run, so totals are domain-count invariant.
  dht::TransportStats* transport_stats = nullptr;
  dht::LookupStats* lookup_stats = nullptr;
  /// Per-domain trace buffer replacing the network's serial shard (null =
  /// tracing off). Exports content-sort the merged shards, so the trace
  /// bytes — like the stats — are domain-count invariant.
  obs::TraceShard* trace = nullptr;

  /// The context installed on the current thread, or nullptr.
  static ExecutionContext* active() { return active_; }
  /// active(), but only when it intercepts `world` (the redirect guard the
  /// Simulator entry points use).
  static ExecutionContext* active_on(const Simulator* world) {
    ExecutionContext* ctx = active_;
    return (ctx != nullptr && ctx->world == world) ? ctx : nullptr;
  }

  /// The logical time of the executing event.
  Time now() const { return clock->raw_now(); }

  /// Redirects a world schedule into the domain queue: clamps to the
  /// context clock, wraps the action so this context (clocked on the
  /// domain) is re-installed when it fires. Defined after Scope below.
  EventId schedule_at(Time at, std::function<void()> action);

  /// RAII installer: activates a copy of `ctx` on this thread, restores the
  /// previous context (usually none) on destruction. Defined after the
  /// class (it holds an ExecutionContext by value).
  class Scope;

 private:
  static inline thread_local ExecutionContext* active_ = nullptr;
};

class ExecutionContext::Scope {
 public:
  explicit Scope(const ExecutionContext& ctx)
      : installed_(ctx), previous_(active_) {
    active_ = &installed_;
  }
  ~Scope() { active_ = previous_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  ExecutionContext installed_;
  ExecutionContext* previous_;
};

inline EventId ExecutionContext::schedule_at(Time at,
                                             std::function<void()> action) {
  ExecutionContext inherited = *this;
  inherited.clock = inherited.domain;
  if (at < now()) at = now();  // same clamp rule as Simulator::schedule_at
  return domain->schedule_at(
      at, [inherited, action = std::move(action)]() mutable {
        Scope scope(inherited);
        action();
      });
}

}  // namespace emergence::sim

#include "sim/simulator.hpp"

#include "common/error.hpp"

namespace emergence::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> action) {
  require(at >= now_, "Simulator::schedule_at: time in the past");
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(action)});
  live_.insert(id);
  return id;
}

EventId Simulator::schedule_in(Time delay, std::function<void()> action) {
  require(delay >= 0.0, "Simulator::schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

void Simulator::cancel(EventId id) {
  if (live_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(e.id);
    now_ = e.at;
    ++executed_;
    e.action();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (fire_next()) {
  }
}

void Simulator::run_until(Time deadline) {
  require(deadline >= now_, "Simulator::run_until: deadline in the past");
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    fire_next();
  }
  now_ = deadline;
}

std::size_t Simulator::step(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && fire_next()) ++ran;
  return ran;
}

}  // namespace emergence::sim

#include "sim/simulator.hpp"

#include <cassert>

#include "common/error.hpp"
#include "sim/execution_context.hpp"

namespace emergence::sim {

void Simulator::assert_owner() const {
#ifndef NDEBUG
  // Binds to the first mutating thread; the executor rebinds explicitly at
  // every barrier/window handoff, so a genuine cross-thread touch of a
  // queue mid-window trips here instead of racing silently.
  if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
  assert(owner_ == std::this_thread::get_id() &&
         "Simulator used from a thread that does not own its queue");
#endif
}

void Simulator::rebind_owner() {
#ifndef NDEBUG
  owner_ = std::this_thread::get_id();
#endif
}

EventId Simulator::schedule_at(Time at, std::function<void()> action) {
  if (ExecutionContext* ctx = ExecutionContext::active_on(this)) {
    return ctx->schedule_at(at, std::move(action));
  }
  assert_owner();
  // Deterministic past-clamp: an event can never time-travel. The FIFO
  // tie-break still orders it after everything already pending at now.
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(action)});
  live_.insert(id);
  ++scheduled_;
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  return id;
}

EventId Simulator::schedule_in(Time delay, std::function<void()> action) {
  require(delay >= 0.0, "Simulator::schedule_in: negative delay");
  // now() (not now_) so a redirected schedule offsets from the context
  // clock — the executing domain event's logical time.
  return schedule_at(now() + delay, std::move(action));
}

Time Simulator::now() const {
  if (const ExecutionContext* ctx = ExecutionContext::active_on(this)) {
    return ctx->now();
  }
  return now_;
}

void Simulator::cancel(EventId id) {
  assert_owner();
  if (live_.erase(id) > 0) {
    cancelled_.insert(id);
    ++cancelled_events_;
  }
}

bool Simulator::skip_cancelled_head() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return true;
    cancelled_.erase(it);
    queue_.pop();
  }
  return false;
}

void Simulator::purge_cancelled() {
  assert_owner();
  skip_cancelled_head();
}

std::optional<Time> Simulator::next_event_time() {
  purge_cancelled();
  if (queue_.empty()) return std::nullopt;
  return queue_.top().at;
}

bool Simulator::fire_next() {
  assert_owner();
  if (!skip_cancelled_head()) return false;
  Entry e = queue_.top();
  queue_.pop();
  live_.erase(e.id);
  now_ = e.at;
  ++executed_;
  e.action();
  return true;
}

void Simulator::run() {
  while (fire_next()) {
  }
}

void Simulator::run_until(Time deadline) {
  require(deadline >= now_, "Simulator::run_until: deadline in the past");
  while (skip_cancelled_head() && queue_.top().at <= deadline) fire_next();
  now_ = deadline;
}

void Simulator::run_before(Time end) {
  require(end >= now_, "Simulator::run_before: window end in the past");
  assert_owner();
  // Strictly <: the window owns [now, end), an event exactly at the barrier
  // belongs to the next window. Events the actions schedule inside the
  // window are picked up by the same loop.
  while (skip_cancelled_head() && queue_.top().at < end) fire_next();
  now_ = end;
}

std::size_t Simulator::step(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && fire_next()) ++ran;
  return ran;
}

}  // namespace emergence::sim

#include "sim/simulator.hpp"

#include "common/error.hpp"

namespace emergence::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> action) {
  require(at >= now_, "Simulator::schedule_at: time in the past");
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(action)});
  live_.insert(id);
  ++scheduled_;
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  return id;
}

EventId Simulator::schedule_in(Time delay, std::function<void()> action) {
  require(delay >= 0.0, "Simulator::schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

void Simulator::cancel(EventId id) {
  if (live_.erase(id) > 0) {
    cancelled_.insert(id);
    ++cancelled_events_;
  }
}

bool Simulator::skip_cancelled_head() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return true;
    cancelled_.erase(it);
    queue_.pop();
  }
  return false;
}

std::optional<Time> Simulator::next_event_time() {
  if (!skip_cancelled_head()) return std::nullopt;
  return queue_.top().at;
}

bool Simulator::fire_next() {
  if (!skip_cancelled_head()) return false;
  Entry e = queue_.top();
  queue_.pop();
  live_.erase(e.id);
  now_ = e.at;
  ++executed_;
  e.action();
  return true;
}

void Simulator::run() {
  while (fire_next()) {
  }
}

void Simulator::run_until(Time deadline) {
  require(deadline >= now_, "Simulator::run_until: deadline in the past");
  while (skip_cancelled_head() && queue_.top().at <= deadline) fire_next();
  now_ = deadline;
}

std::size_t Simulator::step(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && fire_next()) ++ran;
  return ran;
}

}  // namespace emergence::sim

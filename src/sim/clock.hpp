// The clock seam: one scheduling interface over virtual and wall time.
//
// Everything above the substrate — protocol timers, daemon maintenance,
// transport retransmits — schedules work as "run this closure at time t".
// Clock is that contract and nothing more. Two drivers implement it:
//
//   * sim::Simulator: virtual time, the deterministic discrete-event loop
//     every simulation and the in-process loopback service tests run on;
//   * sim::WallClock: wall time (seconds since the Unix epoch), the driver
//     the `emerged` node daemon runs on, integrated with socket polling
//     (fire_due / seconds_until_next).
//
// Code written against Clock cannot tell which side of the seam it runs on,
// which is what lets the service layer (src/service/) execute bit-for-bit
// deterministically under the simulator in tests and on real clocks in a
// deployed cluster. Time is always a double in seconds; only its epoch
// differs (0 = construction for the simulator, 0 = Unix epoch for wall
// clocks), so absolute timestamps must never cross drivers — the wire
// protocol ships epoch-qualified microseconds for exactly that reason.
#pragma once

#include <cstdint>
#include <functional>

namespace emergence::sim {

/// Time in seconds. Virtual (simulator) or wall (daemon) — see above.
using Time = double;

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// The scheduling contract shared by the simulator and wall-clock drivers.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Schedules `action` at absolute time `at` (clamped to now when in the
  /// past). Returns an id usable with cancel().
  virtual EventId schedule_at(Time at, std::function<void()> action) = 0;

  /// Schedules `action` `delay` seconds from now.
  virtual EventId schedule_in(Time delay, std::function<void()> action) = 0;

  /// Cancels a pending event; fired or unknown ids are a no-op.
  virtual void cancel(EventId id) = 0;

  /// Current time on this driver's axis.
  virtual Time now() const = 0;
};

}  // namespace emergence::sim

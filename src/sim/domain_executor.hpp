// Conservative-window parallel execution of ONE world: the PDES layer the
// session fleet drives for `domains >= 1` scenarios.
//
// Model (docs/architecture.md, "Parallel execution model"): the world's
// shared state — DHT ring, node storage, dispatcher tables, churn,
// arrivals, reaps — lives on the GLOBAL simulator; the embarrassingly
// session-local event traffic (package deliveries, assembly, forwards,
// transport retransmits, adversary probes) is partitioned across D domain
// queues by session affinity. Execution alternates:
//
//   round:  W      = max(now, earliest pending event anywhere)
//           W_end  = W + lookahead            (half-open window [W, W_end))
//   1. BARRIER (serial, driver thread): global.run_before(W_end) — every
//      shared-state mutation commits here, in (timestamp, sequence) order,
//      while all domain queues are quiescent. Setup events redirect their
//      session's future events into its domain queue through an
//      ExecutionContext.
//   2. WINDOW (parallel): every domain runs run_before(W_end) on its own
//      queue. Window events see a FROZEN world (reads only), draw from
//      per-session streams, and accumulate into per-domain stats.
//
// The lookahead is derived from the transport's minimum single-attempt
// latency: it is the soonest a message sent at the barrier can become a
// domain event, and windows this short keep the barrier-eager global
// ordering skew (a global event at t in [W, W_end) commits before window
// events with timestamps < t run) below one message latency — far inside
// the protocol's reap-grace separation, so a reap can never share a window
// with its session's pending events. Ideal/zero-latency transports have no
// such floor and must configure an explicit epsilon (the constructor
// rejects lookahead <= 0).
//
// Determinism: the window partition depends only on the merged set of
// pending event timestamps (invariant under partitioning), every window
// event's behavior depends only on its own session's state + stream + the
// frozen world, and all cross-domain aggregates merge commutatively — so
// results are bit-identical for ANY domain count and ANY worker count,
// which is what the 1/2/4/8-domain fingerprint gates pin.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"

namespace emergence::sim {

/// Window-barrier driver over one global Simulator plus D domain queues.
class DomainExecutor {
 public:
  /// `lookahead` must be > 0 (virtual seconds); `threads` = 0 sizes the
  /// worker pool to min(domains, hardware_concurrency). Workers are only
  /// spawned when both domains and threads exceed 1 — a serial window pass
  /// is bit-identical by construction, so small hosts lose nothing but
  /// wall-clock.
  DomainExecutor(Simulator& global, std::size_t domains, double lookahead,
                 std::size_t threads = 0);
  ~DomainExecutor();

  DomainExecutor(const DomainExecutor&) = delete;
  DomainExecutor& operator=(const DomainExecutor&) = delete;

  Simulator& global() { return global_; }
  Simulator& domain(std::size_t index) { return domains_[index]; }
  std::size_t domain_count() const { return domains_.size(); }
  double lookahead() const { return lookahead_; }
  std::size_t worker_count() const { return workers_.size(); }

  /// One conservative round (barrier + parallel window). Returns false when
  /// no event is pending anywhere (nothing ran).
  bool run_round();

  /// Rounds until `stop()` returns true (checked after every round) or
  /// every queue drains. Returns true when stopped by the predicate, false
  /// when drained first.
  bool run(const std::function<bool()>& stop);

  std::uint64_t rounds() const { return rounds_; }
  /// Window events executed across all domains (the global simulator keeps
  /// its own executed_events()).
  std::uint64_t domain_events_executed() const;
  std::vector<std::uint64_t> events_per_domain() const;

 private:
  void run_window(Time end);
  void worker_loop(std::size_t worker_index);

  Simulator& global_;
  double lookahead_;
  std::deque<Simulator> domains_;  ///< stable addresses for contexts
  std::uint64_t rounds_ = 0;

  // -- persistent worker pool (generation-counted round barrier) --------------
  struct PoolState;
  std::unique_ptr<PoolState> pool_;
  std::vector<std::thread> workers_;
};

}  // namespace emergence::sim

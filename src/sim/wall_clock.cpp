#include "sim/wall_clock.hpp"

#include <chrono>
#include <utility>

namespace emergence::sim {

Time WallClock::now() const {
  const auto epoch = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(epoch).count();
}

EventId WallClock::schedule_at(Time at, std::function<void()> action) {
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(action)});
  live_.insert(id);
  return id;
}

EventId WallClock::schedule_in(Time delay, std::function<void()> action) {
  return schedule_at(now() + delay, std::move(action));
}

void WallClock::cancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  live_.erase(it);
  cancelled_.insert(id);
}

bool WallClock::skip_cancelled_head() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return true;
    cancelled_.erase(it);
    queue_.pop();
  }
  return false;
}

std::size_t WallClock::fire_due() {
  std::size_t ran = 0;
  // Deadlines are re-read from the real clock each iteration so events
  // scheduled by a firing action run immediately when already due.
  while (skip_cancelled_head() && queue_.top().at <= now()) {
    Entry entry = queue_.top();
    queue_.pop();
    live_.erase(entry.id);
    ++executed_;
    ++ran;
    entry.action();
  }
  return ran;
}

std::optional<double> WallClock::seconds_until_next() {
  if (!skip_cancelled_head()) return std::nullopt;
  const double delta = queue_.top().at - now();
  return delta < 0.0 ? 0.0 : delta;
}

}  // namespace emergence::sim

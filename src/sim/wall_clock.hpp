// Wall-time driver of the Clock seam (clock.hpp): the timer queue the
// `emerged` node daemon runs on.
//
// now() is seconds since the Unix epoch (CLOCK_REALTIME), so timestamps are
// comparable across localhost daemon processes — the wire protocol's
// session metadata (start time, release time) is stated on this axis.
// Unlike the simulator, a WallClock never advances time itself: fire_due()
// runs exactly the events whose deadline has passed on the real clock, and
// the daemon's poll loop alternates socket reads with fire_due() using
// seconds_until_next() as the poll timeout. Single-threaded by contract,
// like the Simulator.
//
// Determinism note: none. Real clocks jitter; code that must be testable
// bit-for-bit runs against the Simulator driver instead (the loopback
// service tests do exactly that). See docs/architecture.md, "Service
// deployment".
#pragma once

#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/clock.hpp"

namespace emergence::sim {

/// Timer queue over the real clock.
class WallClock final : public Clock {
 public:
  EventId schedule_at(Time at, std::function<void()> action) override;
  EventId schedule_in(Time delay, std::function<void()> action) override;
  void cancel(EventId id) override;

  /// Seconds since the Unix epoch.
  Time now() const override;

  /// Runs every pending event whose deadline is <= now(), in deadline order
  /// (FIFO among equal deadlines). Events scheduled while firing run too if
  /// already due. Returns how many events ran.
  std::size_t fire_due();

  /// Seconds until the earliest pending deadline, clamped to >= 0; nullopt
  /// when no events are pending. The daemon uses this as its poll timeout.
  std::optional<double> seconds_until_next();

  std::size_t pending() const { return live_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-deadline events
    }
  };

  /// Pops cancelled tombstones off the queue head; true when a live entry
  /// remains on top.
  bool skip_cancelled_head();

  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace emergence::sim

// Discrete-event simulator driving the DHT and the self-emerging protocol.
//
// Virtual time is a double in seconds. Events scheduled for the same instant
// execute in scheduling order (a monotonically increasing sequence number
// breaks ties), which makes every run deterministic for a fixed seed.
//
// Window semantics (pinned; the domain executor depends on them):
//   - run_until(deadline) runs events with timestamp <= deadline — the
//     historical inclusive chunked-progress primitive.
//   - run_before(end) runs events with timestamp strictly < end: windows are
//     half-open [start, end), so an event landing exactly on a barrier
//     belongs to the NEXT window, never to two windows at once.
//   - schedule_at clamps `at` below now deterministically to now (an event
//     can never time-travel; protocol.cpp's max(now, ...) forwards and the
//     transport retry ladder rely on the clamp, regression-tested in
//     tests/test_sim.cpp).
//
// Thread ownership: a Simulator is single-threaded by construction. Debug
// builds bind the instance to the first thread that uses it and assert on
// every mutating call; the domain executor rebinds explicitly at window
// barriers when queues hand over between the driver and its workers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "sim/clock.hpp"

namespace emergence::sim {

/// Deterministic discrete-event loop: the virtual-time driver of the Clock
/// seam (clock.hpp). `final` so direct calls through Simulator& devirtualize
/// on the event-loop hot paths.
class Simulator final : public Clock {
 public:
  /// Schedules `action` to run at absolute time `at`. A time in the past is
  /// clamped to now (deterministic, never reordered before already-pending
  /// same-time events thanks to the FIFO tie-break). Returns an id usable
  /// with cancel().
  ///
  /// When an ExecutionContext is active on this simulator (domain-sharded
  /// execution; see sim/execution_context.hpp), the event is redirected to
  /// the context's domain queue instead and carries the context with it.
  EventId schedule_at(Time at, std::function<void()> action) override;

  /// Schedules `action` to run `delay` seconds from now.
  EventId schedule_in(Time delay, std::function<void()> action) override;

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a no-op.
  void cancel(EventId id) override;

  /// Runs events until the queue empties.
  void run();

  /// Runs events with timestamp <= deadline, then sets now to the deadline.
  void run_until(Time deadline);

  /// Runs events with timestamp strictly < end, then sets now to end: the
  /// half-open [now, end) window primitive of the domain executor. Events
  /// scheduled exactly at `end` stay queued for the next window.
  void run_before(Time end);

  /// Executes at most `max_events` pending events; returns how many ran.
  std::size_t step(std::size_t max_events);

  /// Pops cancelled tombstones off the queue head. run()/run_until()/
  /// run_before() do this implicitly; next_event_time() requires it, so the
  /// purge is part of the single-threaded driver contract — never call any
  /// of these while another thread touches the queue (debug builds assert
  /// thread ownership).
  void purge_cancelled();

  /// Timestamp of the earliest live pending event, or nullopt when none.
  /// Calls purge_cancelled() first (an explicit queue mutation, hence
  /// non-const). Drivers that interleave virtual time with wall-clock work
  /// (the workload fleet's chunked progress loop, the domain executor's
  /// window sizing) use this to skip idle gaps instead of spinning.
  std::optional<Time> next_event_time();

  /// Current virtual time. Under an active ExecutionContext this is the
  /// context's clock (the executing domain event's logical time).
  Time now() const override;
  /// This instance's own clock, ignoring any execution-context redirection
  /// (the executor and the context itself read this).
  Time raw_now() const { return now_; }
  std::size_t pending() const { return live_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  // -- cheap instrumentation (one counter update per schedule/cancel; the
  // perf suite reports these per phase) --------------------------------------
  /// Total events ever scheduled.
  std::uint64_t scheduled_events() const { return scheduled_; }
  /// Total effective cancellations (of still-pending events).
  std::uint64_t cancelled_events() const { return cancelled_events_; }
  /// High-water mark of the event queue (includes tombstones).
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// Debug builds bind the queue to the first thread that mutates it and
  /// assert on every mutating call from another thread. rebind_owner()
  /// transfers ownership to the calling thread — the domain executor calls
  /// it at every barrier/window handoff. No-op in release builds.
  void rebind_owner();

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  /// Pops cancelled entries off the queue head, consuming their tombstones.
  /// Returns true when a live entry remains at the top (the single purge
  /// path shared by fire_next() and the run loops).
  bool skip_cancelled_head();
  bool fire_next();
  /// Debug-only: binds on first use, asserts the caller owns the queue.
  void assert_owner() const;

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_events_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  /// Ids scheduled but not yet fired or cancelled. cancel() only tombstones
  /// ids found here, so cancelling a fired or unknown id cannot desync the
  /// pending count (the old `queue_.size() - cancelled_.size()` arithmetic
  /// underflowed on exactly those calls).
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
#ifndef NDEBUG
  mutable std::thread::id owner_{};  ///< default-constructed = unbound
#endif
};

}  // namespace emergence::sim

// Discrete-event simulator driving the DHT and the self-emerging protocol.
//
// Virtual time is a double in seconds. Events scheduled for the same instant
// execute in scheduling order (a monotonically increasing sequence number
// breaks ties), which makes every run deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace emergence::sim {

/// Virtual time in seconds.
using Time = double;

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Deterministic discrete-event loop.
class Simulator {
 public:
  /// Schedules `action` to run at absolute time `at` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(Time at, std::function<void()> action);

  /// Schedules `action` to run `delay` seconds from now.
  EventId schedule_in(Time delay, std::function<void()> action);

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a no-op.
  void cancel(EventId id);

  /// Runs events until the queue empties.
  void run();

  /// Runs events with timestamp <= deadline, then sets now to the deadline.
  void run_until(Time deadline);

  /// Executes at most `max_events` pending events; returns how many ran.
  std::size_t step(std::size_t max_events);

  /// Timestamp of the earliest live pending event, or nullopt when none.
  /// Purges cancelled tombstones off the queue head as a side effect (the
  /// same purge run()/run_until() would do), hence non-const. Drivers that
  /// interleave virtual time with wall-clock work (the workload fleet's
  /// chunked progress loop) use this to skip idle gaps instead of spinning
  /// run_until over empty stretches.
  std::optional<Time> next_event_time();

  Time now() const { return now_; }
  std::size_t pending() const { return live_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  // -- cheap instrumentation (one counter update per schedule/cancel; the
  // perf suite reports these per phase) --------------------------------------
  /// Total events ever scheduled.
  std::uint64_t scheduled_events() const { return scheduled_; }
  /// Total effective cancellations (of still-pending events).
  std::uint64_t cancelled_events() const { return cancelled_events_; }
  /// High-water mark of the event queue (includes tombstones).
  std::size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  /// Pops cancelled entries off the queue head, consuming their tombstones.
  /// Returns true when a live entry remains at the top (the single purge
  /// path shared by fire_next() and run_until()).
  bool skip_cancelled_head();
  bool fire_next();

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_events_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  /// Ids scheduled but not yet fired or cancelled. cancel() only tombstones
  /// ids found here, so cancelling a fired or unknown id cannot desync the
  /// pending count (the old `queue_.size() - cancelled_.size()` arithmetic
  /// underflowed on exactly those calls).
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace emergence::sim

#include "cloud/cloud_store.hpp"

#include "common/hex.hpp"
#include "crypto/sha256.hpp"

namespace emergence::cloud {

BlobId CloudStore::upload(BytesView ciphertext,
                          const std::string& receiver_token) {
  const BlobId id = to_hex(crypto::sha256(ciphertext));
  blobs_[id] = Entry{Bytes(ciphertext.begin(), ciphertext.end()),
                     receiver_token};
  return id;
}

DownloadResult CloudStore::download(const BlobId& id,
                                    const std::string& receiver_token) const {
  ++download_attempts_;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return DownloadResult{CloudStatus::kNotFound, {}};
  if (it->second.token != receiver_token) {
    ++unauthorized_;
    return DownloadResult{CloudStatus::kUnauthorized, {}};
  }
  return DownloadResult{CloudStatus::kOk, it->second.ciphertext};
}

bool CloudStore::remove(const BlobId& id) { return blobs_.erase(id) > 0; }

}  // namespace emergence::cloud

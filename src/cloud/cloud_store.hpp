// The "cloud" entity of the paper's system model (Fig. 1).
//
// An always-available blob store that holds the *encrypted* message for the
// whole emerging period. Authenticated receivers may download the ciphertext
// at any time after ts; without the key (which lives in the DHT) the blob is
// useless, so the cloud is untrusted for confidentiality and trusted only
// for availability. Access control is a simple bearer-token check: the
// sender registers the receiver's token when uploading.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"

namespace emergence::cloud {

/// Identifier of an uploaded blob.
using BlobId = std::string;

/// Result codes for download attempts.
enum class CloudStatus {
  kOk,
  kNotFound,
  kUnauthorized,
};

/// Download result: status plus ciphertext when authorized.
struct DownloadResult {
  CloudStatus status = CloudStatus::kNotFound;
  Bytes ciphertext;
};

/// Always-available encrypted blob storage with per-blob receiver tokens.
class CloudStore {
 public:
  /// Uploads a ciphertext readable by holders of `receiver_token`.
  /// Returns the blob id (hash of the ciphertext).
  BlobId upload(BytesView ciphertext, const std::string& receiver_token);

  /// Downloads a blob; checks the bearer token.
  DownloadResult download(const BlobId& id,
                          const std::string& receiver_token) const;

  /// Deletes a blob (sender housekeeping after release).
  bool remove(const BlobId& id);

  std::size_t blob_count() const { return blobs_.size(); }
  std::uint64_t download_attempts() const { return download_attempts_; }
  std::uint64_t unauthorized_attempts() const { return unauthorized_; }

 private:
  struct Entry {
    Bytes ciphertext;
    std::string token;
  };
  std::unordered_map<BlobId, Entry> blobs_;
  mutable std::uint64_t download_attempts_ = 0;
  mutable std::uint64_t unauthorized_ = 0;
};

}  // namespace emergence::cloud

// The emergence API facade: one sender/receiver surface for both engines.
//
// Everything above this header speaks in two small serializable values:
//
//   SubmitRequest  — "release this message to that receiver after T",
//                    plus the protocol shape (scheme, k x l, share
//                    parameters, cipher backend) and the sender's seed.
//   EmergeEvent    — "the secret emerged": session nonce, scheduled tr,
//                    actual delivery time, and the released secret.
//
// Client is the abstract sender/receiver endpoint. LocalClient binds it to
// an in-process TimedReleaseSession over the simulated DHT (deterministic,
// virtual time); service::WireClient binds the *same* interface to the
// `emerged` daemon's UDP wire (wall-clock time). Code written against
// Client — tests, benches, the submit tool — runs unchanged on either.
//
// SessionHandle is the construction surface for the in-process engine: a
// named-field Builder over core::SessionArgs that replaces the positional
// TimedReleaseSession constructor sprawl at new call sites (the positional
// constructor survives as a thin delegating overload for old ones).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cloud/cloud_store.hpp"
#include "emerge/protocol.hpp"

namespace emergence::core {
class SessionDispatcher;
}

namespace emergence::api {

/// Everything one timed-release submission carries, engine-independent.
/// Serializable: the wire submit command is exactly these bytes inside a
/// frame, so a request captured from the simulator replays on the wire.
struct SubmitRequest {
  Bytes message;               ///< plaintext to self-emerge
  std::string receiver_token;  ///< cloud download capability
  core::SchemeKind scheme = core::SchemeKind::kJoint;
  core::PathShape shape{2, 3};
  std::size_t carriers_n = 0;   ///< share scheme: holders per column (0 = k+1)
  std::size_t threshold_m = 0;  ///< share scheme: Shamir threshold (0 = k)
  double emerging_time = 120.0;  ///< T in seconds (virtual or wall-clock)
  double assembly_delay = 1.0;
  crypto::CipherBackend backend = crypto::CipherBackend::kChaCha20;
  std::uint64_t seed = 1;  ///< sender-side DRBG seed

  /// The SessionConfig this request resolves to.
  core::SessionConfig to_config() const;
};

Bytes encode_submit_request(const SubmitRequest& req);
/// Throws CodecError / PreconditionError on malformed payloads.
SubmitRequest decode_submit_request(BytesView payload);

/// What submit() hands back immediately: enough to correlate the session
/// and to know when to expect the secret.
struct SubmitReceipt {
  std::uint64_t session_nonce = 0;
  cloud::BlobId blob_id;
  double start_time = 0.0;    ///< ts on the engine's clock
  double release_time = 0.0;  ///< tr = ts + T
};

/// The emergence itself: delivered to the receiver at tr.
struct EmergeEvent {
  std::uint64_t session_nonce = 0;
  double release_time = 0.0;   ///< scheduled tr
  double delivery_time = 0.0;  ///< when the first terminal holder delivered
  Bytes secret;                ///< the released message key
};

Bytes encode_emerge_event(const EmergeEvent& event);
/// Throws CodecError / PreconditionError on malformed payloads.
EmergeEvent decode_emerge_event(BytesView payload);

/// The sender/receiver endpoint both engines implement. Time advances
/// outside this interface — the simulator via run_until, the wire via real
/// clocks — so poll() is non-blocking by contract.
class Client {
 public:
  virtual ~Client() = default;

  /// Launches one timed-release session. Throws PreconditionError on
  /// invalid shape/threshold combinations (same checks as the session).
  virtual SubmitReceipt submit(const SubmitRequest& request) = 0;

  /// The emergence for `session_nonce`, once the secret has been released;
  /// nullopt before tr (or for unknown nonces).
  virtual std::optional<EmergeEvent> poll(std::uint64_t session_nonce) = 0;
};

/// An owned in-process session, built by Builder. Move-only; the handle
/// must outlive the simulation run that drives it (same ownership rule as
/// the raw session).
class SessionHandle {
 public:
  class Builder {
   public:
    Builder& network(dht::Network& network);
    Builder& cloud(cloud::CloudStore& cloud);
    Builder& adversary(core::Adversary* adversary);
    Builder& dispatcher(core::SessionDispatcher* dispatcher);
    Builder& config(const core::SessionConfig& config);
    Builder& scheme(core::SchemeKind kind);
    Builder& shape(core::PathShape shape);
    Builder& carriers(std::size_t n);
    Builder& threshold(std::size_t m);
    Builder& emerging_time(double seconds);
    Builder& assembly_delay(double seconds);
    Builder& backend(crypto::CipherBackend backend);
    Builder& seed(std::uint64_t seed);

    /// Constructs the session; throws PreconditionError if network/cloud
    /// were never set or the configuration is invalid.
    SessionHandle build();

   private:
    core::SessionArgs args_;
  };

  core::TimedReleaseSession& session() { return *session_; }
  const core::TimedReleaseSession& session() const { return *session_; }
  core::TimedReleaseSession* operator->() { return session_.get(); }
  const core::TimedReleaseSession* operator->() const {
    return session_.get();
  }

 private:
  explicit SessionHandle(std::unique_ptr<core::TimedReleaseSession> session)
      : session_(std::move(session)) {}

  std::unique_ptr<core::TimedReleaseSession> session_;
};

/// Client bound to the in-process engine: every submit() builds a
/// TimedReleaseSession on the given world and launches it at the current
/// virtual time. The caller advances the simulator; poll() surfaces the
/// EmergeEvent once the session's terminal holders have delivered.
class LocalClient final : public Client {
 public:
  /// `dispatcher` is optional exactly as on the session (null chains the
  /// network's default handler). All referents must outlive the client.
  LocalClient(dht::Network& network, cloud::CloudStore& cloud,
              core::SessionDispatcher* dispatcher = nullptr);

  SubmitReceipt submit(const SubmitRequest& request) override;
  std::optional<EmergeEvent> poll(std::uint64_t session_nonce) override;

  /// Receiver-side: the decrypted message for an emerged session, nullopt
  /// before release. (Wire receivers decrypt locally from the EmergeEvent
  /// secret; in-process the session already holds the ciphertext path.)
  std::optional<Bytes> receiver_decrypt(std::uint64_t session_nonce,
                                        const std::string& receiver_token);

  /// Access to a submitted session (e.g. for report() counters).
  core::TimedReleaseSession* find(std::uint64_t session_nonce);

 private:
  dht::Network& network_;
  cloud::CloudStore& cloud_;
  core::SessionDispatcher* dispatcher_;
  std::map<std::uint64_t, SessionHandle> sessions_;
};

}  // namespace emergence::api

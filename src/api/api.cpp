#include "api/api.hpp"

#include <bit>
#include <utility>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace emergence::api {
namespace {

// Doubles travel as their IEEE-754 bit pattern: round-trips are exactly
// byte-identical, which the wire property tests pin.
void write_f64(BinaryWriter& w, double value) {
  w.u64(std::bit_cast<std::uint64_t>(value));
}

double read_f64(BinaryReader& r) { return std::bit_cast<double>(r.u64()); }

core::SchemeKind scheme_from_u8(std::uint8_t raw) {
  switch (raw) {
    case static_cast<std::uint8_t>(core::SchemeKind::kCentralized):
      return core::SchemeKind::kCentralized;
    case static_cast<std::uint8_t>(core::SchemeKind::kDisjoint):
      return core::SchemeKind::kDisjoint;
    case static_cast<std::uint8_t>(core::SchemeKind::kJoint):
      return core::SchemeKind::kJoint;
    case static_cast<std::uint8_t>(core::SchemeKind::kShare):
      return core::SchemeKind::kShare;
    default:
      throw PreconditionError("decode_submit_request: unknown scheme");
  }
}

crypto::CipherBackend backend_from_u8(std::uint8_t raw) {
  switch (raw) {
    case static_cast<std::uint8_t>(crypto::CipherBackend::kChaCha20):
      return crypto::CipherBackend::kChaCha20;
    case static_cast<std::uint8_t>(crypto::CipherBackend::kAes256Ctr):
      return crypto::CipherBackend::kAes256Ctr;
    default:
      throw PreconditionError("decode_submit_request: unknown cipher backend");
  }
}

}  // namespace

core::SessionConfig SubmitRequest::to_config() const {
  core::SessionConfig config;
  config.kind = scheme;
  config.shape = shape;
  config.carriers_n = carriers_n;
  config.threshold_m = threshold_m;
  config.emerging_time = emerging_time;
  config.assembly_delay = assembly_delay;
  config.backend = backend;
  return config;
}

Bytes encode_submit_request(const SubmitRequest& req) {
  BinaryWriter w;
  w.blob(req.message);
  w.str(req.receiver_token);
  w.u8(static_cast<std::uint8_t>(req.scheme));
  w.u16(static_cast<std::uint16_t>(req.shape.k));
  w.u16(static_cast<std::uint16_t>(req.shape.l));
  w.u16(static_cast<std::uint16_t>(req.carriers_n));
  w.u16(static_cast<std::uint16_t>(req.threshold_m));
  write_f64(w, req.emerging_time);
  write_f64(w, req.assembly_delay);
  w.u8(static_cast<std::uint8_t>(req.backend));
  w.u64(req.seed);
  return w.take();
}

SubmitRequest decode_submit_request(BytesView payload) {
  BinaryReader r(payload);
  SubmitRequest req;
  req.message = r.blob();
  req.receiver_token = r.str();
  req.scheme = scheme_from_u8(r.u8());
  req.shape.k = r.u16();
  req.shape.l = r.u16();
  req.carriers_n = r.u16();
  req.threshold_m = r.u16();
  req.emerging_time = read_f64(r);
  req.assembly_delay = read_f64(r);
  req.backend = backend_from_u8(r.u8());
  req.seed = r.u64();
  r.expect_done();
  return req;
}

Bytes encode_emerge_event(const EmergeEvent& event) {
  BinaryWriter w;
  w.u64(event.session_nonce);
  write_f64(w, event.release_time);
  write_f64(w, event.delivery_time);
  w.blob(event.secret);
  return w.take();
}

EmergeEvent decode_emerge_event(BytesView payload) {
  BinaryReader r(payload);
  EmergeEvent event;
  event.session_nonce = r.u64();
  event.release_time = read_f64(r);
  event.delivery_time = read_f64(r);
  event.secret = r.blob();
  r.expect_done();
  return event;
}

// -- SessionHandle::Builder ---------------------------------------------------

SessionHandle::Builder& SessionHandle::Builder::network(dht::Network& network) {
  args_.network = &network;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::cloud(
    cloud::CloudStore& cloud) {
  args_.cloud = &cloud;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::adversary(
    core::Adversary* adversary) {
  args_.adversary = adversary;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::dispatcher(
    core::SessionDispatcher* dispatcher) {
  args_.dispatcher = dispatcher;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::config(
    const core::SessionConfig& config) {
  args_.config = config;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::scheme(core::SchemeKind kind) {
  args_.config.kind = kind;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::shape(core::PathShape shape) {
  args_.config.shape = shape;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::carriers(std::size_t n) {
  args_.config.carriers_n = n;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::threshold(std::size_t m) {
  args_.config.threshold_m = m;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::emerging_time(double seconds) {
  args_.config.emerging_time = seconds;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::assembly_delay(double seconds) {
  args_.config.assembly_delay = seconds;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::backend(
    crypto::CipherBackend backend) {
  args_.config.backend = backend;
  return *this;
}

SessionHandle::Builder& SessionHandle::Builder::seed(std::uint64_t seed) {
  args_.seed = seed;
  return *this;
}

SessionHandle SessionHandle::Builder::build() {
  return SessionHandle(std::make_unique<core::TimedReleaseSession>(args_));
}

// -- LocalClient --------------------------------------------------------------

LocalClient::LocalClient(dht::Network& network, cloud::CloudStore& cloud,
                         core::SessionDispatcher* dispatcher)
    : network_(network), cloud_(cloud), dispatcher_(dispatcher) {}

SubmitReceipt LocalClient::submit(const SubmitRequest& request) {
  SessionHandle handle = SessionHandle::Builder()
                             .network(network_)
                             .cloud(cloud_)
                             .dispatcher(dispatcher_)
                             .config(request.to_config())
                             .seed(request.seed)
                             .build();
  SubmitReceipt receipt;
  receipt.blob_id =
      handle->send(request.message, request.receiver_token);
  receipt.session_nonce = handle->session_nonce();
  receipt.start_time = handle->start_time();
  receipt.release_time = handle->release_time();
  sessions_.emplace(receipt.session_nonce, std::move(handle));
  return receipt;
}

std::optional<EmergeEvent> LocalClient::poll(std::uint64_t session_nonce) {
  core::TimedReleaseSession* session = find(session_nonce);
  if (session == nullptr || !session->secret_released()) return std::nullopt;
  EmergeEvent event;
  event.session_nonce = session_nonce;
  event.release_time = session->release_time();
  event.delivery_time = *session->first_delivery_time();
  event.secret = *session->released_secret();
  return event;
}

std::optional<Bytes> LocalClient::receiver_decrypt(
    std::uint64_t session_nonce, const std::string& receiver_token) {
  core::TimedReleaseSession* session = find(session_nonce);
  if (session == nullptr) return std::nullopt;
  return session->receiver_decrypt(receiver_token);
}

core::TimedReleaseSession* LocalClient::find(std::uint64_t session_nonce) {
  auto it = sessions_.find(session_nonce);
  if (it == sessions_.end()) return nullptr;
  return &it->second.session();
}

}  // namespace emergence::api

// ChaCha20 stream cipher (RFC 8439), implemented from the specification.
//
// The onion layers and the cloud blob are protected with
// ChaCha20 + HMAC-SHA256 in an encrypt-then-MAC construction (see aead.hpp);
// the DRBG (drbg.hpp) also builds on the raw keystream.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace emergence::crypto {

constexpr std::size_t kChaChaKeySize = 32;
constexpr std::size_t kChaChaNonceSize = 12;

/// Computes one 64-byte ChaCha20 block for (key, counter, nonce).
std::array<std::uint8_t, 64> chacha20_block(
    const std::array<std::uint8_t, kChaChaKeySize>& key, std::uint32_t counter,
    const std::array<std::uint8_t, kChaChaNonceSize>& nonce);

/// XORs the keystream starting at block `initial_counter` into `data`
/// in place. Encryption and decryption are the same operation.
void chacha20_xor(const std::array<std::uint8_t, kChaChaKeySize>& key,
                  const std::array<std::uint8_t, kChaChaNonceSize>& nonce,
                  std::uint32_t initial_counter, std::span<std::uint8_t> data);

/// Convenience: returns the XOR of `data` with the keystream.
Bytes chacha20_apply(const std::array<std::uint8_t, kChaChaKeySize>& key,
                     const std::array<std::uint8_t, kChaChaNonceSize>& nonce,
                     std::uint32_t initial_counter, BytesView data);

}  // namespace emergence::crypto

#include "crypto/drbg.hpp"

#include <cstring>

#include "common/error.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace emergence::crypto {

Drbg::Drbg(BytesView seed) {
  const Bytes digest = sha256(seed);
  std::copy(digest.begin(), digest.end(), key_.begin());
}

Drbg::Drbg(std::uint64_t seed) {
  std::array<std::uint8_t, 8> raw;
  for (int i = 0; i < 8; ++i)
    raw[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
  const Bytes digest = sha256(BytesView(raw.data(), raw.size()));
  std::copy(digest.begin(), digest.end(), key_.begin());
}

void Drbg::refill() {
  std::array<std::uint8_t, kChaChaNonceSize> nonce{};
  for (int i = 0; i < 8; ++i)
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(block_counter_ >> (8 * i));
  ++block_counter_;

  // Generate two blocks: the first becomes the next key (fast key erasure),
  // the second is the output pool.
  const auto block0 = chacha20_block(key_, 0, nonce);
  const auto block1 = chacha20_block(key_, 1, nonce);
  std::copy(block0.begin(), block0.begin() + 32, key_.begin());
  pool_ = block1;
  pool_used_ = 0;
}

void Drbg::fill(std::span<std::uint8_t> out) {
  std::size_t written = 0;
  while (written < out.size()) {
    if (pool_used_ == pool_.size()) refill();
    const std::size_t take =
        std::min(pool_.size() - pool_used_, out.size() - written);
    std::memcpy(out.data() + written, pool_.data() + pool_used_, take);
    pool_used_ += take;
    written += take;
  }
}

Bytes Drbg::bytes(std::size_t count) {
  Bytes out(count);
  fill(out);
  return out;
}

std::uint64_t Drbg::u64() {
  std::array<std::uint8_t, 8> raw;
  fill(raw);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(raw[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

std::uint64_t Drbg::below(std::uint64_t n) {
  require(n > 0, "Drbg::below: empty range");
  // Rejection sampling over the largest multiple of n that fits in 64 bits.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = u64();
  } while (v >= limit);
  return v % n;
}

Drbg Drbg::fork() {
  const Bytes child_seed = bytes(32);
  return Drbg(child_seed);
}

}  // namespace emergence::crypto

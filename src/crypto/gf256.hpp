// Arithmetic in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
//
// This field underlies the Shamir secret-sharing implementation: secrets are
// split byte-wise, each byte treated as a field element.
#pragma once

#include <cstdint>

namespace emergence::crypto::gf256 {

/// Addition = subtraction = XOR in characteristic 2.
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

/// Field multiplication (table-backed after first use).
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; requires a != 0.
std::uint8_t inv(std::uint8_t a);

/// a / b; requires b != 0.
std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// a^e by square-and-multiply (exponent over the integers).
std::uint8_t pow(std::uint8_t a, unsigned e);

}  // namespace emergence::crypto::gf256

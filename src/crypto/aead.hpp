// Authenticated encryption for onion layers and cloud blobs.
//
// Construction: encrypt-then-MAC. The 32-byte master key is expanded with
// HKDF into independent encryption and MAC keys; the ciphertext layout is
//   nonce (12) || body || tag (32)
// where tag = HMAC-SHA256(mac_key, nonce || aad_len || aad || body).
// Decryption verifies the tag in constant time before any parsing.
//
// Two interchangeable stream backends are provided (ChaCha20 default,
// AES-256-CTR); the backend id is bound into the HKDF info string so a
// ciphertext can only be opened by the backend that produced it.
#pragma once

#include <array>

#include "common/bytes.hpp"

namespace emergence::crypto {

/// Symmetric cipher backend selector.
enum class CipherBackend : std::uint8_t {
  kChaCha20 = 0,
  kAes256Ctr = 1,
};

/// A 256-bit symmetric key.
struct SymmetricKey {
  std::array<std::uint8_t, 32> bytes{};

  static SymmetricKey from_bytes(BytesView raw);
  Bytes to_bytes() const { return Bytes(bytes.begin(), bytes.end()); }
};

/// Seals `plaintext` with `key`, binding `aad` (associated data) into the
/// tag. The nonce must be unique per (key, message); callers obtain one from
/// the DRBG.
Bytes aead_seal(const SymmetricKey& key, BytesView nonce12, BytesView plaintext,
                BytesView aad, CipherBackend backend = CipherBackend::kChaCha20);

/// Opens a sealed buffer. Throws CryptoError if the tag does not verify.
Bytes aead_open(const SymmetricKey& key, BytesView sealed, BytesView aad,
                CipherBackend backend = CipherBackend::kChaCha20);

/// Total ciphertext overhead (nonce + tag) in bytes.
constexpr std::size_t kAeadOverhead = 12 + 32;

}  // namespace emergence::crypto

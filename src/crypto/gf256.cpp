#include "crypto/gf256.hpp"

#include <array>

#include "common/error.hpp"

namespace emergence::crypto::gf256 {
namespace {

// Log/antilog tables over the generator 3 (a primitive element of the AES
// field). exp table is doubled so mul can skip the mod 255.
struct Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};

  Tables() {
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // Multiply x by the generator 3 = x * 2 + x.
      const std::uint8_t x2 =
          static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
      x = static_cast<std::uint8_t>(x2 ^ x);
    }
    for (int i = 255; i < 512; ++i)
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  require(a != 0, "gf256::inv: zero has no inverse");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  require(b != 0, "gf256::div: division by zero");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t pow(std::uint8_t a, unsigned e) {
  std::uint8_t result = 1;
  std::uint8_t base = a;
  while (e > 0) {
    if (e & 1u) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

}  // namespace emergence::crypto::gf256

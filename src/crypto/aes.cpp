#include "crypto/aes.hpp"

#include <cstring>

#include "common/error.hpp"

namespace emergence::crypto {
namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

struct InvSbox {
  std::uint8_t table[256];
  InvSbox() {
    for (int i = 0; i < 256; ++i) table[kSbox[i]] = static_cast<std::uint8_t>(i);
  }
};
const InvSbox kInvSbox;

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b) {
    if (b & 1) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

void sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

void inv_sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = kInvSbox.table[s[i]];
}

// State is column-major: s[4*col + row].
void shift_rows(std::uint8_t* s) {
  std::uint8_t t;
  // Row 1: shift left by 1.
  t = s[1];
  s[1] = s[5];
  s[5] = s[9];
  s[9] = s[13];
  s[13] = t;
  // Row 2: shift left by 2.
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // Row 3: shift left by 3 (= right by 1).
  t = s[15];
  s[15] = s[11];
  s[11] = s[7];
  s[7] = s[3];
  s[3] = t;
}

void inv_shift_rows(std::uint8_t* s) {
  std::uint8_t t;
  // Row 1: shift right by 1.
  t = s[13];
  s[13] = s[9];
  s[9] = s[5];
  s[5] = s[1];
  s[1] = t;
  // Row 2.
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // Row 3: shift right by 3 (= left by 1).
  t = s[3];
  s[3] = s[7];
  s[7] = s[11];
  s[11] = s[15];
  s[15] = t;
}

void mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
    col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
    col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
    col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
  }
}

void add_round_key(std::uint8_t* s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

Aes::Aes(BytesView key) {
  const std::size_t nk = key.size() / 4;  // key length in 32-bit words
  require(key.size() == 16 || key.size() == 24 || key.size() == 32,
          "Aes: key must be 16, 24 or 32 bytes");
  rounds_ = static_cast<int>(nk) + 6;
  const std::size_t total_words = 4 * static_cast<std::size_t>(rounds_ + 1);

  // Key expansion on byte quadruples (w[i] = round_keys_[4i .. 4i+3]).
  std::memcpy(round_keys_.data(), key.data(), key.size());
  std::uint8_t rcon = 0x01;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      for (auto& b : temp) b = kSbox[b];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[4 * i + static_cast<std::size_t>(b)] =
          round_keys_[4 * (i - nk) + static_cast<std::size_t>(b)] ^ temp[b];
    }
  }
}

void Aes::encrypt_block(std::uint8_t* block) const {
  add_round_key(block, round_keys_.data());
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes(block);
    shift_rows(block);
    mix_columns(block);
    add_round_key(block, round_keys_.data() + 16 * round);
  }
  sub_bytes(block);
  shift_rows(block);
  add_round_key(block, round_keys_.data() + 16 * rounds_);
}

void Aes::decrypt_block(std::uint8_t* block) const {
  add_round_key(block, round_keys_.data() + 16 * rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(block, round_keys_.data() + 16 * round);
    inv_mix_columns(block);
  }
  inv_shift_rows(block);
  inv_sub_bytes(block);
  add_round_key(block, round_keys_.data());
}

void aes_ctr_xor(const Aes& cipher, const std::array<std::uint8_t, 12>& nonce,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data) {
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < data.size()) {
    std::uint8_t block[16];
    std::memcpy(block, nonce.data(), 12);
    block[12] = static_cast<std::uint8_t>(counter >> 24);
    block[13] = static_cast<std::uint8_t>(counter >> 16);
    block[14] = static_cast<std::uint8_t>(counter >> 8);
    block[15] = static_cast<std::uint8_t>(counter);
    cipher.encrypt_block(block);
    const std::size_t take = std::min<std::size_t>(16, data.size() - offset);
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= block[i];
    offset += take;
    ++counter;
  }
}

}  // namespace emergence::crypto

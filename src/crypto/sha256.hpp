// SHA-256 (FIPS 180-4), implemented from the specification.
//
// Used for node identifiers, HMAC, HKDF and the ChaCha20 DRBG seeding. The
// streaming interface supports incremental hashing of large payloads.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace emergence::crypto {

/// Streaming SHA-256 hasher.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input.
  void update(BytesView data);

  /// Finalizes and returns the 32-byte digest. The hasher must not be used
  /// again afterwards (construct a fresh one).
  std::array<std::uint8_t, kDigestSize> finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// One-shot SHA-256.
Bytes sha256(BytesView data);

}  // namespace emergence::crypto

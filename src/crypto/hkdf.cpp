#include "crypto/hkdf.hpp"

#include "common/error.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace emergence::crypto {

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  if (salt.empty()) {
    const Bytes zero(Sha256::kDigestSize, 0x00);
    return hmac_sha256(zero, ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  constexpr std::size_t kHash = Sha256::kDigestSize;
  require(length <= 255 * kHash, "hkdf_expand: length too large");
  Bytes okm;
  okm.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(kHash, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return okm;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace emergence::crypto

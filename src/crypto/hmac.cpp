#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace emergence::crypto {

Bytes hmac_sha256(BytesView key, BytesView data) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;

  Bytes k(key.begin(), key.end());
  if (k.size() > kBlock) k = sha256(k);
  k.resize(kBlock, 0x00);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  const auto digest = outer.finalize();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace emergence::crypto

#include "crypto/shamir.hpp"

#include <unordered_set>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "crypto/gf256.hpp"

namespace emergence::crypto {

std::vector<Share> shamir_split(BytesView secret, std::size_t m, std::size_t n,
                                Drbg& drbg) {
  require(m >= 1, "shamir_split: threshold must be >= 1");
  require(m <= n, "shamir_split: threshold exceeds share count");
  require(n <= 255, "shamir_split: at most 255 shares");

  std::vector<Share> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i].index = static_cast<std::uint8_t>(i + 1);
    shares[i].data.resize(secret.size());
  }

  // coeffs[0] is the secret byte; coeffs[1..m-1] are random.
  Bytes coeffs(m);
  for (std::size_t byte = 0; byte < secret.size(); ++byte) {
    coeffs[0] = secret[byte];
    if (m > 1) drbg.fill(std::span<std::uint8_t>(coeffs.data() + 1, m - 1));
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t x = shares[i].index;
      // Horner evaluation of the polynomial at x.
      std::uint8_t y = coeffs[m - 1];
      for (std::size_t c = m - 1; c-- > 0;)
        y = gf256::add(gf256::mul(y, x), coeffs[c]);
      shares[i].data[byte] = y;
    }
  }
  return shares;
}

Bytes shamir_combine(const std::vector<Share>& shares, std::size_t m) {
  require(m >= 1, "shamir_combine: threshold must be >= 1");
  if (shares.size() < m)
    throw CryptoError("shamir_combine: not enough shares");

  // Use the first m distinct-index shares.
  std::vector<const Share*> chosen;
  std::unordered_set<std::uint8_t> seen;
  for (const Share& s : shares) {
    if (s.index == 0) throw CryptoError("shamir_combine: invalid index 0");
    if (!seen.insert(s.index).second)
      throw CryptoError("shamir_combine: duplicate share index");
    chosen.push_back(&s);
    if (chosen.size() == m) break;
  }
  if (chosen.size() < m)
    throw CryptoError("shamir_combine: not enough distinct shares");

  const std::size_t len = chosen.front()->data.size();
  for (const Share* s : chosen)
    if (s->data.size() != len)
      throw CryptoError("shamir_combine: share length mismatch");

  // Lagrange basis at zero: L_j(0) = prod_{i != j} x_i / (x_i - x_j).
  // In GF(2^8) subtraction is XOR.
  std::vector<std::uint8_t> basis(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::uint8_t num = 1, den = 1;
    const std::uint8_t xj = chosen[j]->index;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == j) continue;
      const std::uint8_t xi = chosen[i]->index;
      num = gf256::mul(num, xi);
      den = gf256::mul(den, gf256::add(xi, xj));
    }
    basis[j] = gf256::div(num, den);
  }

  Bytes secret(len);
  for (std::size_t byte = 0; byte < len; ++byte) {
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j < m; ++j)
      acc = gf256::add(acc, gf256::mul(basis[j], chosen[j]->data[byte]));
    secret[byte] = acc;
  }
  return secret;
}

Bytes share_to_bytes(const Share& share) {
  BinaryWriter w;
  w.u8(share.index);
  w.blob(share.data);
  return w.take();
}

Share share_from_bytes(BytesView raw) {
  BinaryReader r(raw);
  Share s;
  s.index = r.u8();
  s.data = r.blob();
  r.expect_done();
  return s;
}

}  // namespace emergence::crypto

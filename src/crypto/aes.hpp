// AES-128/192/256 block cipher (FIPS 197) with CTR mode.
//
// Provided as the second SymmetricCipher backend (the paper does not pin a
// cipher; ChaCha20 is the default, AES-CTR is selectable). Byte-oriented
// implementation; correctness is verified against the FIPS 197 and NIST
// SP 800-38A vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace emergence::crypto {

/// AES block cipher with a fixed expanded key schedule.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes; throws PreconditionError otherwise.
  explicit Aes(BytesView key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t* block) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(std::uint8_t* block) const;

  int rounds() const { return rounds_; }

 private:
  int rounds_;
  // Maximum schedule: AES-256 has 15 round keys of 16 bytes each.
  std::array<std::uint8_t, 240> round_keys_{};
};

/// AES-CTR keystream XOR: encryption and decryption are identical. The
/// 16-byte counter block is `nonce (12 bytes) || big-endian u32 counter`.
void aes_ctr_xor(const Aes& cipher, const std::array<std::uint8_t, 12>& nonce,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data);

}  // namespace emergence::crypto

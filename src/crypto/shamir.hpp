// Shamir (m, n) threshold secret sharing over GF(2^8).
//
// The key-share routing scheme (paper §III-D) splits each onion-layer key
// into n shares carried by the n holders of a path column; any m shares
// reconstruct the key, and up to n-m shares may be lost to churn or dropped
// by malicious holders without affecting reconstruction.
//
// Each byte of the secret is shared independently: a random degree-(m-1)
// polynomial f with f(0) = secret_byte is sampled, and share i carries
// f(x_i) for the nonzero evaluation point x_i = i.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"

namespace emergence::crypto {

/// One Shamir share: the evaluation point (1-based, nonzero) and one byte of
/// polynomial evaluation per secret byte.
struct Share {
  std::uint8_t index = 0;
  Bytes data;

  bool operator==(const Share&) const = default;
};

/// Splits `secret` into n shares, any m of which reconstruct it.
/// Requires 1 <= m <= n <= 255.
std::vector<Share> shamir_split(BytesView secret, std::size_t m, std::size_t n,
                                Drbg& drbg);

/// Reconstructs the secret from >= m distinct shares via Lagrange
/// interpolation at zero. Throws CryptoError when fewer than m shares are
/// supplied or when share indices repeat / lengths disagree.
Bytes shamir_combine(const std::vector<Share>& shares, std::size_t m);

/// Serialization helpers for placing shares inside onion layers.
Bytes share_to_bytes(const Share& share);
Share share_from_bytes(BytesView raw);

}  // namespace emergence::crypto

#include "crypto/aead.hpp"

#include "common/error.hpp"
#include "common/serial.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"

namespace emergence::crypto {
namespace {

constexpr std::size_t kNonceSize = 12;
constexpr std::size_t kTagSize = 32;

struct DerivedKeys {
  std::array<std::uint8_t, 32> enc;
  Bytes mac;
};

DerivedKeys derive_keys(const SymmetricKey& key, CipherBackend backend) {
  Bytes info = bytes_of("emergence/aead/v1");
  info.push_back(static_cast<std::uint8_t>(backend));
  const Bytes okm = hkdf(/*salt=*/{}, BytesView(key.bytes.data(), 32), info,
                         /*length=*/64);
  DerivedKeys out;
  std::copy(okm.begin(), okm.begin() + 32, out.enc.begin());
  out.mac.assign(okm.begin() + 32, okm.end());
  return out;
}

Bytes compute_tag(BytesView mac_key, BytesView nonce, BytesView aad,
                  BytesView body) {
  BinaryWriter w;
  w.raw(nonce);
  w.u64(aad.size());
  w.raw(aad);
  w.raw(body);
  return hmac_sha256(mac_key, w.bytes());
}

void apply_stream(const std::array<std::uint8_t, 32>& enc_key, BytesView nonce,
                  std::span<std::uint8_t> data, CipherBackend backend) {
  std::array<std::uint8_t, kNonceSize> n{};
  std::copy(nonce.begin(), nonce.end(), n.begin());
  switch (backend) {
    case CipherBackend::kChaCha20:
      chacha20_xor(enc_key, n, /*initial_counter=*/1, data);
      break;
    case CipherBackend::kAes256Ctr: {
      const Aes aes(BytesView(enc_key.data(), enc_key.size()));
      aes_ctr_xor(aes, n, /*initial_counter=*/1, data);
      break;
    }
  }
}

}  // namespace

SymmetricKey SymmetricKey::from_bytes(BytesView raw) {
  require(raw.size() == 32, "SymmetricKey: expected 32 bytes");
  SymmetricKey k;
  std::copy(raw.begin(), raw.end(), k.bytes.begin());
  return k;
}

Bytes aead_seal(const SymmetricKey& key, BytesView nonce12, BytesView plaintext,
                BytesView aad, CipherBackend backend) {
  require(nonce12.size() == kNonceSize, "aead_seal: nonce must be 12 bytes");
  const DerivedKeys keys = derive_keys(key, backend);

  Bytes body(plaintext.begin(), plaintext.end());
  apply_stream(keys.enc, nonce12, body, backend);

  const Bytes tag = compute_tag(keys.mac, nonce12, aad, body);

  Bytes out;
  out.reserve(kNonceSize + body.size() + kTagSize);
  append(out, nonce12);
  append(out, body);
  append(out, tag);
  return out;
}

Bytes aead_open(const SymmetricKey& key, BytesView sealed, BytesView aad,
                CipherBackend backend) {
  if (sealed.size() < kNonceSize + kTagSize)
    throw CryptoError("aead_open: ciphertext too short");
  const DerivedKeys keys = derive_keys(key, backend);

  const BytesView nonce = sealed.subspan(0, kNonceSize);
  const BytesView body =
      sealed.subspan(kNonceSize, sealed.size() - kNonceSize - kTagSize);
  const BytesView tag = sealed.subspan(sealed.size() - kTagSize);

  const Bytes expected = compute_tag(keys.mac, nonce, aad, body);
  if (!constant_time_equal(expected, tag))
    throw CryptoError("aead_open: authentication failed");

  Bytes plaintext(body.begin(), body.end());
  apply_stream(keys.enc, nonce, plaintext, backend);
  return plaintext;
}

}  // namespace emergence::crypto

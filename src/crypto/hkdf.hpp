// HKDF (RFC 5869) over HMAC-SHA256; used to derive per-layer onion keys and
// MAC keys from a single symmetric key.
#pragma once

#include "common/bytes.hpp"

namespace emergence::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: OKM of `length` bytes from PRK and info.
/// length must be <= 255*32.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// Convenience: extract-then-expand.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace emergence::crypto

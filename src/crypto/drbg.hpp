// Deterministic random bit generator built on ChaCha20.
//
// Key material (secret keys, Shamir coefficients, nonces) is drawn from this
// DRBG rather than the simulation Rng so that (a) key generation is
// cryptographically strong under a real entropy seed and (b) experiments
// remain reproducible under a fixed seed. The construction is the classic
// fast-key-erasure stream DRBG: each refill generates a block of keystream,
// the first 32 bytes of which immediately replace the key.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace emergence::crypto {

/// ChaCha20-based DRBG with fast key erasure and stream forking.
class Drbg {
 public:
  /// Seeds from arbitrary bytes (hashed into the initial key).
  explicit Drbg(BytesView seed);

  /// Seeds from a 64-bit integer; convenient for experiments.
  explicit Drbg(std::uint64_t seed);

  /// Fills `out` with random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Returns `count` random bytes.
  Bytes bytes(std::size_t count);

  /// Returns a random 64-bit value.
  std::uint64_t u64();

  /// Uniform integer in [0, n) with rejection sampling (no modulo bias).
  std::uint64_t below(std::uint64_t n);

  /// Derives an independent child DRBG; the parent advances.
  Drbg fork();

 private:
  void refill();

  std::array<std::uint8_t, 32> key_{};
  std::uint64_t block_counter_ = 0;
  std::array<std::uint8_t, 64> pool_{};
  std::size_t pool_used_ = 64;  // start empty
};

}  // namespace emergence::crypto

#include "service/datagram.hpp"

#include <utility>

#include "common/error.hpp"

namespace emergence::service {

class MemoryDatagramHub::Socket final : public DatagramSocket {
 public:
  Socket(MemoryDatagramHub& hub, Endpoint endpoint)
      : hub_(hub), endpoint_(endpoint) {}

  ~Socket() override { hub_.unbind(endpoint_); }

  void send_to(const Endpoint& to, BytesView datagram) override {
    hub_.send(endpoint_, to, datagram);
  }

  Endpoint local_endpoint() const override { return endpoint_; }

  void on_receive(Handler handler) override { handler_ = std::move(handler); }

  void deliver(const Endpoint& from, const Bytes& datagram) {
    if (handler_) handler_(from, datagram);
  }

 private:
  MemoryDatagramHub& hub_;
  Endpoint endpoint_;
  Handler handler_;
};

MemoryDatagramHub::MemoryDatagramHub(sim::Clock& clock, double latency)
    : clock_(clock), latency_(latency) {
  require(latency >= 0.0, "MemoryDatagramHub: negative latency");
}

std::unique_ptr<DatagramSocket> MemoryDatagramHub::bind(
    const Endpoint& endpoint) {
  require(endpoint.valid(), "MemoryDatagramHub: invalid endpoint");
  require(bound_.find(endpoint) == bound_.end(),
          "MemoryDatagramHub: endpoint already bound: " +
              endpoint.to_string());
  auto socket = std::make_unique<Socket>(*this, endpoint);
  bound_[endpoint] = socket.get();
  return socket;
}

void MemoryDatagramHub::send(const Endpoint& from, const Endpoint& to,
                             BytesView datagram) {
  if (drop_hook_ && drop_hook_(from, to, datagram)) {
    ++dropped_;
    return;
  }
  // Copy now: the sender's buffer need not outlive the call. Delivery
  // re-resolves the destination at fire time so datagrams to endpoints that
  // unbound in flight vanish silently, like UDP to a closed port.
  clock_.schedule_in(latency_,
                     [this, from, to, copy = Bytes(datagram.begin(),
                                                   datagram.end())]() {
                       auto it = bound_.find(to);
                       if (it == bound_.end()) {
                         ++dropped_;
                         return;
                       }
                       ++delivered_;
                       it->second->deliver(from, copy);
                     });
}

void MemoryDatagramHub::unbind(const Endpoint& endpoint) {
  bound_.erase(endpoint);
}

}  // namespace emergence::service

// POSIX UDP binding of the DatagramSocket seam (the real transport).
//
// Non-blocking socket + poll(2): the daemon's run loop alternates
// WallClock::fire_due() with poll(seconds_until_next), so timers and
// datagrams interleave on one thread with no locks — the same single-
// threaded event discipline the simulator enforces.
#pragma once

#include <cstddef>

#include "service/datagram.hpp"

namespace emergence::service {

/// Endpoint::parse plus DNS: "host:port" resolves the host via getaddrinfo
/// (IPv4), so docker-compose service names ("seed:4100") work wherever the
/// daemon/tool flags accept an endpoint. Throws PreconditionError when the
/// host does not resolve.
Endpoint resolve_endpoint(const std::string& text);

class UdpSocket final : public DatagramSocket {
 public:
  /// Binds on `listen` (IPv4). Port 0 lets the kernel pick; the resolved
  /// endpoint is available via local_endpoint(). Throws PreconditionError
  /// on any socket/bind failure (address in use, permission, ...).
  explicit UdpSocket(const Endpoint& listen);
  ~UdpSocket() override;

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void send_to(const Endpoint& to, BytesView datagram) override;
  Endpoint local_endpoint() const override { return local_; }
  void on_receive(Handler handler) override;

  /// Waits up to `max_wait_seconds` for readability, then drains every
  /// pending datagram into the handler. Returns the number received.
  /// A negative wait means "don't block at all".
  std::size_t poll(double max_wait_seconds);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  Endpoint local_;
  Handler handler_;
};

}  // namespace emergence::service

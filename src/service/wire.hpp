// The emerged wire protocol: length-prefixed, version-stamped frames.
//
// Every datagram between daemons (and between clients and daemons) is one
// frame:
//
//   u8  magic   (0xE7)     — cheap reject of stray datagrams
//   u8  version (kWireVersion)
//   u8  type    (MessageType)
//   u32 length  of the payload that follows
//   ... payload (message-specific codec below)
//
// Robustness contract: decode_frame NEVER throws and NEVER aborts the
// receiver — wrong magic, unknown version, unknown type, truncated or
// oversized payloads, and payloads whose codec fails all return nullopt
// and bump the matching WireStats counter. A daemon fed garbage keeps
// serving (tests/test_wire.cpp injects every malformation class).
//
// Round-trip contract: encode(decode(encode(m))) is byte-identical for
// every message type — the property tests pin this at fixed seeds, which
// is what lets the in-process loopback harness and the real UDP cluster
// exchange captured frames interchangeably.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "api/api.hpp"
#include "dht/node_id.hpp"
#include "emerge/types.hpp"

namespace emergence::service {

constexpr std::uint8_t kWireMagic = 0xE7;
constexpr std::uint8_t kWireVersion = 1;
/// Payload ceiling: one frame must fit a localhost UDP datagram with room
/// for the 7-byte header (default datagram limit is 65507 bytes).
constexpr std::size_t kMaxFramePayload = 60000;

/// A UDP endpoint; IPv4 only (the deployment target is localhost clusters).
struct Endpoint {
  std::uint32_t ip = 0;  ///< host byte order (127.0.0.1 = 0x7F000001)
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  bool valid() const { return port != 0; }
  std::string to_string() const;  ///< "127.0.0.1:9000"
  /// Parses "a.b.c.d:port"; throws PreconditionError on malformed input.
  static Endpoint parse(const std::string& text);
};

/// A node as seen on the wire: ring identifier + where to reach it.
struct Peer {
  dht::NodeId id;
  Endpoint addr;

  auto operator<=>(const Peer&) const = default;
};

/// Receiver-side counters; every malformation class has its own bucket so
/// the cluster harness can assert `malformed_frames == 0` end-to-end.
struct WireStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bad_magic = 0;
  std::uint64_t version_mismatch = 0;
  std::uint64_t truncated_frames = 0;   ///< header short or length > body
  std::uint64_t oversized_frames = 0;   ///< length > kMaxFramePayload
  std::uint64_t unknown_type = 0;
  std::uint64_t malformed_payload = 0;  ///< codec failure inside the payload
  std::uint64_t hops_exhausted = 0;     ///< routed message ran out of hops
  std::uint64_t request_timeouts = 0;
  std::uint64_t request_retries = 0;

  /// Everything that indicates a damaged or alien frame.
  std::uint64_t malformed_frames() const {
    return bad_magic + version_mismatch + truncated_frames +
           oversized_frames + unknown_type + malformed_payload;
  }
};

enum class MessageType : std::uint8_t {
  kPing = 1,
  kPong = 2,
  kFindSuccessor = 3,
  kFindSuccessorReply = 4,
  kGetPredecessor = 5,
  kPredecessorReply = 6,
  kNotify = 7,
  kPut = 8,
  kPutAck = 9,
  kGet = 10,
  kGetReply = 11,
  kStoreReplica = 12,
  kPackage = 13,
  kDeliver = 14,
  kSubmit = 15,
  kSubmitAck = 16,
  kStatus = 17,
  kStatusReply = 18,
  kMetricsRequest = 19,
  kMetricsResponse = 20,
};

// -- message structs ----------------------------------------------------------
// Requests that expect a reply carry a token (matched by the sender's
// pending-request table) and the reply_to endpoint, because routed requests
// arrive via intermediate hops while replies travel directly.

struct Ping {
  std::uint64_t token = 0;
  Endpoint reply_to;
};

struct Pong {
  std::uint64_t token = 0;
  Peer self;
};

struct FindSuccessor {
  std::uint64_t token = 0;
  Endpoint reply_to;
  dht::NodeId target;
  std::uint8_t hops_left = 0;
};

struct FindSuccessorReply {
  std::uint64_t token = 0;
  Peer successor;
};

struct GetPredecessor {
  std::uint64_t token = 0;
  Endpoint reply_to;
};

struct PredecessorReply {
  std::uint64_t token = 0;
  bool known = false;
  Peer predecessor;
  /// The replier's successor list, piggybacked so one stabilize round both
  /// checks the predecessor link and refreshes the list.
  std::vector<Peer> successors;
};

struct Notify {
  Peer self;
};

struct Put {
  std::uint64_t token = 0;
  Endpoint reply_to;
  dht::NodeId key;
  Bytes value;
  std::uint8_t hops_left = 0;
};

struct PutAck {
  std::uint64_t token = 0;
};

struct Get {
  std::uint64_t token = 0;
  Endpoint reply_to;
  dht::NodeId key;
  std::uint8_t hops_left = 0;
};

struct GetReply {
  std::uint64_t token = 0;
  bool found = false;
  Bytes value;
};

/// Responsible-node -> successor copy; stored without forwarding or ack.
struct StoreReplica {
  dht::NodeId key;
  Bytes value;
};

/// Everything a holder needs to act on a package locally: the wire has no
/// central session object, so the session parameters travel with every hop.
struct SessionMeta {
  std::uint64_t session_nonce = 0;
  double start_time = 0.0;     ///< ts on the cluster's wall clock
  double emerging_time = 0.0;  ///< T in seconds
  core::SchemeKind scheme = core::SchemeKind::kJoint;
  std::uint16_t k = 0;
  std::uint16_t l = 0;
  std::uint16_t carriers_n = 0;
  std::uint16_t threshold_m = 0;
  crypto::CipherBackend backend = crypto::CipherBackend::kChaCha20;
  double assembly_delay = 0.0;
  Endpoint receiver;  ///< where terminal holders deliver the EmergeEvent

  double holding_period() const {
    return emerging_time / static_cast<double>(l);
  }
  double release_time() const { return start_time + emerging_time; }
};

/// One protocol package hop. `ring_point` is both the routing target and
/// the holder slot identity: the layer key for this slot was Put under the
/// same id, so the responsible daemon finds it in its local store.
/// `package` is core::encode_protocol_package bytes — the exact bytes the
/// simulator exchanges, reused verbatim.
struct Package {
  SessionMeta meta;
  dht::NodeId ring_point;
  Bytes package;
  std::uint8_t hops_left = 0;
};

/// Terminal holder -> receiver; payload is api::encode_emerge_event bytes.
struct Deliver {
  Bytes event;
};

/// Client -> any daemon; `request` is api::encode_submit_request bytes and
/// `receiver` is where the emergence should land.
struct Submit {
  std::uint64_t token = 0;
  Endpoint reply_to;
  Bytes request;
  Endpoint receiver;
};

struct SubmitAck {
  std::uint64_t token = 0;
  bool ok = false;
  std::string error;  ///< empty when ok
  std::uint64_t session_nonce = 0;
  double start_time = 0.0;
  double release_time = 0.0;
};

struct Status {
  std::uint64_t token = 0;
  Endpoint reply_to;
};

/// Ring-walk unit: enough to verify convergence (successor chain), storage
/// health and the zero-malformed-frames acceptance gate.
struct StatusReply {
  std::uint64_t token = 0;
  Peer self;
  bool has_predecessor = false;
  Peer predecessor;
  std::vector<Peer> successors;
  std::uint64_t store_size = 0;
  std::uint64_t holder_slots = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t malformed_frames = 0;
};

struct MetricsRequest {
  std::uint64_t token = 0;
  Endpoint reply_to;
};

/// Flattened snapshot of the daemon's metrics registry: one (series name,
/// value) pair per counter/gauge plus the expanded histogram summaries —
/// the same flattening obs::MetricsRegistry::flatten() produces, so the
/// wire answer and the periodic text dump always agree.
struct MetricsResponse {
  std::uint64_t token = 0;
  std::vector<std::pair<std::string, double>> entries;
};

using WireMessage =
    std::variant<Ping, Pong, FindSuccessor, FindSuccessorReply,
                 GetPredecessor, PredecessorReply, Notify, Put, PutAck, Get,
                 GetReply, StoreReplica, Package, Deliver, Submit, SubmitAck,
                 Status, StatusReply, MetricsRequest, MetricsResponse>;

/// The frame type of a message value.
MessageType message_type(const WireMessage& message);

/// Encodes a full frame (header + payload). Throws PreconditionError when
/// the payload would exceed kMaxFramePayload — senders size their messages.
Bytes encode_frame(const WireMessage& message);

/// Decodes one datagram. Never throws: every malformation returns nullopt
/// and bumps the matching counter in `stats` (frames_received is counted
/// only for well-formed frames).
std::optional<WireMessage> decode_frame(BytesView datagram, WireStats& stats);

}  // namespace emergence::service

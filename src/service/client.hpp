// WireClient: the api::Client binding for the `emerged` wire.
//
// The same Client interface LocalClient implements over the in-process
// engine, here implemented by speaking the UDP wire protocol to a running
// daemon: submit() sends a Submit frame and pumps until the SubmitAck
// arrives (with bounded resends); Deliver frames land on the client's own
// socket — the client IS the receiver endpoint — and poll() surfaces them.
//
// Like every service-layer class the client is written against the two
// seams (sim::Clock + DatagramSocket), so the loopback tests drive it on a
// Simulator + MemoryDatagramHub while tools/emerged.cpp drives it on a
// WallClock + UdpSocket. The caller supplies the pump: one step of "make
// the world progress" (simulator step, or poll(2) + fire_due), invoked
// repeatedly while submit()/await_event() wait.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "api/api.hpp"
#include "service/datagram.hpp"
#include "service/wire.hpp"
#include "sim/clock.hpp"

namespace emergence::service {

class WireClient final : public api::Client {
 public:
  /// One step of world progress while the client waits: advance the
  /// simulator, or poll the UDP socket and fire due wall-clock timers.
  /// Returning false means no progress is possible (deadlock guard);
  /// the wait aborts with ProtocolError.
  using Pump = std::function<bool()>;

  struct Options {
    Endpoint daemon;              ///< daemon that executes submits
    double resend_interval = 0.5; ///< seconds between Submit resends
    std::size_t resends = 8;      ///< attempts - 1 before giving up
    double submit_timeout = 10.0; ///< total seconds to wait for the ack
  };

  /// `clock`, `socket` and the pump's referents must outlive the client.
  /// Installs the receive handler on `socket`.
  WireClient(sim::Clock& clock, DatagramSocket& socket, Options options,
             Pump pump);

  /// Sends the Submit frame and pumps until the daemon acknowledges.
  /// Throws ProtocolError on timeout or a rejecting ack (the daemon's
  /// diagnostic is included verbatim).
  api::SubmitReceipt submit(const api::SubmitRequest& request) override;

  /// Non-blocking: the EmergeEvent if a Deliver frame for `session_nonce`
  /// has arrived on this client's socket.
  std::optional<api::EmergeEvent> poll(std::uint64_t session_nonce) override;

  /// Pumps until poll(session_nonce) succeeds or `max_wait_seconds` of
  /// clock time pass; nullopt on timeout.
  std::optional<api::EmergeEvent> await_event(std::uint64_t session_nonce,
                                              double max_wait_seconds);

  /// Sends a Status request to `target` and pumps for the reply.
  /// Throws ProtocolError on timeout.
  StatusReply status_of(const Endpoint& target, double max_wait_seconds);

  /// Sends a MetricsRequest to `target` and pumps for the flattened
  /// metrics snapshot. Throws ProtocolError on timeout.
  MetricsResponse metrics_of(const Endpoint& target, double max_wait_seconds);

  const WireStats& stats() const { return stats_; }
  std::size_t events_received() const { return events_.size(); }

 private:
  void handle_datagram(const Endpoint& from, BytesView datagram);
  std::uint64_t next_token();

  sim::Clock& clock_;
  DatagramSocket& socket_;
  Options options_;
  Pump pump_;
  std::uint64_t token_counter_ = 0;

  std::optional<SubmitAck> last_ack_;      ///< for the in-flight submit
  std::optional<StatusReply> last_status_; ///< for the in-flight status
  std::optional<MetricsResponse> last_metrics_;  ///< in-flight metrics query
  std::map<std::uint64_t, api::EmergeEvent> events_;
  WireStats stats_;
};

}  // namespace emergence::service

// The datagram seam: one socket interface, two transports.
//
// NodeDaemon is written against DatagramSocket + sim::Clock and nothing
// else, so the SAME daemon code runs in two worlds:
//
//   * MemoryDatagramHub sockets + sim::Simulator — deterministic in-process
//     clusters for tests: delivery is a scheduled clock event, so a 16-node
//     loopback run is bit-reproducible and needs no real sockets;
//   * UdpSocket + sim::WallClock — the real `emerged` daemon on localhost
//     UDP (udp_socket.hpp).
//
// Datagram semantics match UDP deliberately: unreliable (the hub can drop
// via a test hook), unordered across sources, one frame per datagram.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "service/wire.hpp"
#include "sim/clock.hpp"

namespace emergence::service {

/// One bound datagram socket. Handlers are invoked from the owning world's
/// event pump (hub delivery event or UdpSocket::poll) — never reentrantly
/// from inside send_to.
class DatagramSocket {
 public:
  using Handler =
      std::function<void(const Endpoint& from, BytesView datagram)>;

  virtual ~DatagramSocket() = default;

  virtual void send_to(const Endpoint& to, BytesView datagram) = 0;
  virtual Endpoint local_endpoint() const = 0;
  /// Installs the receive handler (replacing any previous one).
  virtual void on_receive(Handler handler) = 0;
};

/// An in-memory "localhost": every socket bound on the hub reaches every
/// other at a fixed simulated latency. Delivery is a clock event, so with a
/// Simulator the whole exchange is deterministic; sockets unbind themselves
/// on destruction (in-flight datagrams to a dead endpoint are dropped, as
/// UDP would).
class MemoryDatagramHub {
 public:
  /// `latency` is the per-datagram delivery delay on `clock`.
  explicit MemoryDatagramHub(sim::Clock& clock, double latency = 0.0005);

  /// Binds a socket on `endpoint`; throws PreconditionError if taken.
  std::unique_ptr<DatagramSocket> bind(const Endpoint& endpoint);

  /// Test hook: called per datagram before scheduling; return true to drop.
  /// (Loss injection for robustness tests; null = lossless.)
  using DropHook = std::function<bool(const Endpoint& from, const Endpoint& to,
                                      BytesView datagram)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  std::uint64_t datagrams_delivered() const { return delivered_; }
  std::uint64_t datagrams_dropped() const { return dropped_; }

 private:
  class Socket;

  void send(const Endpoint& from, const Endpoint& to, BytesView datagram);
  void unbind(const Endpoint& endpoint);

  sim::Clock& clock_;
  double latency_;
  std::map<Endpoint, Socket*> bound_;
  DropHook drop_hook_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace emergence::service

#include "service/wire.hpp"

#include <bit>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"
#include "common/serial.hpp"

namespace emergence::service {
namespace {

void write_f64(BinaryWriter& w, double value) {
  w.u64(std::bit_cast<std::uint64_t>(value));
}

double read_f64(BinaryReader& r) { return std::bit_cast<double>(r.u64()); }

void write_endpoint(BinaryWriter& w, const Endpoint& ep) {
  w.u32(ep.ip);
  w.u16(ep.port);
}

Endpoint read_endpoint(BinaryReader& r) {
  Endpoint ep;
  ep.ip = r.u32();
  ep.port = r.u16();
  return ep;
}

void write_node_id(BinaryWriter& w, const dht::NodeId& id) {
  w.raw(BytesView(id.bytes().data(), id.bytes().size()));
}

dht::NodeId read_node_id(BinaryReader& r) {
  return dht::NodeId::from_bytes(r.raw(dht::kIdBytes));
}

void write_peer(BinaryWriter& w, const Peer& peer) {
  write_node_id(w, peer.id);
  write_endpoint(w, peer.addr);
}

Peer read_peer(BinaryReader& r) {
  Peer peer;
  peer.id = read_node_id(r);
  peer.addr = read_endpoint(r);
  return peer;
}

void write_peers(BinaryWriter& w, const std::vector<Peer>& peers) {
  w.u16(static_cast<std::uint16_t>(peers.size()));
  for (const Peer& p : peers) write_peer(w, p);
}

std::vector<Peer> read_peers(BinaryReader& r) {
  const std::uint16_t count = r.u16();
  std::vector<Peer> peers;
  peers.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) peers.push_back(read_peer(r));
  return peers;
}

void write_meta(BinaryWriter& w, const SessionMeta& meta) {
  w.u64(meta.session_nonce);
  write_f64(w, meta.start_time);
  write_f64(w, meta.emerging_time);
  w.u8(static_cast<std::uint8_t>(meta.scheme));
  w.u16(meta.k);
  w.u16(meta.l);
  w.u16(meta.carriers_n);
  w.u16(meta.threshold_m);
  w.u8(static_cast<std::uint8_t>(meta.backend));
  write_f64(w, meta.assembly_delay);
  write_endpoint(w, meta.receiver);
}

SessionMeta read_meta(BinaryReader& r) {
  SessionMeta meta;
  meta.session_nonce = r.u64();
  meta.start_time = read_f64(r);
  meta.emerging_time = read_f64(r);
  const std::uint8_t scheme = r.u8();
  require(scheme <= static_cast<std::uint8_t>(core::SchemeKind::kShare),
          "SessionMeta: unknown scheme");
  meta.scheme = static_cast<core::SchemeKind>(scheme);
  meta.k = r.u16();
  meta.l = r.u16();
  meta.carriers_n = r.u16();
  meta.threshold_m = r.u16();
  const std::uint8_t backend = r.u8();
  require(backend <= static_cast<std::uint8_t>(
                         crypto::CipherBackend::kAes256Ctr),
          "SessionMeta: unknown cipher backend");
  meta.backend = static_cast<crypto::CipherBackend>(backend);
  meta.assembly_delay = read_f64(r);
  meta.receiver = read_endpoint(r);
  return meta;
}

struct PayloadWriter {
  BinaryWriter& w;

  void operator()(const Ping& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
  }
  void operator()(const Pong& m) {
    w.u64(m.token);
    write_peer(w, m.self);
  }
  void operator()(const FindSuccessor& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
    write_node_id(w, m.target);
    w.u8(m.hops_left);
  }
  void operator()(const FindSuccessorReply& m) {
    w.u64(m.token);
    write_peer(w, m.successor);
  }
  void operator()(const GetPredecessor& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
  }
  void operator()(const PredecessorReply& m) {
    w.u64(m.token);
    w.u8(m.known ? 1 : 0);
    write_peer(w, m.predecessor);
    write_peers(w, m.successors);
  }
  void operator()(const Notify& m) { write_peer(w, m.self); }
  void operator()(const Put& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
    write_node_id(w, m.key);
    w.blob(m.value);
    w.u8(m.hops_left);
  }
  void operator()(const PutAck& m) { w.u64(m.token); }
  void operator()(const Get& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
    write_node_id(w, m.key);
    w.u8(m.hops_left);
  }
  void operator()(const GetReply& m) {
    w.u64(m.token);
    w.u8(m.found ? 1 : 0);
    w.blob(m.value);
  }
  void operator()(const StoreReplica& m) {
    write_node_id(w, m.key);
    w.blob(m.value);
  }
  void operator()(const Package& m) {
    write_meta(w, m.meta);
    write_node_id(w, m.ring_point);
    w.blob(m.package);
    w.u8(m.hops_left);
  }
  void operator()(const Deliver& m) { w.blob(m.event); }
  void operator()(const Submit& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
    w.blob(m.request);
    write_endpoint(w, m.receiver);
  }
  void operator()(const SubmitAck& m) {
    w.u64(m.token);
    w.u8(m.ok ? 1 : 0);
    w.str(m.error);
    w.u64(m.session_nonce);
    write_f64(w, m.start_time);
    write_f64(w, m.release_time);
  }
  void operator()(const Status& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
  }
  void operator()(const StatusReply& m) {
    w.u64(m.token);
    write_peer(w, m.self);
    w.u8(m.has_predecessor ? 1 : 0);
    write_peer(w, m.predecessor);
    write_peers(w, m.successors);
    w.u64(m.store_size);
    w.u64(m.holder_slots);
    w.u64(m.deliveries);
    w.u64(m.malformed_frames);
  }
  void operator()(const MetricsRequest& m) {
    w.u64(m.token);
    write_endpoint(w, m.reply_to);
  }
  void operator()(const MetricsResponse& m) {
    w.u64(m.token);
    w.u16(static_cast<std::uint16_t>(m.entries.size()));
    for (const auto& [name, value] : m.entries) {
      w.str(name);
      write_f64(w, value);
    }
  }
};

WireMessage decode_payload(MessageType type, BytesView payload) {
  BinaryReader r(payload);
  WireMessage message;
  switch (type) {
    case MessageType::kPing: {
      Ping m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      message = m;
      break;
    }
    case MessageType::kPong: {
      Pong m;
      m.token = r.u64();
      m.self = read_peer(r);
      message = m;
      break;
    }
    case MessageType::kFindSuccessor: {
      FindSuccessor m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      m.target = read_node_id(r);
      m.hops_left = r.u8();
      message = m;
      break;
    }
    case MessageType::kFindSuccessorReply: {
      FindSuccessorReply m;
      m.token = r.u64();
      m.successor = read_peer(r);
      message = m;
      break;
    }
    case MessageType::kGetPredecessor: {
      GetPredecessor m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      message = m;
      break;
    }
    case MessageType::kPredecessorReply: {
      PredecessorReply m;
      m.token = r.u64();
      m.known = r.u8() != 0;
      m.predecessor = read_peer(r);
      m.successors = read_peers(r);
      message = m;
      break;
    }
    case MessageType::kNotify: {
      Notify m;
      m.self = read_peer(r);
      message = m;
      break;
    }
    case MessageType::kPut: {
      Put m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      m.key = read_node_id(r);
      m.value = r.blob();
      m.hops_left = r.u8();
      message = m;
      break;
    }
    case MessageType::kPutAck: {
      PutAck m;
      m.token = r.u64();
      message = m;
      break;
    }
    case MessageType::kGet: {
      Get m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      m.key = read_node_id(r);
      m.hops_left = r.u8();
      message = m;
      break;
    }
    case MessageType::kGetReply: {
      GetReply m;
      m.token = r.u64();
      m.found = r.u8() != 0;
      m.value = r.blob();
      message = m;
      break;
    }
    case MessageType::kStoreReplica: {
      StoreReplica m;
      m.key = read_node_id(r);
      m.value = r.blob();
      message = m;
      break;
    }
    case MessageType::kPackage: {
      Package m;
      m.meta = read_meta(r);
      m.ring_point = read_node_id(r);
      m.package = r.blob();
      m.hops_left = r.u8();
      message = m;
      break;
    }
    case MessageType::kDeliver: {
      Deliver m;
      m.event = r.blob();
      message = m;
      break;
    }
    case MessageType::kSubmit: {
      Submit m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      m.request = r.blob();
      m.receiver = read_endpoint(r);
      message = m;
      break;
    }
    case MessageType::kSubmitAck: {
      SubmitAck m;
      m.token = r.u64();
      m.ok = r.u8() != 0;
      m.error = r.str();
      m.session_nonce = r.u64();
      m.start_time = read_f64(r);
      m.release_time = read_f64(r);
      message = m;
      break;
    }
    case MessageType::kStatus: {
      Status m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      message = m;
      break;
    }
    case MessageType::kStatusReply: {
      StatusReply m;
      m.token = r.u64();
      m.self = read_peer(r);
      m.has_predecessor = r.u8() != 0;
      m.predecessor = read_peer(r);
      m.successors = read_peers(r);
      m.store_size = r.u64();
      m.holder_slots = r.u64();
      m.deliveries = r.u64();
      m.malformed_frames = r.u64();
      message = m;
      break;
    }
    case MessageType::kMetricsRequest: {
      MetricsRequest m;
      m.token = r.u64();
      m.reply_to = read_endpoint(r);
      message = m;
      break;
    }
    case MessageType::kMetricsResponse: {
      MetricsResponse m;
      m.token = r.u64();
      const std::uint16_t count = r.u16();
      m.entries.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        std::string name = r.str();
        const double value = read_f64(r);
        m.entries.emplace_back(std::move(name), value);
      }
      message = m;
      break;
    }
  }
  r.expect_done();
  return message;
}

}  // namespace

std::string Endpoint::to_string() const {
  return std::to_string((ip >> 24) & 0xFF) + "." +
         std::to_string((ip >> 16) & 0xFF) + "." +
         std::to_string((ip >> 8) & 0xFF) + "." + std::to_string(ip & 0xFF) +
         ":" + std::to_string(port);
}

Endpoint Endpoint::parse(const std::string& text) {
  const auto fail = [&text]() -> void {
    throw PreconditionError("Endpoint::parse: malformed endpoint '" + text +
                            "' (want a.b.c.d:port)");
  };
  std::uint32_t ip = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= text.size() || !std::isdigit(text[pos])) fail();
    unsigned long value = 0;
    std::size_t digits = 0;
    while (pos < text.size() && std::isdigit(text[pos]) && digits < 4) {
      value = value * 10 + static_cast<unsigned long>(text[pos] - '0');
      ++pos;
      ++digits;
    }
    if (value > 255) fail();
    ip = (ip << 8) | static_cast<std::uint32_t>(value);
    const char sep = octet < 3 ? '.' : ':';
    if (pos >= text.size() || text[pos] != sep) fail();
    ++pos;
  }
  unsigned long port = 0;
  std::size_t digits = 0;
  while (pos < text.size() && std::isdigit(text[pos]) && digits < 6) {
    port = port * 10 + static_cast<unsigned long>(text[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0 || pos != text.size() || port == 0 || port > 65535) fail();
  return Endpoint{ip, static_cast<std::uint16_t>(port)};
}

MessageType message_type(const WireMessage& message) {
  // clang-format off
  return std::visit([](const auto& m) {
    using T = std::decay_t<decltype(m)>;
    if constexpr (std::is_same_v<T, Ping>) return MessageType::kPing;
    else if constexpr (std::is_same_v<T, Pong>) return MessageType::kPong;
    else if constexpr (std::is_same_v<T, FindSuccessor>) return MessageType::kFindSuccessor;
    else if constexpr (std::is_same_v<T, FindSuccessorReply>) return MessageType::kFindSuccessorReply;
    else if constexpr (std::is_same_v<T, GetPredecessor>) return MessageType::kGetPredecessor;
    else if constexpr (std::is_same_v<T, PredecessorReply>) return MessageType::kPredecessorReply;
    else if constexpr (std::is_same_v<T, Notify>) return MessageType::kNotify;
    else if constexpr (std::is_same_v<T, Put>) return MessageType::kPut;
    else if constexpr (std::is_same_v<T, PutAck>) return MessageType::kPutAck;
    else if constexpr (std::is_same_v<T, Get>) return MessageType::kGet;
    else if constexpr (std::is_same_v<T, GetReply>) return MessageType::kGetReply;
    else if constexpr (std::is_same_v<T, StoreReplica>) return MessageType::kStoreReplica;
    else if constexpr (std::is_same_v<T, Package>) return MessageType::kPackage;
    else if constexpr (std::is_same_v<T, Deliver>) return MessageType::kDeliver;
    else if constexpr (std::is_same_v<T, Submit>) return MessageType::kSubmit;
    else if constexpr (std::is_same_v<T, SubmitAck>) return MessageType::kSubmitAck;
    else if constexpr (std::is_same_v<T, Status>) return MessageType::kStatus;
    else if constexpr (std::is_same_v<T, StatusReply>) return MessageType::kStatusReply;
    else if constexpr (std::is_same_v<T, MetricsRequest>) return MessageType::kMetricsRequest;
    else return MessageType::kMetricsResponse;
  }, message);
  // clang-format on
}

Bytes encode_frame(const WireMessage& message) {
  BinaryWriter payload;
  std::visit(PayloadWriter{payload}, message);
  require(payload.bytes().size() <= kMaxFramePayload,
          "encode_frame: payload exceeds kMaxFramePayload");
  BinaryWriter w;
  w.u8(kWireMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(message_type(message)));
  w.u32(static_cast<std::uint32_t>(payload.bytes().size()));
  w.raw(payload.bytes());
  return w.take();
}

std::optional<WireMessage> decode_frame(BytesView datagram, WireStats& stats) {
  constexpr std::size_t kHeader = 7;  // magic + version + type + u32 length
  if (datagram.size() < kHeader) {
    // An alien scrap without even a magic byte to check counts as truncated
    // unless the first byte already rules it out as ours.
    if (!datagram.empty() && datagram[0] != kWireMagic) {
      ++stats.bad_magic;
    } else {
      ++stats.truncated_frames;
    }
    return std::nullopt;
  }
  BinaryReader r(datagram);
  if (r.u8() != kWireMagic) {
    ++stats.bad_magic;
    return std::nullopt;
  }
  if (r.u8() != kWireVersion) {
    ++stats.version_mismatch;
    return std::nullopt;
  }
  const std::uint8_t raw_type = r.u8();
  const std::uint32_t length = r.u32();
  if (length > kMaxFramePayload) {
    ++stats.oversized_frames;
    return std::nullopt;
  }
  if (length != r.remaining()) {
    ++stats.truncated_frames;  // short body or trailing garbage
    return std::nullopt;
  }
  if (raw_type < static_cast<std::uint8_t>(MessageType::kPing) ||
      raw_type > static_cast<std::uint8_t>(MessageType::kMetricsResponse)) {
    ++stats.unknown_type;
    return std::nullopt;
  }
  try {
    WireMessage message = decode_payload(static_cast<MessageType>(raw_type),
                                         BytesView(datagram.data() + kHeader,
                                                   length));
    ++stats.frames_received;
    return message;
  } catch (const Error&) {
    ++stats.malformed_payload;
    return std::nullopt;
  }
}

}  // namespace emergence::service

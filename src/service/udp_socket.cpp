#include "service/udp_socket.hpp"
#include <netdb.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace emergence::service {
namespace {

sockaddr_in to_sockaddr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ep.ip);
  addr.sin_port = htons(ep.port);
  return addr;
}

Endpoint from_sockaddr(const sockaddr_in& addr) {
  return Endpoint{ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port)};
}

}  // namespace

Endpoint resolve_endpoint(const std::string& text) {
  try {
    return Endpoint::parse(text);
  } catch (const Error&) {
    // Not a dotted quad; fall through to DNS.
  }
  const auto colon = text.rfind(':');
  require(colon != std::string::npos && colon > 0 && colon + 1 < text.size(),
          "endpoint '" + text + "': expected HOST:PORT");
  const std::string host = text.substr(0, colon);
  const std::string port = text.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* result = nullptr;
  require(::getaddrinfo(host.c_str(), port.c_str(), &hints, &result) == 0 &&
              result != nullptr,
          "endpoint '" + text + "': host did not resolve");
  const auto* addr = reinterpret_cast<const sockaddr_in*>(result->ai_addr);
  const Endpoint resolved{ntohl(addr->sin_addr.s_addr),
                          ntohs(addr->sin_port)};
  ::freeaddrinfo(result);
  return resolved;
}

UdpSocket::UdpSocket(const Endpoint& listen) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  require(fd_ >= 0, std::string("UdpSocket: socket() failed: ") +
                        std::strerror(errno));
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd_);
    throw PreconditionError(std::string("UdpSocket: O_NONBLOCK failed: ") +
                            std::strerror(saved));
  }
  sockaddr_in addr = to_sockaddr(listen);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    throw PreconditionError("UdpSocket: bind(" + listen.to_string() +
                            ") failed: " + std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd_);
    throw PreconditionError(std::string("UdpSocket: getsockname failed: ") +
                            std::strerror(saved));
  }
  local_ = from_sockaddr(bound);
  // A wildcard bind reports 0.0.0.0; keep the requested address for
  // to_string/self-addressing, only adopt the kernel-resolved port.
  if (listen.ip != 0) local_.ip = listen.ip;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocket::send_to(const Endpoint& to, BytesView datagram) {
  sockaddr_in addr = to_sockaddr(to);
  // Fire-and-forget, like the wire: a full socket buffer or a transient
  // errno loses the datagram exactly as the network could; retries live at
  // the request layer, not here.
  (void)::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

void UdpSocket::on_receive(Handler handler) { handler_ = std::move(handler); }

std::size_t UdpSocket::poll(double max_wait_seconds) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int timeout_ms =
      max_wait_seconds <= 0.0
          ? 0
          : static_cast<int>(std::ceil(max_wait_seconds * 1000.0));
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return 0;

  std::size_t received = 0;
  std::uint8_t buffer[65536];
  while (true) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n =
        ::recvfrom(fd_, buffer, sizeof(buffer), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) break;  // EAGAIN/EWOULDBLOCK: drained
    ++received;
    if (handler_)
      handler_(from_sockaddr(from),
               BytesView(buffer, static_cast<std::size_t>(n)));
  }
  return received;
}

}  // namespace emergence::service

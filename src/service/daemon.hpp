// The emerged node daemon: one Chord node + holder engine per process.
//
// NodeDaemon is the wire-world counterpart of the simulator stack. It is
// written against exactly two seams — sim::Clock for time and
// DatagramSocket for I/O — so the SAME class runs
//
//   * in-process on a Simulator + MemoryDatagramHub (deterministic
//     loopback clusters, tests/test_service_loopback.cpp), and
//   * as a real process on a WallClock + UdpSocket (tools/emerged.cpp,
//     the 16-node localhost cluster harness).
//
// What it implements:
//   * a Chord ring over the wire: join via a seed endpoint, periodic
//     stabilize/notify, successor-list maintenance, recursive greedy
//     routing with a hop cap, periodic replica repair of stored keys;
//   * DHT storage (Put/Get/StoreReplica) for pre-assigned layer keys;
//   * the holder engine: receives protocol packages, waits the assembly
//     delay, loads/reconstructs its layer key, peels its envelope with the
//     SAME free functions the simulator sessions use
//     (parse_column_onion / open_envelope / unwrap_inner), then holds and
//     forwards at absolute deadlines ts + c*th, delivering the secret to
//     the receiver endpoint at exactly tr;
//   * the sender engine: a Submit request makes this daemon build the
//     whole onion (build_onion + encode_protocol_package, shared with the
//     simulator), Put the pre-assigned layer keys (acked, with bounded
//     retries), then launch the column-1 packages.
//
// Single-threaded by construction: every entry point runs from the owning
// event pump (clock events or socket handler), so there are no locks.
#pragma once

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "api/api.hpp"
#include "common/options.hpp"
#include "crypto/drbg.hpp"
#include "service/datagram.hpp"
#include "service/wire.hpp"
#include "sim/clock.hpp"

namespace emergence::obs {
class MetricsRegistry;
class TraceShard;
}  // namespace emergence::obs

namespace emergence::service {

struct DaemonConfig {
  Endpoint listen;               ///< required
  std::optional<Endpoint> seed;  ///< join via this daemon; nullopt = create
  /// Ring identity = hash of `name`, or of listen's "ip:port" when empty —
  /// deterministic, so a cluster script can predict the ring layout.
  std::string name;
  std::size_t successor_list = 8;
  std::size_t replicas = 3;           ///< copies of every stored key
  double stabilize_interval = 1.0;    ///< seconds
  double repair_interval = 4.0;       ///< seconds
  double request_timeout = 0.25;      ///< per attempt
  std::size_t request_retries = 4;    ///< attempts - 1
  std::uint8_t max_hops = 32;         ///< routed-message hop cap
  std::uint64_t rng_seed = 1;         ///< request tokens + submit DRBG forks
};

/// Registers every DaemonConfig knob on `table` — the daemon's --help and
/// flag parsing both come from this one surface (shared OptionTable
/// machinery with the scenario override grammar).
void add_daemon_options(OptionTable& table, DaemonConfig& config);

/// Counters beyond WireStats, exposed for tests and the status tool.
struct DaemonReport {
  std::uint64_t packages_sent = 0;
  std::uint64_t packages_received = 0;
  std::uint64_t holders_stuck = 0;   ///< key lost / shares short / bad crypto
  std::uint64_t deliveries = 0;      ///< Deliver frames sent at tr
  std::uint64_t submits_accepted = 0;
  std::uint64_t submits_rejected = 0;
  std::uint64_t keys_put = 0;        ///< layer-key puts acknowledged
  std::uint64_t put_failures = 0;    ///< puts that exhausted their retries
};

class NodeDaemon {
 public:
  /// `clock` and `socket` must outlive the daemon. Construction installs
  /// the receive handler; call start() to create/join the ring.
  NodeDaemon(sim::Clock& clock, DatagramSocket& socket, DaemonConfig config);

  void start();

  // -- observation ------------------------------------------------------------
  const Peer& self() const { return self_; }
  bool joined() const { return joined_; }
  bool has_predecessor() const { return predecessor_.has_value(); }
  const std::optional<Peer>& predecessor() const { return predecessor_; }
  const std::vector<Peer>& successors() const { return successors_; }
  const WireStats& stats() const { return stats_; }
  const DaemonReport& report() const { return report_; }
  std::size_t store_size() const { return store_.size(); }
  std::size_t holder_slot_count() const { return slots_.size(); }
  /// The same snapshot a StatusReply carries, for in-process assertions.
  StatusReply local_status() const;
  /// EmergeEvents delivered TO this daemon (when it is a receiver).
  const std::vector<api::EmergeEvent>& received_events() const {
    return received_events_;
  }

  // -- observability ----------------------------------------------------------
  /// Publishes every daemon counter (wire stats, report, store/ring gauges)
  /// onto `registry` — the one snapshot both the MetricsRequest wire answer
  /// and the periodic Prometheus text dump are built from.
  void publish_metrics(obs::MetricsRegistry& registry) const;
  /// Installs a trace shard (null = tracing off) receiving wall-clock
  /// package/slot/deliver/submit events, sampled per session nonce.
  void set_trace(obs::TraceShard* trace) { trace_ = trace; }

 private:
  using SlotKey = std::tuple<std::uint64_t, std::uint16_t, std::uint16_t>;

  struct PendingRequest {
    WireMessage message;
    Endpoint to;
    std::size_t retries_left = 0;
    sim::EventId timer = 0;
    std::function<void(const WireMessage&)> on_reply;
    std::function<void()> on_fail;
    /// Recomputes the target before a resend (routed requests re-resolve
    /// the next hop; direct requests keep their endpoint). May be null.
    std::function<Endpoint()> retarget;
  };

  struct HolderSlot {
    SessionMeta meta;
    dht::NodeId ring_point;
    Bytes onion;
    std::vector<crypto::Share> shares;
    bool processing_scheduled = false;
    bool processed = false;
  };

  /// One in-flight Submit this daemon is executing as the sender.
  struct SubmitJob {
    SessionMeta meta;
    Bytes onion;
    std::vector<std::vector<dht::NodeId>> ring_points;
    std::size_t pending_puts = 0;
    bool launched = false;
  };

  // -- pump -------------------------------------------------------------------
  void handle_datagram(const Endpoint& from, BytesView datagram);
  void send_message(const Endpoint& to, const WireMessage& message);

  // -- request/response -------------------------------------------------------
  std::uint64_t next_token();
  void send_request(WireMessage message, Endpoint to,
                    std::function<void(const WireMessage&)> on_reply,
                    std::function<void()> on_fail,
                    std::function<Endpoint()> retarget = nullptr);
  void arm_request_timer(std::uint64_t token);
  bool complete_request(std::uint64_t token, const WireMessage& reply);

  // -- chord ------------------------------------------------------------------
  bool alone() const;
  bool responsible_for(const dht::NodeId& key) const;
  /// The peer a routed message for `key` should go to next; nullopt when
  /// this node is responsible (or knows no one else yet).
  std::optional<Peer> route_next_hop(const dht::NodeId& key) const;
  void stabilize();
  void schedule_stabilize();
  void drop_successor_head();
  void adopt_successors(const Peer& head, const std::vector<Peer>& rest);
  void repair_replicas();
  void schedule_repair();

  // -- storage ----------------------------------------------------------------
  void store_local(const dht::NodeId& key, Bytes value);
  void replicate(const dht::NodeId& key, const Bytes& value);

  // -- holder engine ----------------------------------------------------------
  void accept_package(Package&& pkg);
  void route_package(Package&& pkg);
  void process_slot(const SlotKey& key);
  void forward_slot(const SlotKey& key, const core::EnvelopeContent& content,
                    const Bytes& inner);
  void deliver_slot(const SlotKey& key, const Bytes& secret);

  // -- sender engine ----------------------------------------------------------
  void handle_submit(const Endpoint& from, Submit&& msg);
  void put_layer_key(std::uint64_t nonce, const dht::NodeId& storage_key,
                     Bytes value);
  void maybe_launch(std::uint64_t nonce);

  // -- message handlers -------------------------------------------------------
  void on_ping(const Ping& m);
  void on_find_successor(FindSuccessor&& m);
  void on_get_predecessor(const GetPredecessor& m);
  void on_notify(const Notify& m);
  void on_put(Put&& m);
  void on_get(Get&& m);
  void on_store_replica(StoreReplica&& m);
  void on_deliver(const Deliver& m);
  void on_status(const Status& m);
  void on_metrics(const MetricsRequest& m);

  /// Records one instant event onto the trace shard when the session nonce
  /// is sampled (no-op with tracing off).
  void trace_session_event(const char* name, std::uint64_t nonce,
                           std::vector<std::pair<std::string, std::string>>
                               args = {});

  sim::Clock& clock_;
  DatagramSocket& socket_;
  DaemonConfig config_;
  Peer self_;
  crypto::Drbg drbg_;

  bool joined_ = false;
  std::optional<Peer> predecessor_;
  /// successors_[0] == self_ means "alone" (Chord's create() state).
  std::vector<Peer> successors_;

  std::map<std::uint64_t, PendingRequest> pending_;
  std::map<dht::NodeId, Bytes> store_;
  std::map<SlotKey, HolderSlot> slots_;
  std::map<std::uint64_t, SubmitJob> jobs_;
  std::vector<api::EmergeEvent> received_events_;

  WireStats stats_;
  DaemonReport report_;
  obs::TraceShard* trace_ = nullptr;
};

}  // namespace emergence::service

#include "service/daemon.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "emerge/onion.hpp"
#include "emerge/protocol.hpp"
#include "obs/bridge.hpp"
#include "obs/trace.hpp"
#include "service/udp_socket.hpp"

namespace emergence::service {
namespace {

/// Safety margin a submit's holding period must leave beyond the assembly
/// delay: covers localhost RTTs and scheduler jitter on a wall clock (the
/// simulator analogue is th > assembly + 4 * max_latency).
constexpr double kHoldingMargin = 0.05;

/// The request token of a message, for pending-request matching; 0 for
/// token-less message types.
std::uint64_t token_of(const WireMessage& message) {
  return std::visit(
      [](const auto& m) -> std::uint64_t {
        if constexpr (requires { m.token; }) {
          return m.token;
        } else {
          return 0;
        }
      },
      message);
}

}  // namespace

void add_daemon_options(OptionTable& table, DaemonConfig& config) {
  table.add("listen", "IP:PORT", "UDP endpoint this daemon binds",
            [&config](const std::string& v) {
              config.listen = resolve_endpoint(v);
            });
  table.add("seed-node", "IP:PORT",
            "existing daemon to join via (omit to create a new ring)",
            [&config](const std::string& v) {
              config.seed = resolve_endpoint(v);
            });
  table.add_string("name", "TEXT",
                   "ring identity = hash(name); defaults to the listen "
                   "endpoint",
                   &config.name);
  table.add_size("successor-list", "successor-list length",
                 &config.successor_list);
  table.add_size("replicas", "copies kept of every stored key",
                 &config.replicas);
  table.add_real("stabilize-interval", "seconds between stabilize rounds",
                 &config.stabilize_interval);
  table.add_real("repair-interval", "seconds between replica-repair sweeps",
                 &config.repair_interval);
  table.add_real("request-timeout", "seconds before a request is retried",
                 &config.request_timeout);
  table.add_size("request-retries", "resend attempts per request",
                 &config.request_retries);
  table.add("max-hops", "N", "hop cap for routed messages",
            [&config](const std::string& v) {
              const std::size_t hops = parse_size_option("max-hops", v);
              require(hops >= 1 && hops <= 255,
                      "option 'max-hops=" + v + "': expected 1..255");
              config.max_hops = static_cast<std::uint8_t>(hops);
            });
  table.add_u64("rng-seed", "seed for tokens and submit-side randomness",
                &config.rng_seed);
}

NodeDaemon::NodeDaemon(sim::Clock& clock, DatagramSocket& socket,
                       DaemonConfig config)
    : clock_(clock),
      socket_(socket),
      config_(std::move(config)),
      drbg_(config_.rng_seed) {
  require(config_.listen.valid(), "NodeDaemon: listen endpoint required");
  require(config_.successor_list >= 1, "NodeDaemon: empty successor list");
  require(config_.replicas >= 1, "NodeDaemon: replicas must be >= 1");
  const std::string name =
      config_.name.empty() ? config_.listen.to_string() : config_.name;
  self_ = Peer{dht::NodeId::hash_of_text(name), config_.listen};
  socket_.on_receive([this](const Endpoint& from, BytesView datagram) {
    handle_datagram(from, datagram);
  });
}

void NodeDaemon::start() {
  successors_ = {self_};
  if (!config_.seed.has_value()) {
    joined_ = true;
  } else {
    // Join: ask the seed for the successor of our own id. Failure retries
    // from scratch — the seed may simply not be up yet.
    const auto attempt = [this](const auto& self_fn) -> void {
      FindSuccessor request;
      request.token = next_token();
      request.reply_to = self_.addr;
      request.target = self_.id;
      request.hops_left = config_.max_hops;
      send_request(
          request, *config_.seed,
          [this](const WireMessage& reply) {
            const auto* fsr = std::get_if<FindSuccessorReply>(&reply);
            if (fsr == nullptr || fsr->successor.id == self_.id) return;
            adopt_successors(fsr->successor, {});
            joined_ = true;
            Notify notify;
            notify.self = self_;
            send_message(successors_.front().addr, notify);
          },
          [this, self_fn]() {
            clock_.schedule_in(config_.stabilize_interval,
                               [self_fn]() { self_fn(self_fn); });
          });
    };
    attempt(attempt);
  }
  schedule_stabilize();
  schedule_repair();
}

StatusReply NodeDaemon::local_status() const {
  StatusReply reply;
  reply.self = self_;
  reply.has_predecessor = predecessor_.has_value();
  if (predecessor_.has_value()) reply.predecessor = *predecessor_;
  reply.successors = successors_;
  reply.store_size = store_.size();
  reply.holder_slots = slots_.size();
  reply.deliveries = report_.deliveries;
  reply.malformed_frames = stats_.malformed_frames();
  return reply;
}

// -- pump ---------------------------------------------------------------------

void NodeDaemon::handle_datagram(const Endpoint& from, BytesView datagram) {
  std::optional<WireMessage> message = decode_frame(datagram, stats_);
  if (!message.has_value()) return;  // counted by decode_frame; keep serving

  std::visit(
      [this, &from, &message](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Ping>) {
          on_ping(m);
        } else if constexpr (std::is_same_v<T, FindSuccessor>) {
          on_find_successor(std::move(m));
        } else if constexpr (std::is_same_v<T, GetPredecessor>) {
          on_get_predecessor(m);
        } else if constexpr (std::is_same_v<T, Notify>) {
          on_notify(m);
        } else if constexpr (std::is_same_v<T, Put>) {
          on_put(std::move(m));
        } else if constexpr (std::is_same_v<T, Get>) {
          on_get(std::move(m));
        } else if constexpr (std::is_same_v<T, StoreReplica>) {
          on_store_replica(std::move(m));
        } else if constexpr (std::is_same_v<T, Package>) {
          route_package(std::move(m));
        } else if constexpr (std::is_same_v<T, Deliver>) {
          on_deliver(m);
        } else if constexpr (std::is_same_v<T, Submit>) {
          handle_submit(from, std::move(m));
        } else if constexpr (std::is_same_v<T, Status>) {
          on_status(m);
        } else if constexpr (std::is_same_v<T, MetricsRequest>) {
          on_metrics(m);
        } else {
          // Every reply type: match against the pending-request table.
          complete_request(token_of(*message), *message);
        }
      },
      std::move(*message));
}

void NodeDaemon::send_message(const Endpoint& to, const WireMessage& message) {
  socket_.send_to(to, encode_frame(message));
  ++stats_.frames_sent;
}

// -- request/response ---------------------------------------------------------

std::uint64_t NodeDaemon::next_token() {
  std::uint64_t token = drbg_.u64();
  while (token == 0 || pending_.find(token) != pending_.end())
    token = drbg_.u64();
  return token;
}

void NodeDaemon::send_request(WireMessage message, Endpoint to,
                              std::function<void(const WireMessage&)> on_reply,
                              std::function<void()> on_fail,
                              std::function<Endpoint()> retarget) {
  const std::uint64_t token = token_of(message);
  PendingRequest& pending = pending_[token];
  pending.message = std::move(message);
  pending.to = to;
  pending.retries_left = config_.request_retries;
  pending.on_reply = std::move(on_reply);
  pending.on_fail = std::move(on_fail);
  pending.retarget = std::move(retarget);
  send_message(pending.to, pending.message);
  arm_request_timer(token);
}

void NodeDaemon::arm_request_timer(std::uint64_t token) {
  pending_[token].timer =
      clock_.schedule_in(config_.request_timeout, [this, token]() {
        auto it = pending_.find(token);
        if (it == pending_.end()) return;
        PendingRequest& pending = it->second;
        if (pending.retries_left == 0) {
          ++stats_.request_timeouts;
          auto fail = std::move(pending.on_fail);
          pending_.erase(it);
          if (fail) fail();
          return;
        }
        --pending.retries_left;
        ++stats_.request_retries;
        if (pending.retarget) pending.to = pending.retarget();
        send_message(pending.to, pending.message);
        arm_request_timer(token);
      });
}

bool NodeDaemon::complete_request(std::uint64_t token,
                                  const WireMessage& reply) {
  auto it = pending_.find(token);
  if (it == pending_.end()) return false;  // stale or duplicated reply
  clock_.cancel(it->second.timer);
  auto on_reply = std::move(it->second.on_reply);
  pending_.erase(it);
  if (on_reply) on_reply(reply);
  return true;
}

// -- chord --------------------------------------------------------------------

bool NodeDaemon::alone() const {
  return successors_.empty() || successors_.front().id == self_.id;
}

bool NodeDaemon::responsible_for(const dht::NodeId& key) const {
  if (alone()) return true;
  if (predecessor_.has_value())
    return dht::in_half_open_interval(key, predecessor_->id, self_.id);
  // No predecessor link yet (joining, or it died): claim only keys that no
  // known successor serves better — the hop cap bounds any transient loop.
  return false;
}

std::optional<Peer> NodeDaemon::route_next_hop(const dht::NodeId& key) const {
  if (alone() || responsible_for(key)) return std::nullopt;
  const Peer& succ = successors_.front();
  if (dht::in_half_open_interval(key, self_.id, succ.id)) return succ;
  // Greedy: the farthest successor still preceding the key clockwise.
  for (auto it = successors_.rbegin(); it != successors_.rend(); ++it) {
    if (dht::in_open_interval(it->id, self_.id, key)) return *it;
  }
  return succ;
}

void NodeDaemon::schedule_stabilize() {
  clock_.schedule_in(config_.stabilize_interval, [this]() {
    stabilize();
    schedule_stabilize();
  });
}

void NodeDaemon::stabilize() {
  if (alone()) {
    // Chord's ring-of-one bootstrap: the first Notify from a joiner lands
    // in predecessor_; adopting it as successor forms the two-node ring.
    if (predecessor_.has_value() && predecessor_->id != self_.id) {
      successors_ = {*predecessor_};
      Notify notify;
      notify.self = self_;
      send_message(successors_.front().addr, notify);
    }
    return;
  }
  const Peer succ = successors_.front();
  GetPredecessor request;
  request.token = next_token();
  request.reply_to = self_.addr;
  send_request(
      request, succ.addr,
      [this, succ](const WireMessage& reply) {
        const auto* pr = std::get_if<PredecessorReply>(&reply);
        if (pr == nullptr) return;
        Peer head = succ;
        if (pr->known &&
            dht::in_open_interval(pr->predecessor.id, self_.id, succ.id)) {
          head = pr->predecessor;
        }
        adopt_successors(head, pr->successors);
        Notify notify;
        notify.self = self_;
        send_message(successors_.front().addr, notify);
      },
      [this]() { drop_successor_head(); });
}

void NodeDaemon::drop_successor_head() {
  if (successors_.empty()) return;
  successors_.erase(successors_.begin());
  if (successors_.empty()) successors_ = {self_};
}

void NodeDaemon::adopt_successors(const Peer& head,
                                  const std::vector<Peer>& rest) {
  std::vector<Peer> next;
  next.push_back(head);
  for (const Peer& peer : rest) {
    if (next.size() >= config_.successor_list) break;
    if (peer.id == self_.id) break;  // wrapped all the way around
    const bool dup = std::any_of(next.begin(), next.end(),
                                 [&](const Peer& p) { return p.id == peer.id; });
    if (!dup) next.push_back(peer);
  }
  successors_ = std::move(next);
}

void NodeDaemon::schedule_repair() {
  clock_.schedule_in(config_.repair_interval, [this]() {
    repair_replicas();
    schedule_repair();
  });
}

void NodeDaemon::repair_replicas() {
  if (alone()) return;
  for (const auto& [key, value] : store_) {
    if (responsible_for(key)) replicate(key, value);
  }
}

// -- storage ------------------------------------------------------------------

void NodeDaemon::store_local(const dht::NodeId& key, Bytes value) {
  store_[key] = std::move(value);
}

void NodeDaemon::replicate(const dht::NodeId& key, const Bytes& value) {
  std::size_t copies = 0;
  for (const Peer& peer : successors_) {
    if (copies + 1 >= config_.replicas) break;
    if (peer.id == self_.id) continue;
    StoreReplica msg;
    msg.key = key;
    msg.value = value;
    send_message(peer.addr, msg);
    ++copies;
  }
}

// -- message handlers ---------------------------------------------------------

void NodeDaemon::on_ping(const Ping& m) {
  Pong pong;
  pong.token = m.token;
  pong.self = self_;
  send_message(m.reply_to, pong);
}

void NodeDaemon::on_find_successor(FindSuccessor&& m) {
  if (responsible_for(m.target)) {
    FindSuccessorReply reply;
    reply.token = m.token;
    reply.successor = self_;
    send_message(m.reply_to, reply);
    return;
  }
  std::optional<Peer> next = route_next_hop(m.target);
  if (!next.has_value() || m.hops_left == 0) {
    ++stats_.hops_exhausted;
    return;
  }
  --m.hops_left;
  send_message(next->addr, m);
}

void NodeDaemon::on_get_predecessor(const GetPredecessor& m) {
  PredecessorReply reply;
  reply.token = m.token;
  reply.known = predecessor_.has_value();
  if (predecessor_.has_value()) reply.predecessor = *predecessor_;
  reply.successors = successors_;
  send_message(m.reply_to, reply);
}

void NodeDaemon::on_notify(const Notify& m) {
  if (m.self.id == self_.id) return;
  if (!predecessor_.has_value() ||
      dht::in_open_interval(m.self.id, predecessor_->id, self_.id)) {
    predecessor_ = m.self;
  }
}

void NodeDaemon::on_put(Put&& m) {
  std::optional<Peer> next = route_next_hop(m.key);
  if (next.has_value()) {
    if (m.hops_left == 0) {
      ++stats_.hops_exhausted;
      return;
    }
    --m.hops_left;
    send_message(next->addr, m);
    return;
  }
  PutAck ack;
  ack.token = m.token;
  const Endpoint reply_to = m.reply_to;
  const dht::NodeId key = m.key;
  store_local(key, std::move(m.value));
  replicate(key, store_[key]);
  send_message(reply_to, ack);
}

void NodeDaemon::on_get(Get&& m) {
  std::optional<Peer> next = route_next_hop(m.key);
  if (next.has_value()) {
    if (m.hops_left == 0) {
      ++stats_.hops_exhausted;
      return;
    }
    --m.hops_left;
    send_message(next->addr, m);
    return;
  }
  GetReply reply;
  reply.token = m.token;
  auto it = store_.find(m.key);
  if (it != store_.end()) {
    reply.found = true;
    reply.value = it->second;
  }
  send_message(m.reply_to, reply);
}

void NodeDaemon::on_store_replica(StoreReplica&& m) {
  store_local(m.key, std::move(m.value));
}

void NodeDaemon::on_deliver(const Deliver& m) {
  try {
    received_events_.push_back(api::decode_emerge_event(m.event));
  } catch (const Error&) {
    ++stats_.malformed_payload;
  }
}

void NodeDaemon::on_status(const Status& m) {
  StatusReply reply = local_status();
  reply.token = m.token;
  send_message(m.reply_to, reply);
}

void NodeDaemon::publish_metrics(obs::MetricsRegistry& registry) const {
  obs::publish(registry, stats_);
  obs::publish(registry, report_);
  registry.gauge("emergence_store_size") =
      static_cast<double>(store_.size());
  registry.gauge("emergence_holder_slots") =
      static_cast<double>(slots_.size());
  registry.gauge("emergence_successors") =
      static_cast<double>(successors_.size());
  registry.gauge("emergence_pending_requests") =
      static_cast<double>(pending_.size());
  registry.gauge("emergence_joined") = joined_ ? 1.0 : 0.0;
}

void NodeDaemon::on_metrics(const MetricsRequest& m) {
  obs::MetricsRegistry registry;
  publish_metrics(registry);
  MetricsResponse reply;
  reply.token = m.token;
  reply.entries = registry.flatten();
  send_message(m.reply_to, reply);
}

void NodeDaemon::trace_session_event(
    const char* name, std::uint64_t nonce,
    std::vector<std::pair<std::string, std::string>> args) {
  if (trace_ == nullptr || !trace_->sample(nonce)) return;
  obs::TraceEvent ev;
  ev.ts_us = static_cast<std::int64_t>(clock_.now() * 1e6);
  ev.name = name;
  ev.cat = "daemon";
  ev.id = nonce;
  ev.args = std::move(args);
  ev.args.emplace_back("node", self_.addr.to_string());
  trace_->record(std::move(ev));
}

// -- holder engine ------------------------------------------------------------

void NodeDaemon::route_package(Package&& pkg) {
  std::optional<Peer> next = route_next_hop(pkg.ring_point);
  if (!next.has_value()) {
    accept_package(std::move(pkg));
    return;
  }
  if (pkg.hops_left == 0) {
    ++stats_.hops_exhausted;
    return;
  }
  --pkg.hops_left;
  send_message(next->addr, pkg);
}

void NodeDaemon::accept_package(Package&& pkg) {
  ++report_.packages_received;
  core::ProtocolPackage decoded;
  try {
    decoded = core::decode_protocol_package(pkg.package);
  } catch (const Error&) {
    ++stats_.malformed_payload;
    return;
  }
  if (decoded.session_nonce != pkg.meta.session_nonce || pkg.meta.l == 0 ||
      pkg.meta.emerging_time <= 0.0 || pkg.meta.assembly_delay < 0.0 ||
      decoded.column == 0 || decoded.column > pkg.meta.l) {
    ++stats_.malformed_payload;
    return;
  }

  trace_session_event("package_received", decoded.session_nonce,
                      {{"column", std::to_string(decoded.column)},
                       {"holder", std::to_string(decoded.holder_index)}});
  const SlotKey key{decoded.session_nonce, decoded.column,
                    decoded.holder_index};
  HolderSlot& slot = slots_[key];
  if (slot.onion.empty()) {
    slot.meta = pkg.meta;
    slot.ring_point = pkg.ring_point;
    slot.onion = std::move(decoded.onion);
  }
  for (const crypto::Share& share : decoded.shares) {
    const bool dup = std::any_of(
        slot.shares.begin(), slot.shares.end(),
        [&](const crypto::Share& s) { return s.index == share.index; });
    if (!dup) slot.shares.push_back(share);
  }
  if (!slot.processing_scheduled) {
    slot.processing_scheduled = true;
    clock_.schedule_in(slot.meta.assembly_delay,
                       [this, key]() { process_slot(key); });
  }
}

void NodeDaemon::process_slot(const SlotKey& key) {
  HolderSlot& slot = slots_[key];
  if (slot.processed) return;
  slot.processed = true;
  const std::uint16_t column = std::get<1>(key);
  const std::uint16_t holder_index = std::get<2>(key);
  trace_session_event("slot_processed", std::get<0>(key),
                      {{"column", std::to_string(column)},
                       {"holder", std::to_string(holder_index)}});

  // Layer key: pre-assigned schemes load it from local storage under the
  // slot's ring point (the Put landed on this node because responsibility
  // for the key and the package coincide); the share scheme reconstructs
  // from the shares that travelled with the packages.
  crypto::SymmetricKey layer_key{};
  const bool preassigned =
      slot.meta.scheme != core::SchemeKind::kShare || column == 1;
  if (preassigned) {
    auto it = store_.find(slot.ring_point);
    if (it == store_.end() || it->second.size() != 32) {
      ++report_.holders_stuck;
      return;
    }
    layer_key = crypto::SymmetricKey::from_bytes(it->second);
  } else {
    if (slot.shares.size() < slot.meta.threshold_m) {
      ++report_.holders_stuck;
      return;
    }
    try {
      layer_key = crypto::SymmetricKey::from_bytes(
          crypto::shamir_combine(slot.shares, slot.meta.threshold_m));
    } catch (const Error&) {
      ++report_.holders_stuck;
      return;
    }
  }

  // Peel my envelope — the same free functions the simulator holder uses.
  core::ColumnOnion onion;
  core::EnvelopeContent content;
  try {
    onion = core::parse_column_onion(slot.onion);
    content = core::open_envelope(layer_key, onion.envelope_for(holder_index),
                                  column, slot.meta.backend);
  } catch (const Error&) {
    ++report_.holders_stuck;
    return;
  }

  const sim::Time now = clock_.now();
  if (content.terminal()) {
    clock_.schedule_at(
        std::max(now, slot.meta.release_time()),
        [this, key, secret = content.terminal_payload]() {
          deliver_slot(key, secret);
        });
    return;
  }

  Bytes inner;
  try {
    inner = core::unwrap_inner(content.inner_key, onion.inner, column,
                               slot.meta.backend);
  } catch (const Error&) {
    ++report_.holders_stuck;
    return;
  }

  // Forward at the absolute deadline ts + column * th (clamped to now for
  // packages that arrived past it), mirroring the simulator's timing
  // contract exactly.
  const double forward_at =
      std::max(now, slot.meta.start_time +
                        static_cast<double>(column) *
                            slot.meta.holding_period());
  clock_.schedule_at(forward_at, [this, key, content, inner]() {
    forward_slot(key, content, inner);
  });
}

void NodeDaemon::forward_slot(const SlotKey& key,
                              const core::EnvelopeContent& content,
                              const Bytes& inner) {
  const HolderSlot& slot = slots_[key];
  const std::uint16_t column = std::get<1>(key);
  const std::uint16_t holder_index = std::get<2>(key);
  const std::uint16_t next_column = static_cast<std::uint16_t>(column + 1);

  for (std::size_t i = 0; i < content.next_hops.size(); ++i) {
    const std::uint16_t target =
        slot.meta.scheme == core::SchemeKind::kDisjoint
            ? holder_index
            : static_cast<std::uint16_t>(i);
    std::vector<crypto::Share> shares;
    for (const core::TargetedShare& ts : content.shares) {
      if (ts.target_index == target) shares.push_back(ts.share);
    }
    Package pkg;
    pkg.meta = slot.meta;
    pkg.ring_point = content.next_hops[i];
    pkg.package = core::encode_protocol_package(
        slot.meta.session_nonce, next_column, target, inner, shares);
    pkg.hops_left = config_.max_hops;
    ++report_.packages_sent;
    route_package(std::move(pkg));
  }
}

void NodeDaemon::deliver_slot(const SlotKey& key, const Bytes& secret) {
  const HolderSlot& slot = slots_[key];
  ++report_.deliveries;
  trace_session_event("deliver", slot.meta.session_nonce);
  api::EmergeEvent event;
  event.session_nonce = slot.meta.session_nonce;
  event.release_time = slot.meta.release_time();
  event.delivery_time = clock_.now();
  event.secret = secret;
  Deliver deliver;
  deliver.event = api::encode_emerge_event(event);
  send_message(slot.meta.receiver, deliver);
}

// -- sender engine ------------------------------------------------------------

void NodeDaemon::handle_submit(const Endpoint& from, Submit&& msg) {
  (void)from;
  const auto reject = [this, &msg](const std::string& why) {
    ++report_.submits_rejected;
    SubmitAck ack;
    ack.token = msg.token;
    ack.ok = false;
    ack.error = why;
    send_message(msg.reply_to, ack);
  };

  api::SubmitRequest request;
  try {
    request = api::decode_submit_request(msg.request);
  } catch (const Error&) {
    reject("malformed submit request payload");
    return;
  }
  if (!msg.receiver.valid()) {
    reject("invalid receiver endpoint");
    return;
  }
  const std::size_t k = request.shape.k;
  const std::size_t l = request.shape.l;
  if (k < 1 || l < 1) {
    reject("degenerate path shape (need k >= 1 and l >= 1)");
    return;
  }
  const bool share = request.scheme == core::SchemeKind::kShare;
  const std::size_t carriers =
      share ? (request.carriers_n != 0 ? request.carriers_n : k + 1) : k;
  const std::size_t threshold =
      request.threshold_m != 0 ? request.threshold_m : k;
  if (share && (carriers < k || threshold < 1 || threshold > carriers)) {
    reject("invalid share-scheme parameters");
    return;
  }
  const double th = request.emerging_time / static_cast<double>(l);
  if (!(th > request.assembly_delay + kHoldingMargin)) {
    reject("holding period too short for the assembly delay");
    return;
  }
  if (request.message.empty()) {
    reject("empty message");
    return;
  }

  // Build the whole onion with a private DRBG stream, exactly as the
  // simulator's sender does — ring points here are drawn directly (the
  // wire routes by key, so no lookup step is needed to define a slot).
  crypto::Drbg drbg = drbg_.fork();
  const std::uint64_t nonce = drbg.u64();

  const auto holders_in = [&](std::size_t column) {
    return share && column < l ? carriers : k;
  };

  SubmitJob job;
  job.meta.session_nonce = nonce;
  job.meta.start_time = clock_.now();
  job.meta.emerging_time = request.emerging_time;
  job.meta.scheme = request.scheme;
  job.meta.k = static_cast<std::uint16_t>(k);
  job.meta.l = static_cast<std::uint16_t>(l);
  job.meta.carriers_n = static_cast<std::uint16_t>(carriers);
  job.meta.threshold_m = static_cast<std::uint16_t>(threshold);
  job.meta.backend = request.backend;
  job.meta.assembly_delay = request.assembly_delay;
  job.meta.receiver = msg.receiver;

  job.ring_points.resize(l);
  for (std::size_t c = 1; c <= l; ++c) {
    job.ring_points[c - 1].resize(holders_in(c));
    for (dht::NodeId& point : job.ring_points[c - 1])
      point = dht::NodeId::from_bytes(drbg.bytes(dht::kIdBytes));
  }

  // Layer keys: one shared key per column for the pre-assigned schemes,
  // individual keys for share-scheme holders (same kSharedHolder collapse
  // as TimedReleaseSession::key_id_for).
  constexpr std::uint16_t kSharedSlot = 0xFFFF;
  const auto key_id = [&](std::uint16_t column, std::uint16_t holder) {
    const std::uint16_t slot =
        !share && holder < k ? kSharedSlot : holder;
    return std::make_pair(column, slot);
  };
  std::map<std::pair<std::uint16_t, std::uint16_t>, crypto::SymmetricKey>
      layer_keys;
  for (std::size_t c = 1; c <= l; ++c) {
    for (std::size_t h = 0; h < holders_in(c); ++h) {
      const auto id = key_id(static_cast<std::uint16_t>(c),
                             static_cast<std::uint16_t>(h));
      if (layer_keys.find(id) == layer_keys.end())
        layer_keys[id] = crypto::SymmetricKey::from_bytes(drbg.bytes(32));
    }
  }

  // Envelope construction mirrors TimedReleaseSession::send step 4.
  std::vector<core::ColumnBuildSpec> specs(l);
  for (std::size_t c = 1; c <= l; ++c) {
    core::ColumnBuildSpec& spec = specs[c - 1];
    const std::size_t holders = holders_in(c);
    const bool terminal = c == l;
    spec.holder_keys.reserve(holders);
    spec.envelopes.resize(holders);

    std::vector<std::vector<crypto::Share>> next_key_shares;  // [target][src]
    if (share && !terminal) {
      const std::size_t next_holders = holders_in(c + 1);
      next_key_shares.resize(next_holders);
      for (std::size_t t = 0; t < next_holders; ++t) {
        const auto id = key_id(static_cast<std::uint16_t>(c + 1),
                               static_cast<std::uint16_t>(t));
        next_key_shares[t] = crypto::shamir_split(
            layer_keys[id].to_bytes(), threshold, holders, drbg);
      }
    }

    for (std::size_t h = 0; h < holders; ++h) {
      spec.holder_keys.push_back(layer_keys[key_id(
          static_cast<std::uint16_t>(c), static_cast<std::uint16_t>(h))]);
      core::EnvelopeContent& env = spec.envelopes[h];
      if (terminal) {
        env.terminal_payload = request.message;
        continue;
      }
      const auto& next_points = job.ring_points[c];  // column c+1
      if (request.scheme == core::SchemeKind::kDisjoint) {
        env.next_hops.push_back(next_points[h]);
      } else {
        env.next_hops = next_points;
      }
      if (share) {
        for (std::size_t t = 0; t < next_points.size(); ++t) {
          env.shares.push_back(core::TargetedShare{
              static_cast<std::uint16_t>(t), next_key_shares[t][h]});
        }
      }
    }
  }
  job.onion = core::build_onion(specs, drbg, request.backend);
  if (job.onion.size() + 256 > kMaxFramePayload) {
    reject("message too large for one wire frame");
    return;
  }

  jobs_[nonce] = std::move(job);
  SubmitJob& stored = jobs_[nonce];
  ++report_.submits_accepted;
  trace_session_event("submit_accepted", nonce,
                      {{"l", std::to_string(l)}, {"k", std::to_string(k)}});

  SubmitAck ack;
  ack.token = msg.token;
  ack.ok = true;
  ack.session_nonce = nonce;
  ack.start_time = stored.meta.start_time;
  ack.release_time = stored.meta.release_time();
  send_message(msg.reply_to, ack);

  // Pre-assign layer keys: every column for disjoint/joint, only column 1
  // for the share scheme (later keys travel as shares). Column-1 packages
  // launch once every Put has been acknowledged (or given up on), so
  // holders never race their own keys.
  const std::size_t last_preassigned = share ? 1 : l;
  for (std::size_t c = 1; c <= last_preassigned; ++c) {
    for (std::size_t h = 0; h < holders_in(c); ++h) {
      const auto id = key_id(static_cast<std::uint16_t>(c),
                             static_cast<std::uint16_t>(h));
      put_layer_key(nonce, stored.ring_points[c - 1][h],
                    layer_keys[id].to_bytes());
    }
  }
}

void NodeDaemon::put_layer_key(std::uint64_t nonce,
                               const dht::NodeId& storage_key, Bytes value) {
  SubmitJob& job = jobs_[nonce];
  ++job.pending_puts;

  Put request;
  request.token = next_token();
  request.reply_to = self_.addr;
  request.key = storage_key;
  request.value = std::move(value);
  request.hops_left = config_.max_hops;

  const auto target = [this, storage_key]() -> Endpoint {
    std::optional<Peer> next = route_next_hop(storage_key);
    return next.has_value() ? next->addr : self_.addr;
  };
  send_request(
      request, target(),
      [this, nonce](const WireMessage&) {
        ++report_.keys_put;
        SubmitJob& j = jobs_[nonce];
        --j.pending_puts;
        maybe_launch(nonce);
      },
      [this, nonce]() {
        ++report_.put_failures;
        SubmitJob& j = jobs_[nonce];
        --j.pending_puts;
        maybe_launch(nonce);
      },
      target);
}

void NodeDaemon::maybe_launch(std::uint64_t nonce) {
  SubmitJob& job = jobs_[nonce];
  if (job.launched || job.pending_puts > 0) return;
  job.launched = true;
  for (std::size_t h = 0; h < job.ring_points[0].size(); ++h) {
    Package pkg;
    pkg.meta = job.meta;
    pkg.ring_point = job.ring_points[0][h];
    pkg.package = core::encode_protocol_package(
        job.meta.session_nonce, 1, static_cast<std::uint16_t>(h), job.onion,
        {});
    pkg.hops_left = config_.max_hops;
    ++report_.packages_sent;
    route_package(std::move(pkg));
  }
}

}  // namespace emergence::service

#include "service/client.hpp"

#include <utility>

#include "common/error.hpp"

namespace emergence::service {

WireClient::WireClient(sim::Clock& clock, DatagramSocket& socket,
                       Options options, Pump pump)
    : clock_(clock),
      socket_(socket),
      options_(std::move(options)),
      pump_(std::move(pump)) {
  require(options_.daemon.valid(), "WireClient: daemon endpoint required");
  require(static_cast<bool>(pump_), "WireClient: pump required");
  socket_.on_receive([this](const Endpoint& from, BytesView datagram) {
    handle_datagram(from, datagram);
  });
}

std::uint64_t WireClient::next_token() { return ++token_counter_; }

void WireClient::handle_datagram(const Endpoint& from, BytesView datagram) {
  (void)from;
  std::optional<WireMessage> message = decode_frame(datagram, stats_);
  if (!message.has_value()) return;
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, SubmitAck>) {
          last_ack_ = std::move(m);
        } else if constexpr (std::is_same_v<T, StatusReply>) {
          last_status_ = std::move(m);
        } else if constexpr (std::is_same_v<T, MetricsResponse>) {
          last_metrics_ = std::move(m);
        } else if constexpr (std::is_same_v<T, Deliver>) {
          try {
            api::EmergeEvent event = api::decode_emerge_event(m.event);
            events_.emplace(event.session_nonce, std::move(event));
          } catch (const Error&) {
            ++stats_.malformed_payload;
          }
        }
        // Anything else a client receives is noise; already counted by
        // decode_frame when malformed, otherwise silently ignored.
      },
      std::move(*message));
}

api::SubmitReceipt WireClient::submit(const api::SubmitRequest& request) {
  Submit msg;
  msg.token = next_token();
  msg.reply_to = socket_.local_endpoint();
  msg.request = api::encode_submit_request(request);
  msg.receiver = socket_.local_endpoint();
  const Bytes frame = encode_frame(msg);

  last_ack_.reset();
  const double started = clock_.now();
  const double deadline = started + options_.submit_timeout;
  double next_send = started;
  std::size_t sends_left = options_.resends + 1;

  while (true) {
    if (last_ack_.has_value() && last_ack_->token == msg.token) break;
    if (clock_.now() >= deadline) {
      ++stats_.request_timeouts;
      throw ProtocolError("WireClient: submit timed out after " +
                          std::to_string(options_.submit_timeout) + "s");
    }
    if (sends_left > 0 && clock_.now() >= next_send) {
      if (next_send != started) ++stats_.request_retries;
      socket_.send_to(options_.daemon, frame);
      ++stats_.frames_sent;
      --sends_left;
      next_send = clock_.now() + options_.resend_interval;
    }
    if (!pump_()) {
      throw ProtocolError(
          "WireClient: world cannot progress while awaiting submit ack");
    }
  }

  const SubmitAck ack = *last_ack_;
  last_ack_.reset();
  if (!ack.ok) {
    throw ProtocolError("WireClient: submit rejected: " + ack.error);
  }
  api::SubmitReceipt receipt;
  receipt.session_nonce = ack.session_nonce;
  receipt.start_time = ack.start_time;
  receipt.release_time = ack.release_time;
  return receipt;
}

std::optional<api::EmergeEvent> WireClient::poll(std::uint64_t session_nonce) {
  auto it = events_.find(session_nonce);
  if (it == events_.end()) return std::nullopt;
  return it->second;
}

std::optional<api::EmergeEvent> WireClient::await_event(
    std::uint64_t session_nonce, double max_wait_seconds) {
  const double deadline = clock_.now() + max_wait_seconds;
  while (clock_.now() < deadline) {
    if (auto event = poll(session_nonce)) return event;
    if (!pump_()) break;
  }
  return poll(session_nonce);
}

StatusReply WireClient::status_of(const Endpoint& target,
                                  double max_wait_seconds) {
  Status msg;
  msg.token = next_token();
  msg.reply_to = socket_.local_endpoint();
  const Bytes frame = encode_frame(msg);

  last_status_.reset();
  const double started = clock_.now();
  const double deadline = started + max_wait_seconds;
  double next_send = started;

  while (clock_.now() < deadline) {
    if (last_status_.has_value() && last_status_->token == msg.token) {
      StatusReply reply = *last_status_;
      last_status_.reset();
      return reply;
    }
    if (clock_.now() >= next_send) {
      if (next_send != started) ++stats_.request_retries;
      socket_.send_to(target, frame);
      ++stats_.frames_sent;
      next_send = clock_.now() + options_.resend_interval;
    }
    if (!pump_()) break;
  }
  ++stats_.request_timeouts;
  throw ProtocolError("WireClient: no status reply from " +
                      target.to_string());
}

MetricsResponse WireClient::metrics_of(const Endpoint& target,
                                       double max_wait_seconds) {
  MetricsRequest msg;
  msg.token = next_token();
  msg.reply_to = socket_.local_endpoint();
  const Bytes frame = encode_frame(msg);

  last_metrics_.reset();
  const double started = clock_.now();
  const double deadline = started + max_wait_seconds;
  double next_send = started;

  while (clock_.now() < deadline) {
    if (last_metrics_.has_value() && last_metrics_->token == msg.token) {
      MetricsResponse reply = std::move(*last_metrics_);
      last_metrics_.reset();
      return reply;
    }
    if (clock_.now() >= next_send) {
      if (next_send != started) ++stats_.request_retries;
      socket_.send_to(target, frame);
      ++stats_.frames_sent;
      next_send = clock_.now() + options_.resend_interval;
    }
    if (!pump_()) break;
  }
  ++stats_.request_timeouts;
  throw ProtocolError("WireClient: no metrics reply from " +
                      target.to_string());
}

}  // namespace emergence::service

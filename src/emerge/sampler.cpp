#include "emerge/sampler.hpp"

#include "common/error.hpp"

namespace emergence::core {

MaliciousSampler::MaliciousSampler(std::size_t population,
                                   std::size_t malicious_count, Rng& rng)
    : remaining_(population),
      remaining_malicious_(malicious_count),
      rate_(population == 0 ? 0.0
                            : static_cast<double>(malicious_count) /
                                  static_cast<double>(population)),
      rng_(rng) {
  require(malicious_count <= population,
          "MaliciousSampler: more malicious nodes than population");
}

bool MaliciousSampler::draw() {
  require(remaining_ > 0, "MaliciousSampler: population exhausted");
  const double threshold = static_cast<double>(remaining_malicious_) /
                           static_cast<double>(remaining_);
  const bool malicious = rng_.real() < threshold;
  --remaining_;
  if (malicious) --remaining_malicious_;
  return malicious;
}

bool MaliciousSampler::draw_fresh() { return rng_.chance(rate_); }

}  // namespace emergence::core

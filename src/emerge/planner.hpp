// Parameter planning: choose (k, l) for a target environment.
//
// The paper's evaluation (Fig. 6) plots, for each malicious rate p, the best
// attack resilience R = min(Rr, Rd) each scheme can reach and the node cost
// C of reaching it. The paper does not spell the search out; we use the
// natural reading (documented in docs/design-notes.md §7): maximize min(Rr, Rd) over
// all geometries with k*l <= N, breaking ties toward fewer nodes.
//
// The search exploits monotonicity: for fixed k, Rr(l) is nondecreasing and
// Rd(l) is nonincreasing in l for both multipath schemes, so min(Rr, Rd) is
// maximized where the curves cross; we binary-search the crossing for each k.
//
// Ties toward cheap: a sender does not buy 10x the holders for a 1e-9
// resilience gain, so among geometries within `score_tolerance` of the best
// achievable min(Rr, Rd) the planner returns the fewest-node one. This also
// reproduces the *shape* of Fig. 6(b): joint stays cheap at small p and only
// explodes toward the full budget when even the budget cannot close the gap.
#pragma once

#include <cstddef>

#include "emerge/algorithm1.hpp"
#include "emerge/types.hpp"

namespace emergence::core {

/// A planned configuration with its analytic resilience.
struct Plan {
  SchemeKind kind = SchemeKind::kCentralized;
  PathShape shape;
  Resilience resilience;
  std::size_t nodes_used = 1;  ///< C in Fig. 6(b)/(d)

  double R() const { return resilience.combined(); }
};

/// Planner inputs.
struct PlannerConfig {
  std::size_t node_budget = 10000;  ///< N: nodes available for path building
  std::size_t max_k = 64;           ///< cap on the replication factor search
  /// Geometries scoring within this distance of the best min(Rr, Rd) are
  /// considered equivalent; the cheapest wins.
  double score_tolerance = 1e-4;
};

/// Plans the centralized scheme (always k = l = 1).
Plan plan_centralized(double p);

/// Plans the node-disjoint multipath scheme.
Plan plan_disjoint(double p, const PlannerConfig& config);

/// Plans the node-joint multipath scheme.
Plan plan_joint(double p, const PlannerConfig& config);

/// Plans the key-share routing scheme. Algorithm 1 takes a node-joint
/// geometry as input; the share scheme however prefers *short* paths with
/// *wide* carrier columns (large n sharpens the binomial threshold), so the
/// planner searches (k, l) directly, scoring each candidate with
/// Algorithm 1 and keeping the joint-scheme layout for the onion slots.
struct SharePlan {
  Plan base;      ///< node-joint geometry (k, l) used for the onion layer
  Alg1Plan alg1;  ///< per-column (m, n) and analytic resilience

  double R() const { return alg1.resilience.combined(); }
};
SharePlan plan_share(double p, const PlannerConfig& config,
                     const ChurnSpec& churn,
                     Alg1Mode mode = Alg1Mode::kStochasticDeaths);

/// Dispatcher for the three pattern schemes.
Plan plan_scheme(SchemeKind kind, double p, const PlannerConfig& config);

/// Churn-aware planning (an extension over the paper): scores geometries
/// with the churn-extended models instead of eqs. 1-3, so the sender who
/// knows the expected emerging time and mean node lifetime picks shapes that
/// survive both the adversary *and* churn. With churn disabled this matches
/// the attack-only planner up to the search grid. The paper plans for
/// attacks only and then measures churn (Fig. 7); the ablation bench
/// quantifies what churn-awareness buys.
Plan plan_churn_aware(SchemeKind kind, double p, const PlannerConfig& config,
                      const ChurnSpec& churn);

}  // namespace emergence::core

#include "emerge/protocol.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serial.hpp"
#include "emerge/session_dispatcher.hpp"

namespace emergence::core {
namespace {

constexpr std::uint8_t kMsgPackage = 1;

}  // namespace

Bytes encode_protocol_package(std::uint64_t session_nonce, std::uint16_t column,
                              std::uint16_t holder_index, BytesView onion,
                              const std::vector<crypto::Share>& shares) {
  BinaryWriter w;
  w.u8(kMsgPackage);
  w.u64(session_nonce);
  w.u16(column);
  w.u16(holder_index);
  w.u16(static_cast<std::uint16_t>(shares.size()));
  for (const crypto::Share& s : shares) w.blob(crypto::share_to_bytes(s));
  w.blob(onion);
  return w.take();
}

ProtocolPackage decode_protocol_package(BytesView payload) {
  BinaryReader r(payload);
  require(r.u8() == kMsgPackage,
          "decode_protocol_package: wrong message type");
  ProtocolPackage pkg;
  pkg.session_nonce = r.u64();
  pkg.column = r.u16();
  pkg.holder_index = r.u16();
  const std::uint16_t count = r.u16();
  pkg.shares.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i)
    pkg.shares.push_back(crypto::share_from_bytes(r.blob()));
  pkg.onion = r.blob();
  r.expect_done();
  return pkg;
}

std::optional<std::uint64_t> peek_session_nonce(BytesView payload) {
  // Lives next to encode_protocol_package/decode_protocol_package so the wire prefix (u8
  // kMsgPackage, u64 nonce) has exactly one home.
  if (payload.size() < 9 || payload[0] != kMsgPackage) return std::nullopt;
  BinaryReader r(payload);
  r.u8();
  return r.u64();
}

namespace {

const SessionArgs& checked_args(const SessionArgs& args) {
  require(args.network != nullptr, "TimedReleaseSession: null network");
  require(args.cloud != nullptr, "TimedReleaseSession: null cloud store");
  return args;
}

}  // namespace

TimedReleaseSession::TimedReleaseSession(const SessionArgs& raw_args)
    : network_(*checked_args(raw_args).network),
      cloud_(*raw_args.cloud),
      adversary_(raw_args.adversary),
      config_(raw_args.config),
      dispatcher_(raw_args.dispatcher),
      drbg_(raw_args.seed) {
  require(config_.shape.k >= 1 && config_.shape.l >= 1,
          "TimedReleaseSession: degenerate path shape");
  if (config_.kind == SchemeKind::kShare) {
    require(config_.carriers_n >= config_.shape.k,
            "TimedReleaseSession: share scheme needs carriers_n >= k");
    require(config_.threshold_m >= 1 &&
                config_.threshold_m <= config_.carriers_n,
            "TimedReleaseSession: invalid Shamir threshold");
  }
  require(holding_period() > config_.assembly_delay +
                                 network_.max_message_latency() * 4,
          "TimedReleaseSession: holding period too short for the network");
}

TimedReleaseSession::TimedReleaseSession(dht::Network& network,
                                         cloud::CloudStore& cloud,
                                         Adversary* adversary,
                                         SessionConfig config,
                                         std::uint64_t seed,
                                         SessionDispatcher* dispatcher)
    : TimedReleaseSession(SessionArgs{&network, &cloud, adversary, config,
                                      seed, dispatcher}) {}

TimedReleaseSession::~TimedReleaseSession() {
  // Deregister without network cleanup: a world being torn down wholesale
  // does not need erase traffic, only the dispatcher's pointers must go.
  if (dispatcher_ == nullptr || retired_) return;
  for (const auto& [storage_key, layer_id] : storage_key_to_layer_) {
    (void)layer_id;
    dispatcher_->deregister_storage_key(storage_key);
  }
  if (sent_) dispatcher_->deregister_session(session_nonce_);
}

void TimedReleaseSession::retire() {
  if (retired_ || !sent_) return;
  retired_ = true;
  for (const auto& [storage_key, layer_id] : storage_key_to_layer_) {
    (void)layer_id;
    network_.erase(storage_key);
    if (dispatcher_ != nullptr) dispatcher_->deregister_storage_key(storage_key);
  }
  if (dispatcher_ != nullptr) dispatcher_->deregister_session(session_nonce_);
}

LayerKeyId TimedReleaseSession::key_id_for(std::uint16_t column,
                                           std::uint16_t holder) const {
  // Pre-assigned-key schemes: the k onion slots of a column share K_c
  // (paper §III-B/C). Share scheme: every holder owns an individual key —
  // a shared slot key would let a single malicious onion slot (which
  // reconstructs that key from the n shares addressed to it) open all k
  // slot envelopes and harvest k shares of every next-column key,
  // collapsing the per-column Shamir threshold whenever m <= k. The e2e
  // cross-validation harness flagged exactly that cascade against
  // Algorithm 1's per-column threshold model.
  if (config_.kind != SchemeKind::kShare && holder < config_.shape.k)
    return LayerKeyId{column, LayerKeyId::kSharedHolder};
  return LayerKeyId{column, holder};
}

crypto::SymmetricKey TimedReleaseSession::layer_key(
    const LayerKeyId& id) const {
  auto it = layer_keys_.find(id);
  require(it != layer_keys_.end(), "TimedReleaseSession: unknown layer key");
  return it->second;
}

cloud::BlobId TimedReleaseSession::send(BytesView message,
                                        const std::string& receiver_token) {
  require(!sent_, "TimedReleaseSession::send called twice");
  sent_ = true;
  start_time_ = network_.simulator().now();
  session_nonce_ = drbg_.u64();
  if (dispatcher_ != nullptr)
    dispatcher_->register_session(session_nonce_, this);

  // 1. Encrypt the message and hand the ciphertext to the cloud.
  secret_key_ = drbg_.bytes(32);
  const crypto::SymmetricKey msg_key =
      crypto::SymmetricKey::from_bytes(secret_key_);
  const Bytes nonce = drbg_.bytes(12);
  const Bytes ciphertext = crypto::aead_seal(
      msg_key, nonce, message, bytes_of("emergence/message"), config_.backend);
  blob_id_ = cloud_.upload(ciphertext, receiver_token);

  // 2. Pseudo-randomly select holders through DHT lookups.
  const std::size_t carriers =
      config_.kind == SchemeKind::kShare ? config_.carriers_n : config_.shape.k;
  layout_ = build_path_layout(network_, config_.kind, config_.shape, carriers,
                              drbg_);

  // 3. Generate layer keys: one shared onion key per column for the
  // pre-assigned schemes, an individual key per holder for the share
  // scheme (see key_id_for for why sharing would break the threshold).
  const std::size_t l = config_.shape.l;
  for (std::size_t c = 1; c <= l; ++c) {
    const std::size_t holders = layout_.holders_in_column(c);
    for (std::size_t h = 0; h < holders; ++h) {
      const LayerKeyId id = key_id_for(static_cast<std::uint16_t>(c),
                                       static_cast<std::uint16_t>(h));
      if (layer_keys_.find(id) == layer_keys_.end()) {
        layer_keys_[id] = crypto::SymmetricKey::from_bytes(drbg_.bytes(32));
      }
    }
  }

  // 4. Build the envelopes for every column.
  std::vector<ColumnBuildSpec> specs(l);
  for (std::size_t c = 1; c <= l; ++c) {
    ColumnBuildSpec& spec = specs[c - 1];
    const std::size_t holders = layout_.holders_in_column(c);
    const bool terminal = (c == l);
    spec.holder_keys.reserve(holders);
    spec.envelopes.resize(holders);

    // Pre-split the next column's keys for the share scheme: every key of
    // column c+1 is split into `holders` shares with threshold m; share h
    // goes into holder h's envelope.
    std::vector<std::vector<crypto::Share>> next_key_shares;  // [target][src]
    if (config_.kind == SchemeKind::kShare && !terminal) {
      const std::size_t next_holders = layout_.holders_in_column(c + 1);
      next_key_shares.resize(next_holders);
      for (std::size_t t = 0; t < next_holders; ++t) {
        // Every share-scheme holder has an individual key (key_id_for), so
        // every target's key is split independently.
        const LayerKeyId id =
            key_id_for(static_cast<std::uint16_t>(c + 1),
                       static_cast<std::uint16_t>(t));
        next_key_shares[t] = crypto::shamir_split(
            layer_key(id).to_bytes(), config_.threshold_m, holders, drbg_);
      }
    }

    for (std::size_t h = 0; h < holders; ++h) {
      spec.holder_keys.push_back(layer_key(
          key_id_for(static_cast<std::uint16_t>(c),
                     static_cast<std::uint16_t>(h))));
      EnvelopeContent& env = spec.envelopes[h];
      if (terminal) {
        env.terminal_payload = secret_key_;
        continue;
      }
      // Next hops are ring positions: forwarding re-resolves them through
      // the DHT, so a dead holder's slot is served by its successor.
      const auto& next_points = layout_.ring_points[c];  // column c+1
      if (config_.kind == SchemeKind::kDisjoint) {
        env.next_hops.push_back(next_points[h]);
      } else {
        env.next_hops = next_points;
      }
      if (config_.kind == SchemeKind::kShare) {
        for (std::size_t t = 0; t < next_points.size(); ++t) {
          env.shares.push_back(TargetedShare{
              static_cast<std::uint16_t>(t), next_key_shares[t][h]});
        }
      }
    }
  }
  const Bytes onion = build_onion(specs, drbg_, config_.backend);

  // 5. Register handlers, pre-assign keys, launch the first column.
  register_holder_handlers();
  assign_keys_at_start();

  for (std::size_t h = 0; h < layout_.holders_in_column(1); ++h) {
    const dht::NodeId& point = layout_.ring_points[0][h];
    network_.send_message_routed(
        point, point,
        encode_protocol_package(session_nonce_, 1, static_cast<std::uint16_t>(h),
                       onion, {}));
    ++report_.packages_sent;
  }
  return blob_id_;
}

void TimedReleaseSession::assign_keys_at_start() {
  // Which columns receive their layer keys directly at ts?
  //  * disjoint/joint: every column (the schemes pre-assign K_1..K_l);
  //  * share: only column 1 (later keys travel as shares with the onion).
  const std::size_t last_preassigned_column =
      config_.kind == SchemeKind::kShare ? 1 : config_.shape.l;

  // Replica repairs of stored layer keys must also count as exposure
  // (paper §III-D: the replacement node learns the key). With a dispatcher
  // the per-key registration below routes those observations here in O(1);
  // without one, chain the network-wide store observer (historical path —
  // bounded session counts only).
  if (dispatcher_ == nullptr) {
    dht::StoreObserver previous = network_.store_observer();
    network_.set_store_observer(
        [this, previous](const dht::NodeId& node, const dht::NodeId& key,
                         BytesView value) {
          if (previous) previous(node, key, value);
          observe_store(node, key, value);
        });
  }

  for (std::size_t c = 1; c <= last_preassigned_column; ++c) {
    const std::size_t holders = layout_.holders_in_column(c);
    for (std::size_t h = 0; h < holders; ++h) {
      const LayerKeyId id = key_id_for(static_cast<std::uint16_t>(c),
                                       static_cast<std::uint16_t>(h));
      const dht::NodeId& holder = layout_.columns[c - 1][h];
      // The storage key IS the slot's ring point. Responsibility for the
      // stored key then migrates under churn exactly like responsibility
      // for routed packages: replica repair pushes copies along the ring
      // point's successor chain, so the node that receives the package
      // after the original holder dies is the same node the repaired key
      // landed on. (An earlier revision hashed a session-unique tuple
      // instead, which scattered repairs to nodes unrelated to the slot —
      // replacements could never reconstruct, inflating drop rates under
      // churn far beyond the renewal model; the e2e cross-validation sweep
      // flags exactly this class of divergence.) Ring points are
      // drbg-derived, so the placement is also reproducible from seeds
      // alone. Cross-session collisions would need two drbgs to emit the
      // same 160-bit point.
      const dht::NodeId storage_key = layout_.ring_points[c - 1][h];
      storage_key_to_layer_[storage_key] = id;
      if (dispatcher_ != nullptr)
        dispatcher_->register_storage_key(storage_key, this);

      if (!network_.store_on(holder, storage_key, layer_key(id).to_bytes()))
        continue;  // holder died before assignment
      ++report_.key_assignments;
    }
  }
}

void TimedReleaseSession::handle_package_message(const dht::NodeId& to,
                                                 BytesView payload) {
  ProtocolPackage pkg;
  try {
    pkg = decode_protocol_package(payload);
  } catch (const Error&) {
    ++report_.malformed_packages;
    return;
  }
  if (pkg.session_nonce != session_nonce_) return;  // dispatcher misroute
  on_package(to, pkg.column, pkg.holder_index, pkg.onion,
             std::move(pkg.shares));
}

void TimedReleaseSession::observe_store(const dht::NodeId& node,
                                        const dht::NodeId& key,
                                        BytesView value) {
  auto it = storage_key_to_layer_.find(key);
  if (it == storage_key_to_layer_.end()) return;
  if (adversary_ != nullptr && adversary_->is_malicious(node) &&
      value.size() == 32) {
    adversary_->observe_key(it->second, crypto::SymmetricKey::from_bytes(value),
                            network_.simulator().now());
  }
}

void TimedReleaseSession::register_holder_handlers() {
  // Packages are addressed to ring positions, so the receiving node may be
  // any current ring member (including churn replacements); a network-wide
  // default handler dispatches them to this session. Multiple sessions
  // coexist on one network: packages carry a session nonce, and packages
  // for other sessions chain to the previously registered handler. A
  // dispatcher replaces the chain entirely — it already owns the default
  // handler and routes by nonce.
  if (dispatcher_ != nullptr) return;
  chained_handler_ = network_.default_message_handler();
  dht::MessageHandler previous = chained_handler_;
  network_.set_default_message_handler(
      [this, previous](const dht::NodeId& from, const dht::NodeId& to,
                       BytesView payload) {
        // The network is open: any node can address bytes at a holder.
        // Malformed packages are dropped and counted, never fatal.
        ProtocolPackage pkg;
        try {
          pkg = decode_protocol_package(payload);
        } catch (const Error&) {
          if (previous) {
            previous(from, to, payload);
            return;
          }
          ++report_.malformed_packages;
          return;
        }
        if (pkg.session_nonce != session_nonce_) {
          if (previous) previous(from, to, payload);
          return;
        }
        on_package(to, pkg.column, pkg.holder_index, pkg.onion,
                   std::move(pkg.shares));
      });
}

void TimedReleaseSession::on_package(const dht::NodeId& node,
                                     std::uint16_t column,
                                     std::uint16_t holder_index,
                                     BytesView onion,
                                     std::vector<crypto::Share> shares) {
  const sim::Time now = network_.simulator().now();

  if (adversary_ != nullptr && adversary_->is_malicious(node)) {
    adversary_->observe_package(onion, now);
    const LayerKeyId my_key = key_id_for(column, holder_index);
    for (const crypto::Share& s : shares)
      adversary_->observe_share(my_key, s, now);
    if (adversary_->mode() == AttackMode::kDropping) {
      ++report_.packages_dropped_malicious;
      return;
    }
  }

  HolderState& state = holders_[{column, holder_index}];
  if (!state.have_node) {
    state.current_node = node;
    state.have_node = true;
  }
  if (state.onion.empty())
    state.onion = Bytes(onion.begin(), onion.end());
  for (const crypto::Share& s : shares) {
    const bool dup = std::any_of(
        state.shares.begin(), state.shares.end(),
        [&](const crypto::Share& e) { return e.index == s.index; });
    if (!dup) state.shares.push_back(s);
  }
  if (!state.processing_scheduled) {
    state.processing_scheduled = true;
    network_.simulator().schedule_in(
        config_.assembly_delay,
        [this, column, holder_index]() { process_holder(column, holder_index); });
  }
  ++report_.packages_delivered;
}

void TimedReleaseSession::process_holder(std::uint16_t column,
                                         std::uint16_t holder_index) {
  HolderState& state = holders_[{column, holder_index}];
  if (state.processed) return;
  state.processed = true;

  const dht::NodeId holder = state.current_node;
  if (!network_.is_alive(holder)) return;  // died while assembling

  // Obtain this holder's layer key.
  crypto::SymmetricKey key{};
  const bool preassigned =
      config_.kind != SchemeKind::kShare || column == 1;
  if (preassigned) {
    // Same derivation as assign_keys_at_start: the slot's ring point.
    const dht::NodeId storage_key = layout_.ring_points[column - 1][holder_index];
    const SharedBytes stored = network_.load_from(holder, storage_key);
    if (stored == nullptr || stored->size() != 32) {
      ++report_.holders_stuck;  // key lost to churn before use
      return;
    }
    key = crypto::SymmetricKey::from_bytes(*stored);
  } else {
    if (state.shares.size() < config_.threshold_m) {
      ++report_.holders_stuck;  // not enough shares survived
      return;
    }
    try {
      const Bytes raw =
          crypto::shamir_combine(state.shares, config_.threshold_m);
      key = crypto::SymmetricKey::from_bytes(raw);
    } catch (const Error&) {
      ++report_.holders_stuck;
      return;
    }
  }

  // Peel my envelope.
  ColumnOnion onion;
  EnvelopeContent content;
  try {
    onion = parse_column_onion(state.onion);
    content = open_envelope(key, onion.envelope_for(holder_index), column,
                            config_.backend);
  } catch (const Error&) {
    ++report_.holders_stuck;
    return;
  }

  const sim::Time now = network_.simulator().now();
  if (content.terminal()) {
    // A covert malicious terminal holder sees the secret one holding period
    // early (the leak the paper's strict Rr metric excludes; see docs/design-notes.md §2).
    if (adversary_ != nullptr && adversary_->is_malicious(holder))
      adversary_->observe_secret(content.terminal_payload, now);
    const Bytes secret = content.terminal_payload;
    // Clamp to now: a package that crossed a lossy/partitioned transport can
    // assemble after tr, and delivery then happens immediately (late by the
    // transport's documented bound) instead of tripping the scheduler's
    // no-past-events precondition. Exact-delivery transports always take the
    // first branch bit-identically.
    network_.simulator().schedule_at(
        std::max(now, release_time()), [this, holder_index, secret]() {
          deliver_to_receiver(holder_index, secret);
        });
    return;
  }

  // Unwrap the sealed inner onion with the transport key from my envelope.
  Bytes inner;
  try {
    inner = unwrap_inner(content.inner_key, onion.inner, column,
                         config_.backend);
  } catch (const Error&) {
    ++report_.holders_stuck;
    return;
  }

  // Forward at the scheduled hop time ts + column * th, clamped to now for
  // packages the transport delivered past their column's deadline (retried
  // or partitioned links); lateness then propagates hop-local instead of
  // crashing the schedule.
  const double forward_at = std::max(
      now, start_time_ + static_cast<double>(column) * holding_period());
  network_.simulator().schedule_at(
      forward_at, [this, column, holder_index, content, inner]() {
        forward_from(column, holder_index, content, inner);
      });
}

void TimedReleaseSession::forward_from(std::uint16_t column,
                                       std::uint16_t holder_index,
                                       const EnvelopeContent& content,
                                       const Bytes& inner) {
  // The in-RAM package dies with the node that held it.
  const dht::NodeId holder = holders_[{column, holder_index}].current_node;
  if (!network_.is_alive(holder)) return;  // died while holding

  const std::uint16_t next_column = static_cast<std::uint16_t>(column + 1);
  for (std::size_t i = 0; i < content.next_hops.size(); ++i) {
    // Target holder index within the next column: path index for the
    // disjoint scheme, list position otherwise.
    const std::uint16_t target =
        config_.kind == SchemeKind::kDisjoint
            ? holder_index
            : static_cast<std::uint16_t>(i);
    std::vector<crypto::Share> shares;
    for (const TargetedShare& ts : content.shares) {
      if (ts.target_index == target) shares.push_back(ts.share);
    }
    network_.send_message_routed(
        holder, content.next_hops[i],
        encode_protocol_package(session_nonce_, next_column, target, inner, shares));
    ++report_.packages_sent;
  }
}

void TimedReleaseSession::deliver_to_receiver(std::uint16_t holder_index,
                                              const Bytes& secret) {
  const std::uint16_t terminal =
      static_cast<std::uint16_t>(config_.shape.l);
  const dht::NodeId holder = holders_[{terminal, holder_index}].current_node;
  if (!network_.is_alive(holder)) return;  // died before tr
  ++report_.deliveries;
  if (!released_secret_.has_value()) {
    released_secret_ = secret;
    first_delivery_ = network_.simulator().now();
  }
}

void TimedReleaseSession::refresh_adversary_exposure() {
  if (adversary_ == nullptr) return;
  const sim::Time now = network_.simulator().now();
  for (const auto& [storage_key, layer_id] : storage_key_to_layer_) {
    // The key may be replicated; scan the holders recorded in the layout
    // plus any node currently storing it is impractical to enumerate, so we
    // check the canonical holder for this (column, holder) slot.
    const std::size_t column = layer_id.column;
    for (std::size_t h = 0; h < layout_.holders_in_column(column); ++h) {
      const dht::NodeId& holder = layout_.columns[column - 1][h];
      if (!adversary_->is_malicious(holder)) continue;
      const SharedBytes stored = network_.load_from(holder, storage_key);
      if (stored != nullptr && stored->size() == 32) {
        adversary_->observe_key(layer_id,
                                crypto::SymmetricKey::from_bytes(*stored),
                                now);
      }
    }
  }
}

std::optional<Bytes> TimedReleaseSession::receiver_decrypt(
    const std::string& receiver_token) {
  if (!released_secret_.has_value()) return std::nullopt;
  const cloud::DownloadResult blob = cloud_.download(blob_id_, receiver_token);
  if (blob.status != cloud::CloudStatus::kOk) return std::nullopt;
  try {
    const crypto::SymmetricKey key =
        crypto::SymmetricKey::from_bytes(*released_secret_);
    return crypto::aead_open(key, blob.ciphertext,
                             bytes_of("emergence/message"), config_.backend);
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace emergence::core

#include "emerge/e2e_runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "cloud/cloud_store.hpp"
#include "common/error.hpp"
#include "dht/chord_network.hpp"
#include "dht/churn_driver.hpp"
#include "dht/kademlia.hpp"
#include "emerge/protocol.hpp"
#include "sim/simulator.hpp"

namespace emergence::core {

std::string to_string(DhtBackend backend) {
  return backend == DhtBackend::kChord ? "chord" : "kademlia";
}

std::size_t E2eScenario::malicious_count() const {
  return static_cast<std::size_t>(
      std::floor(p * static_cast<double>(population)));
}

PathShape E2eScenario::session_shape() const {
  return kind == SchemeKind::kCentralized ? PathShape{1, 1} : shape;
}

std::size_t E2eScenario::resolved_carriers() const {
  if (kind != SchemeKind::kShare) return session_shape().k;
  return carriers_n != 0 ? carriers_n : shape.k + 1;
}

std::size_t E2eScenario::resolved_threshold() const {
  return threshold_m != 0 ? threshold_m : shape.k;
}

void E2eTally::merge(const E2eTally& other) {
  tally.merge(other.tally);
  latency_us.merge(other.latency_us);
  sessions_delivered += other.sessions_delivered;
  delivered_on_time += other.delivered_on_time;
  max_delivery_offset_ns =
      std::max(max_delivery_offset_ns, other.max_delivery_offset_ns);
  churn_deaths += other.churn_deaths;
  packages_sent += other.packages_sent;
  packages_delivered += other.packages_delivered;
  packages_dropped_malicious += other.packages_dropped_malicious;
  malformed_packages += other.malformed_packages;
  holders_stuck += other.holders_stuck;
  key_assignments += other.key_assignments;
  deliveries += other.deliveries;
  transport.merge(other.transport);
}

bool CrossValResult::pass() const {
  return std::all_of(metrics.begin(), metrics.end(),
                     [](const CrossValMetric& m) { return m.pass; });
}

std::size_t E2eRunner::restore_margin_periods(double earliest,
                                              double release_time,
                                              double holding_period,
                                              std::size_t path_length) {
  // Restores happen at package-arrival instants ts + (c-1)*th plus small
  // overheads (probe offset, assembly delay, message latency), all well
  // under th/2 for any valid session, so rounding recovers the period count
  // exactly.
  const double periods = (release_time - earliest) / holding_period;
  const long long rounded = std::llround(periods);
  if (rounded <= 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(rounded), path_length);
}

SessionOutcome reduce_session_outcome(const TimedReleaseSession& session,
                                      const Adversary* adversary,
                                      SchemeKind kind, double holding_period,
                                      std::size_t path_length) {
  SessionOutcome out;
  out.delivered = session.secret_released();
  out.stat.drop_success = !out.delivered;
  std::size_t margin = 0;
  if (adversary != nullptr) {
    const auto earliest = adversary->earliest_secret_time();
    if (earliest.has_value()) {
      margin = E2eRunner::restore_margin_periods(
          *earliest, session.release_time(), holding_period, path_length);
    }
  }
  out.stat.compromised_suffix = margin;
  // The strict release rule (header comment): any-column cascade for the
  // share scheme, every-column possession for the pre-assigned schemes.
  out.stat.release_success =
      kind == SchemeKind::kShare ? margin >= 2 : margin >= path_length;
  if (out.delivered) {
    const double first = *session.first_delivery_time();
    const std::int64_t offset_ns =
        std::llround((first - session.release_time()) * 1e9);
    out.abs_offset_ns = offset_ns < 0 ? -offset_ns : offset_ns;
    out.on_time = out.abs_offset_ns <= E2eRunner::kDeliveryToleranceNs;
    out.latency_us = std::llround((first - session.start_time()) * 1e6);
  }
  return out;
}

namespace {

/// Buffers reused across the runs of one shard (each shard runs on one
/// worker thread, so no sharing). Worlds are built and torn down hundreds
/// of times per scenario; keeping the coalition buffer alive across runs
/// removes a per-run allocate/free cycle without touching any state that
/// could leak between runs (it is repopulated from scratch every time).
struct WorldScratch {
  std::vector<dht::NodeId> coalition;
};

/// One full-stack world: fresh simulator, DHT, cloud, coalition and
/// scenario.sessions concurrent sessions, driven through tr. Everything is
/// seeded from fork(run_index) sub-streams of the scenario seed, so the
/// outcome is a pure function of (scenario, run_index) — the property the
/// sharded sweep's bit-identity rests on.
void run_world(const E2eScenario& s, std::size_t run_index, E2eTally& out,
               WorldScratch& scratch) {
  const Rng master(s.seed);
  const Rng run_master = master.fork(run_index);
  Rng net_rng = run_master.fork(1);
  Rng mark_rng = run_master.fork(2);
  Rng churn_rng = run_master.fork(3);

  sim::Simulator sim;
  std::unique_ptr<dht::ChordNetwork> chord;
  std::unique_ptr<dht::KademliaNetwork> kademlia;
  dht::Network* net = nullptr;
  if (s.backend == DhtBackend::kChord) {
    dht::NetworkConfig cfg;
    // Maintenance matters only under churn (repair is what hands stored
    // layer keys to replacement holders); without churn it only adds
    // events. Interval choice: repair must run much more often than the
    // holding period so the stat engine's instant-repair renewal model is a
    // good limit (docs/architecture.md, "Two engines, one truth").
    cfg.run_maintenance = s.churn;
    cfg.stabilize_interval = 15.0;
    cfg.replica_repair_interval = 30.0;
    cfg.transport = s.transport;
    chord = std::make_unique<dht::ChordNetwork>(sim, net_rng, cfg);
    chord->bootstrap(s.population);
    net = chord.get();
  } else {
    dht::KademliaConfig cfg;
    cfg.run_maintenance = s.churn;
    cfg.republish_interval = 30.0;
    cfg.transport = s.transport;
    kademlia = std::make_unique<dht::KademliaNetwork>(sim, net_rng, cfg);
    kademlia->bootstrap(s.population);
    net = kademlia.get();
  }

  cloud::CloudStore cloud;
  const PathShape shape = s.session_shape();
  const double th = s.emerging_time / static_cast<double>(shape.l);
  const std::size_t coalition_size = s.malicious_count();

  // One Adversary per session, all marking the same coalition. Sessions are
  // cryptographically independent (fresh keys, nonced packages), so a
  // shared knowledge base adds no power — but Adversary keys its knowledge
  // by LayerKeyId{column, holder}, which concurrent sessions reuse, so a
  // shared instance would conflate their key material.
  std::vector<std::unique_ptr<Adversary>> adversaries;
  if (coalition_size > 0) {
    std::vector<dht::NodeId>& coalition = scratch.coalition;
    coalition.clear();
    const std::vector<dht::NodeId>& initial = net->alive_ids();
    for (std::uint32_t pick :
         mark_rng.sample_without_replacement(initial.size(), coalition_size)) {
      coalition.push_back(initial[pick]);
    }
    for (std::size_t i = 0; i < s.sessions; ++i) {
      Adversary::Config cfg;
      cfg.mode = s.attack_mode;
      // Share-scheme holders carry individual keys (protocol key_id_for),
      // so no slots share the column key there.
      cfg.onion_slots_k = s.kind == SchemeKind::kShare ? 0 : shape.k;
      cfg.share_threshold_m =
          s.kind == SchemeKind::kShare ? s.resolved_threshold() : 1;
      auto adversary = std::make_unique<Adversary>(cfg);
      for (const dht::NodeId& id : coalition) adversary->mark_malicious(id);
      adversaries.push_back(std::move(adversary));
    }
  }

  // Marking precedes send(), so pre-assigned keys landing on coalition
  // nodes are exposed through the store observer the moment they are
  // stored — the stat engine's "keys known from ts" assumption.
  std::vector<std::unique_ptr<TimedReleaseSession>> sessions;
  SessionConfig config;
  config.kind = s.kind == SchemeKind::kCentralized ? SchemeKind::kJoint : s.kind;
  config.shape = shape;
  if (s.kind == SchemeKind::kShare) {
    config.carriers_n = s.resolved_carriers();
    config.threshold_m = s.resolved_threshold();
  }
  config.emerging_time = s.emerging_time;
  for (std::size_t i = 0; i < s.sessions; ++i) {
    Adversary* adversary = adversaries.empty() ? nullptr : adversaries[i].get();
    sessions.push_back(std::make_unique<TimedReleaseSession>(
        *net, cloud, adversary, config, run_master.fork(16 + i).seed()));
    sessions[i]->send(bytes_of("e2e-crossval-payload"),
                      "receiver-" + std::to_string(i));
  }

  std::optional<dht::ChurnDriver> churn;
  if (s.churn) {
    dht::ChurnConfig cfg;
    cfg.mean_lifetime = s.emerging_time / s.churn_alpha;
    cfg.replace_dead_nodes = true;
    churn.emplace(*net, cfg);
    // Replacement joins come from outside the initial population and are
    // malicious i.i.d. at the coalition rate (sampler.hpp draw_fresh).
    const double fresh_rate = static_cast<double>(coalition_size) /
                              static_cast<double>(s.population);
    churn->on_death = [&adversaries, &churn_rng, fresh_rate](
                          const dht::NodeId&, const dht::NodeId* replacement) {
      if (replacement == nullptr || adversaries.empty()) return;
      if (!churn_rng.chance(fresh_rate)) return;
      for (auto& adversary : adversaries)
        adversary->mark_malicious(*replacement);
    };
    churn->start();
  }

  // Restore probes: the coalition's knowledge grows at package-arrival
  // instants ts + (c-1)*th (+ latency), so one attempt_restore shortly
  // after each arrival wave pins the earliest possession time to within
  // probe_offset — far below the th/2 the margin rounding tolerates.
  if (!adversaries.empty()) {
    const double probe_offset = std::min(0.5, th / 4.0);
    for (std::size_t c = 1; c <= shape.l; ++c) {
      sim.schedule_at(static_cast<double>(c - 1) * th + probe_offset,
                      [&sim, &adversaries]() {
                        for (auto& adversary : adversaries)
                          adversary->attempt_restore(sim.now());
                      });
    }
  }

  // A lossy/partitioned transport can still be walking a retry ladder near
  // tr; extend the horizon so the last scheduled retransmit chain drains
  // before the world is torn down (zero for the ideal default).
  sim.run_until(s.emerging_time + 5.0 +
                s.transport.reap_slack(s.session_shape().l));

  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const TimedReleaseSession& session = *sessions[i];
    const SessionReport& report = session.report();

    const SessionOutcome outcome = reduce_session_outcome(
        session, adversaries.empty() ? nullptr : adversaries[i].get(), s.kind,
        th, shape.l);
    out.tally.add(outcome.stat);
    if (outcome.delivered) {
      ++out.sessions_delivered;
      if (outcome.on_time) ++out.delivered_on_time;
      out.max_delivery_offset_ns =
          std::max(out.max_delivery_offset_ns, outcome.abs_offset_ns);
      out.latency_us.add(outcome.latency_us);
    }
    out.packages_sent += report.packages_sent;
    out.packages_delivered += report.packages_delivered;
    out.packages_dropped_malicious += report.packages_dropped_malicious;
    out.malformed_packages += report.malformed_packages;
    out.holders_stuck += report.holders_stuck;
    out.key_assignments += report.key_assignments;
    out.deliveries += report.deliveries;
  }
  if (churn.has_value()) out.churn_deaths += churn->deaths();
  out.transport.merge(net->transport_stats());
}

}  // namespace

E2eTally E2eRunner::run_tallies(const E2eScenario& s) {
  require(s.runs >= 1, "E2eRunner: need at least one run");
  require(s.sessions >= 1, "E2eRunner: need at least one session");
  require(s.p >= 0.0 && s.p <= 1.0, "E2eRunner: p out of range");
  // Fail fast on a malformed transport here, on the caller's thread, rather
  // than inside a worker's world construction.
  s.transport.resolved(0.010, 0.100).validate();
  if (s.kind == SchemeKind::kShare) {
    require(s.resolved_carriers() >= s.shape.k,
            "E2eRunner: share scenario needs carriers_n >= k");
    require(s.resolved_threshold() >= 1 &&
                s.resolved_threshold() <= s.resolved_carriers(),
            "E2eRunner: invalid share threshold");
  }

  // Fixed shard size: the decomposition is a function of the run count
  // only, never of the thread count (the sweep determinism rule). Worlds
  // are ~ms-scale, so small shards keep the pool balanced.
  const std::size_t shard_size = 8;
  const std::size_t shard_count = (s.runs + shard_size - 1) / shard_size;
  std::vector<E2eTally> tallies(shard_count);
  sweeps_.run_shards(shard_count, [&](std::size_t shard) {
    E2eTally tally;
    WorldScratch scratch;
    const std::size_t begin = shard * shard_size;
    const std::size_t end = std::min(s.runs, begin + shard_size);
    for (std::size_t run = begin; run < end; ++run)
      run_world(s, run, tally, scratch);
    tallies[shard] = std::move(tally);
  });

  // Merge rule: ascending shard index (see sweep.cpp).
  E2eTally total;
  for (const E2eTally& tally : tallies) total.merge(tally);
  return total;
}

RunTally E2eRunner::stat_tallies(const E2eScenario& s, std::size_t stat_runs) {
  EvalPoint point;
  point.p = s.p;
  point.population = s.population;
  point.runs = stat_runs;
  point.seed = s.seed ^ 0x57a7e57a7ULL;
  if (s.churn) point.churn = ChurnSpec{true, 1.0, s.churn_alpha};

  std::optional<SharePlan> plan;
  if (s.kind == SchemeKind::kShare) {
    SharePlan share;
    share.base.kind = SchemeKind::kJoint;
    share.base.shape = s.shape;
    share.alg1.n = s.resolved_carriers();
    for (std::size_t c = 2; c <= s.shape.l; ++c) {
      Alg1Column column;
      column.column = c;
      column.m = s.resolved_threshold();
      column.n = s.resolved_carriers();
      share.alg1.columns.push_back(column);
    }
    plan = share;
  }
  return sweeps_.run_tallies(s.kind, s.session_shape(), plan, point);
}

namespace {

CrossValMetric rate_metric(const std::string& name, std::uint64_t fs_successes,
                           std::size_t fs_trials, std::size_t fs_effective,
                           std::uint64_t stat_successes,
                           std::size_t stat_trials, double z) {
  CrossValMetric m;
  m.metric = name;
  m.fs_trials = fs_trials;
  m.stat_trials = stat_trials;
  m.full_stack = fs_trials == 0 ? 0.0
                                : static_cast<double>(fs_successes) /
                                      static_cast<double>(fs_trials);
  m.stat_engine = stat_trials == 0 ? 0.0
                                   : static_cast<double>(stat_successes) /
                                         static_cast<double>(stat_trials);
  const double pooled = static_cast<double>(fs_successes + stat_successes) /
                        static_cast<double>(fs_trials + stat_trials);
  const double inv_n = 1.0 / static_cast<double>(fs_effective) +
                       1.0 / static_cast<double>(stat_trials);
  m.bound = z * std::sqrt(pooled * (1.0 - pooled) * inv_n) + inv_n;
  m.pass = std::abs(m.diff()) <= m.bound;
  return m;
}

}  // namespace

CrossValResult E2eRunner::cross_validate(const E2eScenario& scenario,
                                         std::size_t stat_runs, double z) {
  CrossValResult result;
  result.scenario = scenario;
  result.full_stack = run_tallies(scenario);
  result.stat = stat_tallies(scenario, stat_runs);

  const E2eTally& fs = result.full_stack;
  const RunTally& st = result.stat;
  const std::size_t fs_trials = fs.trials();
  // Sessions of one world share a coalition and a ring: conservatively use
  // the world count as the independent-sample size for the noise bound.
  const std::size_t fs_effective = scenario.runs;
  const bool covert = scenario.attack_mode == AttackMode::kCovert;
  // Transport loss is invisible to the stat engine: its drop/release models
  // assume every protocol message arrives. Gates that compare against those
  // models are skipped under a lossy or partitioned transport; the dedicated
  // drop_vs_transport_model gate below covers the composable case instead.
  const bool lossy_transport =
      scenario.transport.can_drop() || scenario.transport.has_partition();

  // Timing gate: the protocol promises delivery exactly at tr whenever the
  // transport keeps the exactness contract (always true for the ideal
  // default). Under a non-exact transport the metric is still reported but
  // only sanity-bounded: late deliveries are clamped hop-locally, so they
  // stay within reap_slack of tr — enforced by max_delivery_offset_ns.
  {
    const bool exact = scenario.exact_delivery();
    CrossValMetric m;
    m.metric = "delivered_on_time";
    m.fs_trials = fs_trials;
    m.stat_trials = 0;
    m.full_stack =
        fs.sessions_delivered == 0
            ? 1.0
            : static_cast<double>(fs.delivered_on_time) /
                  static_cast<double>(fs.sessions_delivered);
    m.stat_engine = 1.0;
    if (exact) {
      m.bound = 0.0;
      m.pass = fs.delivered_on_time == fs.sessions_delivered;
    } else {
      const double slack =
          scenario.transport.reap_slack(scenario.session_shape().l);
      m.bound = 1.0;  // rate unconstrained; lateness bounded below
      m.pass = static_cast<double>(fs.max_delivery_offset_ns) <= slack * 1e9;
    }
    result.metrics.push_back(m);
  }

  if (covert && !scenario.churn && !lossy_transport) {
    if (scenario.malicious_count() > 0) {
      // Release rates: identical strict event in both engines.
      result.metrics.push_back(rate_metric(
          "release", fs.tally.release.successes(), fs_trials, fs_effective,
          st.release.successes(), st.runs(), z));
      // Restore-margin tail: any possession before tr (includes the
      // terminal-slot leak the strict metric excludes).
      result.metrics.push_back(rate_metric(
          "restore_margin_ge1", fs.tally.suffix_at_least(1), fs_trials,
          fs_effective, st.suffix_at_least(1), st.runs(), z));
    }
    // Covert holders forward everything and nobody dies: delivery is
    // guaranteed, so any full-stack drop is a bug, not noise.
    CrossValMetric m;
    m.metric = "delivered_all";
    m.fs_trials = fs_trials;
    m.stat_trials = 0;
    m.full_stack = fs_trials == 0 ? 1.0
                                  : static_cast<double>(fs.sessions_delivered) /
                                        static_cast<double>(fs_trials);
    m.stat_engine = 1.0;
    m.bound = 0.0;
    m.pass = fs.tally.drop.successes() == 0;
    result.metrics.push_back(m);
  }

  if (!lossy_transport &&
      (scenario.attack_mode == AttackMode::kDropping ||
       (covert && scenario.malicious_count() == 0 && scenario.churn))) {
    // Drop rates: dropping coalitions and/or churn losses; the stat
    // engine's drop model assumes exactly this adversary behavior.
    result.metrics.push_back(rate_metric("drop", fs.tally.drop.successes(),
                                         fs_trials, fs_effective,
                                         st.drop.successes(), st.runs(), z));
  }

  if (scenario.transport.can_drop() && !scenario.transport.has_partition() &&
      !scenario.churn && scenario.malicious_count() == 0 &&
      scenario.session_shape().k == 1) {
    // Drop-adjusted prediction for an iid-lossy transport: a k = 1 chain
    // carries exactly l serial package sends (the column-1 launch plus
    // l - 1 forwards; terminal delivery is a local timer, and maintenance
    // is off without churn). A send is permanently lost only when the
    // original attempt and every retry all drop: q = p^(retries + 1). The
    // session drops when any of the l sends is lost, composed with the
    // stat engine's transport-free drop rate (zero here, kept in the
    // formula so the gate stays correct if the guard ever widens).
    const double p = scenario.transport.drop_probability;
    const double q =
        std::pow(p, static_cast<double>(scenario.transport.max_retries) + 1.0);
    const double stat_drop =
        st.runs() == 0 ? 0.0
                       : static_cast<double>(st.drop.successes()) /
                             static_cast<double>(st.runs());
    const double predicted =
        1.0 - (1.0 - stat_drop) *
                  std::pow(1.0 - q,
                           static_cast<double>(scenario.session_shape().l));
    CrossValMetric m;
    m.metric = "drop_vs_transport_model";
    m.fs_trials = fs_trials;
    m.stat_trials = st.runs();
    m.full_stack = fs_trials == 0
                       ? 0.0
                       : static_cast<double>(fs.tally.drop.successes()) /
                             static_cast<double>(fs_trials);
    m.stat_engine = predicted;
    // One-sample binomial bound: the prediction is analytic, so only the
    // full-stack side contributes noise (plus the continuity correction).
    const double n = static_cast<double>(fs_effective);
    m.bound = z * std::sqrt(predicted * (1.0 - predicted) / n) + 1.0 / n;
    m.pass = std::abs(m.diff()) <= m.bound;
    result.metrics.push_back(m);
  }

  return result;
}

std::vector<E2eScenario> default_crossval_matrix(std::size_t runs,
                                                 std::size_t population) {
  std::vector<E2eScenario> matrix;
  std::uint64_t seed = 0xE2E0C0DE;
  auto add = [&](E2eScenario s) {
    s.runs = runs;
    s.population = population;
    s.seed = seed++;
    matrix.push_back(std::move(s));
  };

  const PathShape fig5{2, 3};  // the paper's running example geometry

  // -- covert, no churn: release-rate validation, both backends ----------------
  for (DhtBackend backend : {DhtBackend::kChord, DhtBackend::kKademlia}) {
    for (SchemeKind kind :
         {SchemeKind::kCentralized, SchemeKind::kDisjoint, SchemeKind::kJoint,
          SchemeKind::kShare}) {
      E2eScenario s;
      s.name = "covert_" + to_string(kind) + "_" + to_string(backend);
      s.kind = kind;
      s.backend = backend;
      s.shape = fig5;
      if (kind == SchemeKind::kShare) {
        s.carriers_n = 4;
        s.threshold_m = 2;
      }
      s.p = 0.3;
      s.attack_mode = AttackMode::kCovert;
      add(s);
    }
  }

  // -- dropping, no churn: drop-rate validation --------------------------------
  for (SchemeKind kind :
       {SchemeKind::kCentralized, SchemeKind::kDisjoint, SchemeKind::kJoint,
        SchemeKind::kShare}) {
    E2eScenario s;
    s.name = "dropping_" + to_string(kind) + "_chord";
    s.kind = kind;
    s.shape = fig5;
    if (kind == SchemeKind::kShare) {
      s.carriers_n = 4;
      s.threshold_m = 2;
    }
    s.p = 0.3;
    s.attack_mode = AttackMode::kDropping;
    add(s);
  }
  {
    E2eScenario s;
    s.name = "dropping_joint_kademlia";
    s.kind = SchemeKind::kJoint;
    s.backend = DhtBackend::kKademlia;
    s.shape = fig5;
    s.p = 0.3;
    s.attack_mode = AttackMode::kDropping;
    add(s);
  }

  // -- churn, no adversary: pure availability vs the renewal model -------------
  for (DhtBackend backend : {DhtBackend::kChord, DhtBackend::kKademlia}) {
    E2eScenario s;
    s.name = "churn_joint_" + to_string(backend);
    s.kind = SchemeKind::kJoint;
    s.backend = backend;
    s.shape = fig5;
    s.churn = true;
    s.churn_alpha = 1.0;
    add(s);
  }
  {
    E2eScenario s;
    s.name = "churn_share_chord";
    s.kind = SchemeKind::kShare;
    s.shape = fig5;
    s.carriers_n = 4;
    s.threshold_m = 2;
    s.churn = true;
    s.churn_alpha = 2.0;
    add(s);
  }

  // -- churn + dropping coalition: the combined stress -------------------------
  {
    E2eScenario s;
    s.name = "churn_dropping_joint_chord";
    s.kind = SchemeKind::kJoint;
    s.shape = fig5;
    s.p = 0.2;
    s.attack_mode = AttackMode::kDropping;
    s.churn = true;
    s.churn_alpha = 1.0;
    add(s);
  }
  {
    E2eScenario s;
    s.name = "churn_dropping_share_chord";
    s.kind = SchemeKind::kShare;
    s.shape = fig5;
    s.carriers_n = 4;
    s.threshold_m = 2;
    s.p = 0.2;
    s.attack_mode = AttackMode::kDropping;
    s.churn = true;
    s.churn_alpha = 2.0;
    add(s);
  }

  // -- concurrent sessions: 2 / 4 / 8 on one ring ------------------------------
  for (std::size_t sessions : {2u, 4u, 8u}) {
    E2eScenario s;
    s.name = "covert_joint_chord_x" + std::to_string(sessions);
    s.kind = SchemeKind::kJoint;
    s.shape = fig5;
    s.p = 0.3;
    s.sessions = sessions;
    add(s);
  }
  {
    E2eScenario s;
    s.name = "dropping_share_chord_x2";
    s.kind = SchemeKind::kShare;
    s.shape = fig5;
    s.carriers_n = 4;
    s.threshold_m = 2;
    s.p = 0.3;
    s.attack_mode = AttackMode::kDropping;
    s.sessions = 2;
    add(s);
  }

  // -- lossy transport vs the drop-adjusted analytic prediction ----------------
  // Appended last so the sequential seed assignment above is unchanged
  // (every earlier scenario keeps its pinned seed and tallies).
  {
    E2eScenario s;
    s.name = "lossy_chain_chord";
    s.kind = SchemeKind::kJoint;
    s.shape = PathShape{1, 3};
    s.transport = dht::TransportModel::lossy(0.2);
    // One retry keeps q = p^2 = 0.04 large enough that the smoke-scale
    // matrix run still observes nonzero transport drops and retries.
    s.transport.max_retries = 1;
    add(s);
  }

  return matrix;
}

}  // namespace emergence::core

#include "emerge/path.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace emergence::core {

std::size_t PathLayout::holders_in_column(std::size_t column1based) const {
  require(column1based >= 1 && column1based <= columns.size(),
          "PathLayout: column out of range");
  return columns[column1based - 1].size();
}

std::size_t PathLayout::total_holders() const {
  std::size_t total = 0;
  for (const auto& column : columns) total += column.size();
  return total;
}

bool PathLayout::contains(const dht::NodeId& node) const {
  for (const auto& column : columns) {
    for (const dht::NodeId& id : column) {
      if (id == node) return true;
    }
  }
  return false;
}

PathLayout build_path_layout(dht::Network& network, SchemeKind kind,
                             const PathShape& shape, std::size_t carriers_n,
                             crypto::Drbg& drbg) {
  require(kind != SchemeKind::kCentralized || shape.holder_count() == 1,
          "build_path_layout: centralized scheme is a 1x1 layout");
  const bool share = kind == SchemeKind::kShare;
  require(!share || carriers_n >= shape.k,
          "build_path_layout: share scheme needs n >= k");

  PathLayout layout;
  layout.kind = kind;
  layout.shape = shape;
  layout.carriers_n = share ? carriers_n : shape.k;

  std::size_t needed = 0;
  for (std::size_t c = 1; c <= shape.l; ++c) {
    needed += (share && c < shape.l) ? carriers_n : shape.k;
  }
  require(network.alive_count() > needed,
          "build_path_layout: not enough live nodes for distinct holders");

  std::unordered_set<dht::NodeId, dht::NodeIdHash> used;
  auto pick_holder = [&]() -> std::pair<dht::NodeId, dht::NodeId> {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      // Deterministic pseudo-random ring position -> responsible node.
      const Bytes point = drbg.bytes(dht::kIdBytes);
      const dht::NodeId target = dht::NodeId::from_bytes(point);
      const dht::LookupResult result = network.lookup(target);
      if (!result.ok) continue;
      if (used.insert(result.node).second) return {target, result.node};
    }
    throw ProtocolError("build_path_layout: could not find a fresh holder");
  };

  layout.columns.resize(shape.l);
  layout.ring_points.resize(shape.l);
  for (std::size_t c = 1; c <= shape.l; ++c) {
    const std::size_t count = (share && c < shape.l) ? carriers_n : shape.k;
    auto& column = layout.columns[c - 1];
    auto& points = layout.ring_points[c - 1];
    column.reserve(count);
    points.reserve(count);
    for (std::size_t h = 0; h < count; ++h) {
      const auto [point, node] = pick_holder();
      points.push_back(point);
      column.push_back(node);
    }
  }
  return layout;
}

}  // namespace emergence::core

// Routing-path construction (paper §III: "the secret key owner ... pseudo-
// randomly selects nodes in the DHT to form the routing paths").
//
// The sender derives ring positions deterministically from a secret seed
// (message id), looks each position up in the DHT and uses the responsible
// nodes as holders. Determinism matters: the sender can regenerate the same
// paths from the seed without storing them, and nobody without the seed can
// predict holder positions.
#pragma once

#include <vector>

#include "crypto/drbg.hpp"
#include "dht/network.hpp"
#include "emerge/types.hpp"

namespace emergence::core {

/// Concrete holder layout for one protocol instance.
struct PathLayout {
  SchemeKind kind = SchemeKind::kJoint;
  PathShape shape;             ///< k onion slots per column, l columns
  std::size_t carriers_n = 0;  ///< share scheme: holders per column (n >= k)
  /// columns[c][h] = node responsible for holder slot h of column c+1 at
  /// construction time. For the share scheme, columns 0..l-2 have n entries
  /// (the first k are onion slots) and the terminal column has k; for
  /// disjoint/joint every column has k.
  std::vector<std::vector<dht::NodeId>> columns;
  /// ring_points[c][h] = the pseudo-random ring position that *defines*
  /// holder slot (c+1, h). Packages are addressed to these positions (a
  /// fresh lookup at send time), so responsibility follows churn exactly
  /// like DHT storage does.
  std::vector<std::vector<dht::NodeId>> ring_points;

  std::size_t holders_in_column(std::size_t column1based) const;
  std::size_t total_holders() const;
  /// True when `node` appears anywhere in the layout.
  bool contains(const dht::NodeId& node) const;
};

/// Builds a layout by deterministic pseudo-random DHT lookups. All holders
/// are distinct nodes; positions hitting an already-used node are re-drawn
/// (requires the network to have more live nodes than holders are needed).
PathLayout build_path_layout(dht::Network& network, SchemeKind kind,
                             const PathShape& shape, std::size_t carriers_n,
                             crypto::Drbg& drbg);

}  // namespace emergence::core

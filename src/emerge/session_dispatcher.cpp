#include "emerge/session_dispatcher.hpp"

#include "common/error.hpp"
#include "emerge/protocol.hpp"

namespace emergence::core {

SessionDispatcher::SessionDispatcher(dht::Network& network)
    : network_(network) {
  const dht::MessageHandler previous = network.default_message_handler();
  network.set_default_message_handler(
      [this, previous](const dht::NodeId& from, const dht::NodeId& to,
                       BytesView payload) {
        const std::optional<std::uint64_t> nonce = peek_session_nonce(payload);
        if (nonce.has_value()) {
          auto it = by_nonce_.find(*nonce);
          if (it != by_nonce_.end()) {
            it->second->handle_package_message(to, payload);
            return;
          }
          // Unknown nonce. With a pre-dispatcher handler installed, the
          // payload may be that handler's own traffic whose wire format
          // merely starts like a package — chain it (matching the
          // chained-session path, which forwards what it cannot claim).
          // With no previous handler (the fleet configuration), this is a
          // late package for a retired session: drop and count it.
          if (previous == nullptr) {
            ++stray_packages_;
            return;
          }
        }
        if (previous) previous(from, to, payload);
      });

  const dht::StoreObserver chained = network.store_observer();
  network.set_store_observer(
      [this, chained](const dht::NodeId& node, const dht::NodeId& key,
                      BytesView value) {
        if (chained) chained(node, key, value);
        auto it = by_storage_key_.find(key);
        if (it != by_storage_key_.end())
          it->second->observe_store(node, key, value);
      });
}

void SessionDispatcher::register_session(std::uint64_t nonce,
                                         TimedReleaseSession* session) {
  const bool inserted = by_nonce_.emplace(nonce, session).second;
  // A 64-bit drbg nonce collision across *live* sessions would misroute
  // packages; surface it instead (p ~ live^2 / 2^65, unreachable in
  // practice but cheap to guard).
  require(inserted, "SessionDispatcher: session nonce collision");
}

void SessionDispatcher::deregister_session(std::uint64_t nonce) {
  by_nonce_.erase(nonce);
}

void SessionDispatcher::register_storage_key(const dht::NodeId& key,
                                             TimedReleaseSession* session) {
  by_storage_key_[key] = session;
}

void SessionDispatcher::deregister_storage_key(const dht::NodeId& key) {
  by_storage_key_.erase(key);
}

}  // namespace emergence::core

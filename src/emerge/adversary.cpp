#include "emerge/adversary.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace emergence::core {

void Adversary::observe_key(const LayerKeyId& id,
                            const crypto::SymmetricKey& key, sim::Time when) {
  (void)when;
  keys_.emplace(id, key);
}

void Adversary::observe_share(const LayerKeyId& id,
                              const crypto::Share& share, sim::Time when) {
  (void)when;
  auto& bucket = shares_[id];
  // Dedupe on the evaluation point: onion slots receive identical shares.
  const bool duplicate =
      std::any_of(bucket.begin(), bucket.end(), [&](const crypto::Share& s) {
        return s.index == share.index;
      });
  if (!duplicate) bucket.push_back(share);
}

void Adversary::observe_package(BytesView serialized_onion, sim::Time when) {
  (void)when;
  Bytes copy(serialized_onion.begin(), serialized_onion.end());
  const bool known =
      std::any_of(packages_.begin(), packages_.end(),
                  [&](const Bytes& p) { return p == copy; });
  if (!known) packages_.push_back(std::move(copy));
}

void Adversary::observe_secret(BytesView secret, sim::Time when) {
  if (!secret_.has_value()) secret_ = Bytes(secret.begin(), secret.end());
  if (!earliest_secret_.has_value() || when < *earliest_secret_)
    earliest_secret_ = when;
}

std::size_t Adversary::captured_shares() const {
  std::size_t total = 0;
  for (const auto& [id, bucket] : shares_) total += bucket.size();
  return total;
}

bool Adversary::try_reconstruct_keys() {
  bool progress = false;
  for (const auto& [id, bucket] : shares_) {
    if (keys_.count(id) > 0) continue;
    if (bucket.size() < config_.share_threshold_m) continue;
    try {
      const Bytes raw =
          crypto::shamir_combine(bucket, config_.share_threshold_m);
      if (raw.size() != 32) continue;  // not a layer key
      keys_.emplace(id, crypto::SymmetricKey::from_bytes(raw));
      progress = true;
    } catch (const Error&) {
      continue;  // inconsistent share lengths etc.
    }
  }
  return progress;
}

std::optional<Bytes> Adversary::attempt_restore(sim::Time now) {
  if (secret_.has_value()) return secret_;

  // Iterate opening envelopes / reconstructing keys to a fixpoint. Each
  // round may add inner onions (new packages) and shares (from envelopes),
  // which may unlock further layers.
  bool progress = true;
  while (progress && !secret_.has_value()) {
    progress = try_reconstruct_keys();

    std::vector<Bytes> discovered;
    for (const Bytes& raw : packages_) {
      ColumnOnion onion;
      try {
        onion = parse_column_onion(raw);
      } catch (const Error&) {
        continue;  // garbage capture
      }
      for (const auto& [holder_index, sealed] : onion.envelopes) {
        const LayerKeyId id{
            onion.column,
            holder_index < config_.onion_slots_k
                ? LayerKeyId::kSharedHolder
                : holder_index};
        auto key_it = keys_.find(id);
        if (key_it == keys_.end()) continue;
        EnvelopeContent content;
        try {
          content = open_envelope(key_it->second, sealed, onion.column,
                                  config_.backend);
        } catch (const Error&) {
          continue;
        }
        if (!content.terminal_payload.empty()) {
          observe_secret(content.terminal_payload, now);
          return secret_;
        }
        for (const TargetedShare& ts : content.shares) {
          const LayerKeyId share_key{
              static_cast<std::uint16_t>(onion.column + 1),
              ts.target_index < config_.onion_slots_k
                  ? LayerKeyId::kSharedHolder
                  : ts.target_index};
          const std::size_t before = shares_[share_key].size();
          observe_share(share_key, ts.share, now);
          if (shares_[share_key].size() != before) progress = true;
        }
        // The opened envelope's transport key unwraps this column's sealed
        // inner onion -- the only way to descend a layer.
        if (!content.inner_key.empty() && !onion.inner.empty()) {
          try {
            discovered.push_back(unwrap_inner(content.inner_key, onion.inner,
                                              onion.column, config_.backend));
          } catch (const Error&) {
          }
        }
      }
    }
    for (Bytes& inner : discovered) {
      const bool known = std::any_of(
          packages_.begin(), packages_.end(),
          [&](const Bytes& p) { return p == inner; });
      if (!known) {
        packages_.push_back(std::move(inner));
        progress = true;
      }
    }
  }
  return secret_;
}

}  // namespace emergence::core

// Parallel deterministic Monte-Carlo sweep engine.
//
// The paper's evaluation averages 1000 independent runs per parameter point
// (Figs. 6-8). SweepRunner shards those runs across a fixed pool of worker
// threads and aggregates per-shard tallies, with two hard guarantees:
//
//  1. Determinism: a point's result is a pure function of the EvalPoint —
//     bit-identical at any thread count, shard size, or scheduling order.
//  2. Serial equivalence: the result equals a flat serial loop over the same
//     runs — the pre-engine monte_carlo.cpp loop structure with one change:
//     run i is now seeded counter-based (fork(i)) instead of by drawing from
//     the master engine sequentially, which is what makes the runs
//     relocatable across threads. The estimates therefore sample the same
//     distributions as the old serial code but are not numerically equal to
//     pre-engine outputs at the same seed.
//
// Both rest on two rules (docs/architecture.md, "Concurrency and
// reproducibility"):
//
//  * Fork-per-run seeding: run i draws from Rng(point.seed).fork(i), a
//    counter-based stream that depends only on (seed, i) — never on which
//    thread runs it or how many runs preceded it.
//  * Exact tallies, fixed merge order: per-run outcomes are booleans and
//    small integers, so shard tallies are integer counters (RateStat plus
//    integer moment sums for the compromised suffix). Integer merges are
//    associative and commutative, so any sharding reproduces the serial
//    tallies exactly; shards are still merged in ascending index order so
//    the rule stays safe if a floating-point accumulator is ever added.
//
// evaluate_point / evaluate_fixed_shape in monte_carlo.hpp are thin wrappers
// over SweepRunner::shared(), so the whole test suite and every bench driver
// go through this engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "emerge/monte_carlo.hpp"
#include "emerge/stat_engine.hpp"

namespace emergence::core {

/// Construction-time knobs of a SweepRunner.
struct SweepOptions {
  /// Worker threads for the Monte-Carlo shards. 0 means auto: the
  /// EMERGENCE_SWEEP_THREADS environment variable if set, else
  /// std::thread::hardware_concurrency(). The value never affects results,
  /// only wall-clock time.
  std::size_t threads = 0;

  /// Runs per shard. The shard decomposition is a function of the run count
  /// and this value only (never of the thread count). Smaller shards balance
  /// load better; larger shards amortize per-shard setup.
  std::size_t shard_size = 64;
};

/// Exact aggregate of StatRunOutcome over a set of runs. All counters are
/// integers, so merge() is associative and commutative and any sharding of
/// the same runs reproduces the serial tallies bit-identically.
struct RunTally {
  RateStat release;  ///< release-ahead attack successes
  RateStat drop;     ///< drop attack successes
  /// suffix_histogram[s] counts runs whose longest fully-compromised column
  /// suffix had length s (bounded by the path length l, so the vector stays
  /// tiny). The histogram keeps the tally lossless for the suffix metric:
  /// any "restore >= x periods early" statistic derives from it exactly.
  std::vector<std::uint64_t> suffix_histogram;

  void add(const StatRunOutcome& outcome);
  void merge(const RunTally& other);

  std::size_t runs() const { return release.trials(); }
  std::uint64_t suffix_sum() const;
  double mean_suffix() const;
  /// Number of runs with compromised_suffix >= x.
  std::uint64_t suffix_at_least(std::size_t x) const;
};

/// Parallel Monte-Carlo evaluator. Owns a fixed thread pool (created once,
/// reused by every evaluation); safe to share between caller threads — a
/// mutex serializes evaluations on one runner.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// The resolved worker count (>= 1; includes the calling thread).
  std::size_t threads() const { return threads_; }

  /// Plans `kind` for the point and evaluates it analytically and by
  /// Monte Carlo. Same contract as core::evaluate_point.
  EvalResult evaluate_point(SchemeKind kind, const EvalPoint& point);

  /// Monte-Carlo evaluation of an explicit geometry. Same contract as
  /// core::evaluate_fixed_shape.
  EvalResult evaluate_fixed_shape(SchemeKind kind, const PathShape& shape,
                                  const EvalPoint& point);

  /// Runs only the Monte-Carlo phase for an already-planned scheme and
  /// returns the exact tallies. `share_plan` must be set iff kind == kShare.
  RunTally run_tallies(SchemeKind kind, const PathShape& shape,
                       const std::optional<SharePlan>& share_plan,
                       const EvalPoint& point);

  /// Generic shard fan-out: executes `shard_fn(shard)` for every index in
  /// [0, shard_count) across the pool workers and the calling thread. The
  /// claim order depends on the thread count but the decomposition must
  /// not: callers give each shard a self-contained, index-seeded job and
  /// merge per-shard results in ascending index order afterwards — the two
  /// rules that make any client of this method bit-identical at any thread
  /// count. The first exception a shard throws abandons the remaining
  /// shards and is rethrown here once every participant has stopped.
  /// Serializes with other evaluations on this runner. Reused by the
  /// end-to-end runner (e2e_runner.hpp) so full-stack protocol sweeps
  /// inherit the same determinism guarantees as the stat-engine sweeps.
  void run_shards(std::size_t shard_count,
                  const std::function<void(std::size_t shard)>& shard_fn);

  /// Process-wide runner with auto-sized thread pool; what the
  /// evaluate_point / evaluate_fixed_shape free functions use.
  static SweepRunner& shared();

 private:
  class Pool;

  SweepOptions options_;
  std::size_t threads_ = 1;
  std::unique_ptr<Pool> pool_;  ///< null when threads_ == 1
  std::mutex evaluate_mutex_;
};

}  // namespace emergence::core

#include "emerge/monte_carlo.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "emerge/resilience.hpp"

namespace emergence::core {
namespace {

StatEnvironment make_environment(const EvalPoint& point) {
  StatEnvironment env;
  env.population = point.population;
  env.malicious_count = static_cast<std::size_t>(
      std::floor(point.p * static_cast<double>(point.population)));
  env.churn = point.churn;
  return env;
}

void run_monte_carlo(EvalResult& result, SchemeKind kind,
                     const std::optional<SharePlan>& share_plan,
                     const EvalPoint& point) {
  const StatEnvironment env = make_environment(point);
  Rng master(point.seed);
  RateStat release, drop;
  RunningStat suffix;
  for (std::size_t run = 0; run < point.runs; ++run) {
    Rng rng = master.fork();
    StatRunOutcome outcome;
    switch (kind) {
      case SchemeKind::kCentralized:
        outcome = run_centralized_stat(env, rng);
        break;
      case SchemeKind::kDisjoint:
      case SchemeKind::kJoint:
        outcome = run_multipath_stat(kind, result.shape, env, rng);
        break;
      case SchemeKind::kShare:
        outcome = run_share_stat(*share_plan, env, rng);
        break;
    }
    release.add(outcome.release_success);
    drop.add(outcome.drop_success);
    suffix.add(static_cast<double>(outcome.compromised_suffix));
  }
  result.monte_carlo.release_ahead = 1.0 - release.rate();
  result.monte_carlo.drop = 1.0 - drop.rate();
  result.release_stderr = release.stderr_rate();
  result.drop_stderr = drop.stderr_rate();
  result.mean_compromised_suffix = suffix.mean();
}

}  // namespace

EvalResult evaluate_point(SchemeKind kind, const EvalPoint& point) {
  require(point.p >= 0.0 && point.p <= 1.0, "evaluate_point: p out of range");
  EvalResult result;
  result.kind = kind;

  std::optional<SharePlan> share_plan;
  if (kind == SchemeKind::kShare) {
    share_plan =
        plan_share(point.p, point.planner, point.churn, point.alg1_mode);
    result.shape = share_plan->base.shape;
    result.alg1 = share_plan->alg1;
    result.analytic = share_plan->alg1.resilience;
    // Columns 1..l-1 carry n holders; the terminal column only the k slots.
    result.nodes_used =
        share_plan->alg1.n * (result.shape.l - 1) + result.shape.k;
  } else {
    // The sender plans with the no-churn formulas (the paper evaluates churn
    // against parameters chosen for the attack model; see docs/design-notes.md §7).
    const Plan plan = plan_scheme(kind, point.p, point.planner);
    result.shape = plan.shape;
    result.nodes_used = plan.nodes_used;
    result.analytic = point.churn.enabled
                          ? analytic_churn_resilience(kind, point.p,
                                                      plan.shape, point.churn)
                          : plan.resilience;
  }

  run_monte_carlo(result, kind, share_plan, point);
  return result;
}

EvalResult evaluate_fixed_shape(SchemeKind kind, const PathShape& shape,
                                const EvalPoint& point) {
  EvalResult result;
  result.kind = kind;
  result.shape = shape;
  result.nodes_used = shape.holder_count();

  std::optional<SharePlan> share_plan;
  if (kind == SchemeKind::kShare) {
    SharePlan plan;
    plan.base.kind = SchemeKind::kJoint;
    plan.base.shape = shape;
    Alg1Inputs inputs;
    inputs.shape = shape;
    inputs.node_budget = point.planner.node_budget;
    inputs.emerging_time =
        point.churn.enabled ? point.churn.emerging_time : 1.0;
    inputs.mean_lifetime =
        point.churn.enabled ? point.churn.mean_lifetime : 1e9;
    inputs.p = point.p;
    inputs.mode = point.alg1_mode;
    plan.alg1 = run_algorithm1(inputs);
    result.alg1 = plan.alg1;
    result.analytic = plan.alg1.resilience;
    result.nodes_used = plan.alg1.n * (shape.l - 1) + shape.k;
    share_plan = plan;
  } else if (kind == SchemeKind::kCentralized) {
    result.analytic = point.churn.enabled
                          ? centralized_churn_resilience(point.p, point.churn)
                          : analytic_resilience(kind, point.p, shape);
  } else {
    result.analytic =
        point.churn.enabled
            ? analytic_churn_resilience(kind, point.p, shape, point.churn)
            : analytic_resilience(kind, point.p, shape);
  }

  run_monte_carlo(result, kind, share_plan, point);
  return result;
}

}  // namespace emergence::core

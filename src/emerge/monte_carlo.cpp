#include "emerge/monte_carlo.hpp"

#include "emerge/sweep.hpp"

namespace emergence::core {

// Both entry points delegate to the process-wide parallel sweep engine.
// SweepRunner results are a pure function of the EvalPoint (fork-per-run
// seeding, exact integer tallies), so the pool's thread count — auto-sized
// from the hardware — never changes what these return, only how fast.

EvalResult evaluate_point(SchemeKind kind, const EvalPoint& point) {
  return SweepRunner::shared().evaluate_point(kind, point);
}

EvalResult evaluate_fixed_shape(SchemeKind kind, const PathShape& shape,
                                const EvalPoint& point) {
  return SweepRunner::shared().evaluate_fixed_shape(kind, shape, point);
}

}  // namespace emergence::core

#include "emerge/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "emerge/resilience.hpp"

namespace emergence::core {
namespace {

StatEnvironment make_environment(const EvalPoint& point) {
  StatEnvironment env;
  env.population = point.population;
  env.malicious_count = static_cast<std::size_t>(
      std::floor(point.p * static_cast<double>(point.population)));
  env.churn = point.churn;
  return env;
}

StatRunOutcome dispatch_run(SchemeKind kind, const PathShape& shape,
                            const std::optional<SharePlan>& share_plan,
                            const StatEnvironment& env, Rng& rng) {
  switch (kind) {
    case SchemeKind::kCentralized:
      return run_centralized_stat(env, rng);
    case SchemeKind::kDisjoint:
    case SchemeKind::kJoint:
      return run_multipath_stat(kind, shape, env, rng);
    case SchemeKind::kShare:
      return run_share_stat(*share_plan, env, rng);
  }
  return StatRunOutcome{};  // unreachable
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("EMERGENCE_SWEEP_THREADS")) {
      // Strict parse: malformed or negative values fall back to auto rather
      // than wrapping (e.g. "-1" via strtoull would clamp to the cap).
      char* end = nullptr;
      errno = 0;
      const unsigned long long value = std::strtoull(env, &end, 10);
      const bool valid = end != env && *end == '\0' && errno != ERANGE &&
                         std::strchr(env, '-') == nullptr;
      if (valid) requested = static_cast<std::size_t>(value);
    }
  }
  if (requested == 0) requested = std::thread::hardware_concurrency();
  if (requested == 0) requested = 1;
  return std::min<std::size_t>(requested, 256);
}

}  // namespace

void RunTally::add(const StatRunOutcome& outcome) {
  release.add(outcome.release_success);
  drop.add(outcome.drop_success);
  if (outcome.compromised_suffix >= suffix_histogram.size()) {
    suffix_histogram.resize(outcome.compromised_suffix + 1, 0);
  }
  ++suffix_histogram[outcome.compromised_suffix];
}

void RunTally::merge(const RunTally& other) {
  release.merge(other.release);
  drop.merge(other.drop);
  if (other.suffix_histogram.size() > suffix_histogram.size()) {
    suffix_histogram.resize(other.suffix_histogram.size(), 0);
  }
  for (std::size_t s = 0; s < other.suffix_histogram.size(); ++s) {
    suffix_histogram[s] += other.suffix_histogram[s];
  }
}

std::uint64_t RunTally::suffix_sum() const {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < suffix_histogram.size(); ++s) {
    sum += suffix_histogram[s] * static_cast<std::uint64_t>(s);
  }
  return sum;
}

double RunTally::mean_suffix() const {
  if (runs() == 0) return 0.0;
  return static_cast<double>(suffix_sum()) / static_cast<double>(runs());
}

std::uint64_t RunTally::suffix_at_least(std::size_t x) const {
  std::uint64_t count = 0;
  for (std::size_t s = x; s < suffix_histogram.size(); ++s) {
    count += suffix_histogram[s];
  }
  return count;
}

/// Fixed pool of worker threads. Workers sleep until run() publishes a task,
/// execute it to completion (the task loops over an external shard counter),
/// and report back; run() also executes the task on the calling thread, so a
/// runner with T threads uses T-1 pool workers.
class SweepRunner::Pool {
 public:
  explicit Pool(std::size_t worker_count) {
    workers_.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Executes `task` on every pool worker and on the calling thread;
  /// returns once all of them have finished it.
  void run(const std::function<void()>& task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      task_ = &task;
      ++generation_;
      busy_ = workers_.size();
    }
    work_cv_.notify_all();
    task();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return busy_ == 0; });
    task_ = nullptr;
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void()>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
      }
      (*task)();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--busy_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void()>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t busy_ = 0;
  bool stop_ = false;
};

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), threads_(resolve_threads(options.threads)) {
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_ - 1);
}

SweepRunner::~SweepRunner() = default;

SweepRunner& SweepRunner::shared() {
  static SweepRunner runner{SweepOptions{}};
  return runner;
}

void SweepRunner::run_shards(
    std::size_t shard_count,
    const std::function<void(std::size_t shard)>& shard_fn) {
  std::lock_guard<std::mutex> lock(evaluate_mutex_);

  std::atomic<std::size_t> next_shard{0};
  // A shard job can throw (e.g. PreconditionError on a degenerate shape or
  // an exhausted sampler). The task itself must never leak the exception —
  // out of a worker it would std::terminate, out of the calling thread it
  // would unwind this frame while workers still use it — so the first one
  // is captured, the remaining shards are abandoned, and it rethrows below
  // after every participant has stopped.
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto work = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (s >= shard_count) return;
      try {
        shard_fn(s);
      } catch (...) {
        const std::lock_guard<std::mutex> error_lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  if (pool_ && shard_count > 1) {
    pool_->run(work);
  } else {
    work();
  }
  if (error) std::rethrow_exception(error);
}

RunTally SweepRunner::run_tallies(SchemeKind kind, const PathShape& shape,
                                  const std::optional<SharePlan>& share_plan,
                                  const EvalPoint& point) {
  require((kind == SchemeKind::kShare) == share_plan.has_value(),
          "SweepRunner::run_tallies: share_plan iff share scheme");

  const StatEnvironment env = make_environment(point);
  const Rng master(point.seed);
  const std::size_t shard_size = std::max<std::size_t>(1, options_.shard_size);
  const std::size_t shard_count = (point.runs + shard_size - 1) / shard_size;

  // The decomposition into shards depends on (runs, shard_size) only; the
  // thread count decides which worker claims which shard, never the shard
  // boundaries or the per-run streams.
  std::vector<RunTally> tallies(shard_count);
  run_shards(shard_count, [&](std::size_t s) {
    RunTally tally;
    const std::size_t begin = s * shard_size;
    const std::size_t end = std::min(point.runs, begin + shard_size);
    for (std::size_t run = begin; run < end; ++run) {
      Rng rng = master.fork(run);
      tally.add(dispatch_run(kind, shape, share_plan, env, rng));
    }
    tallies[s] = tally;
  });

  // Merge rule: ascending shard index. With today's all-integer tallies any
  // order is exact; the fixed order keeps determinism if a floating-point
  // accumulator joins the tally later.
  RunTally total;
  for (const RunTally& tally : tallies) total.merge(tally);
  return total;
}

namespace {

void fill_monte_carlo(EvalResult& result, const RunTally& tally) {
  result.monte_carlo.release_ahead = 1.0 - tally.release.rate();
  result.monte_carlo.drop = 1.0 - tally.drop.rate();
  result.release_stderr = tally.release.stderr_rate();
  result.drop_stderr = tally.drop.stderr_rate();
  result.mean_compromised_suffix = tally.mean_suffix();
}

}  // namespace

EvalResult SweepRunner::evaluate_point(SchemeKind kind,
                                       const EvalPoint& point) {
  require(point.p >= 0.0 && point.p <= 1.0, "evaluate_point: p out of range");
  EvalResult result;
  result.kind = kind;

  std::optional<SharePlan> share_plan;
  if (kind == SchemeKind::kShare) {
    share_plan =
        plan_share(point.p, point.planner, point.churn, point.alg1_mode);
    result.shape = share_plan->base.shape;
    result.alg1 = share_plan->alg1;
    result.analytic = share_plan->alg1.resilience;
    // Columns 1..l-1 carry n holders; the terminal column only the k slots.
    result.nodes_used =
        share_plan->alg1.n * (result.shape.l - 1) + result.shape.k;
  } else {
    // The sender plans with the no-churn formulas (the paper evaluates churn
    // against parameters chosen for the attack model; see docs/design-notes.md §7).
    const Plan plan = plan_scheme(kind, point.p, point.planner);
    result.shape = plan.shape;
    result.nodes_used = plan.nodes_used;
    result.analytic = point.churn.enabled
                          ? analytic_churn_resilience(kind, point.p,
                                                      plan.shape, point.churn)
                          : plan.resilience;
  }

  fill_monte_carlo(result,
                   run_tallies(kind, result.shape, share_plan, point));
  return result;
}

EvalResult SweepRunner::evaluate_fixed_shape(SchemeKind kind,
                                             const PathShape& shape,
                                             const EvalPoint& point) {
  EvalResult result;
  result.kind = kind;
  result.shape = shape;
  result.nodes_used = shape.holder_count();

  std::optional<SharePlan> share_plan;
  if (kind == SchemeKind::kShare) {
    SharePlan plan;
    plan.base.kind = SchemeKind::kJoint;
    plan.base.shape = shape;
    Alg1Inputs inputs;
    inputs.shape = shape;
    inputs.node_budget = point.planner.node_budget;
    inputs.emerging_time =
        point.churn.enabled ? point.churn.emerging_time : 1.0;
    inputs.mean_lifetime =
        point.churn.enabled ? point.churn.mean_lifetime : 1e9;
    inputs.p = point.p;
    inputs.mode = point.alg1_mode;
    plan.alg1 = run_algorithm1(inputs);
    result.alg1 = plan.alg1;
    result.analytic = plan.alg1.resilience;
    result.nodes_used = plan.alg1.n * (shape.l - 1) + shape.k;
    share_plan = plan;
  } else if (kind == SchemeKind::kCentralized) {
    result.analytic = point.churn.enabled
                          ? centralized_churn_resilience(point.p, point.churn)
                          : analytic_resilience(kind, point.p, shape);
  } else {
    result.analytic =
        point.churn.enabled
            ? analytic_churn_resilience(kind, point.p, shape, point.churn)
            : analytic_resilience(kind, point.p, shape);
  }

  fill_monte_carlo(result, run_tallies(kind, shape, share_plan, point));
  return result;
}

}  // namespace emergence::core

#include "emerge/sybil.hpp"

#include <cmath>

#include "common/error.hpp"

namespace emergence::core {

double SybilAttack::achieved_p() const {
  if (total_nodes() == 0) return 0.0;
  return static_cast<double>(sybil_identities) /
         static_cast<double>(total_nodes());
}

std::size_t sybils_needed(std::size_t honest_nodes, double p) {
  require(p >= 0.0 && p < 1.0, "sybils_needed: p must be in [0, 1)");
  if (p == 0.0) return 0;
  const double s =
      std::ceil(static_cast<double>(honest_nodes) * p / (1.0 - p));
  return static_cast<std::size_t>(s);
}

double sybil_cost_factor(double p) {
  require(p >= 0.0 && p < 1.0, "sybil_cost_factor: p must be in [0, 1)");
  return p / (1.0 - p);
}

double full_eclipse_probability(std::size_t table_size, double p) {
  require(p >= 0.0 && p <= 1.0, "full_eclipse_probability: p out of range");
  return std::pow(p, static_cast<double>(table_size));
}

}  // namespace emergence::core

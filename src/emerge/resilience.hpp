// Closed-form attack-resilience models (paper eqs. 1-3 and their
// churn-extended counterparts).
//
// Notation: p = fraction of malicious DHT nodes, k = replication factor,
// l = path length, th = T/l the holding period, λ = mean node lifetime,
// α = T/λ.
//
// No-churn (paper §III):
//   centralized:  Rr = Rd = 1 - p
//   disjoint:     Rr = 1 - (1-(1-p)^k)^l          (eq. 1)
//                 Rd = 1 - (1-(1-p)^l)^k          (eq. 2)
//   joint:        Rr as eq. 1,  Rd = (1-p^k)^l    (eq. 3)
//
// Churn extension (exposure model of §III-D): a holder slot is a renewal
// process of occupants with Exp(λ) lifetimes; every occupant of a slot
// storing a key learns it. Over a window w the expected replacements are
// w/λ and P[no malicious ever-occupant] = (1-p) e^{-(w/λ) p} exactly
// (E[q^Poisson(μ)] = e^{-μ(1-q)}). In-transit onions are not repaired by
// replication, so a slot delivers its onion only if the occupant at arrival
// is honest and survives the holding period: (1-p) e^{-th/λ}.
#pragma once

#include "emerge/types.hpp"

namespace emergence::core {

// -- paper equations (no churn) ----------------------------------------------

/// Rr of the multipath schemes, eq. 1.
double multipath_release_resilience(double p, const PathShape& shape);

/// Rd of the node-disjoint scheme, eq. 2.
double disjoint_drop_resilience(double p, const PathShape& shape);

/// Rd of the node-joint scheme, eq. 3.
double joint_drop_resilience(double p, const PathShape& shape);

/// Both metrics for a scheme without churn. For kShare use Algorithm 1
/// (algorithm1.hpp) instead; passing kShare here throws.
Resilience analytic_resilience(SchemeKind kind, double p,
                               const PathShape& shape);

// -- churn-extended models ---------------------------------------------------

/// Centralized scheme under churn: the single logical holder slot is
/// re-occupied on every death, each occupant malicious w.p. p.
Resilience centralized_churn_resilience(double p, const ChurnSpec& churn);

/// Disjoint / joint schemes under churn (exposure model above).
Resilience disjoint_churn_resilience(double p, const PathShape& shape,
                                     const ChurnSpec& churn);
Resilience joint_churn_resilience(double p, const PathShape& shape,
                                  const ChurnSpec& churn);

/// Dispatcher over the three pattern schemes (kShare -> Algorithm 1).
Resilience analytic_churn_resilience(SchemeKind kind, double p,
                                     const PathShape& shape,
                                     const ChurnSpec& churn);

/// Lemma 1: for the node-joint scheme, Rr + Rd > 1 whenever p < 0.5.
/// Exposed for the property tests.
bool lemma1_holds(double p, const PathShape& shape);

}  // namespace emergence::core

// Experiment driver: plans a scheme for an evaluation point, computes the
// analytic resilience and estimates it by Monte Carlo, averaging over many
// independent runs exactly as the paper does ("run each experiment for 1000
// times to take the average").
//
// The Monte-Carlo phase executes on the parallel sweep engine
// (emerge/sweep.hpp): runs are seeded per-index with Rng::fork(i) and
// sharded across a thread pool, with results bit-identical at any thread
// count. The free functions here wrap SweepRunner::shared(); construct a
// SweepRunner directly to control the thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "emerge/algorithm1.hpp"
#include "emerge/planner.hpp"
#include "emerge/stat_engine.hpp"
#include "emerge/types.hpp"

namespace emergence::core {

/// One point of a parameter sweep.
struct EvalPoint {
  double p = 0.0;                ///< malicious node rate
  std::size_t population = 10000;  ///< DHT size
  std::size_t runs = 1000;       ///< Monte-Carlo repetitions
  ChurnSpec churn;               ///< disabled reproduces Fig. 6
  PlannerConfig planner;         ///< node budget etc.
  std::uint64_t seed = 0x5eed;   ///< Monte-Carlo seed
  Alg1Mode alg1_mode = Alg1Mode::kStochasticDeaths;
};

/// Result of evaluating one scheme at one point.
struct EvalResult {
  SchemeKind kind = SchemeKind::kCentralized;
  PathShape shape;                 ///< geometry used
  std::size_t nodes_used = 1;      ///< C (Fig. 6(b)/(d))
  std::optional<Alg1Plan> alg1;    ///< share scheme only
  Resilience analytic;             ///< model prediction
  Resilience monte_carlo;          ///< simulated estimate
  double release_stderr = 0.0;
  double drop_stderr = 0.0;
  double mean_compromised_suffix = 0.0;

  double R_analytic() const { return analytic.combined(); }
  double R_mc() const { return monte_carlo.combined(); }
};

/// Plans `kind` for the point (no-churn planning, like the paper) and
/// evaluates it analytically and by Monte Carlo.
EvalResult evaluate_point(SchemeKind kind, const EvalPoint& point);

/// Monte-Carlo-only evaluation of an explicit geometry (used by tests that
/// pin (k, l) instead of letting the planner choose).
EvalResult evaluate_fixed_shape(SchemeKind kind, const PathShape& shape,
                                const EvalPoint& point);

}  // namespace emergence::core

#include "emerge/stat_engine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace emergence::core {
namespace {

/// One occupancy segment of a holder slot: [start, end) with a malicious
/// flag. The last segment of a timeline extends to the simulation horizon.
struct Segment {
  double start;
  double end;
  bool malicious;
};

/// Renewal timeline of one holder slot up to `horizon`. The first occupant
/// comes from the population (hypergeometric draw); replacements are fresh
/// joins with malicious probability p.
struct SlotTimeline {
  std::vector<Segment> segments;

  bool any_malicious_before(double t) const {
    for (const Segment& s : segments) {
      if (s.start > t) break;
      if (s.malicious) return true;
    }
    return false;
  }

  const Segment& occupant_at(double t) const {
    for (const Segment& s : segments) {
      if (t >= s.start && t < s.end) return s;
    }
    return segments.back();
  }
};

SlotTimeline simulate_slot(double horizon, MaliciousSampler& sampler,
                           const ChurnSpec& churn, Rng& rng) {
  SlotTimeline timeline;
  bool malicious = sampler.draw();
  if (!churn.enabled) {
    timeline.segments.push_back(Segment{0.0, horizon, malicious});
    return timeline;
  }
  double t = 0.0;
  for (;;) {
    // Residual lifetime of the current occupant (memoryless).
    const double death = t + rng.exponential(churn.mean_lifetime);
    if (death >= horizon) {
      timeline.segments.push_back(Segment{t, horizon, malicious});
      return timeline;
    }
    timeline.segments.push_back(Segment{t, death, malicious});
    t = death;
    malicious = sampler.draw_fresh();
  }
}

/// True when there is an instant <= t at which the occupants of all k slots
/// are simultaneously malicious (the adversary can then destroy every stored
/// replica of a column key, making it unrecoverable).
bool all_malicious_instant(const std::vector<SlotTimeline>& slots, double t) {
  // Cheap pre-check: every slot needs some malicious occupant before t.
  for (const SlotTimeline& s : slots) {
    if (!s.any_malicious_before(t)) return false;
  }
  // Sweep the merged segment boundaries.
  std::vector<double> boundaries;
  for (const SlotTimeline& s : slots) {
    for (const Segment& seg : s.segments) {
      if (seg.start <= t) boundaries.push_back(seg.start);
    }
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  for (double b : boundaries) {
    bool all = true;
    for (const SlotTimeline& s : slots) {
      if (!s.occupant_at(b).malicious) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace

StatRunOutcome run_centralized_stat(const StatEnvironment& env, Rng& rng) {
  MaliciousSampler sampler(env.population, env.malicious_count, rng);
  const double horizon = env.churn.enabled ? env.churn.emerging_time : 1.0;
  const ChurnSpec churn = env.churn;
  const SlotTimeline slot = simulate_slot(horizon, sampler, churn, rng);
  // Any ever-occupant is exposed to the key (replication repairs the stored
  // key onto replacements) and can both leak it and destroy it.
  const bool compromised = slot.any_malicious_before(horizon);
  StatRunOutcome out;
  out.release_success = compromised;
  out.drop_success = compromised;
  out.compromised_suffix = compromised ? 1 : 0;
  return out;
}

StatRunOutcome run_multipath_stat(SchemeKind kind, const PathShape& shape,
                                  const StatEnvironment& env, Rng& rng) {
  require(kind == SchemeKind::kDisjoint || kind == SchemeKind::kJoint,
          "run_multipath_stat: disjoint or joint only");
  const std::size_t k = shape.k;
  const std::size_t l = shape.l;
  require(k >= 1 && l >= 1, "run_multipath_stat: degenerate shape");

  MaliciousSampler sampler(env.population, env.malicious_count, rng);
  const double T = env.churn.enabled ? env.churn.emerging_time : 1.0;
  const double th = T / static_cast<double>(l);

  std::vector<bool> column_compromised(l);  // release-ahead, per column
  std::vector<bool> key_destroyed(l);       // all-concurrent-malicious drop
  std::vector<bool> column_forwards(l);     // joint: >=1 slot delivers
  // disjoint: per-path delivery chain.
  std::vector<bool> path_alive(k, true);

  for (std::size_t j = 1; j <= l; ++j) {
    const double arrive = static_cast<double>(j - 1) * th;
    const double forward = static_cast<double>(j) * th;

    std::vector<SlotTimeline> slots;
    slots.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
      slots.push_back(simulate_slot(forward, sampler, env.churn, rng));

    // Release-ahead: layer key K_j is stored on each column-j slot from ts
    // until its use at `arrive`; every occupant in that window learns it.
    bool compromised = false;
    for (const SlotTimeline& s : slots) {
      if (s.any_malicious_before(arrive)) {
        compromised = true;
        break;
      }
    }
    column_compromised[j - 1] = compromised;

    // Drop by key destruction: all concurrent occupants malicious at some
    // instant before the key is used.
    key_destroyed[j - 1] = all_malicious_instant(slots, arrive);

    // Package delivery: the occupant at onion arrival must be honest and
    // survive the holding period (in-transit packages are not repaired).
    bool any_delivers = false;
    for (std::size_t i = 0; i < k; ++i) {
      const Segment& occ = slots[i].occupant_at(arrive);
      const bool delivers = !occ.malicious && occ.end >= forward;
      if (delivers) any_delivers = true;
      if (kind == SchemeKind::kDisjoint && !delivers) path_alive[i] = false;
    }
    column_forwards[j - 1] = any_delivers;
  }

  StatRunOutcome out;

  // Release-ahead success: every column's key collected (paper's model; the
  // Monte-Carlo and eqs. 1/churn-extensions agree on this event).
  out.release_success = std::all_of(column_compromised.begin(),
                                    column_compromised.end(),
                                    [](bool b) { return b; });

  // Longest fully-compromised suffix (ablation semantics).
  std::size_t suffix = 0;
  for (std::size_t j = l; j >= 1; --j) {
    if (!column_compromised[j - 1]) break;
    ++suffix;
    if (j == 1) break;
  }
  out.compromised_suffix = suffix;

  // Drop success.
  const bool any_key_destroyed =
      std::any_of(key_destroyed.begin(), key_destroyed.end(),
                  [](bool b) { return b; });
  if (kind == SchemeKind::kDisjoint) {
    const bool all_paths_severed =
        std::none_of(path_alive.begin(), path_alive.end(),
                     [](bool b) { return b; });
    out.drop_success = any_key_destroyed || all_paths_severed;
  } else {
    const bool all_columns_forward =
        std::all_of(column_forwards.begin(), column_forwards.end(),
                    [](bool b) { return b; });
    out.drop_success = any_key_destroyed || !all_columns_forward;
  }
  return out;
}

StatRunOutcome run_share_stat(const SharePlan& plan,
                              const StatEnvironment& env, Rng& rng) {
  const std::size_t k = plan.base.shape.k;
  const std::size_t l = plan.base.shape.l;
  const std::size_t n = plan.alg1.n;
  require(n >= k, "run_share_stat: n must be >= k (onion slots per column)");

  MaliciousSampler sampler(env.population, env.malicious_count, rng);
  const double T = env.churn.enabled ? env.churn.emerging_time : 1.0;
  const double th = T / static_cast<double>(l);
  const double pdie =
      env.churn.enabled ? -std::expm1(-th / env.churn.mean_lifetime) : 0.0;

  // Columns 1..l-1 have n holders (k onion slots + n-k share carriers);
  // column l has only the k onion slots (Fig. 5: no extra holder in the
  // terminal column).
  //
  // Release semantics (cross-validated against the full protocol stack by
  // emerge/e2e_runner.*): reconstructing the keys of *one* column
  // compromises every later column. Each column-c envelope carries that
  // holder's share of every column-(c+1) key, so m malicious carriers in a
  // column the packages reached open their own envelopes, combine m shares
  // per next-column key, and unravel the rest of the captured onion to the
  // terminal payload — the attack engine's fixpoint cascade in
  // adversary.cpp, and the same any-column accumulation Algorithm 1's
  // analytic pr uses. The earliest such column decides how many holding
  // periods before tr the coalition first holds the secret.
  StatRunOutcome out;
  bool release_flow = true;  // shares still flowing (covert attack)
  bool drop_flow = true;     // protocol alive under dropping attack
  std::size_t restore_margin = 0;  // holding periods before tr; 0 = never

  std::size_t prev_alive = 0;       // carriers surviving their hold
  std::size_t prev_functional = 0;  // honest & alive & keyed carriers

  for (std::size_t col = 1; col <= l; ++col) {
    const std::size_t holders = (col == l) ? k : n;

    // Key availability at this column: who can reconstruct the column key
    // from the shares carried by column col-1?
    bool col_recon_release;  // honest holders reconstruct (covert attack)
    bool col_recon_drop;     // honest holders reconstruct (dropping attack)
    if (col == 1) {
      // Keys are delivered directly by the sender at ts.
      col_recon_release = true;
      col_recon_drop = true;
    } else {
      const std::size_t m = plan.alg1.threshold_for_column(col);
      col_recon_release = release_flow && prev_alive >= m;
      col_recon_drop = drop_flow && prev_functional >= m;
    }

    std::size_t malicious = 0, alive_cnt = 0, functional = 0;
    std::size_t onion_malicious = 0, onion_functional = 0;
    for (std::size_t i = 0; i < holders; ++i) {
      const bool mal = sampler.draw();
      const bool survives = !(pdie > 0.0 && rng.chance(pdie));
      if (mal) ++malicious;
      if (survives) ++alive_cnt;
      const bool func = !mal && survives && col_recon_drop;
      if (func) ++functional;
      if (i < k) {  // the onion slots are the first k holders of the column
        if (mal) ++onion_malicious;
        if (func) ++onion_functional;
      }
    }

    // Flow updates affecting the *next* column.
    release_flow = release_flow && col_recon_release;
    drop_flow = drop_flow && col_recon_drop;

    // Cascade: m_{col+1} malicious carriers in a reached column reconstruct
    // the next column's keys and the whole remaining onion at
    // package-arrival time ts + (col-1)*th = l - col + 1 periods before tr.
    if (restore_margin == 0 && release_flow && col < l &&
        malicious >= plan.alg1.threshold_for_column(col + 1)) {
      restore_margin = l - col + 1;
    }
    // A malicious terminal onion slot sees the payload one period early
    // (the unavoidable leak the strict Rr metric excludes; design-notes §2).
    if (restore_margin == 0 && col == l && release_flow &&
        onion_malicious >= 1) {
      restore_margin = 1;
    }

    if (col == l) {
      // Receiver needs at least one functional terminal onion slot.
      const bool delivered = col_recon_drop && onion_functional >= 1;
      out.drop_success = !delivered;
    }

    prev_alive = alive_cnt;
    prev_functional = functional;
  }

  // Strict Rr: the pure terminal-slot leak (margin 1 with no cascade) does
  // not count as a successful release-ahead attack.
  out.release_success = restore_margin >= 2;
  out.compromised_suffix = restore_margin;
  return out;
}

}  // namespace emergence::core

// The adversary: a coalition controlling a fraction of DHT nodes.
//
// Malicious holders report everything they see (layer keys, Shamir shares,
// onion packages, peeled secrets) to a shared knowledge base with capture
// timestamps. The release-ahead engine then mounts the *actual* attack: it
// opens every envelope it has a key for, reconstructs layer keys from
// gathered shares, and iterates to a fixpoint -- if the secret payload falls
// out, the attack succeeded with real cryptography, not by assumption.
//
// Attack modes (paper §II-B):
//   * kCovert (release-ahead): malicious holders forward normally and only
//     exfiltrate copies, staying undetected.
//   * kDropping (drop attack): malicious holders additionally refuse to
//     forward packages and shares.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"
#include "crypto/shamir.hpp"
#include "dht/node_id.hpp"
#include "emerge/onion.hpp"
#include "sim/simulator.hpp"

namespace emergence::core {

/// Behavior of malicious holders.
enum class AttackMode {
  kCovert,    ///< copy and forward (release-ahead attack)
  kDropping,  ///< copy and drop (drop attack)
};

/// Identifies one layer key. Onion-path holders of a column share the
/// column key (holder == kSharedHolder); extra share-carriers own
/// individual keys.
struct LayerKeyId {
  std::uint16_t column = 0;
  std::uint16_t holder = 0;

  static constexpr std::uint16_t kSharedHolder = 0xffff;

  bool operator==(const LayerKeyId&) const = default;
  bool operator<(const LayerKeyId& o) const {
    return column != o.column ? column < o.column : holder < o.holder;
  }
};

/// Coalition membership set, shareable between Adversary instances.
using Coalition = std::unordered_set<dht::NodeId, dht::NodeIdHash>;

/// Adversary coalition state and attack engine.
class Adversary {
 public:
  struct Config {
    AttackMode mode = AttackMode::kCovert;
    /// Holders 0..k-1 share the column key (pre-assigned-key schemes).
    /// Pass 0 for the share scheme: every holder owns an individual key.
    std::size_t onion_slots_k = 1;
    std::size_t share_threshold_m = 1;  ///< Shamir threshold (share scheme)
    crypto::CipherBackend backend = crypto::CipherBackend::kChaCha20;
    /// Shared coalition membership. Null (the default) gives this adversary
    /// a private set — the historical behavior. Session fleets pass one
    /// shared set so that marking a coalition of tens of thousands of
    /// nodes is paid once per world, not once per session; the per-session
    /// *knowledge* (keys, shares, packages) stays private either way,
    /// because concurrent sessions reuse LayerKeyId coordinates.
    std::shared_ptr<Coalition> coalition = nullptr;
  };

  explicit Adversary(Config config)
      : config_(std::move(config)),
        malicious_(config_.coalition ? config_.coalition
                                     : std::make_shared<Coalition>()) {}

  // -- coalition membership --------------------------------------------------

  void mark_malicious(const dht::NodeId& node) { malicious_->insert(node); }
  bool is_malicious(const dht::NodeId& node) const {
    return malicious_->count(node) > 0;
  }
  std::size_t coalition_size() const { return malicious_->size(); }
  AttackMode mode() const { return config_.mode; }
  void set_mode(AttackMode mode) { config_.mode = mode; }

  // -- observations from malicious holders ------------------------------------

  void observe_key(const LayerKeyId& id, const crypto::SymmetricKey& key,
                   sim::Time when);
  void observe_share(const LayerKeyId& id, const crypto::Share& share,
                     sim::Time when);
  void observe_package(BytesView serialized_onion, sim::Time when);
  /// A malicious terminal holder saw the peeled secret directly.
  void observe_secret(BytesView secret, sim::Time when);

  // -- the attack --------------------------------------------------------------

  /// Runs the restore engine over everything captured so far. Returns the
  /// secret when reconstruction succeeds. Records the first success time.
  std::optional<Bytes> attempt_restore(sim::Time now);

  /// Earliest virtual time at which the adversary possessed the secret
  /// (via reconstruction or a terminal-holder capture).
  std::optional<sim::Time> earliest_secret_time() const {
    return earliest_secret_;
  }

  /// Number of layer keys currently known (captured or reconstructed).
  std::size_t known_keys() const { return keys_.size(); }
  std::size_t captured_packages() const { return packages_.size(); }
  std::size_t captured_shares() const;

 private:
  bool try_reconstruct_keys();

  Config config_;
  std::shared_ptr<Coalition> malicious_;

  std::map<LayerKeyId, crypto::SymmetricKey> keys_;
  std::map<LayerKeyId, std::vector<crypto::Share>> shares_;
  std::vector<Bytes> packages_;
  std::optional<Bytes> secret_;
  std::optional<sim::Time> earliest_secret_;
};

}  // namespace emergence::core

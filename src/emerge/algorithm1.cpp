#include "emerge/algorithm1.hpp"

#include <cmath>

#include "common/binomial.hpp"
#include "common/error.hpp"

namespace emergence::core {

std::string to_string(Alg1Mode mode) {
  switch (mode) {
    case Alg1Mode::kAsPrinted:
      return "as-printed";
    case Alg1Mode::kIndependentColumns:
      return "independent";
    case Alg1Mode::kStochasticDeaths:
      return "stochastic";
  }
  return "unknown";
}

std::size_t Alg1Plan::threshold_for_column(std::size_t c) const {
  for (const Alg1Column& col : columns) {
    if (col.column == c) return col.m;
  }
  // Column 1 (keys delivered directly) or degenerate plans: threshold 1.
  return 1;
}

Alg1Plan run_algorithm1(const Alg1Inputs& inputs) {
  const std::size_t l = inputs.shape.l;
  const std::size_t k = inputs.shape.k;
  require(l >= 1 && k >= 1, "run_algorithm1: k and l must be positive");
  require(inputs.node_budget >= l,
          "run_algorithm1: need at least one node per column");
  require(inputs.p >= 0.0 && inputs.p <= 1.0,
          "run_algorithm1: p outside [0,1]");
  require(inputs.mean_lifetime > 0.0,
          "run_algorithm1: mean lifetime must be positive");

  Alg1Plan plan;
  // Line 1: uniform node assignment along the path.
  plan.n = inputs.node_budget / l;
  // Line 2: death probability within one holding period th = T/l, under the
  // exponential decay model pdead = 1 - e^{-th/λ}.
  plan.pdead = -std::expm1(-inputs.emerging_time /
                           (inputs.mean_lifetime * static_cast<double>(l)));
  // Line 3: expected dead shares per column.
  plan.d = static_cast<std::size_t>(
      std::floor(plan.pdead * static_cast<double>(plan.n)));
  if (plan.d >= plan.n) plan.d = plan.n - 1;  // keep >=1 live share slot

  const std::size_t n = plan.n;
  const std::size_t alive = n - plan.d;
  const bool stochastic = inputs.mode == Alg1Mode::kStochasticDeaths;

  // Tails are identical for every column (n, d, p are uniform), so compute
  // the two tail tables once.
  const std::vector<double> release_tails = binom_tail_table(n, inputs.p);
  const std::vector<double> drop_tails = binom_tail_table(alive, inputs.p);
  // Stochastic mode: an honest-and-alive share carrier survives its holding
  // period with probability (1-p) e^{-th/λ}; the column key is droppable
  // when fewer than m such carriers remain.
  const double honest_alive_rate = (1.0 - inputs.p) * (1.0 - plan.pdead);
  const std::vector<double> honest_alive_tails =
      binom_tail_table(n, honest_alive_rate);

  // Lines 4-6.
  double pr = inputs.p;
  double pd = inputs.p;
  std::vector<double> pr_record{pr};
  std::vector<double> pd_record{pd};

  // Lines 7-13: per-column threshold selection and accumulation.
  for (std::size_t column = 2; column <= l; ++column) {
    std::size_t best_m = 1;
    double best_gap = 2.0;
    double best_release = 1.0;
    double best_drop = 1.0;
    for (std::size_t m = 1; m <= n; ++m) {
      const double release_tail = release_tails[std::min(m, n + 1)];
      // Drop: honest-alive shares < m.
      double drop_tail;
      if (stochastic) {
        drop_tail = 1.0 - honest_alive_tails[m];  // P[HA <= m-1]
      } else if (m > alive) {
        drop_tail = 1.0;  // fewer than m shares survive even if all honest
      } else {
        // As printed: exactly d shares die; malicious survivors withhold.
        const std::size_t need = alive - m + 1;
        drop_tail = drop_tails[need];
      }
      const double gap = std::fabs(release_tail - drop_tail);
      if (gap < best_gap) {
        best_gap = gap;
        best_m = m;
        best_release = release_tail;
        best_drop = drop_tail;
      }
    }

    // Lines 9-11: cumulative accumulation, as printed.
    pr = 1.0 - (1.0 - pr) * (1.0 - best_release);
    pd = 1.0 - (1.0 - pd) * (1.0 - best_drop);

    Alg1Column col;
    col.column = column;
    col.m = best_m;
    col.n = n;
    col.release_tail = best_release;
    col.drop_tail = best_drop;
    col.pr = pr;
    col.pd = pd;
    plan.columns.push_back(col);

    pr_record.push_back(inputs.mode == Alg1Mode::kAsPrinted ? pr
                                                            : best_release);
    pd_record.push_back(inputs.mode == Alg1Mode::kAsPrinted ? pd : best_drop);
  }

  if (stochastic) {
    // Exact independent-column combine. Release: the adversary must capture
    // every column key -- column 1 via a malicious onion slot
    // (1-(1-p)^k), later columns via m-of-n malicious carriers. Drop: every
    // column must reconstruct, and at least one of the k terminal slots must
    // survive honestly to deliver at tr.
    double release_success = 1.0 - std::pow(1.0 - inputs.p,
                                            static_cast<double>(k));
    double rd = 1.0;
    for (std::size_t i = 1; i < pr_record.size(); ++i) {
      release_success *= pr_record[i];
      rd *= 1.0 - pd_record[i];
    }
    rd *= 1.0 - std::pow(1.0 - honest_alive_rate, static_cast<double>(k));
    plan.resilience.release_ahead = 1.0 - release_success;
    plan.resilience.drop = rd;
    return plan;
  }

  // Lines 14-18: combine across the k onion replicas.
  double release_success = 1.0;  // Π (1-(1-Pr(i))^k)
  double rd = 1.0;               // Π (1-Pd(i)^k)
  for (std::size_t i = 0; i < pr_record.size(); ++i) {
    const double col_release =
        1.0 - std::pow(1.0 - pr_record[i], static_cast<double>(k));
    release_success *= col_release;
    rd *= 1.0 - std::pow(pd_record[i], static_cast<double>(k));
  }
  plan.resilience.release_ahead = 1.0 - release_success;
  plan.resilience.drop = rd;
  return plan;
}

}  // namespace emergence::core

// Shared vocabulary types for the self-emerging key routing schemes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace emergence::core {

/// The four routing schemes of the paper (§III-A..D).
enum class SchemeKind : std::uint8_t {
  kCentralized,  ///< single holder for the whole emerging period
  kDisjoint,     ///< k node-disjoint onion paths of length l
  kJoint,        ///< node-joint multipath (full bipartite between columns)
  kShare,        ///< key-share routing (Shamir shares travel with the onion)
};

std::string to_string(SchemeKind kind);

/// Geometry of a multipath scheme: k replicated paths, l holders per path.
/// The holding period is th = T / l.
struct PathShape {
  std::size_t k = 1;  ///< replication factor (number of paths / slots per column)
  std::size_t l = 1;  ///< path length (number of columns)

  std::size_t holder_count() const { return k * l; }
};

/// Resilience pair: release-ahead attack resilience Rr and drop attack
/// resilience Rd; R = min(Rr, Rd) is what the paper plots when it sets
/// Rr = Rd.
struct Resilience {
  double release_ahead = 1.0;  ///< Rr
  double drop = 1.0;           ///< Rd

  double combined() const {
    return release_ahead < drop ? release_ahead : drop;
  }
};

/// Churn environment: exponential node lifetimes with mean `mean_lifetime`;
/// the emerging period is T = alpha * mean_lifetime (the paper sweeps alpha).
struct ChurnSpec {
  bool enabled = false;
  double mean_lifetime = 1.0;  ///< λ in arbitrary time units
  double emerging_time = 1.0;  ///< T in the same units

  double alpha() const { return emerging_time / mean_lifetime; }

  static ChurnSpec none() { return ChurnSpec{}; }
  static ChurnSpec with_alpha(double alpha) {
    return ChurnSpec{true, 1.0, alpha};
  }
};

}  // namespace emergence::core

// Algorithm 1 of the paper: planning the key-share routing scheme.
//
// Inputs: the (k, l) geometry chosen by the node-joint planner, the node
// budget N, the emerging time T, the mean node lifetime λ and the malicious
// rate p. Outputs: the per-column Shamir (m, n) parameters and the
// analytical resilience pair (Rr, Rd).
//
// Derivation as printed in the paper:
//   n      = ⌊N / l⌋                         shares per column
//   pdead  = 1 - e^{-T/(λ l)}                P[a share carrier dies in th]
//   d      = ⌊pdead · n⌋                     expected dead shares per column
//   per column c in [2, l]:
//     choose m ∈ [1, n] minimizing
//       | P[Binom(n,p) ≥ m]  -  P[Binom(n-d,p) ≥ n-d-m+1] |
//     (release tail: adversary gathers m of n shares;
//      drop tail: malicious carriers ≥ n-d-m+1 of the n-d alive shares
//      leave fewer than m honest-alive shares)
//     pr ← 1-(1-pr)(1-release_tail);  pd ← 1-(1-pd)(1-drop_tail)
//   combine: Rr = 1 - Π_c (1-(1-Pr(c))^k),  Rd = Π_c (1-Pd(c)^k)
//
// The paper accumulates pr/pd cumulatively along the path (an adversary that
// failed at earlier columns gets fresh chances downstream). We implement
// that verbatim (Mode::kAsPrinted) plus two variants:
//   * kIndependentColumns: per-column probabilities without accumulation;
//   * kStochasticDeaths: deaths are Binomial(n, pdead) per column instead of
//     the deterministic d = ⌊pdead n⌋ of line 3. The printed model ignores
//     death variance, which overestimates drop resilience whenever n is
//     small; this mode computes the drop tail exactly as
//     P[Binom(n, (1-p) e^{-th/λ}) < m] (honest-and-alive shares short of the
//     threshold) and combines columns as independent events. The planner
//     uses this mode operationally; the ablation bench quantifies the gap.
#pragma once

#include <cstddef>
#include <vector>

#include "emerge/types.hpp"

namespace emergence::core {

/// Accumulation mode for the per-column attack probabilities.
enum class Alg1Mode {
  kAsPrinted,           ///< cumulative pr/pd, exactly as in the paper
  kIndependentColumns,  ///< per-column probabilities without accumulation
  kStochasticDeaths,    ///< exact Binomial deaths; operational default
};

std::string to_string(Alg1Mode mode);

/// Inputs to Algorithm 1.
struct Alg1Inputs {
  PathShape shape;            ///< k and l from the node-joint planner
  std::size_t node_budget = 0;  ///< N, total nodes available for the paths
  double emerging_time = 1.0;   ///< T
  double mean_lifetime = 1.0;   ///< λ
  double p = 0.0;               ///< node malicious rate
  Alg1Mode mode = Alg1Mode::kAsPrinted;
};

/// Per-column plan entry.
struct Alg1Column {
  std::size_t column = 0;  ///< 2-based like the paper's loop (column 1 has no shares)
  std::size_t m = 1;       ///< Shamir threshold
  std::size_t n = 1;       ///< shares per column
  double release_tail = 0.0;  ///< P[adversary reconstructs this column's key]
  double drop_tail = 0.0;     ///< P[honest holders cannot reconstruct]
  double pr = 0.0;            ///< accumulated release probability (as recorded)
  double pd = 0.0;            ///< accumulated drop probability
};

/// Output of Algorithm 1.
struct Alg1Plan {
  std::size_t n = 0;      ///< shares per column
  std::size_t d = 0;      ///< expected dead shares per column
  double pdead = 0.0;     ///< per-holding-period death probability
  std::vector<Alg1Column> columns;
  Resilience resilience;  ///< analytic Rr / Rd

  /// Threshold for column index c (2..l); columns share one threshold when
  /// n and d are uniform, but the API is per-column like the paper's MN set.
  std::size_t threshold_for_column(std::size_t c) const;
};

/// Runs Algorithm 1. Requires shape.l >= 1 and node_budget >= shape.l
/// (at least one share per column).
Alg1Plan run_algorithm1(const Alg1Inputs& inputs);

}  // namespace emergence::core

#include "emerge/planner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "emerge/resilience.hpp"

namespace emergence::core {
namespace {

/// Evaluates min(Rr, Rd) for one geometry.
double score(SchemeKind kind, double p, const PathShape& shape) {
  return analytic_resilience(kind, p, shape).combined();
}

/// For a fixed k, finds the best l in [1, l_max]. Rr is nondecreasing and Rd
/// nonincreasing in l, so min(Rr, Rd) peaks where they cross; binary-search
/// the sign change of Rr - Rd and probe the neighborhood.
std::size_t best_l_for_k(SchemeKind kind, double p, std::size_t k,
                         std::size_t l_max) {
  auto diff = [&](std::size_t l) {
    const Resilience r = analytic_resilience(kind, p, PathShape{k, l});
    return r.release_ahead - r.drop;
  };
  std::size_t lo = 1, hi = l_max;
  if (diff(hi) <= 0.0) return hi;  // Rr never catches up: take the largest l
  if (diff(lo) >= 0.0) return lo;  // already past the crossing at l = 1
  // Invariant: diff(lo) < 0 <= diff(hi).
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (diff(mid) < 0.0)
      lo = mid;
    else
      hi = mid;
  }
  // The optimum is lo or hi; pick the better score.
  return score(kind, p, PathShape{k, lo}) >= score(kind, p, PathShape{k, hi})
             ? lo
             : hi;
}

/// Smallest l in [1, l_max] whose score reaches `target` for this k, or 0
/// when none does. Uses the monotone rising side: below the Rr/Rd crossing
/// the score equals Rr, which is nondecreasing in l.
std::size_t cheapest_l_reaching(SchemeKind kind, double p, std::size_t k,
                                std::size_t l_max, double target) {
  auto rr = [&](std::size_t l) {
    return analytic_resilience(kind, p, PathShape{k, l}).release_ahead;
  };
  if (score(kind, p, PathShape{k, 1}) >= target) return 1;
  if (rr(l_max) < target) return 0;
  // Binary search the smallest l with Rr(l) >= target.
  std::size_t lo = 1, hi = l_max;  // rr(lo) < target <= rr(hi)
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (rr(mid) < target)
      lo = mid;
    else
      hi = mid;
  }
  // Rd is nonincreasing in l, so if the score fails here it fails for every
  // feasible l of this k.
  return score(kind, p, PathShape{k, hi}) >= target ? hi : 0;
}

Plan plan_multipath(SchemeKind kind, double p, const PlannerConfig& config) {
  require(config.node_budget >= 1, "planner: empty node budget");
  const std::size_t k_cap = std::min(config.max_k, config.node_budget);

  // Pass 1: the best achievable min(Rr, Rd) over the budget.
  double best_score = score(kind, p, PathShape{1, 1});
  for (std::size_t k = 1; k <= k_cap; ++k) {
    const std::size_t l_max = config.node_budget / k;
    if (l_max == 0) break;
    const std::size_t l = best_l_for_k(kind, p, k, l_max);
    best_score = std::max(best_score, score(kind, p, PathShape{k, l}));
  }

  // Pass 2: the cheapest geometry within tolerance of that score.
  const double target = best_score - config.score_tolerance;
  Plan best;
  best.kind = kind;
  best.shape = PathShape{1, 1};
  best.resilience = analytic_resilience(kind, p, best.shape);
  best.nodes_used = 1;
  bool found = best.R() >= target;
  for (std::size_t k = 1; k <= k_cap; ++k) {
    const std::size_t l_max = config.node_budget / k;
    if (l_max == 0) break;
    const std::size_t l = cheapest_l_reaching(kind, p, k, l_max, target);
    if (l == 0) continue;
    const PathShape shape{k, l};
    const std::size_t cost = shape.holder_count();
    if (!found || cost < best.nodes_used) {
      found = true;
      best.shape = shape;
      best.resilience = analytic_resilience(kind, p, shape);
      best.nodes_used = cost;
    }
  }
  return best;
}

}  // namespace

Plan plan_centralized(double p) {
  Plan plan;
  plan.kind = SchemeKind::kCentralized;
  plan.shape = PathShape{1, 1};
  plan.resilience = analytic_resilience(SchemeKind::kCentralized, p, plan.shape);
  plan.nodes_used = 1;
  return plan;
}

Plan plan_disjoint(double p, const PlannerConfig& config) {
  return plan_multipath(SchemeKind::kDisjoint, p, config);
}

Plan plan_joint(double p, const PlannerConfig& config) {
  return plan_multipath(SchemeKind::kJoint, p, config);
}

SharePlan plan_share(double p, const PlannerConfig& config,
                     const ChurnSpec& churn, Alg1Mode mode) {
  require(config.node_budget >= 2, "plan_share: budget too small");

  Alg1Inputs inputs;
  inputs.node_budget = config.node_budget;
  inputs.emerging_time = churn.enabled ? churn.emerging_time : 1.0;
  inputs.mean_lifetime =
      churn.enabled ? churn.mean_lifetime
                    : 1e9;  // no churn: vanishing death probability
  inputs.p = p;
  inputs.mode = mode;

  // Grid-search the geometry: short paths keep n = N/l large (sharp
  // binomial thresholds); a handful of onion replicas k suffices because the
  // cross-replica combination of Algorithm 1 saturates quickly.
  static constexpr std::size_t kLengthLadder[] = {2,  3,  4,  6,  8,  12, 16,
                                                  24, 32, 48, 64, 96, 128};
  SharePlan best;
  bool have_best = false;
  for (std::size_t k = 1; k <= std::min<std::size_t>(12, config.max_k); ++k) {
    for (std::size_t l : kLengthLadder) {
      if (l * std::max<std::size_t>(k, 1) > config.node_budget) break;
      if (config.node_budget / l < k) break;  // need n >= k carrier slots
      inputs.shape = PathShape{k, l};
      const Alg1Plan candidate = run_algorithm1(inputs);
      const double r = candidate.resilience.combined();
      if (!have_best || r > best.R() + 1e-12) {
        have_best = true;
        best.base.kind = SchemeKind::kJoint;
        best.base.shape = inputs.shape;
        best.base.resilience =
            analytic_resilience(SchemeKind::kJoint, p, inputs.shape);
        best.base.nodes_used = inputs.shape.holder_count();
        best.alg1 = candidate;
      }
    }
  }
  require(have_best, "plan_share: no feasible geometry for the budget");
  return best;
}

Plan plan_churn_aware(SchemeKind kind, double p, const PlannerConfig& config,
                      const ChurnSpec& churn) {
  require(config.node_budget >= 1, "plan_churn_aware: empty node budget");
  if (kind == SchemeKind::kCentralized) {
    Plan plan = plan_centralized(p);
    plan.resilience = centralized_churn_resilience(p, churn);
    return plan;
  }
  require(kind == SchemeKind::kDisjoint || kind == SchemeKind::kJoint,
          "plan_churn_aware: use plan_share for the share scheme");

  // The churn models are not monotone in l (longer paths shorten holds but
  // add hops), so search a geometric ladder instead of binary-searching a
  // crossing.
  static constexpr std::size_t kLadder[] = {1,  2,   3,   4,   6,   8,   12,
                                            16, 24,  32,  48,  64,  96,  128,
                                            192, 256, 384, 512, 768, 1024};
  Plan best;
  best.kind = kind;
  best.shape = PathShape{1, 1};
  best.resilience = analytic_churn_resilience(kind, p, best.shape, churn);
  best.nodes_used = 1;
  const std::size_t k_cap = std::min<std::size_t>(16, config.max_k);
  for (std::size_t k = 1; k <= k_cap; ++k) {
    for (std::size_t l : kLadder) {
      if (k * l > config.node_budget) break;
      const PathShape shape{k, l};
      const Resilience r = analytic_churn_resilience(kind, p, shape, churn);
      const double score = r.combined();
      const std::size_t cost = shape.holder_count();
      if (score > best.R() + config.score_tolerance ||
          (score >= best.R() - config.score_tolerance &&
           cost < best.nodes_used)) {
        best.shape = shape;
        best.resilience = r;
        best.nodes_used = cost;
      }
    }
  }
  return best;
}

Plan plan_scheme(SchemeKind kind, double p, const PlannerConfig& config) {
  switch (kind) {
    case SchemeKind::kCentralized:
      return plan_centralized(p);
    case SchemeKind::kDisjoint:
      return plan_disjoint(p, config);
    case SchemeKind::kJoint:
      return plan_joint(p, config);
    case SchemeKind::kShare:
      break;
  }
  throw PreconditionError("plan_scheme: use plan_share for the share scheme");
}

}  // namespace emergence::core

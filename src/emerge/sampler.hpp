// Population sampling for the Monte-Carlo experiments.
//
// The paper's setup: "We invoke 10000 DHT node instances ... randomly select
// 10000*p non-repeated nodes and mark them as malicious." Holders are then
// drawn from that population without replacement, which makes the malicious
// indicator of successive draws hypergeometric, not Bernoulli. The sampler
// reproduces that exactly with O(1) state: each draw is malicious with
// probability (remaining malicious / remaining population).
//
// Nodes that join later (churn replacements) come from outside the original
// population; the paper models them as malicious with probability p, which
// `draw_fresh()` implements.
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace emergence::core {

/// Sequential hypergeometric sampler over a fixed population.
class MaliciousSampler {
 public:
  MaliciousSampler(std::size_t population, std::size_t malicious_count,
                   Rng& rng);

  /// Draws the next holder from the population without replacement;
  /// returns true when it is malicious. Throws when the population is
  /// exhausted.
  bool draw();

  /// Draws a fresh (replacement) node: malicious i.i.d. with the population
  /// malicious rate.
  bool draw_fresh();

  std::size_t remaining() const { return remaining_; }
  double malicious_rate() const { return rate_; }

 private:
  std::size_t remaining_;
  std::size_t remaining_malicious_;
  double rate_;
  Rng& rng_;
};

}  // namespace emergence::core

// The end-to-end timed-release protocol over the Chord DHT (paper Fig. 1).
//
// One TimedReleaseSession orchestrates a single self-emerging message:
//
//   sender                           DHT                         receiver
//     | encrypt msg, upload to cloud  |                              |
//     | build paths + onions          |                              |
//     | ts: assign layer keys,        |                              |
//     |     send column-1 packages -> | holders peel/hold/forward    |
//     |                               | ... l columns, th each ...   |
//     |                               | tr: terminal holders ------> | secret
//     |                               |                              | decrypt
//
// Holder behavior runs as message handlers + simulator events; malicious
// holders report to the Adversary and, in dropping mode, break the chain.
// The session instance must outlive the simulation run that drives it
// (see docs/architecture.md, "Ownership rule"). Protocol phases: PAPER.md
// §III; scheme taxonomy: PAPER.md §III-A..D.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cloud/cloud_store.hpp"
#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"
#include "dht/network.hpp"
#include "emerge/adversary.hpp"
#include "emerge/path.hpp"
#include "emerge/types.hpp"

namespace emergence::core {

class SessionDispatcher;

/// Static protocol parameters for one session.
struct SessionConfig {
  SchemeKind kind = SchemeKind::kJoint;
  PathShape shape{2, 3};
  std::size_t carriers_n = 0;    ///< share scheme: holders per column
  std::size_t threshold_m = 0;   ///< share scheme: Shamir threshold
  double emerging_time = 3600.0;  ///< T in virtual seconds
  /// Delay a holder waits after the first package arrives before processing,
  /// letting all shares of a column assemble (network latency << th).
  double assembly_delay = 1.0;
  crypto::CipherBackend backend = crypto::CipherBackend::kChaCha20;
};

/// One holder package on the wire: the unit a holder receives at each hop.
/// This codec is the single home of the package byte layout — the in-process
/// session uses it over the simulated DHT and the `emerged` daemon carries
/// the exact same bytes inside its UDP frames, so a package captured from
/// either world decodes in the other.
struct ProtocolPackage {
  std::uint64_t session_nonce = 0;
  std::uint16_t column = 0;
  std::uint16_t holder_index = 0;
  std::vector<crypto::Share> shares;  ///< share-scheme key shares, may be empty
  Bytes onion;                        ///< serialized ColumnOnion for this hop
};

Bytes encode_protocol_package(std::uint64_t session_nonce, std::uint16_t column,
                              std::uint16_t holder_index, BytesView onion,
                              const std::vector<crypto::Share>& shares);
/// Throws CodecError / PreconditionError on malformed payloads.
ProtocolPackage decode_protocol_package(BytesView payload);

/// Counters exposed for tests and examples.
struct SessionReport {
  std::uint64_t packages_sent = 0;
  std::uint64_t packages_delivered = 0;
  std::uint64_t packages_dropped_malicious = 0;
  std::uint64_t malformed_packages = 0;  ///< undecodable payloads discarded
  std::uint64_t holders_stuck = 0;  ///< could not reconstruct a layer key
  std::uint64_t key_assignments = 0;
  std::uint64_t deliveries = 0;  ///< terminal deliveries to the receiver
};

/// Everything a TimedReleaseSession needs, as one named-field aggregate.
/// The api::SessionHandle builder fills one of these; the historical
/// positional constructor packs its arguments into one and delegates, so
/// both construction surfaces share a single initialization path.
struct SessionArgs {
  dht::Network* network = nullptr;      ///< required
  cloud::CloudStore* cloud = nullptr;   ///< required
  Adversary* adversary = nullptr;       ///< nullptr = no attack
  SessionConfig config;
  std::uint64_t seed = 0;
  SessionDispatcher* dispatcher = nullptr;  ///< see ctor docs below
};

/// One self-emerging message through the DHT.
class TimedReleaseSession {
 public:
  /// Primary constructor. `args.network` and `args.cloud` are required
  /// (PreconditionError otherwise); everything else has usable defaults.
  explicit TimedReleaseSession(const SessionArgs& args);

  /// `adversary` may be nullptr (no attack). The session registers message
  /// handlers on holder nodes; it must outlive the simulation.
  ///
  /// `dispatcher` selects how network events reach the session. Null (the
  /// historical behavior) chains the network's default handler and store
  /// observer — fine for a bounded number of sessions per world. A
  /// dispatcher routes by nonce / storage key in O(1) and supports
  /// retire() + destruction of finished sessions, which is what lets a
  /// fleet recycle session slots against one long-lived world
  /// (session_dispatcher.hpp). The dispatcher must outlive the session.
  ///
  /// Delegates to the SessionArgs constructor; kept because positional
  /// call sites predate the aggregate and remain perfectly readable.
  TimedReleaseSession(dht::Network& network, cloud::CloudStore& cloud,
                      Adversary* adversary, SessionConfig config,
                      std::uint64_t seed,
                      SessionDispatcher* dispatcher = nullptr);
  ~TimedReleaseSession();

  TimedReleaseSession(const TimedReleaseSession&) = delete;
  TimedReleaseSession& operator=(const TimedReleaseSession&) = delete;

  /// Ends the session's tenancy on the network: erases its pre-assigned
  /// layer keys from DHT storage (so long-lived worlds don't accumulate
  /// dead keys into replica-maintenance scans) and deregisters from the
  /// dispatcher (late packages become counted strays). Call once the
  /// session is past tr and its events have drained; the fleet does this
  /// before recycling the slot. Idempotent.
  void retire();

  /// Encrypts and uploads `message`, builds paths/onions and launches the
  /// protocol at the current virtual time ts. Returns the cloud blob id.
  cloud::BlobId send(BytesView message, const std::string& receiver_token);

  // -- observation ------------------------------------------------------------

  double start_time() const { return start_time_; }
  double release_time() const { return start_time_ + config_.emerging_time; }
  /// th = T / l. Timing contract: hop schedules are anchored to *absolute*
  /// times — column c forwards at exactly ts + c*th and the terminal column
  /// delivers at exactly tr — so per-column overheads (assembly_delay plus
  /// message latency) are absorbed inside each hold instead of accumulating
  /// into an l*(assembly_delay + latency) drift past tr. The constructor
  /// precondition th > assembly_delay + 4*max_latency (max_latency = the
  /// transport's single-attempt bound L) guarantees every column finishes
  /// processing before its forwarding deadline; under it, and whenever the
  /// transport guarantees_exact_delivery (no partition window, retry ladder
  /// + L + assembly inside th), first_delivery_time() == release_time()
  /// exactly (bit-equal doubles; regression-tested for l in {1, 3, 6} in
  /// tests/test_protocol.cpp and under nonzero-latency transports in
  /// tests/test_protocol_properties.cpp). Packages a lossy or partitioned
  /// transport lands past a deadline are clamped to now and propagate
  /// hop-local lateness bounded by TransportModel::reap_slack.
  double holding_period() const {
    return config_.emerging_time / static_cast<double>(config_.shape.l);
  }

  /// True once at least one terminal holder delivered the secret at tr.
  bool secret_released() const { return released_secret_.has_value(); }
  std::optional<sim::Time> first_delivery_time() const {
    return first_delivery_;
  }
  const std::optional<Bytes>& released_secret() const {
    return released_secret_;
  }

  /// Receiver-side: downloads the ciphertext and decrypts it with the
  /// released secret. Returns nullopt before release.
  std::optional<Bytes> receiver_decrypt(const std::string& receiver_token);

  /// Reports every pre-assigned layer key currently stored on a malicious
  /// node to the adversary. Key assignment happens inside send(); callers
  /// that mark coalition nodes afterwards (tests, examples) use this to
  /// model an adversary whose nodes were compromised all along.
  void refresh_adversary_exposure();

  const PathLayout& layout() const { return layout_; }
  const SessionReport& report() const { return report_; }
  const SessionConfig& config() const { return config_; }
  /// The wire nonce stamped on every package of this session (0 before
  /// send()). Lets callers correlate dispatcher traffic, wire frames and
  /// api::EmergeEvents with the session that produced them.
  std::uint64_t session_nonce() const { return session_nonce_; }

 private:
  friend class SessionDispatcher;

  struct HolderState {
    Bytes onion;                        ///< first received package
    std::vector<crypto::Share> shares;  ///< gathered shares for my key
    /// The node occupying this holder slot when the package arrived; the
    /// in-RAM package dies with it (ring responsibility migrates, held
    /// state does not).
    dht::NodeId current_node;
    bool have_node = false;
    bool processing_scheduled = false;
    bool processed = false;
  };

  /// Layer key id for holder `h` of `column` (shared for onion slots).
  LayerKeyId key_id_for(std::uint16_t column, std::uint16_t holder) const;
  crypto::SymmetricKey layer_key(const LayerKeyId& id) const;

  void assign_keys_at_start();
  void launch_column1_packages();
  void register_holder_handlers();
  /// Dispatcher entry points: a package addressed to this session's nonce,
  /// and a store observation for one of its registered storage keys.
  void handle_package_message(const dht::NodeId& to, BytesView payload);
  void observe_store(const dht::NodeId& node, const dht::NodeId& key,
                     BytesView value);
  void on_package(const dht::NodeId& node, std::uint16_t column,
                  std::uint16_t holder_index, BytesView onion,
                  std::vector<crypto::Share> shares);
  void process_holder(std::uint16_t column, std::uint16_t holder_index);
  void forward_from(std::uint16_t column, std::uint16_t holder_index,
                    const EnvelopeContent& content, const Bytes& inner);
  void deliver_to_receiver(std::uint16_t holder_index, const Bytes& secret);

  dht::Network& network_;
  cloud::CloudStore& cloud_;
  Adversary* adversary_;
  SessionConfig config_;
  SessionDispatcher* dispatcher_;
  bool retired_ = false;
  crypto::Drbg drbg_;

  PathLayout layout_;
  std::map<LayerKeyId, crypto::SymmetricKey> layer_keys_;
  /// Maps a pre-assigned layer key's DHT storage key — the holder slot's
  /// ring point (see assign_keys_at_start) — back to its layer-key id, so
  /// the store-observer can count replica repairs and join pulls of stored
  /// keys as exposure.
  std::map<dht::NodeId, LayerKeyId> storage_key_to_layer_;

  Bytes secret_key_;  ///< the message key routed through the DHT
  std::uint64_t session_nonce_ = 0;  ///< distinguishes concurrent sessions
  /// The default handler registered before this session took over; foreign
  /// or undecodable packages chain to it.
  dht::MessageHandler chained_handler_;
  cloud::BlobId blob_id_;
  double start_time_ = 0.0;
  bool sent_ = false;

  std::map<std::pair<std::uint16_t, std::uint16_t>, HolderState> holders_;
  std::optional<Bytes> released_secret_;
  std::optional<sim::Time> first_delivery_;
  SessionReport report_;
};

}  // namespace emergence::core

// Sybil-attack provisioning model (paper §II-B).
//
// The evaluation treats the malicious fraction p as a free parameter; the
// paper notes that in practice p is *manufactured* through a Sybil attack
// ("the adversary may create a large number of pseudonymous identities and
// use them to gain a disproportionately large influence", Douceur '02) or an
// Eclipse attack. This module supplies the bookkeeping between an attack
// budget and the p it buys:
//
//   N honest nodes, s Sybil identities  =>  p = s / (N + s)
//   target p                            =>  s = N p / (1 - p)
//
// plus helpers quantifying what the defense (larger DHTs) costs an attacker
// -- the quantitative version of the paper's argument that "large-scale DHT
// networks significantly increase the attack resilience".
#pragma once

#include <cstddef>

namespace emergence::core {

/// Relationship between Sybil identities and the malicious fraction.
struct SybilAttack {
  std::size_t honest_nodes = 0;
  std::size_t sybil_identities = 0;

  /// The malicious node rate this attack achieves.
  double achieved_p() const;

  /// Effective network size the protocol sees (honest + Sybil).
  std::size_t total_nodes() const { return honest_nodes + sybil_identities; }
};

/// Number of Sybil identities needed to reach malicious rate `p` against
/// `honest_nodes` honest participants. Requires 0 <= p < 1.
std::size_t sybils_needed(std::size_t honest_nodes, double p);

/// Identities needed per honest node at rate p: p / (1 - p); the marginal
/// cost an attacker pays when the network grows by one honest node.
double sybil_cost_factor(double p);

/// An Eclipse attack concentrates the adversary on one victim's routing
/// neighborhood instead of the whole id space: with `table_size` routing
/// entries and the same identity budget, the probability that *every* entry
/// of the victim's table is adversarial (full eclipse) under uniform id
/// assignment.
double full_eclipse_probability(std::size_t table_size, double p);

}  // namespace emergence::core

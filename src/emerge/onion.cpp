#include "emerge/onion.hpp"

#include "common/error.hpp"
#include "common/serial.hpp"

namespace emergence::core {
namespace {

Bytes serialize_envelope_content(const EnvelopeContent& content) {
  BinaryWriter w;
  w.u16(static_cast<std::uint16_t>(content.next_hops.size()));
  for (const dht::NodeId& id : content.next_hops)
    w.raw(BytesView(id.bytes().data(), id.bytes().size()));
  w.u16(static_cast<std::uint16_t>(content.shares.size()));
  for (const TargetedShare& ts : content.shares) {
    w.u16(ts.target_index);
    w.blob(crypto::share_to_bytes(ts.share));
  }
  w.blob(content.terminal_payload);
  w.blob(content.inner_key);
  return w.take();
}

EnvelopeContent parse_envelope_content(BytesView raw) {
  BinaryReader r(raw);
  EnvelopeContent content;
  const std::uint16_t hop_count = r.u16();
  content.next_hops.reserve(hop_count);
  for (std::uint16_t i = 0; i < hop_count; ++i)
    content.next_hops.push_back(dht::NodeId::from_bytes(r.raw(dht::kIdBytes)));
  const std::uint16_t share_count = r.u16();
  content.shares.reserve(share_count);
  for (std::uint16_t i = 0; i < share_count; ++i) {
    TargetedShare ts;
    ts.target_index = r.u16();
    ts.share = crypto::share_from_bytes(r.blob());
    content.shares.push_back(std::move(ts));
  }
  content.terminal_payload = r.blob();
  content.inner_key = r.blob();
  r.expect_done();
  return content;
}

Bytes column_aad(std::uint16_t column) {
  BinaryWriter w;
  w.str("emergence/onion/envelope");
  w.u16(column);
  return w.take();
}

Bytes inner_aad(std::uint16_t column) {
  BinaryWriter w;
  w.str("emergence/onion/inner");
  w.u16(column);
  return w.take();
}

}  // namespace

Bytes unwrap_inner(BytesView inner_key, BytesView sealed_inner,
                   std::uint16_t column, crypto::CipherBackend backend) {
  const crypto::SymmetricKey key = crypto::SymmetricKey::from_bytes(inner_key);
  return crypto::aead_open(key, sealed_inner, inner_aad(column), backend);
}

const Bytes& ColumnOnion::envelope_for(std::uint16_t holder_index) const {
  for (const auto& [index, sealed] : envelopes) {
    if (index == holder_index) return sealed;
  }
  throw CodecError("ColumnOnion: no envelope for holder index " +
                   std::to_string(holder_index));
}

Bytes seal_envelope(const crypto::SymmetricKey& key,
                    const EnvelopeContent& content, std::uint16_t column,
                    crypto::Drbg& drbg, crypto::CipherBackend backend) {
  const Bytes plaintext = serialize_envelope_content(content);
  const Bytes nonce = drbg.bytes(12);
  return crypto::aead_seal(key, nonce, plaintext, column_aad(column), backend);
}

EnvelopeContent open_envelope(const crypto::SymmetricKey& key,
                              BytesView sealed, std::uint16_t column,
                              crypto::CipherBackend backend) {
  const Bytes plaintext =
      crypto::aead_open(key, sealed, column_aad(column), backend);
  return parse_envelope_content(plaintext);
}

Bytes serialize_column_onion(const ColumnOnion& onion) {
  BinaryWriter w;
  w.str("EMRG1");  // format magic/version
  w.u16(onion.column);
  w.u16(static_cast<std::uint16_t>(onion.envelopes.size()));
  for (const auto& [index, sealed] : onion.envelopes) {
    w.u16(index);
    w.blob(sealed);
  }
  w.blob(onion.inner);
  return w.take();
}

ColumnOnion parse_column_onion(BytesView raw) {
  BinaryReader r(raw);
  if (r.str() != "EMRG1")
    throw CodecError("parse_column_onion: bad magic");
  ColumnOnion onion;
  onion.column = r.u16();
  const std::uint16_t count = r.u16();
  onion.envelopes.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint16_t index = r.u16();
    onion.envelopes.emplace_back(index, r.blob());
  }
  onion.inner = r.blob();
  r.expect_done();
  return onion;
}

Bytes build_onion(const std::vector<ColumnBuildSpec>& columns,
                  crypto::Drbg& drbg, crypto::CipherBackend backend) {
  require(!columns.empty(), "build_onion: at least one column required");
  Bytes inner;  // innermost first: empty beyond the terminal column
  for (std::size_t c = columns.size(); c-- > 0;) {
    const ColumnBuildSpec& spec = columns[c];
    require(spec.holder_keys.size() == spec.envelopes.size(),
            "build_onion: keys/envelopes size mismatch");
    ColumnOnion onion;
    onion.column = static_cast<std::uint16_t>(c + 1);

    // Seal the inner onion under a fresh transport key; every envelope of
    // this column carries the key so any holder can unwrap before
    // forwarding, but nobody below this column can.
    Bytes transport_key;
    if (!inner.empty()) {
      transport_key = drbg.bytes(32);
      const crypto::SymmetricKey tk =
          crypto::SymmetricKey::from_bytes(transport_key);
      onion.inner = crypto::aead_seal(tk, drbg.bytes(12), inner,
                                      inner_aad(onion.column), backend);
    }

    for (std::size_t h = 0; h < spec.envelopes.size(); ++h) {
      EnvelopeContent content = spec.envelopes[h];
      require(content.inner_key.empty(),
              "build_onion: inner_key is assigned by the builder");
      content.inner_key = transport_key;
      onion.envelopes.emplace_back(
          static_cast<std::uint16_t>(h),
          seal_envelope(spec.holder_keys[h], content, onion.column, drbg,
                        backend));
    }
    inner = serialize_column_onion(onion);
  }
  return inner;
}

}  // namespace emergence::core

// Monte-Carlo mechanics of the four schemes (the statistical engine).
//
// This engine simulates one protocol instance per call at the level of
// holder slots, key exposure and package delivery -- the same abstraction
// the paper's Overlay Weaver experiments use -- without running the full
// Chord + crypto stack (which the protocol engine in protocol.hpp provides
// for end-to-end validation at smaller scale). This is what makes the
// paper's 1000-run parameter sweeps tractable.
//
// Semantics (docs/design-notes.md §2/§5):
//  * release-ahead success: the adversary collects every column's layer key
//    within its storage window (pre-assigned-key schemes) or gathers m of n
//    Shamir shares for *some* column — one reconstructed column key unlocks
//    every later column of the captured onion, the cascade the attack
//    engine (adversary.cpp) mounts with real crypto. Malicious holders
//    behave covertly in this evaluation (they forward normally).
//  * drop success: the receiver fails to obtain the secret key at tr while
//    malicious holders refuse to forward; churn losses count against
//    availability as well.
//  * Under churn, a holder slot is a renewal process: occupants die with
//    Exp(λ) lifetimes; replacements learn *stored* key material (DHT
//    replication repairs it) but in-transit packages die with their holder.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "emerge/planner.hpp"
#include "emerge/sampler.hpp"
#include "emerge/types.hpp"

namespace emergence::core {

/// Environment shared by all Monte-Carlo runs of one experiment point.
struct StatEnvironment {
  std::size_t population = 10000;   ///< DHT size (paper: 10000 or 100)
  std::size_t malicious_count = 0;  ///< ⌊p * population⌋
  ChurnSpec churn;                  ///< disabled for Fig. 6
};

/// Outcome of one simulated protocol instance.
struct StatRunOutcome {
  bool release_success = false;  ///< adversary restores the key early
  bool drop_success = false;     ///< key does not emerge at tr
  /// Restore margin in holding periods: the coalition first holds the
  /// secret compromised_suffix * th before tr (0 = never). For the
  /// pre-assigned-key schemes this equals the length of the longest
  /// fully-compromised column suffix; for the share scheme it is decided by
  /// the earliest column whose threshold the coalition reaches (cascade).
  /// The ablation bench uses it for the "restore x holding periods early"
  /// semantics (a malicious terminal holder alone gives suffix >= 1).
  std::size_t compromised_suffix = 0;
};

/// One run of the centralized scheme (single holder slot, window T).
StatRunOutcome run_centralized_stat(const StatEnvironment& env, Rng& rng);

/// One run of the node-disjoint or node-joint multipath scheme.
/// `kind` must be kDisjoint or kJoint.
StatRunOutcome run_multipath_stat(SchemeKind kind, const PathShape& shape,
                                  const StatEnvironment& env, Rng& rng);

/// One run of the key-share routing scheme, using the thresholds computed by
/// Algorithm 1 (plan.alg1).
StatRunOutcome run_share_stat(const SharePlan& plan,
                              const StatEnvironment& env, Rng& rng);

}  // namespace emergence::core

// End-to-end scenario sweep harness: Monte-Carlo fleets of the *full*
// protocol stack, cross-validated against the statistical engine.
//
// Each run builds a fresh world — Simulator + DHT backend (Chord or
// Kademlia) + CloudStore + Adversary coalition + one or more concurrent
// TimedReleaseSessions — drives virtual time through tr, and reduces the
// outcomes (released early / delivered at tr / dropped, first-delivery
// offset from tr, SessionReport counters) into the exact-integer
// RunTally/merge machinery of emerge/sweep.*. Runs are seeded with
// Rng::fork(run_index) and sharded over SweepRunner::run_shards, so tallies
// are bit-identical at any thread count, like every other sweep in this
// repository.
//
// Cross-validation contract (docs/architecture.md, "Two engines, one
// truth"): at a pinned parameter point the full stack and the stat engine
// estimate the same Bernoulli rates, so their difference is bounded by
// two-sample binomial noise. Release rates are gated on churn-free covert
// scenarios (where the engines define the identical event: the coalition
// first holds the secret >= x holding periods before tr); drop rates are
// gated on dropping-adversary and churn-availability scenarios. A
// divergence beyond the z-bound is, by construction, a bug in one of the
// engines — this harness has already flagged and fixed three (the share
// scheme's all-columns release semantics in stat_engine.cpp, its shared
// onion-slot keys, and the stored layer-key placement in protocol.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dht/transport.hpp"
#include "emerge/adversary.hpp"
#include "emerge/sweep.hpp"
#include "emerge/types.hpp"

namespace emergence::core {

/// DHT substrate for a scenario (the role Overlay Weaver's pluggable
/// algorithms played for the paper).
enum class DhtBackend : std::uint8_t { kChord, kKademlia };

std::string to_string(DhtBackend backend);

/// One pinned full-stack scenario of the cross-validation matrix.
struct E2eScenario {
  std::string name;  ///< row label in reports and BENCH json tables

  SchemeKind kind = SchemeKind::kJoint;  ///< kCentralized runs a 1x1 session
  DhtBackend backend = DhtBackend::kChord;
  PathShape shape{2, 3};
  std::size_t carriers_n = 0;   ///< share scheme: holders per column (0 = k+1)
  std::size_t threshold_m = 0;  ///< share scheme: Shamir threshold (0 = k)

  std::size_t population = 100;  ///< DHT size (paper's Overlay Weaver runs: 100)
  double p = 0.0;                ///< malicious node fraction
  AttackMode attack_mode = AttackMode::kCovert;

  bool churn = false;
  double churn_alpha = 1.0;  ///< T = alpha * mean node lifetime

  std::size_t sessions = 1;        ///< concurrent sessions per world
  double emerging_time = 1800.0;   ///< T in virtual seconds
  std::size_t runs = 200;          ///< Monte-Carlo worlds
  std::uint64_t seed = 0xE2E0;

  /// Message-level transport for every world's network (scenario axis:
  /// lan/wan/lossy/straggler/partition-heal); the default ideal() is
  /// bit-identical to pre-transport history at pinned seeds.
  dht::TransportModel transport;

  std::size_t malicious_count() const;  ///< floor(p * population)
  PathShape session_shape() const;      ///< {1,1} for kCentralized
  std::size_t resolved_carriers() const;
  std::size_t resolved_threshold() const;
  /// th = T / l of the session shape (the timing-contract denominator).
  double holding_period() const {
    return emerging_time / static_cast<double>(session_shape().l);
  }
  /// True when the transport keeps the exact-at-tr delivery contract for
  /// this geometry (see TransportModel::guarantees_exact_delivery; 1.0 is
  /// the SessionConfig assembly_delay every harness world uses).
  bool exact_delivery() const {
    return transport.resolved(0.010, 0.100)
        .guarantees_exact_delivery(holding_period(), 1.0);
  }
};

/// Exact aggregate of full-stack outcomes over a set of sessions. Embeds
/// the sweep engine's RunTally (release / drop rates plus the
/// restore-margin histogram) and adds protocol-level counters. Every field
/// is an integer, so merge() is associative and commutative and any
/// sharding of the same runs reproduces the serial tallies bit-identically;
/// shards are still merged in ascending index order (the sweep rule).
struct E2eTally {
  /// release = "coalition restored the secret early" (strict event, see
  /// E2eRunner::restore_margin_periods); drop = "no delivery by tr";
  /// suffix_histogram[s] counts sessions whose restore margin was s holding
  /// periods. One trial per session (runs * sessions total).
  RunTally tally;

  std::uint64_t sessions_delivered = 0;
  /// Delivery latency first_delivery - ts per delivered session, quantized
  /// to integer microseconds of virtual time (exact merge). The timing
  /// contract pins every sample to exactly T, so the percentiles this
  /// carries (surfaced as p50/p99/max in seconds and holding periods in
  /// the BENCH artifacts) are themselves a regression gate.
  Histogram64 latency_us;
  /// Sessions whose first delivery landed within kDeliveryToleranceNs of
  /// tr. The protocol's timing contract (protocol.hpp holding_period())
  /// promises exact delivery, so this must equal sessions_delivered.
  std::uint64_t delivered_on_time = 0;
  /// Largest |first_delivery - tr| seen, in integer nanoseconds of virtual
  /// time (max is an exact, order-free merge).
  std::int64_t max_delivery_offset_ns = 0;
  std::uint64_t churn_deaths = 0;

  // Summed SessionReport counters across all sessions.
  std::uint64_t packages_sent = 0;
  std::uint64_t packages_delivered = 0;
  std::uint64_t packages_dropped_malicious = 0;
  std::uint64_t malformed_packages = 0;
  std::uint64_t holders_stuck = 0;
  std::uint64_t key_assignments = 0;
  std::uint64_t deliveries = 0;

  /// Summed transport counters of every world's network (sent / dropped /
  /// retried / timed-out plus the exact hop-latency histogram).
  dht::TransportStats transport;

  void merge(const E2eTally& other);
  std::size_t trials() const { return tally.runs(); }
};

/// One gated comparison between the engines.
struct CrossValMetric {
  std::string metric;
  double full_stack = 0.0;   ///< full-stack rate
  double stat_engine = 0.0;  ///< stat-engine rate
  double bound = 0.0;        ///< |full_stack - stat_engine| must be <= bound
  std::size_t fs_trials = 0;
  std::size_t stat_trials = 0;
  bool pass = true;

  double diff() const { return full_stack - stat_engine; }
};

/// Both engines' tallies at one scenario point plus the gated comparisons.
struct CrossValResult {
  E2eScenario scenario;
  E2eTally full_stack;
  RunTally stat;
  std::vector<CrossValMetric> metrics;

  bool pass() const;
};

class TimedReleaseSession;

/// One finished session reduced to the shared outcome vocabulary: the
/// stat-engine trial (strict release / drop / restore margin) plus the
/// timing and latency facts. reduce_session_outcome() is the single home
/// of the scheme-dependent release rule and the delivery tolerance — the
/// e2e runner and the workload fleet both reduce through it, so the "two
/// engines, one truth" semantics cannot silently fork between them.
struct SessionOutcome {
  StatRunOutcome stat;
  bool delivered = false;
  bool on_time = false;            ///< within kDeliveryToleranceNs of tr
  std::int64_t abs_offset_ns = 0;  ///< |first_delivery - tr|, delivered only
  std::int64_t latency_us = 0;     ///< first_delivery - ts, delivered only
};

/// Reduces a driven-past-tr session (and its adversary, may be null).
/// Strict release event, matched to the stat engine: the share scheme's
/// cascade fires from any column (margin >= 2 excludes the pure
/// terminal-slot leak); the pre-assigned-key schemes need every column,
/// i.e. a restore essentially at ts (margin == path_length).
SessionOutcome reduce_session_outcome(const TimedReleaseSession& session,
                                      const Adversary* adversary,
                                      SchemeKind kind, double holding_period,
                                      std::size_t path_length);

/// Full-stack Monte-Carlo evaluator. Shares a SweepRunner's worker pool (and
/// therefore its determinism rules and evaluation mutex).
class E2eRunner {
 public:
  /// Deliveries further than this from tr count as late. The protocol
  /// schedules terminal delivery at the absolute time tr, so the observed
  /// offset is exactly zero; one microsecond absorbs only the ns
  /// quantization of the tally.
  static constexpr std::int64_t kDeliveryToleranceNs = 1000;

  explicit E2eRunner(SweepRunner& sweeps) : sweeps_(sweeps) {}

  /// Runs scenario.runs independent full-stack worlds (sharded across the
  /// pool; bit-identical at any thread count) and returns the exact tallies.
  E2eTally run_tallies(const E2eScenario& scenario);

  /// Stat-engine tallies at the matched parameter point (same population,
  /// malicious count, geometry, churn ratio).
  RunTally stat_tallies(const E2eScenario& scenario, std::size_t stat_runs);

  /// Runs both engines and gates the comparable rates within two-sample
  /// binomial bounds: |p1 - p2| <= z * sqrt(pp*(1-pp)*(1/n1 + 1/n2)) +
  /// (1/n1 + 1/n2), with pp the pooled rate and the additive term a
  /// continuity correction so exact-zero rates cannot fail on one stray
  /// success. z defaults to 4 (two-sided tail ~6e-5 per comparison, safe
  /// across the whole matrix). For multi-session scenarios the sessions of
  /// one world share a coalition and a ring, so the bound conservatively
  /// uses the world count, not runs * sessions, as the full-stack sample
  /// size.
  CrossValResult cross_validate(const E2eScenario& scenario,
                                std::size_t stat_runs, double z = 4.0);

  /// Maps the coalition's earliest secret-possession time to whole holding
  /// periods before tr (0 = never; l = essentially at ts). The strict
  /// release event excludes the unavoidable terminal-slot leak (margin 1);
  /// the stat engine scores the identical event (design-notes §2).
  static std::size_t restore_margin_periods(double earliest, double release_time,
                                            double holding_period,
                                            std::size_t path_length);

 private:
  SweepRunner& sweeps_;
};

/// The pinned cross-validation matrix used by bench/e2e_crossval.cpp and
/// the CI smoke job: all four schemes, both backends, churn on/off,
/// covert/dropping adversaries, and 1..8 concurrent sessions, at points
/// where both engines define the same events (see cross_validate).
std::vector<E2eScenario> default_crossval_matrix(std::size_t runs,
                                                 std::size_t population = 100);

}  // namespace emergence::core

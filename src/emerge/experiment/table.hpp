// Plain-text table output for the benchmark harness.
//
// Each paper figure becomes one table: the x column (malicious rate p) and
// one series column per scheme/configuration, printed with gnuplot-friendly
// alignment so the series can be re-plotted directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace emergence::core {

/// Column-aligned table with a title and caption.
class FigureTable {
 public:
  FigureTable(std::string title, std::vector<std::string> headers);

  void set_caption(std::string caption) { caption_ = std::move(caption); }
  void add_row(std::vector<double> values);

  /// Overrides the decimal count for one column (e.g. integer node counts
  /// next to fractional probabilities).
  void set_column_precision(std::size_t column, int precision);

  /// Prints title, header and rows. Values print with `precision` decimals
  /// unless a per-column override applies.
  void print(std::ostream& os, int precision = 4) const;

  // Read access for machine-readable exports (bench JSON artifacts).
  const std::string& title() const { return title_; }
  const std::string& caption() const { return caption_; }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<double>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> column_precision_;  ///< -1 = use the print() default
};

}  // namespace emergence::core

#include "emerge/experiment/table.hpp"

#include <iomanip>
#include <ostream>

#include "common/error.hpp"

namespace emergence::core {

FigureTable::FigureTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)),
      headers_(std::move(headers)),
      column_precision_(headers_.size(), -1) {}

void FigureTable::add_row(std::vector<double> values) {
  require(values.size() == headers_.size(),
          "FigureTable::add_row: column count mismatch");
  rows_.push_back(std::move(values));
}

void FigureTable::set_column_precision(std::size_t column, int precision) {
  require(column < headers_.size(),
          "FigureTable::set_column_precision: no such column");
  column_precision_[column] = precision;
}

void FigureTable::print(std::ostream& os, int precision) const {
  os << "# " << title_ << '\n';
  if (!caption_.empty()) os << "# " << caption_ << '\n';

  const int width = 12;
  os << "# ";
  for (const std::string& h : headers_) os << std::setw(width) << h;
  os << '\n';
  for (const auto& row : rows_) {
    os << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const int digits =
          column_precision_[c] >= 0 ? column_precision_[c] : precision;
      os << std::setw(width) << std::fixed << std::setprecision(digits)
         << row[c];
    }
    os << '\n';
  }
  os << '\n';
}

}  // namespace emergence::core

// Flat O(1) routing of network events to concurrent sessions.
//
// Without a dispatcher every TimedReleaseSession chains the network's
// default message handler and store observer, capturing the previous
// closure: fine for the handful of concurrent sessions the e2e harness
// runs, fatal for a service fleet — the chains grow one link per session
// ever created, every delivery walks the whole chain, and destroying a
// finished session would leave later links capturing a dangling pointer.
//
// The dispatcher installs ONE default handler and ONE store observer on
// the network and routes by lookup instead: packages by the session nonce
// they already carry (a 64-bit drbg draw, unique per session), store
// observations by the storage key the session registered for its
// pre-assigned layer keys. Sessions constructed with a dispatcher register
// themselves during send() and deregister on retire()/destruction, so the
// fleet can recycle hundreds of thousands of session slots against one
// world at O(1) per event. Handlers and observers installed before the
// dispatcher keep working: unrecognized traffic chains to them.
//
// The dispatcher must outlive both the network's event traffic and every
// session registered with it (the fleet owns all three; see
// workload/session_fleet.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "dht/network.hpp"

namespace emergence::core {

class TimedReleaseSession;

/// Reads the session nonce out of a serialized protocol package without a
/// full decode; nullopt when the payload is not a protocol package.
/// (Implemented in protocol.cpp beside the package codec so the wire
/// prefix constant has one home.)
std::optional<std::uint64_t> peek_session_nonce(BytesView payload);

/// Shared router for all dispatcher-managed sessions on one network.
class SessionDispatcher {
 public:
  explicit SessionDispatcher(dht::Network& network);

  SessionDispatcher(const SessionDispatcher&) = delete;
  SessionDispatcher& operator=(const SessionDispatcher&) = delete;

  std::size_t live_sessions() const { return by_nonce_.size(); }
  std::size_t tracked_storage_keys() const { return by_storage_key_.size(); }
  /// Protocol packages whose nonce matched no live session (late arrivals
  /// for retired sessions; harmless, but worth counting).
  std::uint64_t stray_packages() const {
    return stray_packages_.load(std::memory_order_relaxed);
  }

 private:
  friend class TimedReleaseSession;

  void register_session(std::uint64_t nonce, TimedReleaseSession* session);
  void deregister_session(std::uint64_t nonce);
  void register_storage_key(const dht::NodeId& key,
                            TimedReleaseSession* session);
  void deregister_storage_key(const dht::NodeId& key);

  dht::Network& network_;
  std::unordered_map<std::uint64_t, TimedReleaseSession*> by_nonce_;
  std::unordered_map<dht::NodeId, TimedReleaseSession*, dht::NodeIdHash>
      by_storage_key_;
  /// Atomic: stray deliveries fire inside parallel executor windows (the
  /// routing maps themselves only mutate at serial barriers — send/retire).
  std::atomic<std::uint64_t> stray_packages_{0};
};

}  // namespace emergence::core

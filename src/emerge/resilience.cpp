#include "emerge/resilience.hpp"

#include <cmath>
#include <limits>

#include "common/binomial.hpp"
#include "common/error.hpp"

namespace emergence::core {

std::string to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kCentralized:
      return "central";
    case SchemeKind::kDisjoint:
      return "disjoint";
    case SchemeKind::kJoint:
      return "joint";
    case SchemeKind::kShare:
      return "share";
  }
  return "unknown";
}

double multipath_release_resilience(double p, const PathShape& shape) {
  // Rr = 1 - (1-(1-p)^k)^l : the adversary must hold >=1 malicious holder in
  // every one of the l columns to collect all layer keys at ts. With
  // q = (1-p)^k this is 1-(1-q)^l.
  const double q = pow_one_minus(p, static_cast<double>(shape.k));
  return one_minus_pow_one_minus(q, static_cast<double>(shape.l));
}

double disjoint_drop_resilience(double p, const PathShape& shape) {
  // Rd = 1 - (1-(1-p)^l)^k : every one of the k disjoint paths must contain a
  // malicious holder. With q = (1-p)^l this is 1-(1-q)^k.
  const double q = pow_one_minus(p, static_cast<double>(shape.l));
  return one_minus_pow_one_minus(q, static_cast<double>(shape.k));
}

double joint_drop_resilience(double p, const PathShape& shape) {
  // Rd = (1-p^k)^l : dropping requires a column whose k holders are all
  // malicious.
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;
  const double all_col = std::exp(static_cast<double>(shape.k) * std::log(p));
  return pow_one_minus(all_col, static_cast<double>(shape.l));
}

Resilience analytic_resilience(SchemeKind kind, double p,
                               const PathShape& shape) {
  switch (kind) {
    case SchemeKind::kCentralized:
      return Resilience{1.0 - p, 1.0 - p};
    case SchemeKind::kDisjoint:
      return Resilience{multipath_release_resilience(p, shape),
                        disjoint_drop_resilience(p, shape)};
    case SchemeKind::kJoint:
      return Resilience{multipath_release_resilience(p, shape),
                        joint_drop_resilience(p, shape)};
    case SchemeKind::kShare:
      break;
  }
  throw PreconditionError(
      "analytic_resilience: use Algorithm 1 for the key-share scheme");
}

namespace {

/// P[a slot storing material over window w has no malicious ever-occupant]
/// = (1-p) * e^{-(w/λ) p}.
double slot_clean_probability(double p, double window, double mean_lifetime) {
  return (1.0 - p) * std::exp(-(window / mean_lifetime) * p);
}

/// P[the occupant of a slot at onion arrival delivers it]: honest and
/// survives the holding period th.
double slot_delivers_probability(double p, double th, double mean_lifetime) {
  return (1.0 - p) * std::exp(-th / mean_lifetime);
}

}  // namespace

Resilience centralized_churn_resilience(double p, const ChurnSpec& churn) {
  if (!churn.enabled) return Resilience{1.0 - p, 1.0 - p};
  const double clean =
      slot_clean_probability(p, churn.emerging_time, churn.mean_lifetime);
  // Any malicious ever-occupant both learns the key (release-ahead) and can
  // destroy every repaired copy (drop), so both resiliences equal `clean`.
  return Resilience{clean, clean};
}

Resilience disjoint_churn_resilience(double p, const PathShape& shape,
                                     const ChurnSpec& churn) {
  if (!churn.enabled)
    return analytic_resilience(SchemeKind::kDisjoint, p, shape);
  const double l = static_cast<double>(shape.l);
  const double k = static_cast<double>(shape.k);
  const double th = churn.emerging_time / l;

  // Release-ahead: column j's key is exposed for window j*th on each of the
  // k slots that store it.
  double log_success = 0.0;
  for (std::size_t j = 1; j <= shape.l; ++j) {
    const double clean = slot_clean_probability(
        p, static_cast<double>(j) * th, churn.mean_lifetime);
    const double col_compromised =
        1.0 - std::exp(k * std::log(std::max(clean, 1e-300)));
    if (col_compromised <= 0.0) {
      log_success = -std::numeric_limits<double>::infinity();
      break;
    }
    log_success += std::log(col_compromised);
  }
  const double rr = 1.0 - std::exp(log_success);

  // Drop: a path survives only if every hop delivers the in-transit onion.
  const double hop = slot_delivers_probability(p, th, churn.mean_lifetime);
  const double path_alive = std::exp(l * std::log(std::max(hop, 1e-300)));
  const double all_severed =
      std::exp(k * std::log(std::max(1.0 - path_alive, 1e-300)));
  const double rd = path_alive >= 1.0 ? 1.0 : 1.0 - all_severed;
  return Resilience{rr, rd};
}

Resilience joint_churn_resilience(double p, const PathShape& shape,
                                  const ChurnSpec& churn) {
  if (!churn.enabled) return analytic_resilience(SchemeKind::kJoint, p, shape);
  const double l = static_cast<double>(shape.l);
  const double k = static_cast<double>(shape.k);
  const double th = churn.emerging_time / l;

  // Release-ahead: identical exposure structure to the disjoint scheme (keys
  // are pre-assigned per column either way).
  const Resilience disjoint = disjoint_churn_resilience(p, shape, churn);

  // Drop: a column forwards when at least one of its k slots delivers.
  const double hop = slot_delivers_probability(p, th, churn.mean_lifetime);
  const double col_forwards =
      1.0 - std::exp(k * std::log(std::max(1.0 - hop, 1e-300)));
  const double rd =
      std::exp(l * std::log(std::max(col_forwards, 1e-300)));
  return Resilience{disjoint.release_ahead, rd};
}

Resilience analytic_churn_resilience(SchemeKind kind, double p,
                                     const PathShape& shape,
                                     const ChurnSpec& churn) {
  switch (kind) {
    case SchemeKind::kCentralized:
      return centralized_churn_resilience(p, churn);
    case SchemeKind::kDisjoint:
      return disjoint_churn_resilience(p, shape, churn);
    case SchemeKind::kJoint:
      return joint_churn_resilience(p, shape, churn);
    case SchemeKind::kShare:
      break;
  }
  throw PreconditionError(
      "analytic_churn_resilience: use Algorithm 1 for the key-share scheme");
}

bool lemma1_holds(double p, const PathShape& shape) {
  const Resilience r = analytic_resilience(SchemeKind::kJoint, p, shape);
  return r.release_ahead + r.drop > 1.0;
}

}  // namespace emergence::core

// The onion package format used by all multipath schemes (paper §III).
//
// Structure. A package travelling from column to column is a ColumnOnion:
//
//   ColumnOnion(col) = { column
//                      , envelopes: holder_index -> AEAD-sealed Envelope
//                      , inner: serialized ColumnOnion(col+1) or empty }
//
// Each holder of a column can open exactly one envelope -- the one sealed
// under its layer key. Onion-path holders of a column share the column key
// K_col (the paper's K1..Kl); the share scheme's extra carrier holders get
// individual keys. An envelope reveals:
//   * the next hops (where to forward the shared inner onion),
//   * for the share scheme, the Shamir shares this holder must forward,
//     one per next-column holder (a share of that target's layer key),
//   * at the terminal column, the secret payload itself.
//
// Sequential peeling is enforced cryptographically: the inner onion is
// sealed under a per-column *transport key* that only this column's
// envelopes carry. Without opening some envelope of column c, an adversary
// cannot even see column c+1's sealed envelopes, let alone the terminal
// payload -- exactly the layer-by-layer property the paper's attack
// analysis assumes (a late-column key alone is useless, Fig. 2(b) K3 case).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/aead.hpp"
#include "crypto/drbg.hpp"
#include "crypto/shamir.hpp"
#include "dht/node_id.hpp"

namespace emergence::core {

/// A Shamir share addressed to one holder of the next column.
struct TargetedShare {
  std::uint16_t target_index = 0;  ///< holder index within the next column
  crypto::Share share;

  bool operator==(const TargetedShare&) const = default;
};

/// Plaintext contents of one holder's envelope.
struct EnvelopeContent {
  std::vector<dht::NodeId> next_hops;   ///< empty at the terminal column
  std::vector<TargetedShare> shares;    ///< share scheme only
  Bytes terminal_payload;               ///< secret key at the terminal column
  /// Transport key unwrapping this column's sealed inner onion; empty at the
  /// terminal column.
  Bytes inner_key;

  bool terminal() const { return next_hops.empty(); }
  bool operator==(const EnvelopeContent&) const = default;
};

/// One column's package: sealed envelopes plus the sealed inner onion.
struct ColumnOnion {
  std::uint16_t column = 0;  ///< 1-based column number
  /// (holder index, sealed envelope) pairs.
  std::vector<std::pair<std::uint16_t, Bytes>> envelopes;
  /// ColumnOnion of the next column, serialized and sealed under this
  /// column's transport key; empty at the terminal column.
  Bytes inner;

  /// Sealed envelope for a holder index; throws CodecError when missing.
  const Bytes& envelope_for(std::uint16_t holder_index) const;
};

/// Unwraps a column's sealed inner onion with the transport key found in an
/// opened envelope. Throws CryptoError on a wrong key or tampering.
Bytes unwrap_inner(BytesView inner_key, BytesView sealed_inner,
                   std::uint16_t column,
                   crypto::CipherBackend backend =
                       crypto::CipherBackend::kChaCha20);

// -- envelope crypto ---------------------------------------------------------

/// Seals an envelope under `key`; the column number is bound as AAD so an
/// envelope cannot be replayed at a different column.
Bytes seal_envelope(const crypto::SymmetricKey& key,
                    const EnvelopeContent& content, std::uint16_t column,
                    crypto::Drbg& drbg,
                    crypto::CipherBackend backend =
                        crypto::CipherBackend::kChaCha20);

/// Opens an envelope; throws CryptoError on a wrong key or tampering.
EnvelopeContent open_envelope(const crypto::SymmetricKey& key,
                              BytesView sealed, std::uint16_t column,
                              crypto::CipherBackend backend =
                                  crypto::CipherBackend::kChaCha20);

// -- onion serialization -----------------------------------------------------

Bytes serialize_column_onion(const ColumnOnion& onion);
ColumnOnion parse_column_onion(BytesView raw);

// -- whole-onion construction ------------------------------------------------

/// Description of one column used when building a whole onion, innermost
/// column first in memory but supplied in forward order (column 1 .. l).
struct ColumnBuildSpec {
  /// Per-holder layer keys, indexed by holder index within the column.
  std::vector<crypto::SymmetricKey> holder_keys;
  /// Per-holder envelope contents.
  std::vector<EnvelopeContent> envelopes;
};

/// Builds the full nested onion for columns 1..l. spec[c] describes column
/// c+1. Returns the serialized outermost package (column 1).
Bytes build_onion(const std::vector<ColumnBuildSpec>& columns,
                  crypto::Drbg& drbg,
                  crypto::CipherBackend backend =
                      crypto::CipherBackend::kChaCha20);

}  // namespace emergence::core

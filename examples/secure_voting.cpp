// Secure voting (paper §I): encrypted ballots are collected during the
// polling period and must become countable only after the polls close --
// and they must not be *destroyable* by an adversary who wants the election
// to fail (the drop attack).
//
// One self-emerging key seals the ballot box. We compare the node-disjoint
// and node-joint schemes under a dropping coalition, reproducing §III-C's
// point: the same malicious holders that sever every disjoint path cannot
// cut the joint hop graph.
//
// Build & run:  ./build/examples/secure_voting
#include <iostream>
#include <memory>
#include <vector>

#include "cloud/cloud_store.hpp"
#include "dht/chord_network.hpp"
#include "emerge/protocol.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace emergence;

bool run_election(core::SchemeKind kind, double malicious_fraction,
                  std::uint64_t seed) {
  sim::Simulator simulator;
  Rng rng(seed);
  dht::NetworkConfig net_config;
  net_config.run_maintenance = false;
  dht::ChordNetwork network(simulator, rng, net_config);
  network.bootstrap(300);
  cloud::CloudStore cloud;

  core::SessionConfig config;
  config.kind = kind;
  config.shape = core::PathShape{3, 4};
  config.emerging_time = 12.0 * 3600.0;  // polls close after 12 hours

  core::Adversary adversary(core::Adversary::Config{
      core::AttackMode::kDropping, config.shape.k, 1,
      crypto::CipherBackend::kChaCha20});
  Rng coalition_rng(seed * 31 + 7);
  for (const dht::NodeId& id : network.alive_ids()) {
    if (coalition_rng.chance(malicious_fraction)) adversary.mark_malicious(id);
  }

  core::TimedReleaseSession session(network, cloud, &adversary, config, seed);

  // The "ballot box": votes encrypted under the self-emerging key.
  const std::string ballots = "alice:A;bob:B;carol:A;dave:A;erin:B";
  session.send(bytes_of(ballots), "electoral-commission");

  simulator.run();
  if (!session.secret_released()) return false;
  const auto tally = session.receiver_decrypt("electoral-commission");
  return tally.has_value() && string_of(*tally) == ballots;
}

}  // namespace

int main() {
  using namespace emergence;

  const double p = 0.20;  // a fifth of the DHT wants the election to fail
  const int trials = 30;
  std::cout << "secure voting: ballots sealed for 12h; " << p * 100
            << "% of nodes mount a drop attack\n\n";

  int disjoint_ok = 0, joint_ok = 0;
  for (int trial = 0; trial < trials; ++trial) {
    disjoint_ok += run_election(core::SchemeKind::kDisjoint, p,
                                static_cast<std::uint64_t>(trial) + 1000);
    joint_ok += run_election(core::SchemeKind::kJoint, p,
                             static_cast<std::uint64_t>(trial) + 1000);
  }

  std::cout << "node-disjoint (k=3, l=4): counted " << disjoint_ok << "/"
            << trials << " elections\n";
  std::cout << "node-joint    (k=3, l=4): counted " << joint_ok << "/"
            << trials << " elections\n\n";
  std::cout << "the joint scheme turns " << trials
            << " fragile paths into a braided hop graph: an adversary must "
               "own a full column to cut it (paper eq. 3 vs eq. 2).\n";

  return joint_ok >= disjoint_ok ? 0 : 1;
}

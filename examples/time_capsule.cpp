// Digital time capsule: a long-horizon release under heavy churn.
//
// The paper's §IV-B2 headline: "if the average lifetime of a DHT node is
// one month, the key share routing scheme can successfully hide the secret
// key for 5 months" (alpha = 5). Pre-assigned-key schemes fail at that
// horizon because every holder death hands the stored layer key to a fresh
// (possibly malicious) node; the key-share scheme never stores a key longer
// than one holding period.
//
// This example runs the full protocol stack (real Chord churn via the
// ChurnDriver, real Shamir shares) with T = 5 node lifetimes and compares
// the joint scheme against key-share routing.
//
// Build & run:  ./build/examples/time_capsule
#include <iostream>
#include <memory>

#include "cloud/cloud_store.hpp"
#include "dht/chord_network.hpp"
#include "dht/churn_driver.hpp"
#include "emerge/protocol.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace emergence;

struct CapsuleOutcome {
  int opened = 0;
  int lost = 0;
};

CapsuleOutcome bury_capsules(core::SchemeKind kind, int trials) {
  // One virtual "month" is scaled to an hour of simulated time so that the
  // DHT's periodic maintenance (stabilize + replica repair -- the paper's
  // replication mechanism that rescues *stored* layer keys, at the price of
  // exposing them to replacement nodes) stays tractable.
  const double month = 3600.0;
  CapsuleOutcome outcome;
  for (int trial = 0; trial < trials; ++trial) {
    sim::Simulator simulator;
    Rng rng(static_cast<std::uint64_t>(trial) + 777);
    dht::NetworkConfig net_config;
    net_config.run_maintenance = true;
    dht::ChordNetwork network(simulator, rng, net_config);
    network.bootstrap(300);
    cloud::CloudStore cloud;

    dht::ChurnConfig churn_config;
    churn_config.mean_lifetime = month;
    churn_config.replace_dead_nodes = true;
    dht::ChurnDriver churn(network, churn_config);

    core::SessionConfig config;
    config.kind = kind;
    config.emerging_time = 5.0 * month;
    if (kind == core::SchemeKind::kShare) {
      // Churn-tuned geometry (what plan_share computes for alpha = 5 on a
      // ~120-node path budget): short holds, wide carrier columns, and a
      // threshold that absorbs carrier deaths.
      config.shape = core::PathShape{4, 8};
      config.carriers_n = 15;  // share carriers per column
      config.threshold_m = 3;  // any 3 of 15 reconstruct a layer key
    } else {
      config.shape = core::PathShape{3, 5};
    }

    core::TimedReleaseSession session(network, cloud, nullptr, config,
                                      static_cast<std::uint64_t>(trial));
    session.send(bytes_of("to be opened in five months"), "heir-token");
    churn.start();
    simulator.run_until(session.release_time() + 10.0);
    churn.stop();

    if (session.secret_released() &&
        session.receiver_decrypt("heir-token").has_value()) {
      ++outcome.opened;
    } else {
      ++outcome.lost;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  using namespace emergence;
  const int trials = 15;
  std::cout << "time capsule: T = 5 mean node lifetimes of churn, "
               "full protocol stack, "
            << trials << " trials per scheme\n"
            << "(note: even honest churn kills in-transit packages; the "
               "share scheme's m-of-n thresholds absorb carrier deaths)\n\n";

  const CapsuleOutcome joint = bury_capsules(core::SchemeKind::kJoint, trials);
  std::cout << "node-joint  (k=3, l=5):           opened " << joint.opened
            << "/" << trials << "\n";

  const CapsuleOutcome share = bury_capsules(core::SchemeKind::kShare, trials);
  std::cout << "key-share   (k=4, l=8, 3-of-15):  opened " << share.opened
            << "/" << trials << "\n\n";

  std::cout << "the key-share scheme also wins on confidentiality: no "
               "stored layer key outlives a holding period, so churn "
               "replacements learn nothing (paper §III-D).\n";
  return 0;
}

// Online examination (the paper's running example, §II-B1).
//
// Exam questions are uploaded encrypted before the exam; the decryption key
// self-emerges in the DHT exactly at the exam start. A student controlling
// part of the DHT mounts the release-ahead attack to leak the questions
// early. This example measures *how early* the questions can leak:
//   * centralized storage (one holder) leaks the full two hours whenever
//     that holder is malicious;
//   * a planner-chosen node-joint geometry confines any leak to the final
//     holding period (minutes) -- the full-chain restore that the paper's
//     Rr metric counts almost never succeeds.
//
// Build & run:  ./build/examples/online_exam
#include <iostream>
#include <memory>

#include "cloud/cloud_store.hpp"
#include "dht/chord_network.hpp"
#include "emerge/planner.hpp"
#include "emerge/protocol.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace emergence;

struct ExamRun {
  bool leaked_over_an_hour_early = false;
  bool leaked_at_all = false;
  bool released_on_time = false;
};

ExamRun run_exam(core::PathShape shape, double malicious_fraction,
                 std::uint64_t seed) {
  sim::Simulator simulator;
  Rng rng(seed);
  dht::NetworkConfig net_config;
  net_config.run_maintenance = false;
  dht::ChordNetwork network(simulator, rng, net_config);
  network.bootstrap(200);
  cloud::CloudStore cloud;

  // The student coalition: a random subset of the DHT is malicious.
  core::Adversary adversary(core::Adversary::Config{
      core::AttackMode::kCovert, shape.k, /*share_threshold_m=*/1,
      crypto::CipherBackend::kChaCha20});
  Rng coalition_rng(seed ^ 0x5eed);
  for (const dht::NodeId& id : network.alive_ids()) {
    if (coalition_rng.chance(malicious_fraction))
      adversary.mark_malicious(id);
  }

  core::SessionConfig config;
  config.kind = core::SchemeKind::kJoint;
  config.shape = shape;
  config.emerging_time = 7200.0;  // exam starts in two hours

  core::TimedReleaseSession session(network, cloud, &adversary, config, seed);
  session.send(bytes_of("Q1: Prove Lemma 1 of Li & Palanisamy (ICDCS'17)."),
               "proctor-token");
  session.refresh_adversary_exposure();

  ExamRun result;
  // The student tries to restore the key every 10 minutes before the exam.
  for (double t = 60.0; t < config.emerging_time; t += 600.0) {
    simulator.run_until(session.start_time() + t);
    adversary.attempt_restore(simulator.now());
  }
  simulator.run();
  result.released_on_time = session.secret_released();
  if (adversary.earliest_secret_time().has_value()) {
    const double margin =
        session.release_time() - *adversary.earliest_secret_time();
    result.leaked_at_all = margin > 0.0;
    result.leaked_over_an_hour_early = margin > 3600.0;
  }
  return result;
}

}  // namespace

int main() {
  using namespace emergence;

  const double p = 0.25;  // the student controls 25% of the DHT
  const int trials = 25;
  std::cout << "online exam: questions sealed for 2 hours; student controls "
            << p * 100 << "% of the DHT; " << trials
            << " trials per configuration\n\n";

  // Centralized storage: a single holder knows the key for the whole wait.
  int central_big_leak = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const ExamRun run = run_exam(core::PathShape{1, 1}, p, 100 + trial);
    central_big_leak += run.leaked_over_an_hour_early;
  }
  std::cout << "centralized (k=1, l=1):   leaked >1h before the exam in "
            << central_big_leak << "/" << trials
            << " trials (expected ~ p = 25%)\n";

  // The planner's choice for p = 0.25 (capped for the 200-node demo DHT).
  core::PlannerConfig planner;
  planner.node_budget = 60;
  const core::Plan plan = core::plan_joint(p, planner);
  int strong_big_leak = 0, strong_any_leak = 0, on_time = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const ExamRun run = run_exam(plan.shape, p, 500 + trial);
    strong_big_leak += run.leaked_over_an_hour_early;
    strong_any_leak += run.leaked_at_all;
    on_time += run.released_on_time;
  }
  const double th_minutes = 7200.0 / static_cast<double>(plan.shape.l) / 60.0;
  std::cout << "planned (k=" << plan.shape.k << ", l=" << plan.shape.l
            << "):       leaked >1h early in " << strong_big_leak << "/"
            << trials << " trials; released on time in " << on_time << "/"
            << trials << "\n"
            << "                          (a malicious terminal holder may "
               "peek one holding period -- "
            << th_minutes << " min -- early: happened in " << strong_any_leak
            << "/" << trials << " trials)\n"
            << "analytic resilience of the planned geometry: R = " << plan.R()
            << "\n";

  return strong_big_leak <= central_big_leak ? 0 : 1;
}

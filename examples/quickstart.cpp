// Quickstart: send a self-emerging message through a simulated DHT.
//
// Demonstrates the whole pipeline of the paper's Fig. 1 in ~80 lines:
//   1. build a Chord network (the DHT entity),
//   2. a sender encrypts a message, uploads the ciphertext to the cloud and
//      routes the key through node-joint multipath onion paths,
//   3. virtual time passes; holders peel/hold/forward,
//   4. at the release time tr the key self-emerges and the receiver
//      decrypts -- and not a moment earlier.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "cloud/cloud_store.hpp"
#include "dht/chord_network.hpp"
#include "emerge/protocol.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace emergence;

  // -- the world: a 128-node Chord DHT plus an always-available cloud ------
  sim::Simulator simulator;
  Rng rng(/*seed=*/2017);
  dht::NetworkConfig net_config;
  net_config.run_maintenance = false;  // keep the walkthrough deterministic
  dht::ChordNetwork network(simulator, rng, net_config);
  network.bootstrap(128);
  cloud::CloudStore cloud;

  std::cout << "DHT up: " << network.alive_count() << " nodes\n";

  // -- the sender: k = 2 onion paths, l = 3 holders each, T = 1 hour -------
  core::SessionConfig config;
  config.kind = core::SchemeKind::kJoint;
  config.shape = core::PathShape{2, 3};
  config.emerging_time = 3600.0;

  core::TimedReleaseSession session(network, cloud, /*adversary=*/nullptr,
                                    config, /*seed=*/42);
  const std::string message =
      "Dear Bob -- this message was sealed at ts and could not be read "
      "before tr. -- Alice";
  const cloud::BlobId blob = session.send(bytes_of(message), "bob-token");

  std::cout << "message sealed; ciphertext blob " << blob.substr(0, 16)
            << "... uploaded to the cloud\n"
            << "release time tr = ts + " << config.emerging_time
            << "s; holding period th = " << session.holding_period()
            << "s per column\n";

  // -- before tr: the ciphertext is public, the key is hidden --------------
  simulator.run_until(session.release_time() - 60.0);
  std::cout << "\nt = " << simulator.now() << "s (one minute before tr):\n";
  std::cout << "  cloud download ok: "
            << (cloud.download(blob, "bob-token").status ==
                cloud::CloudStatus::kOk)
            << "  |  key released: " << session.secret_released() << "\n";
  if (session.secret_released() || session.receiver_decrypt("bob-token")) {
    std::cerr << "key emerged before tr -- this should not happen\n";
    return 1;
  }

  // -- at tr: the key self-emerges ------------------------------------------
  simulator.run_until(session.release_time() + 1.0);
  std::cout << "\nt = " << simulator.now() << "s (just past tr):\n";
  if (!session.secret_released() || !session.first_delivery_time()) {
    std::cerr << "key did not emerge at tr -- this should not happen\n";
    return 1;
  }
  std::cout << "  key released: " << session.secret_released()
            << " (delivered at t = " << *session.first_delivery_time()
            << ")\n";

  const auto plaintext = session.receiver_decrypt("bob-token");
  if (!plaintext.has_value()) {
    std::cerr << "decryption failed -- this should not happen\n";
    return 1;
  }
  std::cout << "  receiver decrypts: \"" << string_of(*plaintext) << "\"\n";

  if (string_of(*plaintext) != message) {
    std::cerr << "decrypted text does not match the original message\n";
    return 1;
  }

  std::cout << "\npackets sent " << session.report().packages_sent
            << ", terminal deliveries " << session.report().deliveries
            << ", stuck holders " << session.report().holders_stuck << "\n";
  std::cout << "QUICKSTART OK\n";
  return 0;
}

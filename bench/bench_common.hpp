// Shared plumbing for the figure-reproduction benches: the p sweep of the
// paper's evaluation, --runs/--threads flags, headers that echo the
// experimental setup, and the machine-readable BENCH_*.json artifact every
// sweep emits for trajectory tracking.
#pragma once

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "emerge/experiment/table.hpp"
#include "emerge/monte_carlo.hpp"
#include "emerge/sweep.hpp"
#include "obs/metrics.hpp"

namespace emergence::bench {

/// The paper sweeps the malicious rate p over [0, 0.5].
inline std::vector<double> paper_p_sweep(double step = 0.05) {
  std::vector<double> ps;
  for (double p = 0.0; p <= 0.5 + 1e-9; p += step) ps.push_back(p);
  return ps;
}

/// Parses a non-negative integer flag/env value; malformed input falls back
/// to `fallback` with a stderr note instead of aborting the whole bench on
/// an uncaught std::stoul exception.
inline std::size_t parse_count(const std::string& text, std::size_t fallback,
                               const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  // The '-' check matters: strtoull happily wraps "-100" to 2^64-100.
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    std::cerr << "# warning: ignoring malformed " << what << " value '"
              << text << "'\n";
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

/// Parses "--runs=N" (and "--quick" as a 100-run alias) from argv; defaults
/// to the paper's 1000 repetitions. EMERGENCE_BENCH_RUNS overrides both.
inline std::size_t parse_runs(int argc, char** argv,
                              std::size_t default_runs = 1000) {
  std::size_t runs = default_runs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--runs=", 0) == 0)
      runs = parse_count(arg.substr(7), runs, "--runs");
    if (arg == "--quick") runs = 100;
  }
  if (const char* env = std::getenv("EMERGENCE_BENCH_RUNS")) {
    runs = parse_count(env, runs, "EMERGENCE_BENCH_RUNS");
  }
  return runs;
}

/// Parses "--threads=N" from argv (EMERGENCE_BENCH_THREADS overrides).
/// 0 = auto (SweepRunner resolves it to the hardware concurrency). The
/// thread count never changes bench numbers, only wall-clock time.
inline std::size_t parse_threads(int argc, char** argv) {
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0)
      threads = parse_count(arg.substr(10), threads, "--threads");
  }
  if (const char* env = std::getenv("EMERGENCE_BENCH_THREADS")) {
    threads = parse_count(env, threads, "EMERGENCE_BENCH_THREADS");
  }
  return threads;
}

/// Builds the sweep engine every bench driver shares, honoring --threads.
inline core::SweepRunner make_runner(int argc, char** argv) {
  core::SweepOptions options;
  options.threads = parse_threads(argc, argv);
  return core::SweepRunner(options);
}

inline void print_setup(const std::string& figure, std::size_t runs) {
  std::cout << "# == " << figure << " ==\n"
            << "# setup: Monte Carlo over a simulated DHT population, "
            << runs << " runs per point (paper: 1000), seed fixed.\n"
            << "# columns: analytic model prediction and simulated estimate "
               "(R = min(Rr, Rd)).\n\n";
}

/// Wall-clock stopwatch for the sweep timing recorded in the JSON artifact.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// -- machine-readable sweep artifacts ----------------------------------------
//
// Every bench driver writes one BENCH_<name>.json next to its stdout tables
// so the bench trajectory can be tracked run-over-run. Schema (versioned;
// bump kBenchSchemaVersion on breaking changes):
//   { "schema_version": int, "bench": str, "scenario": str,
//     "root_seed": int, "runs": int, "threads": int, "wall_seconds": num,
//     "extra": { str: num, ... },
//     "metrics": { "counters": {...}, "gauges": {...},
//                  "histograms": { str: {count, min, max, mean, p50, p99} } },
//     "tables": [ { "name": str, "caption": str,
//                   "columns": [str, ...], "rows": [[num, ...], ...] } ] }
//
// "scenario" names what was run (a workload scenario, a figure, a pinned
// matrix) and "root_seed" is the seed the whole artifact derives from, so
// any tracked run can be replayed exactly. Drivers go through BenchReport
// below — the one shared writer — instead of hand-rolling the
// timer/json/write triple.

/// Bumped whenever the artifact layout changes shape: 2 added
/// schema_version itself, scenario and root_seed; 3 added the "metrics"
/// block (an obs::MetricsRegistry snapshot, always present — empty maps
/// when the driver publishes nothing).
inline constexpr int kBenchSchemaVersion = 3;

inline void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

inline void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no NaN/Inf
    return;
  }
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(old_precision);
}

/// Collects tables plus run metadata and serializes them as one JSON file.
class BenchJson {
 public:
  BenchJson(std::string bench, std::size_t runs, std::size_t threads)
      : bench_(std::move(bench)), runs_(runs), threads_(threads) {}

  void add_table(const core::FigureTable& table) { tables_.push_back(table); }

  /// Extra top-level scalar (e.g. "speedup": 4.2).
  void set_extra(const std::string& key, double value) {
    extra_.emplace_back(key, value);
  }

  /// Names the scenario the artifact describes and the root seed it can be
  /// replayed from (schema v2 fields; every driver sets them).
  void set_context(std::string scenario, std::uint64_t root_seed) {
    scenario_ = std::move(scenario);
    root_seed_ = root_seed;
  }

  /// The artifact's metrics block (schema v3): publish stats structs onto
  /// it via obs::publish before write().
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Writes BENCH_<bench>.json into `dir` (default: the working directory,
  /// overridable with EMERGENCE_BENCH_JSON_DIR). Returns the path written.
  std::string write(double wall_seconds) const {
    std::string dir = ".";
    if (const char* env = std::getenv("EMERGENCE_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + bench_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "# warning: could not open " << path
                << " for writing; no JSON artifact emitted\n";
      return path;
    }
    os << "{\n  \"schema_version\": " << kBenchSchemaVersion
       << ",\n  \"bench\": ";
    json_escape(os, bench_);
    os << ",\n  \"scenario\": ";
    json_escape(os, scenario_);
    os << ",\n  \"root_seed\": " << root_seed_;
    os << ",\n  \"runs\": " << runs_ << ",\n  \"threads\": " << threads_
       << ",\n  \"wall_seconds\": ";
    json_number(os, wall_seconds);
    os << ",\n  \"extra\": {";
    for (std::size_t i = 0; i < extra_.size(); ++i) {
      if (i > 0) os << ", ";
      json_escape(os, extra_[i].first);
      os << ": ";
      json_number(os, extra_[i].second);
    }
    os << "},\n  \"metrics\": ";
    metrics_.write_json(os, "  ");
    os << ",\n  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const core::FigureTable& table = tables_[t];
      os << (t > 0 ? "," : "") << "\n    {\n      \"name\": ";
      json_escape(os, table.title());
      os << ",\n      \"caption\": ";
      json_escape(os, table.caption());
      os << ",\n      \"columns\": [";
      for (std::size_t c = 0; c < table.headers().size(); ++c) {
        if (c > 0) os << ", ";
        json_escape(os, table.headers()[c]);
      }
      os << "],\n      \"rows\": [";
      for (std::size_t r = 0; r < table.rows().size(); ++r) {
        os << (r > 0 ? "," : "") << "\n        [";
        const std::vector<double>& row = table.rows()[r];
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (c > 0) os << ", ";
          json_number(os, row[c]);
        }
        os << "]";
      }
      os << "\n      ]\n    }";
    }
    os << "\n  ]\n}\n";
    std::cout << "# json: " << path << "\n";
    return path;
  }

 private:
  std::string bench_;
  std::string scenario_;
  std::uint64_t root_seed_ = 0;
  std::size_t runs_;
  std::size_t threads_;
  std::vector<std::pair<std::string, double>> extra_;
  std::vector<core::FigureTable> tables_;
  obs::MetricsRegistry metrics_;
};

/// The one shared emission path for bench artifacts: owns the wall timer
/// and the BenchJson, carries the schema-v2 context (scenario + root
/// seed), and writes exactly once. Replaces the per-driver
/// timer/json/write triple every bench/*.cpp used to hand-roll.
class BenchReport {
 public:
  BenchReport(std::string bench, std::size_t runs, std::size_t threads,
              std::string scenario, std::uint64_t root_seed)
      : json_(std::move(bench), runs, threads) {
    json_.set_context(std::move(scenario), root_seed);
  }

  void add_table(const core::FigureTable& table) { json_.add_table(table); }
  void set_extra(const std::string& key, double value) {
    json_.set_extra(key, value);
  }
  obs::MetricsRegistry& metrics() { return json_.metrics(); }
  double elapsed_seconds() const { return timer_.seconds(); }

  /// Writes the artifact; wall_seconds defaults to this report's lifetime.
  std::string finish() { return json_.write(timer_.seconds()); }
  std::string finish(double wall_seconds) { return json_.write(wall_seconds); }

 private:
  WallTimer timer_;
  BenchJson json_;
};

/// Appends delivery-latency percentiles (p50/p99/max, in virtual seconds
/// and in holding periods) to a table caption — the shared surfacing of
/// the e2e/fleet latency histograms in BENCH artifacts.
inline std::string latency_caption(const Histogram64& latency_us,
                                   double holding_period) {
  auto seconds = [](std::int64_t us) { return static_cast<double>(us) * 1e-6; };
  const double p50 = seconds(latency_us.percentile(0.50));
  const double p99 = seconds(latency_us.percentile(0.99));
  const double max = seconds(latency_us.max());
  std::string out = "latency_p50_s=" + std::to_string(p50) +
                    ", latency_p99_s=" + std::to_string(p99) +
                    ", latency_max_s=" + std::to_string(max);
  if (holding_period > 0.0) {
    out += ", latency_p50_periods=" + std::to_string(p50 / holding_period) +
           ", latency_p99_periods=" + std::to_string(p99 / holding_period) +
           ", latency_max_periods=" + std::to_string(max / holding_period);
  }
  return out;
}

}  // namespace emergence::bench

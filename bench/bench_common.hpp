// Shared plumbing for the figure-reproduction benches: the p sweep of the
// paper's evaluation, a --runs flag, and headers that echo the experimental
// setup.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "emerge/monte_carlo.hpp"

namespace emergence::bench {

/// The paper sweeps the malicious rate p over [0, 0.5].
inline std::vector<double> paper_p_sweep(double step = 0.05) {
  std::vector<double> ps;
  for (double p = 0.0; p <= 0.5 + 1e-9; p += step) ps.push_back(p);
  return ps;
}

/// Parses "--runs=N" (and "--quick" as a 100-run alias) from argv; defaults
/// to the paper's 1000 repetitions.
inline std::size_t parse_runs(int argc, char** argv,
                              std::size_t default_runs = 1000) {
  std::size_t runs = default_runs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--runs=", 0) == 0) runs = std::stoul(arg.substr(7));
    if (arg == "--quick") runs = 100;
  }
  if (const char* env = std::getenv("EMERGENCE_BENCH_RUNS")) {
    runs = std::stoul(env);
  }
  return runs;
}

inline void print_setup(const std::string& figure, std::size_t runs) {
  std::cout << "# == " << figure << " ==\n"
            << "# setup: Monte Carlo over a simulated DHT population, "
            << runs << " runs per point (paper: 1000), seed fixed.\n"
            << "# columns: analytic model prediction and simulated estimate "
               "(R = min(Rr, Rd)).\n\n";
}

}  // namespace emergence::bench

// Ablation: geometry sensitivity of the joint scheme.
//
// The planner picks (k, l) automatically; this bench shows *why*: it sweeps
// the replication factor k and path length l independently at a fixed
// malicious rate and prints the Rr/Rd trade-off -- k buys drop resilience
// and costs release resilience, l does the reverse (paper §III-C's
// trade-off discussion and Lemma 1).
//
// Purely analytic (no Monte-Carlo runs to shard); the JSON artifact keeps
// the trajectory format uniform across benches.
#include <iostream>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"
#include "emerge/resilience.hpp"

namespace {

using namespace emergence::core;

}  // namespace

int main() {
  const double p = 0.3;
  std::cout << "# == Ablation: joint-scheme geometry trade-off at p = 0.3 ==\n"
            << "# Rr falls and Rd rises with k; the reverse with l; "
               "Rr + Rd > 1 throughout (Lemma 1).\n\n";
  // Analytic-only sweep: no Monte-Carlo runs, so the root seed is moot (0).
  emergence::bench::BenchReport json("ablation_geometry", 0, 1,
                                     "geometry-ablation", 0);

  FigureTable k_table("sweep k (l = 40)", {"k", "Rr", "Rd", "sum"});
  for (std::size_t k = 1; k <= 12; ++k) {
    const Resilience r =
        analytic_resilience(SchemeKind::kJoint, p, PathShape{k, 40});
    k_table.add_row({static_cast<double>(k), r.release_ahead, r.drop,
                     r.release_ahead + r.drop});
  }
  k_table.print(std::cout);
  json.add_table(k_table);

  FigureTable l_table("sweep l (k = 8)", {"l", "Rr", "Rd", "sum"});
  for (std::size_t l : {1u, 2u, 5u, 10u, 20u, 40u, 80u, 160u, 320u}) {
    const Resilience r =
        analytic_resilience(SchemeKind::kJoint, p, PathShape{8, l});
    l_table.add_row({static_cast<double>(l), r.release_ahead, r.drop,
                     r.release_ahead + r.drop});
  }
  l_table.print(std::cout);
  json.add_table(l_table);
  json.finish();
  return 0;
}

// Microbenchmarks for the crypto substrate (google-benchmark): hashing,
// stream ciphers, AEAD, and Shamir split/combine throughput. These underpin
// the protocol-cost discussion (onion build/peel cost per holder).
#include <benchmark/benchmark.h>

#include "crypto/aead.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/shamir.hpp"

namespace {

using namespace emergence;
using namespace emergence::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_ChaCha20(benchmark::State& state) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    chacha20_xor(key, nonce, 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Aes256Ctr(benchmark::State& state) {
  const Aes aes(Bytes(32, 0x22));
  std::array<std::uint8_t, 12> nonce{};
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    aes_ctr_xor(aes, nonce, 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Aes256Ctr)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AeadSealOpen(benchmark::State& state) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x33));
  const Bytes nonce(12, 0x44);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x55);
  for (auto _ : state) {
    const Bytes sealed = aead_seal(key, nonce, msg, {});
    benchmark::DoNotOptimize(aead_open(key, sealed, {}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSealOpen)->Arg(256)->Arg(4096);

void BM_ShamirSplit(benchmark::State& state) {
  Drbg drbg(std::uint64_t{1});
  const Bytes secret(32, 0x66);  // layer-key sized
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = n / 2 + 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(shamir_split(secret, m, n, drbg));
}
BENCHMARK(BM_ShamirSplit)->Arg(3)->Arg(25)->Arg(100)->Arg(255);

void BM_ShamirCombine(benchmark::State& state) {
  Drbg drbg(std::uint64_t{2});
  const Bytes secret(32, 0x77);
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = n / 2 + 1;
  auto shares = shamir_split(secret, m, n, drbg);
  shares.resize(m);
  for (auto _ : state)
    benchmark::DoNotOptimize(shamir_combine(shares, m));
}
BENCHMARK(BM_ShamirCombine)->Arg(3)->Arg(25)->Arg(100)->Arg(255);

void BM_DrbgBytes(benchmark::State& state) {
  Drbg drbg(std::uint64_t{3});
  for (auto _ : state)
    benchmark::DoNotOptimize(drbg.bytes(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_DrbgBytes)->Arg(32)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();

// Unified performance suite for the simulation core.
//
// Runs each scenario as one deterministic world through four timed phases —
// bootstrap, lookup storm, put/get storm, and a live phase (maintenance +
// churn + concurrent timed-release sessions driven through tr) — and emits
// BENCH_perf.json so the wall-clock trajectory of the core is tracked
// run-over-run like every other bench artifact.
//
// Sanity gates make the suite CI-runnable: lookups must not fail on a
// healthy ring, stored keys must be retrievable, at least one session must
// deliver, and each scenario must finish inside a *generous* wall-clock
// budget (the perf-smoke CI job catches 10x regressions, not 10%). Any gate
// violation exits nonzero.
//
// Flags:
//   --population=N   run one custom scenario at this size instead of the
//                    pinned set (the 100k acceptance run:
//                    `perf_suite --population=100000 --backend=chord`)
//   --backend=chord|kademlia   backend for the custom scenario
//   --max-seconds=S  wall-clock budget per scenario (overrides the pinned
//                    defaults; 0 disables the budget gate)
//   --quick          pinned set without the 10k scenarios (fast local
//                    smoke; the perf-smoke CI job runs the full pinned set)
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cloud/cloud_store.hpp"
#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/churn_driver.hpp"
#include "dht/kademlia.hpp"
#include "emerge/e2e_runner.hpp"
#include "emerge/experiment/table.hpp"
#include "emerge/protocol.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace emergence;
using emergence::core::DhtBackend;

struct PerfScenario {
  std::string name;
  DhtBackend backend = DhtBackend::kChord;
  std::size_t population = 1000;
  std::size_t lookups = 2000;       ///< lookup-storm size
  std::size_t kv_ops = 500;         ///< put/get-storm size
  std::size_t sessions = 4;         ///< concurrent timed-release sessions
  double horizon = 600.0;           ///< virtual seconds of the live phase
  double lifetime_factor = 6.0;     ///< mean node lifetime = factor * horizon
  double budget_seconds = 60.0;     ///< generous wall-clock gate (0 = off)
};

struct PerfResult {
  double bootstrap_s = 0.0;
  double lookups_s = 0.0;
  double kv_s = 0.0;
  double live_s = 0.0;
  double total_s = 0.0;
  double mean_hops = 0.0;
  std::uint64_t lookup_failures = 0;
  std::size_t kv_misses = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t deaths = 0;
  std::uint64_t events_executed = 0;
  std::size_t max_queue_depth = 0;
  bool sane = true;
  bool within_budget = true;
};

PerfResult run_scenario(const PerfScenario& s) {
  PerfResult r;
  const emergence::bench::WallTimer total;

  sim::Simulator sim;
  Rng rng(0x9e3779b97f4a7c15ULL ^ s.population);

  // -- phase 1: bootstrap ------------------------------------------------------
  const emergence::bench::WallTimer t_boot;
  std::unique_ptr<dht::ChordNetwork> chord;
  std::unique_ptr<dht::KademliaNetwork> kademlia;
  dht::Network* net = nullptr;
  dht::LookupStats* stats = nullptr;
  if (s.backend == DhtBackend::kChord) {
    dht::NetworkConfig cfg;
    cfg.run_maintenance = true;
    cfg.stabilize_interval = 60.0;
    cfg.replica_repair_interval = 240.0;
    cfg.exact_join_fingers = false;  // O(log n) joins; fix_fingers converges
    chord = std::make_unique<dht::ChordNetwork>(sim, rng, cfg);
    chord->bootstrap(s.population);
    net = chord.get();
    stats = &chord->lookup_stats();
  } else {
    dht::KademliaConfig cfg;
    cfg.run_maintenance = true;
    cfg.republish_interval = 240.0;
    kademlia = std::make_unique<dht::KademliaNetwork>(sim, rng, cfg);
    kademlia->bootstrap(s.population);
    net = kademlia.get();
    stats = &kademlia->lookup_stats();
  }
  r.bootstrap_s = t_boot.seconds();

  // -- phase 2: lookup storm ---------------------------------------------------
  const emergence::bench::WallTimer t_lookup;
  for (std::size_t i = 0; i < s.lookups; ++i) {
    (void)net->lookup(
        dht::NodeId::hash_of_text("perf-lookup-" + std::to_string(i)));
  }
  r.lookups_s = t_lookup.seconds();
  r.mean_hops = stats->mean_hops();
  r.lookup_failures = stats->failures;

  // -- phase 3: put/get storm --------------------------------------------------
  const emergence::bench::WallTimer t_kv;
  const SharedBytes value =
      shared_bytes(Bytes(64, static_cast<std::uint8_t>(0xAB)));
  for (std::size_t i = 0; i < s.kv_ops; ++i) {
    net->put(dht::NodeId::hash_of_text("perf-kv-" + std::to_string(i)), value);
  }
  for (std::size_t i = 0; i < s.kv_ops; ++i) {
    if (net->get(dht::NodeId::hash_of_text("perf-kv-" + std::to_string(i))) ==
        nullptr) {
      ++r.kv_misses;
    }
  }
  r.kv_s = t_kv.seconds();

  // -- phase 4: live phase (maintenance + churn + sessions through tr) ---------
  const emergence::bench::WallTimer t_live;
  cloud::CloudStore cloud;
  std::vector<std::unique_ptr<core::TimedReleaseSession>> sessions;
  core::SessionConfig config;
  config.kind = core::SchemeKind::kJoint;
  config.shape = core::PathShape{2, 3};
  config.emerging_time = s.horizon;
  for (std::size_t i = 0; i < s.sessions; ++i) {
    sessions.push_back(std::make_unique<core::TimedReleaseSession>(
        *net, cloud, nullptr, config, 0xF00D + i));
    sessions[i]->send(bytes_of("perf-suite-payload"),
                      "receiver-" + std::to_string(i));
  }
  dht::ChurnConfig churn_cfg;
  churn_cfg.mean_lifetime = s.horizon * s.lifetime_factor;
  churn_cfg.replace_dead_nodes = true;
  dht::ChurnDriver churn(*net, churn_cfg);
  churn.start();
  sim.run_until(s.horizon + 5.0);
  churn.stop();
  for (const auto& session : sessions) {
    if (session->secret_released()) ++r.deliveries;
  }
  r.deaths = churn.deaths();
  r.live_s = t_live.seconds();

  r.events_executed = sim.executed_events();
  r.max_queue_depth = sim.max_queue_depth();
  r.total_s = total.seconds();

  r.sane = r.lookup_failures == 0 && r.kv_misses == 0 && r.deliveries >= 1;
  r.within_budget = s.budget_seconds <= 0.0 || r.total_s <= s.budget_seconds;
  return r;
}

std::vector<PerfScenario> pinned_scenarios(bool quick) {
  // Budgets are ~10x the wall clock measured on a single 2020-era core so
  // the CI gate trips on order-of-magnitude regressions only.
  std::vector<PerfScenario> set;
  auto add = [&](DhtBackend backend, std::size_t population, double budget) {
    PerfScenario s;
    s.backend = backend;
    s.population = population;
    s.budget_seconds = budget;
    s.name = core::to_string(backend) + "_" + std::to_string(population);
    set.push_back(std::move(s));
  };
  add(DhtBackend::kChord, 1000, 30.0);
  add(DhtBackend::kKademlia, 1000, 60.0);
  if (!quick) {
    add(DhtBackend::kChord, 10000, 120.0);
    add(DhtBackend::kKademlia, 10000, 300.0);
  }
  return set;
}

double parse_seconds(const std::string& text, double fallback) {
  try {
    return std::stod(text);
  } catch (...) {
    std::cerr << "# warning: ignoring malformed --max-seconds '" << text
              << "'\n";
    return fallback;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t population = 0;  // 0 = pinned set
  DhtBackend backend = DhtBackend::kChord;
  double max_seconds = -1.0;  // <0 = per-scenario defaults
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--population=", 0) == 0) {
      population =
          emergence::bench::parse_count(arg.substr(13), 0, "--population");
    } else if (arg == "--backend=kademlia") {
      backend = DhtBackend::kKademlia;
    } else if (arg == "--backend=chord") {
      backend = DhtBackend::kChord;
    } else if (arg.rfind("--max-seconds=", 0) == 0) {
      max_seconds = parse_seconds(arg.substr(14), max_seconds);
    } else if (arg == "--quick") {
      quick = true;
    }
  }

  std::vector<PerfScenario> scenarios;
  if (population > 0) {
    PerfScenario s;
    s.backend = backend;
    s.population = population;
    s.name = core::to_string(backend) + "_" + std::to_string(population);
    s.budget_seconds = 0.0;  // custom runs gate on sanity only by default
    scenarios.push_back(std::move(s));
  } else {
    scenarios = pinned_scenarios(quick);
  }
  if (max_seconds >= 0.0) {
    for (PerfScenario& s : scenarios) s.budget_seconds = max_seconds;
  }

  std::cout << "# == perf_suite: simulation-core scaling ==\n"
            << "# phases per scenario: bootstrap | " << scenarios[0].lookups
            << " lookups | " << scenarios[0].kv_ops
            << " put+get | live (maintenance + churn + "
            << scenarios[0].sessions << " sessions through tr over "
            << scenarios[0].horizon << " virtual s).\n\n";

  emergence::bench::BenchReport json(
      "perf", scenarios.size(), 1,
      population > 0 ? scenarios[0].name : "pinned-perf-set",
      0x9e3779b97f4a7c15ULL);
  core::FigureTable table(
      "perf_suite",
      {"population", "chord", "bootstrap_s", "lookups_s", "kv_s", "live_s",
       "total_s", "mean_hops", "deliveries", "deaths", "events", "max_queue",
       "budget_s", "pass"});
  table.set_caption(
      "per-phase wall-clock seconds per scenario; chord=1 for the Chord "
      "backend, 0 for Kademlia; pass=1 when sanity + budget gates hold");

  bool all_pass = true;
  for (const PerfScenario& s : scenarios) {
    const PerfResult r = run_scenario(s);
    const bool pass = r.sane && r.within_budget;
    all_pass = all_pass && pass;
    table.add_row({static_cast<double>(s.population),
                   s.backend == DhtBackend::kChord ? 1.0 : 0.0, r.bootstrap_s,
                   r.lookups_s, r.kv_s, r.live_s, r.total_s, r.mean_hops,
                   static_cast<double>(r.deliveries),
                   static_cast<double>(r.deaths),
                   static_cast<double>(r.events_executed),
                   static_cast<double>(r.max_queue_depth), s.budget_seconds,
                   pass ? 1.0 : 0.0});
    std::cout << s.name << ": bootstrap " << r.bootstrap_s << "s, "
              << "lookups " << r.lookups_s << "s (mean " << r.mean_hops
              << " hops, " << r.lookup_failures << " failures), kv " << r.kv_s
              << "s (" << r.kv_misses << " misses), live " << r.live_s
              << "s (" << r.deliveries << "/" << s.sessions << " delivered, "
              << r.deaths << " deaths, " << r.events_executed << " events), "
              << "total " << r.total_s << "s"
              << (pass ? "" : "  << FAILED") << "\n";
  }

  json.add_table(table);
  json.set_extra("scenarios", static_cast<double>(scenarios.size()));
  json.set_extra("all_pass", all_pass ? 1.0 : 0.0);
  json.finish();

  if (!all_pass) {
    std::cout << "\nperf_suite: FAILED (sanity or budget gate)\n";
    return 1;
  }
  std::cout << "\nperf_suite: all scenarios passed\n";
  return 0;
}

// End-to-end cross-validation sweep: runs the full protocol stack (DHT +
// crypto + simulator + adversary + churn) as Monte-Carlo fleets over the
// pinned scenario matrix and gates the release / drop / timing rates
// against the statistical engine's estimates at the same parameter points.
//
// Any gated divergence beyond the two-sample binomial bound exits nonzero —
// by construction that is a bug in one of the engines, not noise (see
// docs/architecture.md, "Two engines, one truth"). CI runs this as a smoke
// job with a reduced population and run count and uploads the JSON
// artifact.
//
// Flags: --runs=N (full-stack worlds per scenario, default 300), --quick
// (100), --threads=N (0 = auto; never changes results), --population=N
// (DHT size per world, default 100).
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "emerge/e2e_runner.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

std::size_t parse_population(int argc, char** argv) {
  std::size_t population = 100;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--population=", 0) == 0) {
      population = emergence::bench::parse_count(arg.substr(13), population,
                                                 "--population");
    }
  }
  return population;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv, 300);
  const std::size_t population = parse_population(argc, argv);
  // Stat-engine runs are ~1000x cheaper than full-stack worlds; a larger
  // sample shrinks its share of the comparison bound to near nothing.
  const std::size_t stat_runs = std::max<std::size_t>(2000, 20 * runs);

  SweepRunner sweeps = emergence::bench::make_runner(argc, argv);
  E2eRunner runner(sweeps);

  std::cout << "# == e2e cross-validation: full stack vs stat engine ==\n"
            << "# setup: " << runs << " full-stack worlds vs " << stat_runs
            << " stat runs per scenario, population " << population
            << ", z = 4 binomial gates.\n"
            << "# columns: full-stack rate, stat-engine rate, difference, "
               "allowed bound, pass.\n\n";

  emergence::bench::BenchReport json("e2e_crossval", runs, sweeps.threads(),
                                     "crossval-matrix", 0xE2E0C0DE);

  std::size_t failures = 0;
  std::size_t comparisons = 0;
  for (const E2eScenario& scenario :
       default_crossval_matrix(runs, population)) {
    const CrossValResult result = runner.cross_validate(scenario, stat_runs);

    FigureTable table(scenario.name,
                      {"metric", "full_stack", "stat_engine", "diff", "bound",
                       "pass"});
    std::string caption = "metrics:";
    for (std::size_t i = 0; i < result.metrics.size(); ++i) {
      const CrossValMetric& m = result.metrics[i];
      caption += " " + std::to_string(i) + "=" + m.metric;
      table.add_row({static_cast<double>(i), m.full_stack, m.stat_engine,
                     m.diff(), m.bound, m.pass ? 1.0 : 0.0});
      ++comparisons;
      if (!m.pass) ++failures;
      std::cout << scenario.name << " / " << m.metric << ": fs=" << m.full_stack
                << " stat=" << m.stat_engine << " diff=" << m.diff()
                << " bound=" << m.bound << (m.pass ? "" : "  << DIVERGENT")
                << "\n";
    }
    const double th = scenario.emerging_time /
                      static_cast<double>(scenario.session_shape().l);
    const emergence::dht::TransportStats& net = result.full_stack.transport;
    caption += "; holders_stuck=" +
               std::to_string(result.full_stack.holders_stuck) +
               ", churn_deaths=" +
               std::to_string(result.full_stack.churn_deaths) +
               ", max_delivery_offset_ns=" +
               std::to_string(result.full_stack.max_delivery_offset_ns) +
               "; " +
               emergence::bench::latency_caption(result.full_stack.latency_us,
                                                 th) +
               "; net=" + scenario.transport.describe() + " attempts=" +
               std::to_string(net.attempts) + " dropped=" +
               std::to_string(net.dropped) + " retried=" +
               std::to_string(net.retried) + " timed_out=" +
               std::to_string(net.timed_out) + " hop_p50_s=" +
               std::to_string(
                   static_cast<double>(net.hop_latency_us.percentile(0.5)) *
                   1e-6) +
               " hop_p99_s=" +
               std::to_string(
                   static_cast<double>(net.hop_latency_us.percentile(0.99)) *
                   1e-6);
    table.set_caption(caption);
    json.add_table(table);
  }

  json.set_extra("comparisons", static_cast<double>(comparisons));
  json.set_extra("failures", static_cast<double>(failures));
  json.set_extra("population", static_cast<double>(population));
  json.finish();

  if (failures > 0) {
    std::cerr << "\ne2e_crossval: " << failures << " of " << comparisons
              << " gated comparisons diverged beyond the binomial bound\n";
    return 1;
  }
  std::cout << "\ne2e_crossval: all " << comparisons
            << " gated comparisons within bounds\n";
  return 0;
}

// Reproduces Fig. 7(a)-(d): resilience under churn for all four schemes,
// with the emerging time T set to alpha times the mean node lifetime,
// alpha in {1, 2, 3, 5}.
//
// Expected shape (paper §IV-B2): the centralized / disjoint / joint schemes
// degrade rapidly as alpha grows (stored layer keys leak to replacement
// nodes; in-transit packages die with their holders); the key-share routing
// scheme stays near its churn-free resilience even at alpha = 5 for
// p < 0.3.
#include <iostream>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

FigureTable run_panel(SweepRunner& runner, double alpha, std::size_t runs) {
  FigureTable table(
      "Fig 7, alpha = " + std::to_string(static_cast<int>(alpha)),
      {"p", "central", "disjoint", "joint", "share", "central_mc",
       "disjoint_mc", "joint_mc", "share_mc"});
  table.set_caption(
      "R = min(Rr, Rd); T = alpha * mean node lifetime; N = 10000");
  for (double p : emergence::bench::paper_p_sweep()) {
    EvalPoint point;
    point.p = p;
    point.population = 10000;
    point.planner.node_budget = 10000;
    point.runs = runs;
    point.churn = ChurnSpec::with_alpha(alpha);
    point.seed = 0xF170 + static_cast<std::uint64_t>(alpha * 100 + p * 1000);

    const EvalResult central =
        runner.evaluate_point(SchemeKind::kCentralized, point);
    const EvalResult disjoint =
        runner.evaluate_point(SchemeKind::kDisjoint, point);
    const EvalResult joint = runner.evaluate_point(SchemeKind::kJoint, point);
    const EvalResult share = runner.evaluate_point(SchemeKind::kShare, point);
    table.add_row({p, central.R_analytic(), disjoint.R_analytic(),
                   joint.R_analytic(), share.R_analytic(), central.R_mc(),
                   disjoint.R_mc(), joint.R_mc(), share.R_mc()});
  }
  table.print(std::cout);
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv, 500);
  SweepRunner runner = emergence::bench::make_runner(argc, argv);
  emergence::bench::print_setup(
      "Fig. 7: churn resilience, alpha = T / node lifetime", runs);
  emergence::bench::BenchReport json("fig7_churn_resilience", runs,
                                     runner.threads(), "fig7-churn-resilience",
                                     0xF170);
  for (double alpha : {1.0, 2.0, 3.0, 5.0}) {
    json.add_table(run_panel(runner, alpha, runs));
  }
  json.finish();
  return 0;
}

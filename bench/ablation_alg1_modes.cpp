// Ablation: Algorithm 1 accumulation modes.
//
// Compares the paper's Algorithm 1 exactly as printed (cumulative pr/pd,
// deterministic d dead shares) against the independent-column variant and
// the stochastic-deaths model, and validates each against Monte Carlo.
// The printed model is optimistic about drop resilience when n = N/l is
// small because it replaces Binomial(n, pdead) deaths with their floored
// expectation.
#include <iostream>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv, 500);
  SweepRunner runner = emergence::bench::make_runner(argc, argv);
  std::cout << "# == Ablation: Algorithm 1 modes (share scheme, alpha = 3) ==\n"
            << "# as_printed / independent / stochastic: analytic R of each "
               "mode\n"
            << "# mc: Monte-Carlo R of the protocol planned with the "
               "stochastic mode\n\n";
  emergence::bench::BenchReport json("ablation_alg1_modes", runs,
                                     runner.threads(), "alg1-modes-ablation",
                                     0xa1b1);

  for (std::size_t budget : {100u, 1000u, 10000u}) {
    FigureTable table(
        "Algorithm 1 modes, N = " + std::to_string(budget),
        {"p", "as_printed", "independent", "stochastic", "mc"});
    for (double p : emergence::bench::paper_p_sweep()) {
      EvalPoint point;
      point.p = p;
      point.population = 10000;
      point.planner.node_budget = budget;
      point.runs = runs;
      point.churn = ChurnSpec::with_alpha(3.0);
      point.seed = 0xa1b1 + budget + static_cast<std::uint64_t>(p * 1000);

      // Evaluate the analytic prediction of each mode on its own preferred
      // geometry.
      const SharePlan printed =
          plan_share(p, point.planner, point.churn, Alg1Mode::kAsPrinted);
      const SharePlan independent = plan_share(
          p, point.planner, point.churn, Alg1Mode::kIndependentColumns);
      const SharePlan stochastic = plan_share(
          p, point.planner, point.churn, Alg1Mode::kStochasticDeaths);
      const EvalResult mc = runner.evaluate_point(SchemeKind::kShare, point);

      table.add_row(
          {p, printed.R(), independent.R(), stochastic.R(), mc.R_mc()});
    }
    table.print(std::cout);
    json.add_table(table);
  }
  json.finish();
  return 0;
}

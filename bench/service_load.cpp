// Service-scale traffic generation over the workload subsystem.
//
// Drives named ScenarioSpecs through workload::run_scenario — open-loop
// session fleets (arrival processes + pluggable lifetime churn + optional
// coalitions) against one shared world per scenario world — and emits
// BENCH_service.json with throughput, delivery-latency percentiles and
// per-scenario release/drop rates. The acceptance configuration pushes
// >= 500k sessions through a 100k-node Chord world on one core:
//
//   service_load --scenario=metro-diurnal --population=100000
//                --sessions=500000     (one command line)
//
// Sanity gates make the driver CI-runnable (the workload-smoke job runs
// every named scenario at reduced scale): the whole session budget must
// start and be reaped, every delivered session must land exactly at tr
// (p50 == p99 == max == T), spot-checked receiver decrypts must match the
// sent payload, and --check-invariance re-runs each scenario at 1, 2 and 8
// threads and gates bit-identical tally AND transport fingerprints. Lossy
// transports additionally gate nonzero drop/retransmit counters. Any
// violation (or a malformed --scenario spec) exits nonzero with an
// error.hpp diagnostic.
//
// Flags:
//   --scenario=NAME[:key=value,...]  scenario to run (parse_scenario syntax)
//   --list-scenarios                 print the registry and exit 0
//   --matrix                         run every named scenario
//   --population=N --sessions=N --worlds=N --seed=N   scale overrides
//   --threads=N                      sweep pool size (never changes tallies)
//   --domains=N                      within-world parallel domains (0 =
//                                    legacy serial loop; >= 1 = the windowed
//                                    domain executor, see sim/domain_executor)
//   --domains-compare=A,B,...        run each scenario once per listed domain
//                                    count and gate bit-identical tally AND
//                                    transport fingerprints across all of
//                                    them; records wall times and the
//                                    first-vs-last speedup in the JSON
//   --min-speedup=X                  fail when the measured domains-compare
//                                    speedup falls below X (0 = record only;
//                                    single-core CI hosts should keep this
//                                    well under 1.0)
//   --max-seconds=S                  wall-clock gate per scenario (0 = off)
//   --check-invariance               1-vs-8-thread bit-identity gate
//   --progress                       heartbeat lines on long runs
//   --trace-out=PATH                 write a Chrome trace_event JSON of the
//                                    sampled session/hop spans (Perfetto-
//                                    loadable); tracing never changes the
//                                    fingerprints (CI gates this)
//   --trace-sample=RATE              fraction of sessions/messages traced
//                                    (default 1.0; keyed on content, so the
//                                    sampled set is domain/thread invariant)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "obs/bridge.hpp"
#include "obs/trace.hpp"
#include "workload/scenario.hpp"
#include "workload/session_fleet.hpp"

namespace {

using namespace emergence;
using workload::FleetTally;
using workload::ScenarioSpec;

struct Options {
  std::string scenario;
  bool help = false;
  bool list = false;
  bool matrix = false;
  bool check_invariance = false;
  bool progress = false;
  bool quick = false;  // accepted for bench-harness symmetry; no effect here
  std::size_t population = 0;  // 0 = scenario default
  std::size_t sessions = 0;
  std::size_t worlds = 0;
  std::size_t domains = 0;
  bool domains_set = false;
  std::vector<std::size_t> domains_compare;  // empty = no compare mode
  double min_speedup = 0.0;                  // 0 = record only
  std::uint64_t seed = 0;
  bool seed_set = false;
  double max_seconds = 0.0;  // 0 = no wall gate
  std::size_t threads = 0;   // 0 = auto
  std::string trace_out;     // empty = tracing off
  double trace_sample = 1.0;
};

/// Registers every service_load knob on `table` (the shared OptionTable
/// surface: one registration serves --flag parsing and --help).
void add_load_options(OptionTable& table, Options& o) {
  table.add_string("scenario", "NAME[:k=v,...]",
                   "scenario to run (parse_scenario syntax)", &o.scenario);
  table.add_flag("help", "print this help and exit", &o.help);
  table.add_flag("list-scenarios", "print the registry and exit", &o.list);
  table.add_flag("matrix", "run every named scenario", &o.matrix);
  table.add_flag("check-invariance", "1-vs-8-thread bit-identity gate",
                 &o.check_invariance);
  table.add_flag("progress", "heartbeat lines on long runs", &o.progress);
  table.add_flag("quick", "accepted for bench-harness symmetry", &o.quick);
  table.add_size("population", "override the scenario population",
                 &o.population);
  table.add_size("sessions", "override the session budget", &o.sessions);
  table.add_size("worlds", "override the world count", &o.worlds);
  table.add("domains", "N",
            "within-world parallel domains (0 = legacy serial loop)",
            [&o](const std::string& v) {
              o.domains = parse_size_option("domains", v);
              o.domains_set = true;
            });
  table.add("domains-compare", "A,B,...",
            "run per listed domain count and gate bit-identical fingerprints",
            [&o](const std::string& v) {
              std::size_t pos = 0;
              while (pos <= v.size()) {
                const std::size_t comma = std::min(v.find(',', pos), v.size());
                o.domains_compare.push_back(parse_size_option(
                    "domains-compare", v.substr(pos, comma - pos)));
                pos = comma + 1;
              }
            });
  table.add_real("min-speedup",
                 "fail when the domains-compare speedup falls below this",
                 &o.min_speedup);
  table.add("seed", "N", "override the scenario root seed",
            [&o](const std::string& v) {
              o.seed = parse_u64_option("seed", v);
              o.seed_set = true;
            });
  table.add_real("max-seconds", "wall-clock gate per scenario (0 = off)",
                 &o.max_seconds);
  table.add_size("threads",
                 "sweep pool size (0 = auto; never changes tallies)",
                 &o.threads);
  table.add_string("trace-out", "PATH",
                   "write a Chrome trace_event JSON of the sampled spans",
                   &o.trace_out);
  table.add_real("trace-sample",
                 "fraction of sessions/messages traced (default 1.0)",
                 &o.trace_sample);
}


void apply_scale(ScenarioSpec& spec, const Options& o) {
  if (o.population > 0) spec.population = o.population;
  if (o.sessions > 0) spec.sessions = o.sessions;
  if (o.worlds > 0) spec.worlds = o.worlds;
  if (o.domains_set) spec.domains = o.domains;
  if (o.seed_set) spec.seed = o.seed;
  spec.validate();
}

void list_scenarios() {
  std::cout << "# named workload scenarios (service_load --scenario=<name>)\n";
  for (const ScenarioSpec& s : workload::scenario_registry()) {
    std::cout << "  " << s.name << "\n    " << s.summary << "\n    backend="
              << core::to_string(s.backend)
              << " scheme=" << core::to_string(s.scheme)
              << " arrival=" << workload::to_string(s.arrival.kind)
              << " rate=" << s.arrival.rate
              << " lifetime=" << workload::to_string(s.lifetime.kind)
              << " T=" << s.emerging_time << " alpha=" << s.churn_alpha
              << " p=" << s.malicious_p
              << " population=" << s.population << " sessions=" << s.sessions
              << "\n";
  }
}

struct ScenarioOutcome {
  FleetTally tally;
  double wall_seconds = 0.0;
  bool pass = true;
  std::string failure;
};

void fail(ScenarioOutcome& out, const std::string& why) {
  out.pass = false;
  if (!out.failure.empty()) out.failure += "; ";
  out.failure += why;
}

ScenarioOutcome run_one(const ScenarioSpec& spec, const Options& o,
                        core::SweepRunner& sweeps, obs::Tracer* tracer) {
  ScenarioOutcome out;
  workload::FleetProgress progress;
  if (o.progress) {
    progress = [&spec](double now, std::uint64_t reaped,
                       std::uint64_t started) {
      std::cout << "#   " << spec.name << " t=" << now << "vs reaped=" << reaped
                << "/" << spec.sessions << " started=" << started << "\n";
    };
  }

  const bench::WallTimer timer;
  out.tally = workload::run_scenario(sweeps, spec, progress, tracer);
  out.wall_seconds = timer.seconds();
  const FleetTally& t = out.tally;

  // -- sanity gates ------------------------------------------------------------
  // A transport that keeps the exactness contract (always true for the
  // ideal default) pins every delivery to exactly tr; lossy/partitioned
  // transports instead get the hop-local lateness bound (reap_slack).
  const bool exact = spec.exact_delivery();
  const bool lossy_transport =
      spec.transport.can_drop() || spec.transport.has_partition();
  if (t.sessions_started != spec.sessions)
    fail(out, "did not start the full session budget");
  if (t.trials() != spec.sessions)
    fail(out, "reaped trials != session budget");
  if (t.sessions_delivered + t.tally.drop.successes() != t.sessions_started)
    fail(out, "delivered + dropped != started");
  if (exact && t.delivered_on_time != t.sessions_delivered)
    fail(out, "late delivery (timing contract violated)");
  if (!exact &&
      static_cast<double>(t.max_delivery_offset_ns) >
          spec.transport.reap_slack(spec.shape.l) * 1e9) {
    fail(out, "late delivery beyond the transport reap_slack bound");
  }
  if (t.payload_mismatches != 0) fail(out, "receiver decrypt mismatch");
  if (exact && t.sessions_delivered > 0) {
    const std::int64_t expect_us = std::llround(spec.emerging_time * 1e6);
    if (t.latency_us.percentile(0.5) != expect_us ||
        t.latency_us.max() != expect_us) {
      fail(out, "latency percentiles off T");
    }
  }
  // Covert holders forward everything; without churn or transport loss
  // every session delivers.
  if (!spec.churn && spec.attack_mode == core::AttackMode::kCovert &&
      !lossy_transport && t.sessions_delivered != t.sessions_started) {
    fail(out, "drops in a churn-free covert scenario");
  }
  // A lossy transport that carried real traffic must show its counters:
  // the expected-drop threshold (20) keeps the gate off statistical noise.
  if (spec.transport.drop_probability > 0.0 &&
      static_cast<double>(t.transport.attempts) *
              spec.transport.drop_probability >=
          20.0) {
    if (t.transport.dropped == 0)
      fail(out, "lossy transport recorded zero drops");
    if (spec.transport.max_retries > 0 && t.transport.retried == 0)
      fail(out, "lossy transport with retries recorded zero retransmits");
  }
  if (o.max_seconds > 0.0 && out.wall_seconds > o.max_seconds)
    fail(out, "wall-clock budget exceeded");

  if (o.check_invariance) {
    // Tallies must be a pure function of the spec: re-run on pools of 1, 2
    // and 8 workers and require bit-identical protocol AND transport
    // fingerprints (the transport digest covers counters and the exact
    // hop-latency histogram, so retransmit scheduling cannot silently
    // depend on the pool size).
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      core::SweepRunner pool(core::SweepOptions{threads, 64});
      const FleetTally rerun = workload::run_scenario(pool, spec);
      if (rerun.fingerprint() != t.fingerprint() ||
          rerun.transport.fingerprint() != t.transport.fingerprint()) {
        fail(out, "tallies not thread-count invariant at " +
                      std::to_string(threads) + " threads");
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  OptionTable cli;
  add_load_options(cli, o);
  try {
    cli.parse_cli(argc, argv);
  } catch (const Error& e) {
    std::cerr << "service_load: " << e.what() << "\n";
    return 2;
  }
  if (const char* env = std::getenv("EMERGENCE_BENCH_THREADS")) {
    o.threads = bench::parse_count(env, o.threads, "EMERGENCE_BENCH_THREADS");
  }
  if (o.help) {
    std::cout << "service_load: open-loop session fleets over shared worlds\n"
              << cli.help();
    return 0;
  }
  if (o.list) {
    list_scenarios();
    return 0;
  }

  std::vector<ScenarioSpec> specs;
  try {
    if (o.matrix) {
      for (ScenarioSpec spec : workload::scenario_registry()) {
        apply_scale(spec, o);
        specs.push_back(std::move(spec));
      }
    } else {
      ScenarioSpec spec = workload::parse_scenario(
          o.scenario.empty() ? "poisson-open" : o.scenario);
      apply_scale(spec, o);
      specs.push_back(std::move(spec));
    }
  } catch (const Error& e) {
    std::cerr << "service_load: invalid scenario: " << e.what() << "\n";
    return 2;
  }

  core::SweepRunner sweeps(core::SweepOptions{o.threads, 64});
  std::cout << "# == service_load: open-loop session fleets over shared "
               "worlds ==\n"
            << "# " << specs.size() << " scenario(s), pool of "
            << sweeps.threads() << " thread(s); tallies are bit-identical at "
               "any thread count.\n\n";

  // One tracer for the whole invocation (null = off). Its sampling streams
  // are keyed on content and forked from its own seed, so running with a
  // tracer cannot change any fingerprint the gates below compare.
  std::optional<obs::Tracer> tracer;
  if (!o.trace_out.empty()) {
    tracer.emplace(specs[0].seed, o.trace_sample);
    std::cout << "# tracing to " << o.trace_out << " (sample rate "
              << o.trace_sample << ")\n\n";
  }

  bench::BenchReport json("service", specs.size(), sweeps.threads(),
                          o.matrix ? "matrix" : specs[0].name, specs[0].seed);
  core::FigureTable table(
      "service_load",
      {"idx", "population", "sessions", "worlds", "domains", "wall_s",
       "sessions_per_s",
       "horizon_vs", "latency_p50_s", "latency_p99_s", "latency_max_s",
       "release_rate", "drop_rate", "deaths", "transients", "peak_live",
       "arena_slots", "events", "net_attempts", "net_dropped", "net_retried",
       "net_timed_out", "hop_p50_s", "hop_p99_s", "hop_max_s", "pass"});
  std::string caption = "scenarios:";

  bool all_pass = true;
  double compare_speedup = 0.0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ScenarioSpec& base_spec = specs[i];
    // Compare mode runs the scenario once per listed domain count and gates
    // bit-identical tally AND transport fingerprints across all of them —
    // the executor's core determinism claim, as a shippable CI gate.
    std::vector<std::size_t> domain_counts = o.domains_compare;
    if (domain_counts.empty()) domain_counts.push_back(base_spec.domains);
    std::vector<double> walls;
    std::uint64_t first_fp = 0, first_tfp = 0;
    caption += " " + std::to_string(i) + "=" + base_spec.name;

    for (std::size_t run = 0; run < domain_counts.size(); ++run) {
      ScenarioSpec spec = base_spec;
      spec.domains = domain_counts[run];
      std::cout << "# running " << spec.name << " (population "
                << spec.population << ", " << spec.sessions << " sessions, "
                << spec.worlds << " world(s), domains=" << spec.domains
                << ")\n";
      ScenarioOutcome out;
      try {
        spec.validate();
        // Only the first run of a compare set feeds the tracer — re-runs
        // would duplicate every sampled span in the export.
        out = run_one(spec, o, sweeps,
                      run == 0 && tracer.has_value() ? &*tracer : nullptr);
      } catch (const Error& e) {
        out.pass = false;
        out.failure = e.what();
      }
      const FleetTally& t = out.tally;
      walls.push_back(out.wall_seconds);
      if (run == 0) {
        first_fp = t.fingerprint();
        first_tfp = t.transport.fingerprint();
        obs::publish(json.metrics(), t, {{"scenario", base_spec.name}});
      } else if (t.fingerprint() != first_fp ||
                 t.transport.fingerprint() != first_tfp) {
        fail(out, "tallies not domain-count invariant (domains=" +
                      std::to_string(spec.domains) + " vs " +
                      std::to_string(domain_counts[0]) + ")");
      }
      if (!o.domains_compare.empty() && run + 1 == domain_counts.size()) {
        // First-vs-last wall ratio: ~1.0 on single-core hosts (the windowed
        // schedule adds only barrier overhead), > 1 with real cores.
        compare_speedup =
            out.wall_seconds > 0.0 ? walls.front() / out.wall_seconds : 0.0;
        if (o.min_speedup > 0.0 && compare_speedup < o.min_speedup) {
          fail(out, "domains-compare speedup " +
                        std::to_string(compare_speedup) + " below --min-speedup");
        }
        for (std::size_t d = 0; d < t.events_per_domain.size(); ++d) {
          json.set_extra("events_domain_" + std::to_string(d),
                         static_cast<double>(t.events_per_domain[d]));
        }
      }
      all_pass = all_pass && out.pass;

    const double throughput =
        out.wall_seconds > 0.0
            ? static_cast<double>(t.sessions_started) / out.wall_seconds
            : 0.0;
    auto us_to_s = [](std::int64_t us) {
      return static_cast<double>(us) * 1e-6;
    };
    table.add_row({static_cast<double>(i),
                   static_cast<double>(spec.population),
                   static_cast<double>(spec.sessions),
                   static_cast<double>(spec.worlds),
                   static_cast<double>(spec.domains), out.wall_seconds,
                   throughput, t.horizon,
                   us_to_s(t.latency_us.percentile(0.5)),
                   us_to_s(t.latency_us.percentile(0.99)),
                   us_to_s(t.latency_us.max()), t.release_rate(),
                   t.drop_rate(), static_cast<double>(t.churn_deaths),
                   static_cast<double>(t.churn_transients),
                   static_cast<double>(t.peak_live_sessions),
                   static_cast<double>(t.arena_slots),
                   static_cast<double>(t.events_executed),
                   static_cast<double>(t.transport.attempts),
                   static_cast<double>(t.transport.dropped),
                   static_cast<double>(t.transport.retried),
                   static_cast<double>(t.transport.timed_out),
                   us_to_s(t.transport.hop_latency_us.percentile(0.5)),
                   us_to_s(t.transport.hop_latency_us.percentile(0.99)),
                   us_to_s(t.transport.hop_latency_us.max()),
                   out.pass ? 1.0 : 0.0});

    std::cout << spec.name << " [domains=" << spec.domains << "]: "
              << t.sessions_started << " sessions in "
              << out.wall_seconds << "s wall (" << throughput
              << "/s), horizon " << t.horizon << "vs, "
              << t.sessions_delivered << " delivered ("
              << bench::latency_caption(t.latency_us, spec.holding_period())
              << "), release " << t.release_rate() << ", drop "
              << t.drop_rate() << ", churn " << t.churn_deaths << "d/"
              << t.churn_transients << "t, peak live "
              << t.peak_live_sessions << " in " << t.arena_slots
              << " slots, " << t.events_executed << " events, net "
              << t.transport.attempts << "a/" << t.transport.dropped << "d/"
              << t.transport.retried << "r/" << t.transport.timed_out
              << "to hop_p50 "
              << static_cast<double>(t.transport.hop_latency_us.percentile(0.5)) *
                     1e-6
              << "s hop_p99 "
              << static_cast<double>(t.transport.hop_latency_us.percentile(0.99)) *
                     1e-6
              << "s, fingerprint " << t.fingerprint() << " (transport "
              << t.transport.fingerprint() << ")"
              << (out.pass ? "" : "  << FAILED: " + out.failure)
              << "\n\n";
    }
    if (!o.domains_compare.empty()) {
      std::cout << "# " << base_spec.name
                << " domains-compare speedup (first vs last): "
                << compare_speedup << "\n\n";
    }
  }

  table.set_caption(caption);
  json.add_table(table);
  json.set_extra("all_pass", all_pass ? 1.0 : 0.0);
  json.set_extra("check_invariance", o.check_invariance ? 1.0 : 0.0);
  if (!o.domains_compare.empty()) {
    json.set_extra("domains_compare", 1.0);
    json.set_extra("speedup", compare_speedup);
    json.set_extra("min_speedup", o.min_speedup);
  }
  json.finish();

  if (tracer.has_value()) {
    std::ofstream trace_os(o.trace_out);
    if (!trace_os) {
      std::cerr << "service_load: could not open --trace-out path '"
                << o.trace_out << "'\n";
      return 2;
    }
    tracer->write_chrome_trace(trace_os);
    std::cout << "# trace: " << o.trace_out << " (" << tracer->event_count()
              << " events)\n";
  }

  if (!all_pass) {
    std::cerr << "\nservice_load: FAILED (sanity, invariance or budget "
                 "gate)\n";
    return 1;
  }
  std::cout << "service_load: all scenarios passed\n";
  return 0;
}

// Reproduces Fig. 8: resilience of the key-share routing scheme when the
// number of nodes available for path construction shrinks from 10000 to
// 5000, 1000 and 100 (alpha = 3).
//
// Expected shape (paper §IV-B3): 5000 nodes track the 10000-node curve;
// 1000 nodes hold R > 0.95 to p ~ 0.26; 100 nodes hold R > 0.9 to p ~ 0.14.
#include <iostream>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv);
  SweepRunner runner = emergence::bench::make_runner(argc, argv);
  emergence::bench::print_setup(
      "Fig. 8: key-share routing cost (node budget) sweep, alpha = 3", runs);
  emergence::bench::BenchReport json("fig8_share_cost", runs, runner.threads(),
                                     "fig8-share-cost", 0xF180);

  const std::vector<std::size_t> budgets = {100, 1000, 5000, 10000};
  FigureTable table("Fig 8: share-scheme resilience vs node budget",
                    {"p", "N100", "N1000", "N5000", "N10000", "N100_mc",
                     "N1000_mc", "N5000_mc", "N10000_mc"});
  table.set_caption("R = min(Rr, Rd); alpha = 3; population 10000");

  for (double p : emergence::bench::paper_p_sweep()) {
    std::vector<double> row{p};
    std::vector<double> mc_row;
    for (std::size_t budget : budgets) {
      EvalPoint point;
      point.p = p;
      point.population = 10000;
      point.planner.node_budget = budget;
      point.runs = runs;
      point.churn = ChurnSpec::with_alpha(3.0);
      point.seed = 0xF180 + budget + static_cast<std::uint64_t>(p * 1000);
      const EvalResult share = runner.evaluate_point(SchemeKind::kShare, point);
      row.push_back(share.R_analytic());
      mc_row.push_back(share.R_mc());
    }
    row.insert(row.end(), mc_row.begin(), mc_row.end());
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  json.add_table(table);
  json.finish();
  return 0;
}

// Sweep-engine acceptance bench: a Fig. 6-style sweep (4 schemes x 9 values
// of the malicious rate p x --runs Monte-Carlo repetitions) executed twice —
// once on a single thread and once on the parallel pool (--threads, default
// 8) — verifying that every EvalResult field is bit-identical across the two
// and reporting the wall-clock speedup. Emits BENCH_sweep.json.
//
// Note: the speedup is bounded by the physical core count; on a 1-core host
// the parallel pass measures pure engine overhead (expect ~1x).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

constexpr SchemeKind kSchemes[] = {SchemeKind::kCentralized,
                                   SchemeKind::kDisjoint, SchemeKind::kJoint,
                                   SchemeKind::kShare};

std::vector<double> nine_point_sweep() {
  std::vector<double> ps;
  for (int i = 1; i <= 9; ++i) ps.push_back(0.05 * i);
  return ps;
}

EvalPoint sweep_point(double p, std::size_t runs) {
  EvalPoint point;
  point.p = p;
  point.population = 10000;
  point.planner.node_budget = 10000;
  point.runs = runs;
  point.seed = 0x5eed + static_cast<std::uint64_t>(p * 1000);
  return point;
}

std::vector<EvalResult> run_sweep(SweepRunner& runner, std::size_t runs) {
  std::vector<EvalResult> results;
  for (double p : nine_point_sweep()) {
    for (SchemeKind kind : kSchemes) {
      results.push_back(runner.evaluate_point(kind, sweep_point(p, runs)));
    }
  }
  return results;
}

bool bit_identical(const EvalResult& a, const EvalResult& b) {
  return a.kind == b.kind && a.shape.k == b.shape.k &&
         a.shape.l == b.shape.l && a.nodes_used == b.nodes_used &&
         a.analytic.release_ahead == b.analytic.release_ahead &&
         a.analytic.drop == b.analytic.drop &&
         a.monte_carlo.release_ahead == b.monte_carlo.release_ahead &&
         a.monte_carlo.drop == b.monte_carlo.drop &&
         a.release_stderr == b.release_stderr &&
         a.drop_stderr == b.drop_stderr &&
         a.mean_compromised_suffix == b.mean_compromised_suffix;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv);
  std::size_t threads = emergence::bench::parse_threads(argc, argv);
  if (threads == 0) threads = 8;

  std::cout << "# == Sweep engine: serial vs " << threads
            << "-thread wall clock ==\n"
            << "# Fig. 6-style: 4 schemes x 9 p values x " << runs
            << " runs, no churn, N = 10000.\n\n";

  SweepRunner serial(SweepOptions{1, 64});
  const emergence::bench::WallTimer serial_timer;
  const std::vector<EvalResult> serial_results = run_sweep(serial, runs);
  const double serial_seconds = serial_timer.seconds();

  SweepRunner parallel(SweepOptions{threads, 64});
  const emergence::bench::WallTimer parallel_timer;
  const std::vector<EvalResult> parallel_results = run_sweep(parallel, runs);
  const double parallel_seconds = parallel_timer.seconds();

  bool identical = serial_results.size() == parallel_results.size();
  for (std::size_t i = 0; identical && i < serial_results.size(); ++i) {
    identical = bit_identical(serial_results[i], parallel_results[i]);
  }
  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;

  FigureTable table("sweep results (identical at every thread count)",
                    {"p", "central_mc", "disjoint_mc", "joint_mc", "share_mc"});
  for (std::size_t row = 0; row * 4 < parallel_results.size(); ++row) {
    table.add_row({0.05 * static_cast<double>(row + 1),
                   parallel_results[row * 4].R_mc(),
                   parallel_results[row * 4 + 1].R_mc(),
                   parallel_results[row * 4 + 2].R_mc(),
                   parallel_results[row * 4 + 3].R_mc()});
  }
  table.print(std::cout);

  std::cout << "# serial:   " << serial_seconds << " s\n"
            << "# parallel: " << parallel_seconds << " s on " << threads
            << " threads\n"
            << "# speedup:  " << speedup << "x\n"
            << "# bit-identical: " << (identical ? "yes" : "NO") << "\n";

  emergence::bench::BenchReport json("sweep", runs, threads, "sweep-speedup",
                                     0x5eed);
  json.set_extra("serial_seconds", serial_seconds);
  json.set_extra("parallel_seconds", parallel_seconds);
  json.set_extra("speedup", speedup);
  json.set_extra("bit_identical", identical ? 1.0 : 0.0);
  json.add_table(table);
  json.finish(serial_seconds + parallel_seconds);

  return identical ? 0 : 1;
}

// Ablation: release-ahead success semantics.
//
// The paper's Rr counts an attack as successful only when the adversary can
// restore the key *at the start time ts* (every column compromised). A
// looser, also defensible, metric counts success when the key is restored
// any number of holding periods early -- which a single malicious terminal
// holder already achieves. This bench quantifies the gap: the mean length
// of the compromised column suffix and the probability of restoring at
// least x holding periods early, versus the strict metric.
//
// The early-x probabilities come straight out of the sweep engine's exact
// suffix histogram, so this driver shards its runs like every other bench.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv);
  SweepRunner runner = emergence::bench::make_runner(argc, argv);
  std::cout
      << "# == Ablation: strict (at-ts) vs early-restore release semantics ==\n"
      << "# geometry fixed at the joint scheme, k = 4, l = 8, N = 10000.\n"
      << "# strict   : adversary holds every column (restore at ts; paper)\n"
      << "# early1/4 : restore >= 1 / >= 4 holding periods before tr\n"
      << "# suffix   : mean compromised-column suffix length (of 8)\n\n";
  emergence::bench::BenchReport json("ablation_semantics", runs,
                                     runner.threads(), "semantics-ablation",
                                     0xab1a);

  const PathShape shape{4, 8};
  FigureTable table("release-ahead semantics",
                    {"p", "strict", "early1", "early4", "suffix"});
  for (double p : emergence::bench::paper_p_sweep()) {
    EvalPoint point;
    point.p = p;
    point.population = 10000;
    point.runs = runs;
    point.seed = 0xab1a + static_cast<std::uint64_t>(p * 1000);
    const RunTally tally =
        runner.run_tallies(SchemeKind::kJoint, shape, std::nullopt, point);
    const double n = static_cast<double>(tally.runs());
    table.add_row({p, static_cast<double>(tally.release.successes()) / n,
                   static_cast<double>(tally.suffix_at_least(1)) / n,
                   static_cast<double>(tally.suffix_at_least(4)) / n,
                   tally.mean_suffix()});
  }
  table.print(std::cout);
  json.add_table(table);
  json.finish();
  std::cout << "# reading: early1 is far likelier than strict -- the "
               "terminal holder's\n"
            << "# one-period head start is the price of the design; the "
               "paper's metric\n"
            << "# (strict) treats it as acceptable because th = T/l is made "
               "small.\n";
  return 0;
}

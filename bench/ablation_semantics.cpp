// Ablation: release-ahead success semantics.
//
// The paper's Rr counts an attack as successful only when the adversary can
// restore the key *at the start time ts* (every column compromised). A
// looser, also defensible, metric counts success when the key is restored
// any number of holding periods early -- which a single malicious terminal
// holder already achieves. This bench quantifies the gap: the mean length
// of the compromised column suffix and the probability of restoring at
// least x holding periods early, versus the strict metric.
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "emerge/experiment/table.hpp"
#include "emerge/stat_engine.hpp"

namespace {

using namespace emergence;
using namespace emergence::core;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv);
  std::cout
      << "# == Ablation: strict (at-ts) vs early-restore release semantics ==\n"
      << "# geometry fixed at the joint scheme, k = 4, l = 8, N = 10000.\n"
      << "# strict   : adversary holds every column (restore at ts; paper)\n"
      << "# early1/4 : restore >= 1 / >= 4 holding periods before tr\n"
      << "# suffix   : mean compromised-column suffix length (of 8)\n\n";

  const PathShape shape{4, 8};
  FigureTable table("release-ahead semantics",
                    {"p", "strict", "early1", "early4", "suffix"});
  for (double p : emergence::bench::paper_p_sweep()) {
    StatEnvironment env;
    env.population = 10000;
    env.malicious_count = static_cast<std::size_t>(p * 10000);
    Rng master(0xab1a + static_cast<std::uint64_t>(p * 1000));
    std::size_t strict = 0, early1 = 0, early4 = 0;
    double suffix_sum = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      Rng rng = master.fork();
      const StatRunOutcome out =
          run_multipath_stat(SchemeKind::kJoint, shape, env, rng);
      strict += out.release_success;
      early1 += out.compromised_suffix >= 1;
      early4 += out.compromised_suffix >= 4;
      suffix_sum += static_cast<double>(out.compromised_suffix);
    }
    const double n = static_cast<double>(runs);
    table.add_row({p, static_cast<double>(strict) / n,
                   static_cast<double>(early1) / n,
                   static_cast<double>(early4) / n, suffix_sum / n});
  }
  table.print(std::cout);
  std::cout << "# reading: early1 is far likelier than strict -- the "
               "terminal holder's\n"
            << "# one-period head start is the price of the design; the "
               "paper's metric\n"
            << "# (strict) treats it as acceptable because th = T/l is made "
               "small.\n";
  return 0;
}

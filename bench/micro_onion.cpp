// Microbenchmarks for the onion package pipeline: building a whole onion,
// per-holder peel cost, and package sizes vs geometry (the sender-side and
// holder-side costs of the protocol).
#include <benchmark/benchmark.h>

#include "emerge/onion.hpp"

namespace {

using namespace emergence;
using namespace emergence::core;

crypto::SymmetricKey key_of(std::uint8_t fill) {
  return crypto::SymmetricKey::from_bytes(Bytes(32, fill));
}

std::vector<ColumnBuildSpec> make_specs(std::size_t l, std::size_t holders) {
  std::vector<ColumnBuildSpec> specs(l);
  for (std::size_t c = 0; c < l; ++c) {
    specs[c].holder_keys.assign(holders, key_of(static_cast<std::uint8_t>(c)));
    specs[c].envelopes.resize(holders);
    for (auto& env : specs[c].envelopes) {
      if (c + 1 == l) {
        env.terminal_payload = Bytes(32, 0xaa);
      } else {
        env.next_hops.assign(holders, dht::NodeId::hash_of_text("hop"));
      }
    }
  }
  return specs;
}

void BM_BuildOnion(benchmark::State& state) {
  crypto::Drbg drbg(std::uint64_t{1});
  const auto specs = make_specs(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes onion = build_onion(specs, drbg);
    bytes = onion.size();
    benchmark::DoNotOptimize(onion.data());
  }
  state.counters["onion_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_BuildOnion)
    ->Args({3, 2})
    ->Args({10, 4})
    ->Args({20, 8})
    ->Args({50, 8});

void BM_PeelLayer(benchmark::State& state) {
  crypto::Drbg drbg(std::uint64_t{2});
  const auto specs = make_specs(static_cast<std::size_t>(state.range(0)), 4);
  const Bytes raw = build_onion(specs, drbg);
  for (auto _ : state) {
    const ColumnOnion onion = parse_column_onion(raw);
    const EnvelopeContent content =
        open_envelope(key_of(0), onion.envelope_for(0), 1);
    benchmark::DoNotOptimize(
        unwrap_inner(content.inner_key, onion.inner, 1));
  }
}
BENCHMARK(BM_PeelLayer)->Arg(3)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();

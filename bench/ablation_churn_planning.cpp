// Ablation: attack-only planning (the paper's setting) vs churn-aware
// planning (our extension).
//
// Fig. 7 measures churn against geometries optimized purely for the attack
// model, which produces artifacts like the p = 0 point: with no adversary
// the attack-only planner picks a single 1x1 path, and churn then kills the
// in-transit package with probability 1 - e^{-alpha}. A sender who knows
// alpha plans around it. This bench shows the resilience both planners
// achieve for the joint scheme under Monte-Carlo churn evaluation.
#include <iostream>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv, 500);
  SweepRunner runner = emergence::bench::make_runner(argc, argv);
  std::cout << "# == Ablation: attack-only vs churn-aware planning "
               "(joint scheme) ==\n"
            << "# Monte-Carlo R under churn for both planners' geometries, "
            << runs << " runs per point.\n\n";
  emergence::bench::BenchReport json("ablation_churn_planning", runs,
                                     runner.threads(),
                                     "churn-planning-ablation", 0xcafe);

  for (double alpha : {1.0, 3.0}) {
    FigureTable table("alpha = " + std::to_string(static_cast<int>(alpha)),
                      {"p", "attack_only", "churn_aware", "ao_nodes",
                       "ca_nodes"});
    table.set_column_precision(3, 0);
    table.set_column_precision(4, 0);
    const ChurnSpec churn = ChurnSpec::with_alpha(alpha);
    for (double p : emergence::bench::paper_p_sweep()) {
      EvalPoint point;
      point.p = p;
      point.population = 10000;
      point.planner.node_budget = 10000;
      point.runs = runs;
      point.churn = churn;
      point.seed = 0xcafe + static_cast<std::uint64_t>(alpha * 100 + p * 1000);

      // Attack-only geometry (what evaluate_point does internally).
      const EvalResult attack_only =
          runner.evaluate_point(SchemeKind::kJoint, point);

      // Churn-aware geometry, evaluated with the same Monte Carlo.
      const Plan aware =
          plan_churn_aware(SchemeKind::kJoint, p, point.planner, churn);
      const EvalResult churn_aware =
          runner.evaluate_fixed_shape(SchemeKind::kJoint, aware.shape, point);

      table.add_row({p, attack_only.R_mc(), churn_aware.R_mc(),
                     static_cast<double>(attack_only.nodes_used),
                     static_cast<double>(aware.nodes_used)});
    }
    table.print(std::cout);
    json.add_table(table);
  }
  json.finish();
  std::cout << "# reading: churn-aware planning dominates at every p and "
               "fixes the p = 0 artifact\n"
            << "# (attack-only picks one holder there; churn kills it with "
               "probability 1 - e^{-alpha}).\n";
  return 0;
}

// Microbenchmarks for the DHT substrates: lookup latency / hop counts
// versus network size, put/get throughput, bootstrap and join cost, for
// both Chord and Kademlia.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/kademlia.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace emergence;
using namespace emergence::dht;

struct Net {
  sim::Simulator sim;
  Rng rng{7};
  std::unique_ptr<ChordNetwork> net;

  explicit Net(std::size_t n) {
    NetworkConfig config;
    config.run_maintenance = false;
    net = std::make_unique<ChordNetwork>(sim, rng, config);
    net->bootstrap(n);
  }
};

struct KadNet {
  sim::Simulator sim;
  Rng rng{7};
  std::unique_ptr<KademliaNetwork> net;

  explicit KadNet(std::size_t n) {
    KademliaConfig config;
    config.run_maintenance = false;
    net = std::make_unique<KademliaNetwork>(sim, rng, config);
    net->bootstrap(n);
  }
};

void BM_ChordLookup(benchmark::State& state) {
  Net n(static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const NodeId key = NodeId::hash_of_text("key-" + std::to_string(i++));
    benchmark::DoNotOptimize(n.net->lookup(key));
  }
  state.counters["mean_hops"] = n.net->lookup_stats().mean_hops();
}
BENCHMARK(BM_ChordLookup)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(10000);

void BM_ChordPutGet(benchmark::State& state) {
  Net n(static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const NodeId key = NodeId::hash_of_text("kv-" + std::to_string(i++));
    n.net->put(key, bytes_of("value"));
    benchmark::DoNotOptimize(n.net->get(key));
  }
}
BENCHMARK(BM_ChordPutGet)->Arg(256)->Arg(4096);

void BM_ChordBootstrap(benchmark::State& state) {
  for (auto _ : state) {
    Net n(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(n.net->alive_count());
  }
}
BENCHMARK(BM_ChordBootstrap)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_ChordJoin(benchmark::State& state) {
  Net n(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.net->add_node());
  }
}
BENCHMARK(BM_ChordJoin)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_KademliaLookup(benchmark::State& state) {
  KadNet n(static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const NodeId key = NodeId::hash_of_text("kkey-" + std::to_string(i++));
    benchmark::DoNotOptimize(n.net->lookup(key));
  }
  state.counters["mean_hops"] = n.net->mean_lookup_hops();
}
BENCHMARK(BM_KademliaLookup)->Arg(64)->Arg(256)->Arg(1024);

void BM_KademliaPutGet(benchmark::State& state) {
  KadNet n(static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const NodeId key = NodeId::hash_of_text("kkv-" + std::to_string(i++));
    n.net->put(key, bytes_of("value"));
    benchmark::DoNotOptimize(n.net->get(key));
  }
}
BENCHMARK(BM_KademliaPutGet)->Arg(256);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Fig. 6(a) and Fig. 6(c): attack resilience R = min(Rr, Rd) of
// the centralized, node-disjoint and node-joint schemes versus the malicious
// node rate p, for DHT populations of 10000 and 100 nodes (no churn).
//
// Expected shape (paper §IV-B1): disjoint holds R > 0.9 up to p ~ 0.18 then
// falls toward the 1-p baseline; joint holds R > 0.99 to p ~ 0.34 and
// R > 0.9 to p ~ 0.42; shrinking the network to 100 nodes barely changes
// the resilience.
#include <iostream>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"

namespace {

using namespace emergence::core;

FigureTable run_panel(SweepRunner& runner, const std::string& title,
                      std::size_t population, std::size_t runs) {
  FigureTable table(title,
                    {"p", "central", "disjoint", "joint", "central_mc",
                     "disjoint_mc", "joint_mc"});
  table.set_caption("analytic R and Monte-Carlo R per scheme, N = " +
                    std::to_string(population));
  for (double p : emergence::bench::paper_p_sweep()) {
    EvalPoint point;
    point.p = p;
    point.population = population;
    point.planner.node_budget = population;
    point.runs = runs;
    point.seed = 0xF16A + static_cast<std::uint64_t>(p * 1000);

    const EvalResult central =
        runner.evaluate_point(SchemeKind::kCentralized, point);
    const EvalResult disjoint =
        runner.evaluate_point(SchemeKind::kDisjoint, point);
    const EvalResult joint = runner.evaluate_point(SchemeKind::kJoint, point);
    table.add_row({p, central.R_analytic(), disjoint.R_analytic(),
                   joint.R_analytic(), central.R_mc(), disjoint.R_mc(),
                   joint.R_mc()});
  }
  table.print(std::cout);
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t runs = emergence::bench::parse_runs(argc, argv);
  SweepRunner runner = emergence::bench::make_runner(argc, argv);
  emergence::bench::print_setup(
      "Fig. 6(a)/(c): attack resilience vs malicious rate", runs);
  emergence::bench::BenchReport json("fig6_attack_resilience", runs,
                                     runner.threads(), "fig6-attack-resilience",
                                     0xF16A);
  json.add_table(
      run_panel(runner, "Fig 6(a): attack resilience, N = 10000", 10000, runs));
  json.add_table(
      run_panel(runner, "Fig 6(c): attack resilience, N = 100", 100, runs));
  json.finish();
  return 0;
}

// Reproduces Fig. 6(b) and Fig. 6(d): the number of nodes C required to
// build the routing paths versus the malicious rate p, for node budgets of
// 10000 and 100.
//
// Expected shape (paper §IV-B1): the centralized scheme always uses one
// node; the disjoint scheme's optimum stays small; the joint scheme's cost
// "rapidly increases towards 10000 after p = 0.15".
//
// Planning is analytic (no Monte-Carlo phase), so this driver has nothing
// to shard; it still emits the same JSON artifact as the sweep benches.
#include <iostream>

#include "bench_common.hpp"
#include "emerge/experiment/table.hpp"
#include "emerge/planner.hpp"

namespace {

using namespace emergence::core;

FigureTable run_panel(const std::string& title, std::size_t budget) {
  FigureTable table(title, {"p", "central", "disjoint", "joint"});
  table.set_caption("required nodes C per scheme, budget N = " +
                    std::to_string(budget));
  table.set_column_precision(0, 2);
  PlannerConfig config;
  config.node_budget = budget;
  for (double p : emergence::bench::paper_p_sweep()) {
    table.add_row({p, static_cast<double>(plan_centralized(p).nodes_used),
                   static_cast<double>(plan_disjoint(p, config).nodes_used),
                   static_cast<double>(plan_joint(p, config).nodes_used)});
  }
  table.print(std::cout, 0);
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "# == Fig. 6(b)/(d): required nodes vs malicious rate ==\n"
            << "# planner: cheapest geometry within 1e-4 of the best "
               "min(Rr, Rd) under the budget.\n\n";
  // Planner-only sweep: no Monte-Carlo runs, so the root seed is moot (0).
  emergence::bench::BenchReport json("fig6_required_nodes", 0, 1,
                                     "fig6-required-nodes", 0);
  json.add_table(run_panel("Fig 6(b): required nodes, N = 10000", 10000));
  json.add_table(run_panel("Fig 6(d): required nodes, N = 100", 100));
  json.finish();
  return 0;
}

// Property tests over the full protocol stack: SessionReport counter
// invariants that must hold for every scheme, backend, attack mode and
// coalition, and the release-timing contract (first delivery exactly at tr
// regardless of path length).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_store.hpp"
#include "dht/chord_network.hpp"
#include "dht/churn_driver.hpp"
#include "dht/kademlia.hpp"
#include "emerge/protocol.hpp"
#include "sim/simulator.hpp"

namespace emergence::core {
namespace {

enum class Backend { kChord, kKademlia };

/// A world over either DHT backend (maintenance off unless churn drives it).
struct AnyWorld {
  sim::Simulator sim;
  Rng rng;
  std::unique_ptr<dht::ChordNetwork> chord;
  std::unique_ptr<dht::KademliaNetwork> kademlia;
  dht::Network* net = nullptr;
  cloud::CloudStore cloud;

  AnyWorld(Backend backend, std::uint64_t seed, std::size_t nodes = 64,
           bool maintenance = false, dht::TransportModel transport = {})
      : rng(seed) {
    if (backend == Backend::kChord) {
      dht::NetworkConfig config;
      config.run_maintenance = maintenance;
      config.replica_repair_interval = 30.0;
      config.stabilize_interval = 15.0;
      config.transport = transport;
      chord = std::make_unique<dht::ChordNetwork>(sim, rng, config);
      chord->bootstrap(nodes);
      net = chord.get();
    } else {
      dht::KademliaConfig config;
      config.run_maintenance = maintenance;
      config.republish_interval = 30.0;
      config.transport = transport;
      kademlia = std::make_unique<dht::KademliaNetwork>(sim, rng, config);
      kademlia->bootstrap(nodes);
      net = kademlia.get();
    }
  }
};

struct SchemeSpec {
  const char* label;
  SessionConfig config;
};

std::vector<SchemeSpec> all_schemes() {
  std::vector<SchemeSpec> specs;
  {
    SessionConfig c;  // centralized: the 1x1 degenerate joint layout
    c.kind = SchemeKind::kJoint;
    c.shape = PathShape{1, 1};
    c.emerging_time = 900.0;
    specs.push_back({"centralized", c});
  }
  {
    SessionConfig c;
    c.kind = SchemeKind::kDisjoint;
    c.shape = PathShape{2, 3};
    c.emerging_time = 900.0;
    specs.push_back({"disjoint", c});
  }
  {
    SessionConfig c;
    c.kind = SchemeKind::kJoint;
    c.shape = PathShape{2, 3};
    c.emerging_time = 900.0;
    specs.push_back({"joint", c});
  }
  {
    SessionConfig c;
    c.kind = SchemeKind::kShare;
    c.shape = PathShape{2, 3};
    c.carriers_n = 3;
    c.threshold_m = 2;
    c.emerging_time = 900.0;
    specs.push_back({"share", c});
  }
  return specs;
}

/// The invariants every finished session must satisfy, adversary or not.
void expect_report_invariants(const TimedReleaseSession& session,
                              const std::string& context) {
  const SessionReport& r = session.report();
  // Conservation: every package accounted as delivered, maliciously
  // dropped, or discarded as malformed was sent by someone; losses (dead
  // destinations, failed lookups) explain the slack.
  EXPECT_GE(r.packages_sent, r.packages_delivered +
                                 r.packages_dropped_malicious +
                                 r.malformed_packages)
      << context;
  // The secret is released iff some terminal holder delivered.
  EXPECT_EQ(r.deliveries > 0, session.secret_released()) << context;
  // At most one delivery per terminal slot.
  EXPECT_LE(r.deliveries, session.config().shape.k) << context;
  // Deliveries happen exactly at tr, never before or after.
  if (session.secret_released()) {
    EXPECT_DOUBLE_EQ(*session.first_delivery_time(), session.release_time())
        << context;
  }
}

TEST(ProtocolProperties, ReportInvariantsAcrossSchemesBackendsAndModes) {
  for (Backend backend : {Backend::kChord, Backend::kKademlia}) {
    for (const SchemeSpec& spec : all_schemes()) {
      for (AttackMode mode : {AttackMode::kCovert, AttackMode::kDropping}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
          AnyWorld w(backend, 9000 + seed);
          Adversary::Config acfg;
          acfg.mode = mode;
          acfg.onion_slots_k =
              spec.config.kind == SchemeKind::kShare ? 0 : spec.config.shape.k;
          acfg.share_threshold_m = spec.config.kind == SchemeKind::kShare
                                       ? spec.config.threshold_m
                                       : 1;
          Adversary adversary(acfg);
          // A random quarter of the network is malicious.
          Rng coalition_rng(seed * 131 + 7);
          for (const dht::NodeId& id : w.net->alive_ids()) {
            if (coalition_rng.chance(0.25)) adversary.mark_malicious(id);
          }

          TimedReleaseSession session(*w.net, w.cloud, &adversary, spec.config,
                                      seed * 17 + 3);
          session.send(bytes_of("property-payload"), "token");
          w.sim.run();

          const std::string context =
              std::string(spec.label) + "/" +
              (backend == Backend::kChord ? "chord" : "kademlia") + "/" +
              (mode == AttackMode::kCovert ? "covert" : "dropping") +
              "/seed=" + std::to_string(seed);
          expect_report_invariants(session, context);
          if (mode == AttackMode::kCovert) {
            // Covert holders forward everything; nothing is dropped and the
            // secret always emerges in a static network.
            EXPECT_EQ(session.report().packages_dropped_malicious, 0u)
                << context;
            EXPECT_TRUE(session.secret_released()) << context;
          }
        }
      }
    }
  }
}

TEST(ProtocolProperties, ReportInvariantsHoldUnderChurn) {
  for (Backend backend : {Backend::kChord, Backend::kKademlia}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      AnyWorld w(backend, 7700 + seed, 64, /*maintenance=*/true);
      SessionConfig config;
      config.kind = SchemeKind::kJoint;
      config.shape = PathShape{2, 3};
      config.emerging_time = 900.0;
      TimedReleaseSession session(*w.net, w.cloud, nullptr, config, seed);
      session.send(bytes_of("churny"), "token");

      dht::ChurnConfig churn_config;
      churn_config.mean_lifetime = 900.0;
      dht::ChurnDriver churn(*w.net, churn_config);
      churn.start();
      w.sim.run_until(session.release_time() + 5.0);
      churn.stop();

      expect_report_invariants(
          session, std::string("churn/") +
                       (backend == Backend::kChord ? "chord" : "kademlia") +
                       "/seed=" + std::to_string(seed));
      EXPECT_GT(churn.deaths(), 0u);
    }
  }
}

// -- release timing (the satellite audit of ISSUE 3) --------------------------

TEST(ReleaseTiming, FirstDeliveryExactlyAtTrForEveryPathLength) {
  // The drift audit: if each column waited th *plus* its local overheads,
  // first delivery would land up to l * (assembly_delay + latency) after
  // tr. Hop schedules are anchored to absolute times instead (column c
  // forwards at ts + c*th, terminal delivery fires at tr), so the offset is
  // exactly zero — including for T/l values with no exact binary
  // representation.
  for (std::size_t l : {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
    AnyWorld w(Backend::kChord, 40 + l);
    SessionConfig config;
    config.kind = SchemeKind::kJoint;
    config.shape = PathShape{2, l};
    config.emerging_time = 1000.0;  // th = 1000/l: inexact for l = 3 and 6
    TimedReleaseSession session(*w.net, w.cloud, nullptr, config, 77 + l);
    session.send(bytes_of("timing"), "token");
    w.sim.run();

    ASSERT_TRUE(session.secret_released()) << "l=" << l;
    const double offset =
        *session.first_delivery_time() - session.release_time();
    EXPECT_DOUBLE_EQ(offset, 0.0) << "l=" << l;
    // The documented tolerance: never early, never later than 1ns.
    EXPECT_GE(offset, 0.0) << "l=" << l;
    EXPECT_LE(offset, 1e-9) << "l=" << l;
  }
}

TEST(ReleaseTiming, ShareSchemeDeliversExactlyAtTrToo) {
  AnyWorld w(Backend::kChord, 51);
  SessionConfig config;
  config.kind = SchemeKind::kShare;
  config.shape = PathShape{2, 3};
  config.carriers_n = 4;
  config.threshold_m = 2;
  config.emerging_time = 700.0;  // th = 233.33..
  TimedReleaseSession session(*w.net, w.cloud, nullptr, config, 52);
  session.send(bytes_of("timing"), "token");
  w.sim.run();
  ASSERT_TRUE(session.secret_released());
  EXPECT_DOUBLE_EQ(*session.first_delivery_time(), session.release_time());
}

// -- release timing under non-ideal transports (PR 6) -------------------------

TEST(ReleaseTiming, ExactAtTrUnderWanTransportForEveryPathLength) {
  // The transport tolerance contract (protocol.hpp holding_period()): a
  // transport that guarantees_exact_delivery — wan() does for these th
  // values (retry ladder 3.5s + L 0.2s + assembly 1s << th) — must keep
  // first delivery bit-equal to tr on both backends, exactly like ideal().
  const dht::TransportModel wan = dht::TransportModel::wan();
  for (Backend backend : {Backend::kChord, Backend::kKademlia}) {
    for (std::size_t l : {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
      AnyWorld w(backend, 400 + l, 64, /*maintenance=*/false, wan);
      SessionConfig config;
      config.kind = SchemeKind::kJoint;
      config.shape = PathShape{2, l};
      config.emerging_time = 1000.0;  // th = 1000/l: inexact for l = 3 and 6
      ASSERT_TRUE(wan.guarantees_exact_delivery(
          config.emerging_time / static_cast<double>(l),
          config.assembly_delay));
      TimedReleaseSession session(*w.net, w.cloud, nullptr, config, 177 + l);
      session.send(bytes_of("wan-timing"), "token");
      w.sim.run();

      const std::string context =
          std::string(backend == Backend::kChord ? "chord" : "kademlia") +
          "/l=" + std::to_string(l);
      ASSERT_TRUE(session.secret_released()) << context;
      EXPECT_DOUBLE_EQ(*session.first_delivery_time(), session.release_time())
          << context;
    }
  }
}

TEST(ReleaseTiming, IdealTransportStaysExactAtTr) {
  // The explicit ideal() spelling must behave identically to the default
  // (it resolves to the same uniform law), pinning the resolved() path.
  const dht::TransportModel ideal = dht::TransportModel::ideal();
  AnyWorld w(Backend::kChord, 61, 64, /*maintenance=*/false, ideal);
  SessionConfig config;
  config.kind = SchemeKind::kJoint;
  config.shape = PathShape{2, 3};
  config.emerging_time = 900.0;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, config, 62);
  session.send(bytes_of("ideal-timing"), "token");
  w.sim.run();
  ASSERT_TRUE(session.secret_released());
  EXPECT_DOUBLE_EQ(*session.first_delivery_time(), session.release_time());
}

TEST(ReleaseTiming, PartitionOutageDeliversLateButWithinReapSlack) {
  // A global outage window (zone_count = 1 partition: every attempt in
  // [start, end) is deterministically dropped) straddling a column
  // deadline. The retry ladder must carry the forward across the heal, the
  // protocol clamps the late hop to now, and delivery lands at or after tr
  // but within reap_slack — never crashing on the "time in the past"
  // precondition the pre-PR scheduler would have hit.
  dht::TransportModel outage;  // kIdeal latency law, explicit loss model
  outage.max_retries = 8;
  outage.retry_timeout = 2.0;
  outage.retry_backoff = 2.0;
  // th = 300: the column-2 -> column-3 forward fires at t = 600, inside the
  // window. Ladder attempts land at 600 + 2*(2^n - 1) = 602, 606, ...,
  // 854 — all still inside — until the 8th retry at t = 1110 clears the
  // heal AND tr (900), forcing a genuinely late terminal delivery.
  outage.partition_start = 590.0;
  outage.partition_end = 1000.0;
  const std::size_t l = 3;
  AnyWorld w(Backend::kChord, 71, 64, /*maintenance=*/false, outage);
  SessionConfig config;
  config.kind = SchemeKind::kJoint;
  config.shape = PathShape{2, l};
  config.emerging_time = 900.0;
  ASSERT_FALSE(w.net->transport().guarantees_exact_delivery(
      config.emerging_time / static_cast<double>(l), config.assembly_delay));
  TimedReleaseSession session(*w.net, w.cloud, nullptr, config, 72);
  session.send(bytes_of("partition-timing"), "token");
  w.sim.run();

  ASSERT_TRUE(session.secret_released());
  const double offset =
      *session.first_delivery_time() - session.release_time();
  EXPECT_GT(offset, 0.0);  // the outage genuinely delayed delivery past tr
  EXPECT_LE(offset, w.net->transport().reap_slack(l));
  // The outage left real marks in the transport counters.
  EXPECT_GT(w.net->transport_stats().dropped, 0u);
  EXPECT_GT(w.net->transport_stats().retried, 0u);
}

}  // namespace
}  // namespace emergence::core

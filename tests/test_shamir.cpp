// Property tests for Shamir secret sharing over GF(2^8), including the
// parameterized (m, n) sweeps the key-share routing scheme relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "crypto/shamir.hpp"

namespace emergence::crypto {
namespace {

using emergence::bytes_of;

Drbg test_drbg() { return Drbg(std::uint64_t{0xdeadbeef}); }

TEST(Shamir, SplitProducesNDistinctIndices) {
  Drbg drbg = test_drbg();
  const auto shares = shamir_split(bytes_of("secret"), 3, 7, drbg);
  ASSERT_EQ(shares.size(), 7u);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    EXPECT_EQ(shares[i].index, i + 1);
    EXPECT_EQ(shares[i].data.size(), 6u);
  }
}

TEST(Shamir, CombineFirstMShares) {
  Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("the launch codes");
  auto shares = shamir_split(secret, 4, 9, drbg);
  shares.resize(4);
  EXPECT_EQ(shamir_combine(shares, 4), secret);
}

TEST(Shamir, CombineAnySubsetOfSizeM) {
  Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("xyz");
  const auto shares = shamir_split(secret, 3, 6, drbg);
  // All 20 subsets of size 3 from 6 shares.
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = a + 1; b < 6; ++b) {
      for (std::size_t c = b + 1; c < 6; ++c) {
        const std::vector<Share> subset{shares[a], shares[b], shares[c]};
        EXPECT_EQ(shamir_combine(subset, 3), secret)
            << a << "," << b << "," << c;
      }
    }
  }
}

TEST(Shamir, CombineWithExtraSharesStillWorks) {
  Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("redundant");
  const auto shares = shamir_split(secret, 2, 5, drbg);
  EXPECT_EQ(shamir_combine(shares, 2), secret);  // all 5 supplied
}

TEST(Shamir, TooFewSharesThrows) {
  Drbg drbg = test_drbg();
  auto shares = shamir_split(bytes_of("s"), 3, 5, drbg);
  shares.resize(2);
  EXPECT_THROW(shamir_combine(shares, 3), CryptoError);
}

TEST(Shamir, WrongSubsetSizeDoesNotRevealSecret) {
  // With m-1 shares, interpolation through the wrong threshold must not
  // yield the secret (try combining m-1 shares with threshold m-1).
  Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("hidden!");
  const auto shares = shamir_split(secret, 3, 5, drbg);
  const std::vector<Share> two{shares[0], shares[1]};
  EXPECT_NE(shamir_combine(two, 2), secret);
}

TEST(Shamir, DuplicateIndicesRejected) {
  Drbg drbg = test_drbg();
  const auto shares = shamir_split(bytes_of("s"), 2, 4, drbg);
  const std::vector<Share> dup{shares[0], shares[0]};
  EXPECT_THROW(shamir_combine(dup, 2), CryptoError);
}

TEST(Shamir, MismatchedLengthsRejected) {
  Drbg drbg = test_drbg();
  auto shares = shamir_split(bytes_of("abcd"), 2, 4, drbg);
  shares[1].data.pop_back();
  const std::vector<Share> bad{shares[0], shares[1]};
  EXPECT_THROW(shamir_combine(bad, 2), CryptoError);
}

TEST(Shamir, ZeroIndexRejected) {
  Drbg drbg = test_drbg();
  auto shares = shamir_split(bytes_of("abcd"), 2, 4, drbg);
  shares[0].index = 0;
  EXPECT_THROW(shamir_combine({shares[0], shares[1]}, 2), CryptoError);
}

TEST(Shamir, ThresholdOneIsReplication) {
  Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("copy");
  const auto shares = shamir_split(secret, 1, 3, drbg);
  for (const Share& s : shares)
    EXPECT_EQ(shamir_combine({s}, 1), secret);
}

TEST(Shamir, FullThresholdNeedsAllShares) {
  Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("all or nothing");
  const auto shares = shamir_split(secret, 5, 5, drbg);
  EXPECT_EQ(shamir_combine(shares, 5), secret);
  std::vector<Share> missing(shares.begin(), shares.begin() + 4);
  EXPECT_THROW(shamir_combine(missing, 5), CryptoError);
}

TEST(Shamir, EmptySecretSupported) {
  Drbg drbg = test_drbg();
  const auto shares = shamir_split(Bytes{}, 2, 3, drbg);
  EXPECT_TRUE(shamir_combine(shares, 2).empty());
}

TEST(Shamir, ParameterValidation) {
  Drbg drbg = test_drbg();
  EXPECT_THROW(shamir_split(bytes_of("s"), 0, 3, drbg),
               emergence::PreconditionError);
  EXPECT_THROW(shamir_split(bytes_of("s"), 4, 3, drbg),
               emergence::PreconditionError);
  EXPECT_THROW(shamir_split(bytes_of("s"), 2, 256, drbg),
               emergence::PreconditionError);
  EXPECT_THROW(shamir_combine({}, 0), emergence::PreconditionError);
}

TEST(Shamir, SharesSerializeRoundTrip) {
  Drbg drbg = test_drbg();
  const auto shares = shamir_split(bytes_of("wire"), 2, 3, drbg);
  for (const Share& s : shares) {
    EXPECT_EQ(share_from_bytes(share_to_bytes(s)), s);
  }
}

TEST(Shamir, SharesDifferFromSecret) {
  // No share should leak the secret verbatim (degree >= 1 polynomial).
  Drbg drbg = test_drbg();
  const Bytes secret = bytes_of("plain");
  const auto shares = shamir_split(secret, 2, 4, drbg);
  for (const Share& s : shares) EXPECT_NE(s.data, secret);
}

// Parameterized sweep over (m, n): the share scheme instantiates many
// different threshold geometries; every one must round-trip and must
// tolerate the loss of exactly n - m shares.
class ShamirGeometry
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ShamirGeometry, RoundTripAndLossTolerance) {
  const auto [m, n] = GetParam();
  Drbg drbg(std::uint64_t{m * 1000 + n});
  const Bytes secret = drbg.bytes(32);  // layer-key sized
  auto shares = shamir_split(secret, m, n, drbg);

  // Drop n-m shares (keep an arbitrary m-subset: every 2nd surviving).
  std::vector<Share> survivors;
  for (std::size_t i = 0; i < shares.size() && survivors.size() < m; ++i) {
    if (i % 2 == 0 || shares.size() - i <= m - survivors.size())
      survivors.push_back(shares[i]);
  }
  ASSERT_EQ(survivors.size(), m);
  EXPECT_EQ(shamir_combine(survivors, m), secret);

  if (m > 1) {
    survivors.pop_back();
    EXPECT_THROW(shamir_combine(survivors, m), CryptoError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ShamirGeometry,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 5},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{3, 5},
                      std::pair<std::size_t, std::size_t>{5, 8},
                      std::pair<std::size_t, std::size_t>{10, 20},
                      std::pair<std::size_t, std::size_t>{17, 31},
                      std::pair<std::size_t, std::size_t>{64, 128},
                      std::pair<std::size_t, std::size_t>{128, 255},
                      std::pair<std::size_t, std::size_t>{255, 255}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.first) + "n" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace emergence::crypto

// Tests for the Kademlia DHT substrate: XOR metric, k-buckets, iterative
// lookup correctness against a brute-force oracle, storage replication and
// the dht::Network interface contract.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "dht/kademlia.hpp"
#include "sim/simulator.hpp"

namespace emergence::dht {
namespace {

NodeId id_from_byte(std::uint8_t msb, std::uint8_t lsb = 0) {
  Bytes raw(kIdBytes, 0);
  raw[0] = msb;
  raw[kIdBytes - 1] = lsb;
  return NodeId::from_bytes(raw);
}

// -- XOR metric ---------------------------------------------------------------

TEST(XorMetric, CloserMeansSmallerXor) {
  const NodeId target = id_from_byte(0x10);
  EXPECT_TRUE(xor_closer(id_from_byte(0x11), id_from_byte(0x30), target));
  EXPECT_FALSE(xor_closer(id_from_byte(0x30), id_from_byte(0x11), target));
}

TEST(XorMetric, SelfIsClosest) {
  const NodeId target = id_from_byte(0x42, 7);
  EXPECT_TRUE(xor_closer(target, id_from_byte(0x42, 8), target));
}

TEST(XorMetric, EqualDistanceIsNotCloser) {
  const NodeId a = id_from_byte(1);
  EXPECT_FALSE(xor_closer(a, a, id_from_byte(9)));
}

TEST(XorMetric, BucketIndexFindsHighestDifferingBit) {
  const NodeId zero = id_from_byte(0);
  EXPECT_EQ(bucket_index(zero, id_from_byte(0, 1)), 0u);
  EXPECT_EQ(bucket_index(zero, id_from_byte(0, 2)), 1u);
  EXPECT_EQ(bucket_index(zero, id_from_byte(0x80)), kIdBits - 1);
}

TEST(XorMetric, BucketIndexIdenticalThrows) {
  const NodeId a = id_from_byte(5);
  EXPECT_THROW(bucket_index(a, a), PreconditionError);
}

// -- node-level k-buckets -------------------------------------------------------

TEST(KademliaNode, ObserveContactFillsBucket) {
  KademliaNode n(id_from_byte(0), kIdBits);
  n.observe_contact(id_from_byte(0, 1), 20);
  n.observe_contact(id_from_byte(0, 1), 20);  // duplicate ignored
  EXPECT_EQ(n.contact_count(), 1u);
}

TEST(KademliaNode, BucketCapacityEnforced) {
  KademliaNode n(id_from_byte(0), kIdBits);
  // All of these land in the same bucket (top bit differs).
  for (std::uint8_t i = 0; i < 10; ++i)
    n.observe_contact(id_from_byte(0x80, i), /*bucket_size=*/4);
  EXPECT_EQ(n.contact_count(), 4u);
}

TEST(KademliaNode, ClosestContactsSortedByXor) {
  KademliaNode n(id_from_byte(0), kIdBits);
  for (std::uint8_t i = 1; i <= 20; ++i) n.observe_contact(id_from_byte(i), 20);
  const auto closest = n.closest_contacts(id_from_byte(7), 3);
  ASSERT_EQ(closest.size(), 3u);
  EXPECT_EQ(closest[0], id_from_byte(7));
  // Every later entry is no closer than the one before.
  for (std::size_t i = 0; i + 1 < closest.size(); ++i)
    EXPECT_FALSE(xor_closer(closest[i + 1], closest[i], id_from_byte(7)));
}

TEST(KademliaNode, DropContactRemoves) {
  KademliaNode n(id_from_byte(0), kIdBits);
  n.observe_contact(id_from_byte(3), 20);
  n.drop_contact(id_from_byte(3));
  EXPECT_EQ(n.contact_count(), 0u);
}

// -- network fixtures --------------------------------------------------------------

/// Independent O(n) oracle: the tests must not validate the iterative
/// lookup against the production LiveRingIndex (a shared bit-convention
/// bug would cancel out), so the expected side stays a plain scan here.
/// The index itself is property-checked against the same kind of scan in
/// tests/test_perf_scale.cpp.
NodeId closest_alive_brute_force(const KademliaNetwork& net,
                                 const NodeId& key) {
  const std::vector<NodeId>& live = net.alive_ids();
  NodeId best = live.front();
  for (const NodeId& id : live) {
    if (xor_closer(id, best, key)) best = id;
  }
  return best;
}

struct KadNet {
  sim::Simulator sim;
  Rng rng{99};
  std::unique_ptr<KademliaNetwork> net;

  explicit KadNet(std::size_t nodes, bool maintenance = false) {
    KademliaConfig config;
    config.run_maintenance = maintenance;
    net = std::make_unique<KademliaNetwork>(sim, rng, config);
    if (nodes > 0) net->bootstrap(nodes);
  }
};

TEST(KademliaLookup, AgreesWithBruteForceOracle) {
  KadNet t(128);
  for (int i = 0; i < 60; ++i) {
    const NodeId key = NodeId::hash_of_text("kk-" + std::to_string(i));
    const LookupResult result = t.net->lookup(key);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.node, closest_alive_brute_force(*t.net, key))
        << "key " << key.short_hex();
  }
}

TEST(KademliaLookup, HopCountIsLogarithmic) {
  KadNet t(512);
  for (int i = 0; i < 80; ++i)
    t.net->lookup(NodeId::hash_of_text("h" + std::to_string(i)));
  EXPECT_LT(t.net->mean_lookup_hops(), 12.0);
}

TEST(KademliaLookup, SingleNodeNetwork) {
  KadNet t(1);
  const LookupResult r = t.net->lookup(NodeId::hash_of_text("x"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.node, t.net->alive_ids().front());
}

TEST(KademliaLookup, RoutesAroundFailures) {
  KadNet t(128);
  Rng pick(5);
  for (int i = 0; i < 30; ++i) {
    const auto& ids = t.net->alive_ids();
    t.net->kill_node(ids[pick.index(ids.size())]);
  }
  for (int i = 0; i < 40; ++i) {
    const NodeId key = NodeId::hash_of_text("f-" + std::to_string(i));
    const LookupResult result = t.net->lookup(key);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.node, closest_alive_brute_force(*t.net, key));
  }
}

TEST(KademliaJoin, JoinedNodeBecomesRoutable) {
  KadNet t(64);
  const NodeId fresh = t.net->add_node();
  // A lookup for the new node's own id must find it.
  const LookupResult result = t.net->lookup(fresh);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.node, fresh);
}

TEST(KademliaStorage, PutGetRoundTrip) {
  KadNet t(64);
  const NodeId key = NodeId::hash_of_text("stored");
  ASSERT_TRUE(t.net->put(key, bytes_of("payload")));
  const auto value = t.net->get(key);
  ASSERT_TRUE(value != nullptr);
  EXPECT_EQ(*value, bytes_of("payload"));
}

TEST(KademliaStorage, ReplicatesToClosestNodes) {
  KadNet t(64);
  const NodeId key = NodeId::hash_of_text("replicated");
  ASSERT_TRUE(t.net->put(key, bytes_of("v")));
  std::size_t copies = 0;
  for (const NodeId& id : t.net->alive_ids())
    copies += t.net->node(id)->storage().contains(key) ? 1 : 0;
  EXPECT_EQ(copies, t.net->config().replication_factor);
}

TEST(KademliaStorage, SurvivesOwnerDeathViaReplicas) {
  KadNet t(64);
  const NodeId key = NodeId::hash_of_text("hardy");
  ASSERT_TRUE(t.net->put(key, bytes_of("v")));
  t.net->kill_node(closest_alive_brute_force(*t.net, key));
  const auto value = t.net->get(key);
  ASSERT_TRUE(value != nullptr);
  EXPECT_EQ(*value, bytes_of("v"));
}

TEST(KademliaStorage, RepublishRestoresReplicationFactor) {
  KadNet t(64);
  const NodeId key = NodeId::hash_of_text("repub");
  ASSERT_TRUE(t.net->put(key, bytes_of("v")));
  t.net->kill_node(closest_alive_brute_force(*t.net, key));
  t.net->republish_round();
  std::size_t copies = 0;
  for (const NodeId& id : t.net->alive_ids())
    copies += t.net->node(id)->storage().contains(key) ? 1 : 0;
  EXPECT_GE(copies, t.net->config().replication_factor);
}

TEST(KademliaStorage, StoreObserverFires) {
  KadNet t(32);
  std::size_t observed = 0;
  t.net->set_store_observer(
      [&](const NodeId&, const NodeId&, BytesView) { ++observed; });
  t.net->put(NodeId::hash_of_text("watched"), bytes_of("v"));
  EXPECT_EQ(observed, t.net->config().replication_factor);
}

// -- Network interface contract -----------------------------------------------------

TEST(KademliaInterface, NodeAddressedStorage) {
  KadNet t(16);
  Network& net = *t.net;
  const NodeId node = t.net->alive_ids().front();
  const NodeId key = NodeId::hash_of_text("direct");
  EXPECT_TRUE(net.is_alive(node));
  EXPECT_TRUE(net.store_on(node, key, bytes_of("x")));
  const auto loaded = net.load_from(node, key);
  ASSERT_TRUE(loaded != nullptr);
  EXPECT_EQ(*loaded, bytes_of("x"));

  t.net->kill_node(node);
  EXPECT_FALSE(net.is_alive(node));
  EXPECT_FALSE(net.store_on(node, key, bytes_of("x")));
  EXPECT_EQ(net.load_from(node, key), nullptr);
}

TEST(KademliaInterface, PointToPointMessage) {
  KadNet t(8);
  const NodeId from = t.net->alive_ids()[0];
  const NodeId to = t.net->alive_ids()[1];
  bool delivered = false;
  t.net->set_message_handler(to, [&](const NodeId&, const NodeId&,
                                     BytesView payload) {
    EXPECT_EQ(string_of(payload), "hello");
    delivered = true;
  });
  t.net->send_message(from, to, bytes_of("hello"));
  t.sim.run();
  EXPECT_TRUE(delivered);
}

TEST(KademliaInterface, RoutedMessageFollowsResponsibility) {
  KadNet t(64);
  const NodeId ring_point = NodeId::hash_of_text("slot-position");
  const NodeId owner = closest_alive_brute_force(*t.net, ring_point);

  NodeId received_at;
  t.net->set_default_message_handler(
      [&](const NodeId&, const NodeId& to, BytesView) { received_at = to; });

  // First delivery goes to the current owner.
  t.net->send_message_routed(ring_point, ring_point, bytes_of("p1"));
  t.sim.run();
  EXPECT_EQ(received_at, owner);

  // Kill the owner: the next routed message lands on the new closest node.
  t.net->kill_node(owner);
  const NodeId heir = closest_alive_brute_force(*t.net, ring_point);
  t.net->send_message_routed(ring_point, ring_point, bytes_of("p2"));
  t.sim.run();
  EXPECT_EQ(received_at, heir);
  EXPECT_NE(received_at, owner);
}

}  // namespace
}  // namespace emergence::dht

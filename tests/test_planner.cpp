// Tests for the (k, l) parameter planner, including the quantitative claims
// of the paper's §IV-B1 attack-resilience evaluation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "emerge/planner.hpp"
#include "emerge/resilience.hpp"

namespace emergence::core {
namespace {

PlannerConfig budget(std::size_t n) {
  PlannerConfig c;
  c.node_budget = n;
  return c;
}

TEST(Planner, CentralizedIsAlwaysOneNode) {
  for (double p : {0.0, 0.3, 0.5}) {
    const Plan plan = plan_centralized(p);
    EXPECT_EQ(plan.nodes_used, 1u);
    EXPECT_DOUBLE_EQ(plan.R(), 1.0 - p);
  }
}

TEST(Planner, RespectsNodeBudget) {
  for (double p : {0.1, 0.25, 0.4}) {
    for (std::size_t n : {100u, 1000u, 10000u}) {
      EXPECT_LE(plan_disjoint(p, budget(n)).nodes_used, n);
      EXPECT_LE(plan_joint(p, budget(n)).nodes_used, n);
    }
  }
}

TEST(Planner, ZeroPNeedsOneNode) {
  // With no adversary a single holder is optimal (ties break to fewer
  // nodes).
  EXPECT_EQ(plan_joint(0.0, budget(10000)).nodes_used, 1u);
  EXPECT_EQ(plan_disjoint(0.0, budget(10000)).nodes_used, 1u);
}

TEST(Planner, BeatsNaiveGeometries) {
  // The planner must never do worse than a few hand-rolled shapes.
  const double p = 0.3;
  const Plan plan = plan_joint(p, budget(10000));
  for (const PathShape& shape :
       {PathShape{2, 3}, PathShape{5, 5}, PathShape{8, 100}}) {
    EXPECT_GE(plan.R() + 1e-12,
              analytic_resilience(SchemeKind::kJoint, p, shape).combined());
  }
}

TEST(Planner, JointDominatesDisjointDominatesCentral) {
  for (double p : {0.1, 0.2, 0.3, 0.4}) {
    const double r_central = plan_centralized(p).R();
    const double r_disjoint = plan_disjoint(p, budget(10000)).R();
    const double r_joint = plan_joint(p, budget(10000)).R();
    EXPECT_GE(r_disjoint + 1e-9, r_central) << p;
    EXPECT_GE(r_joint + 1e-9, r_disjoint) << p;
  }
}

// -- the paper's §IV-B1 claims (Fig. 6a/6b, N = 10000) ---------------------------

TEST(PaperClaims, DisjointAbove90UntilP018) {
  EXPECT_GT(plan_disjoint(0.18, budget(10000)).R(), 0.9);
}

TEST(PaperClaims, DisjointFallsTowardBaselineAfterwards) {
  // "...but then rapidly drops to the baseline."
  const double r_030 = plan_disjoint(0.30, budget(10000)).R();
  EXPECT_LT(r_030, 0.8);
  EXPECT_GT(r_030, 1.0 - 0.30 - 0.05);  // never below the centralized line
}

TEST(PaperClaims, JointAbove99UntilP034) {
  for (double p : {0.10, 0.20, 0.30, 0.34}) {
    EXPECT_GT(plan_joint(p, budget(10000)).R(), 0.99) << "p=" << p;
  }
}

TEST(PaperClaims, JointAbove90UntilP042) {
  EXPECT_GT(plan_joint(0.42, budget(10000)).R(), 0.9);
}

TEST(PaperClaims, JointCostExplodesAfterP015) {
  // Fig. 6(b): the joint scheme's node cost climbs steeply beyond p ~ 0.15.
  const std::size_t cost_low = plan_joint(0.10, budget(10000)).nodes_used;
  const std::size_t cost_high = plan_joint(0.30, budget(10000)).nodes_used;
  EXPECT_LT(cost_low, 600u);
  EXPECT_GT(cost_high, 2000u);
}

TEST(PaperClaims, DisjointStaysCheap) {
  // Fig. 6(b): the disjoint scheme's optimum stays tiny (tens of nodes).
  for (double p : {0.1, 0.2, 0.3, 0.4}) {
    EXPECT_LT(plan_disjoint(p, budget(10000)).nodes_used, 200u) << p;
  }
}

TEST(PaperClaims, SmallNetworkKeepsGoodResilience) {
  // Fig. 6(c): at N = 100 the multipath schemes remain strong.
  EXPECT_GT(plan_joint(0.30, budget(100)).R(), 0.95);
  EXPECT_GT(plan_disjoint(0.18, budget(100)).R(), 0.9);
}

TEST(PaperClaims, SmallNetworkCostIsCapped) {
  // Fig. 6(d): with only 100 nodes the cost saturates at the budget.
  for (double p : {0.2, 0.3, 0.4}) {
    EXPECT_LE(plan_joint(p, budget(100)).nodes_used, 100u);
  }
}

// -- share planner ----------------------------------------------------------------

TEST(SharePlanner, GeometryIsFeasible) {
  const SharePlan plan = plan_share(0.2, budget(1000), ChurnSpec::with_alpha(3));
  // Columns must fit the budget and leave n >= k carrier slots per column.
  EXPECT_GE(plan.alg1.n, plan.base.shape.k);
  EXPECT_LE(plan.alg1.n * plan.base.shape.l, 1000u);
  EXPECT_GE(plan.base.shape.l, 2u);
}

TEST(SharePlanner, PrefersWideColumnsOverLongPaths) {
  // The share scheme's strength is the binomial threshold: n should be much
  // larger than the onion replication k.
  const SharePlan plan =
      plan_share(0.2, budget(10000), ChurnSpec::with_alpha(3));
  EXPECT_GT(plan.alg1.n, 4 * plan.base.shape.k);
}

TEST(SharePlanner, NoChurnMeansNoDeadShares) {
  const SharePlan plan = plan_share(0.2, budget(1000), ChurnSpec::none());
  EXPECT_EQ(plan.alg1.d, 0u);
}

TEST(SharePlanner, ChurnResilienceBeatsJointUnderHeavyChurn) {
  // Fig. 7(d): at alpha = 5 the share scheme crushes the pattern schemes.
  const double p = 0.2;
  const ChurnSpec churn = ChurnSpec::with_alpha(5.0);
  const SharePlan share = plan_share(p, budget(10000), churn);
  const Plan joint = plan_joint(p, budget(10000));
  const Resilience joint_churned =
      joint_churn_resilience(p, joint.shape, churn);
  EXPECT_GT(share.R(), 0.95);
  EXPECT_LT(joint_churned.combined(), share.R());
}

TEST(SharePlanner, CostScalesDownGracefully) {
  // Fig. 8: smaller budgets keep useful resilience at moderate p.
  const ChurnSpec churn = ChurnSpec::with_alpha(3.0);
  EXPECT_GT(plan_share(0.20, budget(10000), churn).R(), 0.99);
  EXPECT_GT(plan_share(0.20, budget(5000), churn).R(), 0.99);
  EXPECT_GT(plan_share(0.20, budget(1000), churn).R(), 0.95);
  EXPECT_GT(plan_share(0.10, budget(100), churn).R(), 0.9);
}

TEST(SharePlanner, BudgetOrdering) {
  // Bigger budget never hurts (same p, same churn).
  const ChurnSpec churn = ChurnSpec::with_alpha(3.0);
  double prev = 0.0;
  for (std::size_t n : {100u, 1000u, 5000u, 10000u}) {
    const double r = plan_share(0.25, budget(n), churn).R();
    EXPECT_GE(r + 0.02, prev) << n;  // small MC-free analytic slack
    prev = r;
  }
}

TEST(Planner, SchemeDispatcher) {
  EXPECT_EQ(plan_scheme(SchemeKind::kCentralized, 0.1, budget(100)).kind,
            SchemeKind::kCentralized);
  EXPECT_EQ(plan_scheme(SchemeKind::kDisjoint, 0.1, budget(100)).kind,
            SchemeKind::kDisjoint);
  EXPECT_EQ(plan_scheme(SchemeKind::kJoint, 0.1, budget(100)).kind,
            SchemeKind::kJoint);
  EXPECT_THROW(plan_scheme(SchemeKind::kShare, 0.1, budget(100)),
               PreconditionError);
}

TEST(Planner, EmptyBudgetRejected) {
  EXPECT_THROW(plan_joint(0.1, budget(0)), PreconditionError);
}

// -- churn-aware planning (extension) -----------------------------------------

TEST(ChurnAwarePlanner, BeatsAttackOnlyUnderChurn) {
  const ChurnSpec churn = ChurnSpec::with_alpha(3.0);
  for (double p : {0.0, 0.1, 0.2}) {
    const Plan attack_only = plan_joint(p, budget(10000));
    const Resilience ao_churned =
        joint_churn_resilience(p, attack_only.shape, churn);
    const Plan aware =
        plan_churn_aware(SchemeKind::kJoint, p, budget(10000), churn);
    EXPECT_GE(aware.R() + 1e-9, ao_churned.combined()) << p;
  }
}

TEST(ChurnAwarePlanner, FixesTheZeroPArtifact) {
  // Attack-only planning picks one holder at p = 0; churn-aware replicates.
  const ChurnSpec churn = ChurnSpec::with_alpha(3.0);
  const Plan aware =
      plan_churn_aware(SchemeKind::kJoint, 0.0, budget(10000), churn);
  EXPECT_GT(aware.shape.k, 1u);
  EXPECT_GT(aware.R(), 0.99);
}

TEST(ChurnAwarePlanner, NoChurnMatchesAttackOnlyScore) {
  const Plan aware = plan_churn_aware(SchemeKind::kJoint, 0.3, budget(10000),
                                      ChurnSpec::none());
  const Plan attack_only = plan_joint(0.3, budget(10000));
  // The ladder search may pick a different geometry, but the achieved score
  // must be comparable.
  EXPECT_NEAR(aware.R(), attack_only.R(), 5e-3);
}

TEST(ChurnAwarePlanner, CentralizedReportsChurnedResilience) {
  const ChurnSpec churn = ChurnSpec::with_alpha(2.0);
  const Plan plan =
      plan_churn_aware(SchemeKind::kCentralized, 0.2, budget(100), churn);
  EXPECT_NEAR(plan.R(), centralized_churn_resilience(0.2, churn).combined(),
              1e-12);
}

TEST(ChurnAwarePlanner, ShareSchemeRejected) {
  EXPECT_THROW(plan_churn_aware(SchemeKind::kShare, 0.1, budget(100),
                                ChurnSpec::with_alpha(1.0)),
               PreconditionError);
}

}  // namespace
}  // namespace emergence::core

// Tests for pseudo-random path construction (paper §III: the owner
// "pseudo-randomly selects nodes in the DHT to form the routing paths").
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/error.hpp"
#include "dht/chord_network.hpp"
#include "dht/kademlia.hpp"
#include "emerge/path.hpp"
#include "sim/simulator.hpp"

namespace emergence::core {
namespace {

struct Net {
  sim::Simulator sim;
  Rng rng{31337};
  std::unique_ptr<dht::ChordNetwork> net;

  explicit Net(std::size_t nodes) {
    dht::NetworkConfig config;
    config.run_maintenance = false;
    net = std::make_unique<dht::ChordNetwork>(sim, rng, config);
    net->bootstrap(nodes);
  }
};

TEST(PathLayout, JointGeometryColumnSizes) {
  Net t(64);
  crypto::Drbg drbg(std::uint64_t{1});
  const PathLayout layout = build_path_layout(
      *t.net, SchemeKind::kJoint, PathShape{3, 4}, /*carriers_n=*/0, drbg);
  ASSERT_EQ(layout.columns.size(), 4u);
  for (std::size_t c = 1; c <= 4; ++c)
    EXPECT_EQ(layout.holders_in_column(c), 3u);
  EXPECT_EQ(layout.total_holders(), 12u);
}

TEST(PathLayout, ShareGeometryTerminalColumnHasOnlySlots) {
  Net t(64);
  crypto::Drbg drbg(std::uint64_t{2});
  const PathLayout layout = build_path_layout(
      *t.net, SchemeKind::kShare, PathShape{2, 3}, /*carriers_n=*/5, drbg);
  EXPECT_EQ(layout.holders_in_column(1), 5u);
  EXPECT_EQ(layout.holders_in_column(2), 5u);
  EXPECT_EQ(layout.holders_in_column(3), 2u);  // Fig. 5: no terminal extras
  EXPECT_EQ(layout.total_holders(), 12u);
}

TEST(PathLayout, HoldersAreDistinct) {
  Net t(64);
  crypto::Drbg drbg(std::uint64_t{3});
  const PathLayout layout = build_path_layout(
      *t.net, SchemeKind::kJoint, PathShape{4, 8}, 0, drbg);
  std::set<dht::NodeId> seen;
  for (const auto& column : layout.columns)
    for (const dht::NodeId& id : column) EXPECT_TRUE(seen.insert(id).second);
}

TEST(PathLayout, RingPointsResolveToColumns) {
  Net t(64);
  crypto::Drbg drbg(std::uint64_t{4});
  const PathLayout layout = build_path_layout(
      *t.net, SchemeKind::kJoint, PathShape{2, 3}, 0, drbg);
  ASSERT_EQ(layout.ring_points.size(), layout.columns.size());
  for (std::size_t c = 0; c < layout.columns.size(); ++c) {
    ASSERT_EQ(layout.ring_points[c].size(), layout.columns[c].size());
    for (std::size_t h = 0; h < layout.columns[c].size(); ++h) {
      const dht::LookupResult r = t.net->lookup(layout.ring_points[c][h]);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.node, layout.columns[c][h]);
    }
  }
}

TEST(PathLayout, DeterministicForSeed) {
  // Same DRBG seed on an identical network must produce identical layouts:
  // the sender can regenerate its paths from the seed alone.
  Net t1(64), t2(64);
  crypto::Drbg drbg1(std::uint64_t{5}), drbg2(std::uint64_t{5});
  const PathLayout a = build_path_layout(*t1.net, SchemeKind::kJoint,
                                         PathShape{3, 3}, 0, drbg1);
  const PathLayout b = build_path_layout(*t2.net, SchemeKind::kJoint,
                                         PathShape{3, 3}, 0, drbg2);
  EXPECT_EQ(a.columns, b.columns);
  EXPECT_EQ(a.ring_points, b.ring_points);
}

TEST(PathLayout, DifferentSeedsDiffer) {
  Net t(128);
  crypto::Drbg drbg1(std::uint64_t{6}), drbg2(std::uint64_t{7});
  const PathLayout a = build_path_layout(*t.net, SchemeKind::kJoint,
                                         PathShape{3, 3}, 0, drbg1);
  const PathLayout b = build_path_layout(*t.net, SchemeKind::kJoint,
                                         PathShape{3, 3}, 0, drbg2);
  EXPECT_NE(a.columns, b.columns);
}

TEST(PathLayout, ContainsFindsHolders) {
  Net t(64);
  crypto::Drbg drbg(std::uint64_t{8});
  const PathLayout layout = build_path_layout(
      *t.net, SchemeKind::kJoint, PathShape{2, 2}, 0, drbg);
  EXPECT_TRUE(layout.contains(layout.columns[1][0]));
  EXPECT_FALSE(layout.contains(dht::NodeId::hash_of_text("stranger")));
}

TEST(PathLayout, NotEnoughNodesRejected) {
  Net t(8);
  crypto::Drbg drbg(std::uint64_t{9});
  EXPECT_THROW(build_path_layout(*t.net, SchemeKind::kJoint, PathShape{4, 4},
                                 0, drbg),
               PreconditionError);
}

TEST(PathLayout, ShareNeedsEnoughCarriers) {
  Net t(64);
  crypto::Drbg drbg(std::uint64_t{10});
  EXPECT_THROW(build_path_layout(*t.net, SchemeKind::kShare, PathShape{4, 3},
                                 /*carriers_n=*/2, drbg),
               PreconditionError);
}

TEST(PathLayout, ColumnRangeValidated) {
  Net t(64);
  crypto::Drbg drbg(std::uint64_t{11});
  const PathLayout layout = build_path_layout(
      *t.net, SchemeKind::kJoint, PathShape{2, 2}, 0, drbg);
  EXPECT_THROW(layout.holders_in_column(0), PreconditionError);
  EXPECT_THROW(layout.holders_in_column(3), PreconditionError);
}

TEST(PathLayout, WorksOverKademlia) {
  sim::Simulator sim;
  Rng rng(4242);
  dht::KademliaConfig config;
  config.run_maintenance = false;
  dht::KademliaNetwork net(sim, rng, config);
  net.bootstrap(64);
  crypto::Drbg drbg(std::uint64_t{12});
  const PathLayout layout =
      build_path_layout(net, SchemeKind::kJoint, PathShape{3, 3}, 0, drbg);
  std::set<dht::NodeId> seen;
  for (const auto& column : layout.columns) {
    for (const dht::NodeId& id : column) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_TRUE(net.is_alive(id));
    }
  }
}

}  // namespace
}  // namespace emergence::core

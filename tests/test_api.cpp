// The api facade (src/api/api.hpp): SubmitRequest/EmergeEvent codecs, the
// SessionHandle builder vs the legacy positional constructor, and the
// LocalClient end-to-end over a simulated world.
#include <gtest/gtest.h>

#include <memory>

#include "api/api.hpp"
#include "cloud/cloud_store.hpp"
#include "common/error.hpp"
#include "common/serial.hpp"
#include "dht/chord_network.hpp"
#include "sim/simulator.hpp"

namespace emergence::api {
namespace {

struct World {
  sim::Simulator sim;
  Rng rng{2024};
  dht::NetworkConfig net_config;
  std::unique_ptr<dht::ChordNetwork> net;
  cloud::CloudStore cloud;

  explicit World(std::size_t nodes = 64) {
    net_config.run_maintenance = false;
    net = std::make_unique<dht::ChordNetwork>(sim, rng, net_config);
    net->bootstrap(nodes);
  }
};

SubmitRequest sample_request() {
  SubmitRequest request;
  request.message = bytes_of("the emerged secret");
  request.receiver_token = "bob-token";
  request.scheme = core::SchemeKind::kShare;
  request.shape = core::PathShape{2, 3};
  request.carriers_n = 3;
  request.threshold_m = 2;
  request.emerging_time = 3600.0;
  request.assembly_delay = 0.5;
  request.backend = crypto::CipherBackend::kAes256Ctr;
  request.seed = 0x1234;
  return request;
}

TEST(ApiCodec, SubmitRequestRoundTripsByteIdentical) {
  const SubmitRequest request = sample_request();
  const Bytes encoded = encode_submit_request(request);
  const SubmitRequest back = decode_submit_request(encoded);
  EXPECT_EQ(back.message, request.message);
  EXPECT_EQ(back.receiver_token, request.receiver_token);
  EXPECT_EQ(back.scheme, request.scheme);
  EXPECT_EQ(back.shape.k, request.shape.k);
  EXPECT_EQ(back.shape.l, request.shape.l);
  EXPECT_EQ(back.carriers_n, request.carriers_n);
  EXPECT_EQ(back.threshold_m, request.threshold_m);
  EXPECT_EQ(back.emerging_time, request.emerging_time);
  EXPECT_EQ(back.assembly_delay, request.assembly_delay);
  EXPECT_EQ(back.backend, request.backend);
  EXPECT_EQ(back.seed, request.seed);
  EXPECT_EQ(encode_submit_request(back), encoded);
}

TEST(ApiCodec, EmergeEventRoundTripsByteIdentical) {
  EmergeEvent event;
  event.session_nonce = 0xABCDEF0123456789ull;
  event.release_time = 1754650123.5;
  event.delivery_time = 1754650123.875;
  event.secret = bytes_of("released");
  const Bytes encoded = encode_emerge_event(event);
  const EmergeEvent back = decode_emerge_event(encoded);
  EXPECT_EQ(back.session_nonce, event.session_nonce);
  EXPECT_EQ(back.release_time, event.release_time);
  EXPECT_EQ(back.delivery_time, event.delivery_time);
  EXPECT_EQ(back.secret, event.secret);
  EXPECT_EQ(encode_emerge_event(back), encoded);
}

TEST(ApiCodec, MalformedPayloadsThrowInsteadOfCrashing) {
  EXPECT_THROW(decode_submit_request(Bytes{}), Error);
  EXPECT_THROW(decode_emerge_event(Bytes{1, 2, 3}), Error);
  // A valid encoding with a corrupted scheme byte must be rejected.
  Bytes encoded = encode_submit_request(sample_request());
  Bytes truncated(encoded.begin(), encoded.end() - 1);
  EXPECT_THROW(decode_submit_request(truncated), Error);
}

TEST(ApiCodec, SubmitRequestResolvesToSessionConfig) {
  const SubmitRequest request = sample_request();
  const core::SessionConfig config = request.to_config();
  EXPECT_EQ(config.kind, request.scheme);
  EXPECT_EQ(config.shape.k, request.shape.k);
  EXPECT_EQ(config.shape.l, request.shape.l);
  EXPECT_EQ(config.carriers_n, request.carriers_n);
  EXPECT_EQ(config.threshold_m, request.threshold_m);
  EXPECT_EQ(config.emerging_time, request.emerging_time);
}

// The builder and the legacy positional constructor must produce the same
// session: same nonce stream, same protocol run, same delivery instant.
TEST(SessionBuilder, MatchesPositionalConstructorBitForBit) {
  const Bytes secret = bytes_of("builder-equivalence");
  core::SessionConfig config;
  config.kind = core::SchemeKind::kJoint;
  config.shape = core::PathShape{2, 3};
  config.emerging_time = 3600.0;

  World positional_world;
  core::TimedReleaseSession positional(*positional_world.net,
                                       positional_world.cloud, nullptr,
                                       config, 7);
  positional.send(secret, "bob");
  positional_world.sim.run_until(positional.release_time() + 1.0);

  World builder_world;
  SessionHandle built = SessionHandle::Builder()
                            .network(*builder_world.net)
                            .cloud(builder_world.cloud)
                            .scheme(core::SchemeKind::kJoint)
                            .shape(core::PathShape{2, 3})
                            .emerging_time(3600.0)
                            .seed(7)
                            .build();
  built->send(secret, "bob");
  builder_world.sim.run_until(built->release_time() + 1.0);

  EXPECT_EQ(built->session_nonce(), positional.session_nonce());
  EXPECT_EQ(built->release_time(), positional.release_time());
  ASSERT_TRUE(positional.secret_released());
  ASSERT_TRUE(built->secret_released());
  EXPECT_EQ(*built->first_delivery_time(), *positional.first_delivery_time());
  EXPECT_EQ(*built->receiver_decrypt("bob"), *positional.receiver_decrypt("bob"));
}

TEST(SessionBuilder, RejectsMissingWorld) {
  EXPECT_THROW(SessionHandle::Builder().build(), PreconditionError);
}

TEST(LocalClient, SubmitPollAndDecryptEndToEnd) {
  World world;
  LocalClient client(*world.net, world.cloud);

  SubmitRequest request;
  request.message = bytes_of("meet me at the bridge");
  request.receiver_token = "bob-token";
  request.scheme = core::SchemeKind::kJoint;
  request.shape = core::PathShape{2, 3};
  request.emerging_time = 3600.0;
  request.seed = 7;

  const SubmitReceipt receipt = client.submit(request);
  EXPECT_NE(receipt.session_nonce, 0u);
  EXPECT_DOUBLE_EQ(receipt.release_time,
                   receipt.start_time + request.emerging_time);

  // Nothing before tr.
  world.sim.run_until(receipt.release_time - 1.0);
  EXPECT_FALSE(client.poll(receipt.session_nonce).has_value());

  world.sim.run_until(receipt.release_time + 1.0);
  const auto event = client.poll(receipt.session_nonce);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->session_nonce, receipt.session_nonce);
  EXPECT_DOUBLE_EQ(event->delivery_time, receipt.release_time);

  const auto plaintext =
      client.receiver_decrypt(receipt.session_nonce, "bob-token");
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, bytes_of("meet me at the bridge"));

  EXPECT_FALSE(client.poll(receipt.session_nonce + 1).has_value());
  EXPECT_EQ(client.find(receipt.session_nonce + 1), nullptr);
  ASSERT_NE(client.find(receipt.session_nonce), nullptr);
}

}  // namespace
}  // namespace emergence::api

// The shared OptionTable surface (src/common/options.hpp): one key=value
// table serving scenario overrides, daemon/tool command lines and --help.
// The three config surfaces (SessionConfig keys, ScenarioSpec overrides,
// daemon flags) must all speak through it with uniform diagnostics.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/options.hpp"
#include "service/daemon.hpp"
#include "workload/scenario.hpp"

namespace emergence {
namespace {

TEST(OptionTable, TypedSettersParseAndValidate) {
  std::size_t size_v = 0;
  double real_v = 0.0;
  std::uint64_t u64_v = 0;
  bool flag_v = false;
  std::string string_v;

  OptionTable table;
  table.add_size("count", "a count", &size_v);
  table.add_real("ratio", "a ratio", &real_v);
  table.add_u64("seed", "a seed", &u64_v);
  table.add_flag("verbose", "a flag", &flag_v);
  table.add_string("label", "TEXT", "a label", &string_v);

  table.apply("count", "42");
  table.apply("ratio", "2.5");
  table.apply("seed", "0xDEAD");
  table.apply("verbose", "true");
  table.apply("label", "hello");
  EXPECT_EQ(size_v, 42u);
  EXPECT_DOUBLE_EQ(real_v, 2.5);
  EXPECT_EQ(u64_v, 0xDEADu);
  EXPECT_TRUE(flag_v);
  EXPECT_EQ(string_v, "hello");

  // Diagnostics are pinned: the offending token and the expectation.
  EXPECT_THROW(table.apply("count", "-1"), PreconditionError);
  EXPECT_THROW(table.apply("ratio", "fast"), PreconditionError);
  try {
    table.apply("ratio", "fast");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("not a number"), std::string::npos);
  }
}

TEST(OptionTable, UnknownKeyListsEveryKnownKey) {
  std::size_t v = 0;
  OptionTable table;
  table.add_size("alpha", "first", &v);
  table.add_size("beta", "second", &v);
  try {
    table.apply("gamma", "1", "test surface");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("known:"), std::string::npos);
    EXPECT_NE(what.find("alpha"), std::string::npos);
    EXPECT_NE(what.find("beta"), std::string::npos);
    EXPECT_NE(what.find("test surface"), std::string::npos);
  }
}

TEST(OptionTable, CommandLineParsingAndHelpRendering) {
  std::size_t count = 0;
  bool verbose = false;
  OptionTable table;
  table.add_size("count", "how many", &count);
  table.add_flag("verbose", "log more", &verbose);

  const char* argv[] = {"prog", "--count=7", "--verbose", "pos1", "--",
                        "--count=9"};
  const auto positional = table.parse_cli(6, argv, 1);
  EXPECT_EQ(count, 7u);
  EXPECT_TRUE(verbose);
  // "--" ends flag parsing; everything after is positional verbatim.
  ASSERT_EQ(positional.size(), 2u);
  EXPECT_EQ(positional[0], "pos1");
  EXPECT_EQ(positional[1], "--count=9");

  const std::string help = table.help();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

TEST(OptionTable, ChoiceDiagnosticsNameTheAlternatives) {
  int picked = 0;
  OptionTable table;
  table.add_choice("mode", "the mode",
                   {{"fast", [&picked] { picked = 1; }},
                    {"slow", [&picked] { picked = 2; }}});
  table.apply("mode", "slow");
  EXPECT_EQ(picked, 2);
  try {
    table.apply("mode", "medium");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fast"), std::string::npos);
    EXPECT_NE(what.find("slow"), std::string::npos);
  }
}

// The daemon's flags and the scenario's protocol keys ride the same table
// machinery: registering both in one table must not collide, and the keys
// keep their one canonical spelling.
TEST(OptionTable, DaemonAndProtocolSurfacesComposeInOneTable) {
  service::DaemonConfig config;
  core::SchemeKind scheme = core::SchemeKind::kJoint;
  core::PathShape shape{2, 3};
  std::size_t carriers = 0, threshold = 0;
  double emerging_time = 120.0;

  OptionTable table;
  service::add_daemon_options(table, config);
  workload::add_protocol_options(table, scheme, shape, carriers, threshold,
                                 emerging_time);

  table.apply("listen", "127.0.0.1:4100");
  table.apply("seed-node", "127.0.0.1:4000");
  table.apply("stabilize-interval", "0.25");
  table.apply("max-hops", "64");
  table.apply("scheme", "share");
  table.apply("k", "3");
  table.apply("T", "45");

  EXPECT_EQ(config.listen.to_string(), "127.0.0.1:4100");
  ASSERT_TRUE(config.seed.has_value());
  EXPECT_EQ(config.seed->to_string(), "127.0.0.1:4000");
  EXPECT_DOUBLE_EQ(config.stabilize_interval, 0.25);
  EXPECT_EQ(config.max_hops, 64);
  EXPECT_EQ(scheme, core::SchemeKind::kShare);
  EXPECT_EQ(shape.k, 3u);
  EXPECT_DOUBLE_EQ(emerging_time, 45.0);

  // Validated, not silently clamped.
  EXPECT_THROW(table.apply("max-hops", "0"), PreconditionError);
  EXPECT_THROW(table.apply("max-hops", "300"), PreconditionError);
  EXPECT_THROW(table.apply("listen", "not-an-endpoint"), PreconditionError);

  // --help renders every key of both surfaces from the same registry.
  const std::string help = table.help();
  for (const char* key : {"--listen", "--seed-node", "--successor-list",
                          "--replicas", "--stabilize-interval",
                          "--repair-interval", "--request-timeout",
                          "--request-retries", "--max-hops", "--rng-seed",
                          "--k", "--l", "--T", "--scheme", "--carriers",
                          "--threshold"}) {
    EXPECT_NE(help.find(key), std::string::npos) << key;
  }
}

TEST(OptionTable, ScenarioGrammarSpeaksThroughTheSameTable) {
  // The scenario override grammar is the third surface of the same table:
  // a bad key in "name:key=value" produces the identical known-keys
  // diagnostic the command line produces.
  try {
    workload::parse_scenario("steady-trickle:no-such-knob=1");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("known:"), std::string::npos);
  }
  const auto spec = workload::parse_scenario("steady-trickle:k=3,T=600,scheme=share");
  EXPECT_EQ(spec.shape.k, 3u);
  EXPECT_DOUBLE_EQ(spec.emerging_time, 600.0);
  EXPECT_EQ(spec.scheme, core::SchemeKind::kShare);
}

TEST(OptionTable, DuplicateRegistrationThrows) {
  std::size_t v = 0;
  OptionTable table;
  table.add_size("count", "first", &v);
  EXPECT_THROW(table.add_size("count", "again", &v), PreconditionError);
}

}  // namespace
}  // namespace emergence

// Tests for the conservative-window parallel executor and its seams: the
// ExecutionContext redirect, window/barrier ordering, commutative stat
// merges, and the headline claim — fleet tallies bit-identical at ANY
// domain count (the serial legacy path stays its own fingerprint family).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dht/network.hpp"
#include "dht/transport.hpp"
#include "emerge/sweep.hpp"
#include "sim/domain_executor.hpp"
#include "sim/execution_context.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"
#include "workload/session_fleet.hpp"

namespace emergence {
namespace {

using sim::DomainExecutor;
using sim::ExecutionContext;
using sim::Simulator;
using workload::FleetTally;
using workload::ScenarioSpec;
using workload::SessionFleet;

// -- ExecutionContext redirect ------------------------------------------------

TEST(ExecutionContext, RedirectsSchedulesAndInheritsAcrossEvents) {
  Simulator world;
  Simulator domain;
  world.schedule_at(5.0, [] {});
  world.run();
  ASSERT_EQ(world.now(), 5.0);

  Rng rng(42);
  std::vector<double> seen;
  {
    ExecutionContext ctx;
    ctx.world = &world;
    ctx.domain = &domain;
    ctx.clock = &world;
    ctx.rng = &rng;
    ExecutionContext::Scope scope(ctx);

    // now() reads the context clock (the world, during barrier-phase code).
    EXPECT_EQ(world.now(), 5.0);

    // A world schedule lands in the domain queue; the action inherits the
    // context with the DOMAIN as its clock, so nested schedule_in offsets
    // from the executing event's logical time.
    world.schedule_at(7.0, [&] {
      seen.push_back(world.now());
      world.schedule_in(0.5, [&] { seen.push_back(world.now()); });
    });
    // Past-clamp under a context: clamps to the context clock (5.0).
    world.schedule_at(1.0, [&] { seen.push_back(world.now()); });
  }
  EXPECT_EQ(world.pending(), 0u);
  EXPECT_EQ(domain.pending(), 2u);
  // Outside the scope the world clock is raw again.
  EXPECT_EQ(world.now(), 5.0);

  domain.run_before(8.0);
  EXPECT_EQ(seen, (std::vector<double>{5.0, 7.0, 7.5}));
}

// -- DomainExecutor windows ---------------------------------------------------

TEST(DomainExecutor, BarrierEagerWindowsInTimestampOrder) {
  Simulator global;
  // threads=1: the serial window fallback — ordering is then fully
  // deterministic even across domains (bit-identity makes the parallel
  // path indistinguishable anyway; that is what the fleet gates pin).
  DomainExecutor exec(global, 2, 1.0, 1);

  std::vector<std::pair<int, double>> log;
  auto tag = [&](int who, double at_now) { log.push_back({who, at_now}); };

  // Barrier-eager rule: a global event inside the window commits BEFORE
  // domain events with earlier timestamps run.
  global.schedule_at(1.0, [&] { tag(0, global.now()); });
  exec.domain(0).schedule_at(0.5, [&] { tag(1, exec.domain(0).now()); });
  exec.domain(1).schedule_at(1.2, [&] { tag(2, exec.domain(1).now()); });
  // Exactly at the first window's end [0.5, 1.5): belongs to round 2.
  global.schedule_at(1.5, [&] { tag(3, global.now()); });

  EXPECT_FALSE(exec.run(std::function<bool()>{}));  // drained, not stopped
  EXPECT_EQ(log, (std::vector<std::pair<int, double>>{
                     {0, 1.0}, {1, 0.5}, {2, 1.2}, {3, 1.5}}));
  EXPECT_EQ(exec.rounds(), 2u);
  EXPECT_EQ(exec.domain_events_executed(), 2u);
  EXPECT_EQ(exec.events_per_domain(), (std::vector<std::uint64_t>{1u, 1u}));
}

TEST(DomainExecutor, StopPredicateChecksBetweenRounds) {
  Simulator global;
  DomainExecutor exec(global, 1, 0.5, 1);
  int fired = 0;
  global.schedule_at(0.1, [&] { ++fired; });
  global.schedule_at(10.0, [&] { ++fired; });
  // Stops after the first round (the 10.0 event stays pending).
  EXPECT_TRUE(exec.run([&] { return fired >= 1; }));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(global.pending(), 1u);
}

TEST(DomainExecutor, ParallelWorkersSampleSharedTransportRaceFree) {
  // The zone-cache regression in the form TSan checks: a worker pool
  // FORCED to 4 threads (auto-sizing would go serial on 1-core hosts)
  // where every domain samples latencies and drop chains through ONE
  // shared zoned TransportModel while the barrier hands windows back and
  // forth. Pre-fix, zone_of memoized into a mutable map on first use —
  // a write race exactly on this path.
  dht::TransportModel m;
  m.kind = dht::LatencyKind::kZoned;
  m.zone_count = 4;
  m.intra_min = 0.001;
  m.intra_max = 0.002;
  m.inter_min = 0.004;
  m.inter_max = 0.008;
  m.drop_probability = 0.2;
  m.max_retries = 2;
  m.validate();

  std::vector<dht::NodeId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(dht::NodeId::hash_of_text("tsan-node-" + std::to_string(i)));
    // Half primed (the bootstrap path), half computed on demand from the
    // workers — both must be race-free reads.
    if (i % 2 == 0) m.prime_zone(ids.back());
  }

  Simulator global;
  constexpr std::size_t kDomains = 4;
  DomainExecutor exec(global, kDomains, 0.01, 4);

  Rng root(2026);
  std::vector<Rng> rngs;
  std::vector<dht::TransportStats> stats(kDomains);
  std::vector<std::uint64_t> delivered(kDomains, 0);
  for (std::size_t d = 0; d < kDomains; ++d) rngs.push_back(root.fork(d));

  for (std::size_t d = 0; d < kDomains; ++d) {
    Simulator& queue = exec.domain(d);
    for (int i = 0; i < 50; ++i) {
      queue.schedule_at(0.001 * i, [&m, &ids, &exec, &rngs, &stats,
                                    &delivered, d, i] {
        const dht::NodeId& from = ids[(d * 17 + i) % ids.size()];
        const dht::NodeId& to = ids[(d * 31 + i * 7 + 1) % ids.size()];
        m.send(exec.domain(d), rngs[d], stats[d], from, to,
               [&delivered, d] { ++delivered[d]; });
      });
    }
  }
  EXPECT_FALSE(exec.run(std::function<bool()>{}));

  std::uint64_t total = 0;
  std::uint64_t attempts = 0;
  for (std::size_t d = 0; d < kDomains; ++d) {
    total += delivered[d];
    attempts += stats[d].attempts;
  }
  // p_drop=0.2, 2 retries: per-message timeout probability is 0.008 —
  // the vast majority of the 200 sends must deliver, with retries real.
  EXPECT_GT(total, 150u);
  EXPECT_GT(attempts, 200u);
}

TEST(DomainExecutor, RejectsNonPositiveLookahead) {
  Simulator global;
  EXPECT_THROW(DomainExecutor(global, 2, 0.0), PreconditionError);
  EXPECT_THROW(DomainExecutor(global, 0, 1.0), PreconditionError);
}

// -- commutative merges -------------------------------------------------------

TEST(MergeOrder, TransportAndLookupStatsMergeCommute) {
  dht::TransportStats a;
  a.messages = 3;
  a.attempts = 5;
  a.dropped = 1;
  a.hop_latency_us.add(55260);
  a.hop_latency_us.add(99243);
  dht::TransportStats b;
  b.messages = 7;
  b.retried = 2;
  b.timed_out = 1;
  b.hop_latency_us.add(55260);
  b.hop_latency_us.add(12);

  dht::TransportStats ab = a;
  ab.merge(b);
  dht::TransportStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());

  dht::LookupStats la{10, 31, 2};
  dht::LookupStats lb{4, 9, 0};
  dht::LookupStats lab = la;
  lab.merge(lb);
  dht::LookupStats lba = lb;
  lba.merge(la);
  EXPECT_EQ(lab.lookups, lba.lookups);
  EXPECT_EQ(lab.total_hops, lba.total_hops);
  EXPECT_EQ(lab.failures, lba.failures);
}

TEST(MergeOrder, FleetTallyMergeIsOrderIndependent) {
  // Per-world tallies of one 4-world scenario, merged in several orders:
  // every FleetTally field is an integer sum, max, exact histogram or
  // elementwise vector sum, so any order must produce one fingerprint.
  ScenarioSpec spec = workload::parse_scenario(
      "poisson-open:population=400,sessions=120,worlds=4");
  spec.validate();
  std::vector<FleetTally> per_world;
  for (std::size_t w = 0; w < spec.worlds; ++w) {
    per_world.push_back(SessionFleet(spec, w).run());
  }

  const std::vector<std::vector<std::size_t>> orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}};
  std::uint64_t first_fp = 0;
  std::uint64_t first_tfp = 0;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    FleetTally merged;
    for (std::size_t w : orders[i]) merged.merge(per_world[w]);
    if (i == 0) {
      first_fp = merged.fingerprint();
      first_tfp = merged.transport.fingerprint();
    } else {
      EXPECT_EQ(merged.fingerprint(), first_fp) << "order " << i;
      EXPECT_EQ(merged.transport.fingerprint(), first_tfp) << "order " << i;
    }
  }
}

// -- zone cache ---------------------------------------------------------------

TEST(TransportZones, ZoneOfIsPureAndPrimingChangesNothing) {
  dht::TransportModel m;
  m.kind = dht::LatencyKind::kZoned;
  m.zone_count = 4;
  m.intra_min = 0.01;
  m.intra_max = 0.02;
  m.inter_min = 0.05;
  m.inter_max = 0.10;
  m.validate();

  const dht::NodeId a = dht::NodeId::hash_of_text("zone-test-a");
  const dht::NodeId b = dht::NodeId::hash_of_text("zone-test-b");
  // Const zone_of computes without memoizing: repeated calls agree.
  const std::size_t za = m.zone_of(a);
  EXPECT_EQ(m.zone_of(a), za);
  // Priming (the serial bootstrap path) must not change the assignment.
  m.prime_zone(a);
  m.prime_zone(a);  // idempotent
  EXPECT_EQ(m.zone_of(a), za);
  EXPECT_EQ(m.cross_zone(a, b), m.zone_of(a) != m.zone_of(b));
}

TEST(TransportZones, MinSingleLatencyIsTheLawFloor) {
  // The executor's lookahead source: resolved ideal keeps the historical
  // 10ms floor; fixed is exact; zoned takes the min over both ranges.
  EXPECT_DOUBLE_EQ(
      dht::TransportModel::ideal().resolved(0.010, 0.100).min_single_latency(),
      0.010);
  dht::TransportModel fixed;
  fixed.kind = dht::LatencyKind::kFixed;
  fixed.max_latency = 0.25;
  EXPECT_DOUBLE_EQ(fixed.min_single_latency(), 0.25);
  dht::TransportModel zoned;
  zoned.kind = dht::LatencyKind::kZoned;
  zoned.zone_count = 2;
  zoned.intra_min = 0.02;
  zoned.intra_max = 0.03;
  zoned.inter_min = 0.08;
  zoned.inter_max = 0.12;
  EXPECT_DOUBLE_EQ(zoned.min_single_latency(), 0.02);
}

// -- domain-count bit-identity ------------------------------------------------

FleetTally run_with_domains(const std::string& text, std::size_t domains) {
  ScenarioSpec spec = workload::parse_scenario(text);
  spec.domains = domains;
  spec.validate();
  core::SweepRunner pool(core::SweepOptions{1, 64});
  return workload::run_scenario(pool, spec);
}

TEST(DomainInvariance, LossyWanChordBitIdenticalAt1248Domains) {
  // The acceptance claim at test scale, on the nastiest axes: WAN latency
  // law + iid loss + bounded retries + churn. Both the protocol tally AND
  // the transport fingerprint (counters + exact hop-latency histogram)
  // must be bit-identical for every domain count.
  const std::string text =
      "poisson-open:population=400,sessions=150,net=wan:drop=0.05;retries=3";
  const FleetTally base = run_with_domains(text, 1);
  EXPECT_EQ(base.sessions_started, 150u);
  for (std::size_t d : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const FleetTally t = run_with_domains(text, d);
    EXPECT_EQ(t.fingerprint(), base.fingerprint()) << "domains=" << d;
    EXPECT_EQ(t.transport.fingerprint(), base.transport.fingerprint())
        << "domains=" << d;
  }
}

TEST(DomainInvariance, KademliaBitIdenticalAcrossDomainCounts) {
  const std::string text =
      "poisson-open:population=400,sessions=120,backend=kademlia";
  const FleetTally base = run_with_domains(text, 1);
  const FleetTally t = run_with_domains(text, 4);
  EXPECT_EQ(t.fingerprint(), base.fingerprint());
  EXPECT_EQ(t.transport.fingerprint(), base.transport.fingerprint());
}

TEST(DomainInvariance, EventsPerDomainSurfacesWindowLoad) {
  const FleetTally t = run_with_domains(
      "poisson-open:population=400,sessions=120", 4);
  ASSERT_EQ(t.events_per_domain.size(), 4u);
  std::uint64_t window_events = 0;
  for (std::uint64_t e : t.events_per_domain) {
    EXPECT_GT(e, 0u);
    window_events += e;
  }
  // Domain events are part of the total; the global queue ran the rest.
  EXPECT_LT(window_events, t.events_executed);
}

}  // namespace
}  // namespace emergence

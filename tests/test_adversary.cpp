// Tests for the adversary knowledge base and the real restore engine.
#include <gtest/gtest.h>

#include "emerge/adversary.hpp"
#include "emerge/onion.hpp"

namespace emergence::core {
namespace {

crypto::SymmetricKey key_of(std::uint8_t fill) {
  return crypto::SymmetricKey::from_bytes(Bytes(32, fill));
}

dht::NodeId node(std::string_view name) {
  return dht::NodeId::hash_of_text(name);
}

Adversary::Config config_with(std::size_t k, std::size_t m,
                              AttackMode mode = AttackMode::kCovert) {
  Adversary::Config c;
  c.mode = mode;
  c.onion_slots_k = k;
  c.share_threshold_m = m;
  return c;
}

TEST(Adversary, TracksCoalitionMembership) {
  Adversary adv(config_with(1, 1));
  adv.mark_malicious(node("evil"));
  EXPECT_TRUE(adv.is_malicious(node("evil")));
  EXPECT_FALSE(adv.is_malicious(node("good")));
  EXPECT_EQ(adv.coalition_size(), 1u);
}

TEST(Adversary, ModeSwitches) {
  Adversary adv(config_with(1, 1, AttackMode::kDropping));
  EXPECT_EQ(adv.mode(), AttackMode::kDropping);
  adv.set_mode(AttackMode::kCovert);
  EXPECT_EQ(adv.mode(), AttackMode::kCovert);
}

TEST(Adversary, SharesDedupeByIndex) {
  Adversary adv(config_with(1, 2));
  crypto::Share s;
  s.index = 1;
  s.data = bytes_of("x");
  adv.observe_share(LayerKeyId{2, LayerKeyId::kSharedHolder}, s, 0.0);
  adv.observe_share(LayerKeyId{2, LayerKeyId::kSharedHolder}, s, 1.0);
  EXPECT_EQ(adv.captured_shares(), 1u);
}

TEST(Adversary, PackagesDedupeByContent) {
  Adversary adv(config_with(1, 1));
  adv.observe_package(bytes_of("pkg"), 0.0);
  adv.observe_package(bytes_of("pkg"), 1.0);
  adv.observe_package(bytes_of("other"), 1.0);
  EXPECT_EQ(adv.captured_packages(), 2u);
}

TEST(Adversary, DirectSecretObservationWins) {
  Adversary adv(config_with(1, 1));
  adv.observe_secret(bytes_of("leaked"), 12.5);
  const auto secret = adv.attempt_restore(13.0);
  ASSERT_TRUE(secret.has_value());
  EXPECT_EQ(*secret, bytes_of("leaked"));
  EXPECT_EQ(adv.earliest_secret_time(), 12.5);
}

TEST(Adversary, EarliestSecretTimeKeepsMinimum) {
  Adversary adv(config_with(1, 1));
  adv.observe_secret(bytes_of("s"), 10.0);
  adv.observe_secret(bytes_of("s"), 5.0);
  adv.observe_secret(bytes_of("s"), 20.0);
  EXPECT_EQ(adv.earliest_secret_time(), 5.0);
}

TEST(Adversary, RestoreFailsWithoutKeys) {
  // Give the adversary a full onion but no keys at all.
  crypto::Drbg drbg(std::uint64_t{3});
  std::vector<ColumnBuildSpec> specs(2);
  specs[0].holder_keys = {key_of(1)};
  specs[0].envelopes.resize(1);
  specs[0].envelopes[0].next_hops = {node("n")};
  specs[1].holder_keys = {key_of(2)};
  specs[1].envelopes.resize(1);
  specs[1].envelopes[0].terminal_payload = bytes_of("secret!");
  const Bytes onion = build_onion(specs, drbg);

  Adversary adv(config_with(1, 1));
  adv.observe_package(onion, 0.0);
  EXPECT_FALSE(adv.attempt_restore(0.0).has_value());
}

TEST(Adversary, RestoreWithAllColumnKeysSucceeds) {
  // The release-ahead attack of Fig. 2(b), K4 case: all keys + the package.
  crypto::Drbg drbg(std::uint64_t{4});
  std::vector<ColumnBuildSpec> specs(3);
  for (std::size_t c = 0; c < 3; ++c) {
    specs[c].holder_keys = {key_of(static_cast<std::uint8_t>(c + 1))};
    specs[c].envelopes.resize(1);
    if (c == 2)
      specs[c].envelopes[0].terminal_payload = bytes_of("early!");
    else
      specs[c].envelopes[0].next_hops = {node("n")};
  }
  const Bytes onion = build_onion(specs, drbg);

  Adversary adv(config_with(1, 1));
  adv.observe_package(onion, 0.0);
  for (std::uint16_t c = 1; c <= 3; ++c)
    adv.observe_key(LayerKeyId{c, LayerKeyId::kSharedHolder},
                    key_of(static_cast<std::uint8_t>(c)), 0.0);
  const auto secret = adv.attempt_restore(0.5);
  ASSERT_TRUE(secret.has_value());
  EXPECT_EQ(*secret, bytes_of("early!"));
  EXPECT_EQ(adv.earliest_secret_time(), 0.5);
}

TEST(Adversary, MissingMiddleKeyBlocksRestore) {
  // Fig. 2(b), K3 case: a gap in the key chain stops the attack even with
  // keys on both sides of it.
  crypto::Drbg drbg(std::uint64_t{5});
  std::vector<ColumnBuildSpec> specs(3);
  for (std::size_t c = 0; c < 3; ++c) {
    specs[c].holder_keys = {key_of(static_cast<std::uint8_t>(c + 1))};
    specs[c].envelopes.resize(1);
    if (c == 2)
      specs[c].envelopes[0].terminal_payload = bytes_of("safe");
    else
      specs[c].envelopes[0].next_hops = {node("n")};
  }
  const Bytes onion = build_onion(specs, drbg);

  Adversary adv(config_with(1, 1));
  adv.observe_package(onion, 0.0);
  adv.observe_key(LayerKeyId{1, LayerKeyId::kSharedHolder}, key_of(1), 0.0);
  adv.observe_key(LayerKeyId{3, LayerKeyId::kSharedHolder}, key_of(3), 0.0);
  EXPECT_FALSE(adv.attempt_restore(1.0).has_value());
  // Handing over the missing key unlocks everything already captured.
  adv.observe_key(LayerKeyId{2, LayerKeyId::kSharedHolder}, key_of(2), 2.0);
  EXPECT_TRUE(adv.attempt_restore(2.0).has_value());
}

TEST(Adversary, ReconstructsKeysFromEnoughShares) {
  crypto::Drbg drbg(std::uint64_t{6});
  const Bytes key_bytes = Bytes(32, 0x5a);
  auto shares = crypto::shamir_split(key_bytes, 2, 4, drbg);

  Adversary adv(config_with(1, 2));
  const LayerKeyId id{3, LayerKeyId::kSharedHolder};
  adv.observe_share(id, shares[0], 0.0);
  EXPECT_EQ(adv.known_keys(), 0u);
  adv.observe_share(id, shares[2], 0.0);
  adv.attempt_restore(0.0);  // triggers reconstruction
  EXPECT_EQ(adv.known_keys(), 1u);
}

TEST(Adversary, ShareSchemeEndToEndRestore) {
  // Column-1 key known directly; column-2 key only as shares inside the
  // column-1 envelopes. Two of three captured envelopes are enough.
  crypto::Drbg drbg(std::uint64_t{7});
  crypto::Drbg key_source(std::uint64_t{8});
  const Bytes k2 = key_source.bytes(32);
  auto k2_shares = crypto::shamir_split(k2, 2, 3, drbg);

  std::vector<ColumnBuildSpec> specs(2);
  specs[0].holder_keys = {key_of(1), key_of(1), key_of(1)};
  specs[0].envelopes.resize(3);
  for (std::size_t h = 0; h < 3; ++h) {
    specs[0].envelopes[h].next_hops = {node("t0")};
    specs[0].envelopes[h].shares.push_back(TargetedShare{0, k2_shares[h]});
  }
  specs[1].holder_keys = {crypto::SymmetricKey::from_bytes(k2)};
  specs[1].envelopes.resize(1);
  specs[1].envelopes[0].terminal_payload = bytes_of("share-secret");
  const Bytes onion = build_onion(specs, drbg);

  Adversary adv(config_with(3, 2));  // all 3 column-1 holders are slots
  adv.observe_package(onion, 0.0);
  adv.observe_key(LayerKeyId{1, LayerKeyId::kSharedHolder}, key_of(1), 0.0);
  const auto secret = adv.attempt_restore(1.0);
  ASSERT_TRUE(secret.has_value());
  EXPECT_EQ(*secret, bytes_of("share-secret"));
}

TEST(Adversary, InsufficientSharesBlockRestore) {
  crypto::Drbg drbg(std::uint64_t{9});
  crypto::Drbg key_source(std::uint64_t{10});
  const Bytes k2 = key_source.bytes(32);
  auto k2_shares = crypto::shamir_split(k2, 3, 3, drbg);  // need all three

  std::vector<ColumnBuildSpec> specs(2);
  specs[0].holder_keys = {key_of(1), key_of(2), key_of(3)};
  specs[0].envelopes.resize(3);
  for (std::size_t h = 0; h < 3; ++h) {
    specs[0].envelopes[h].next_hops = {node("t")};
    specs[0].envelopes[h].shares.push_back(TargetedShare{0, k2_shares[h]});
  }
  specs[1].holder_keys = {crypto::SymmetricKey::from_bytes(k2)};
  specs[1].envelopes.resize(1);
  specs[1].envelopes[0].terminal_payload = bytes_of("still safe");
  const Bytes onion = build_onion(specs, drbg);

  // Adversary controls only holders 0 and 1 (their keys): 2 of 3 shares.
  Adversary adv(config_with(1, 3));
  adv.observe_package(onion, 0.0);
  adv.observe_key(LayerKeyId{1, LayerKeyId::kSharedHolder}, key_of(1), 0.0);
  adv.observe_key(LayerKeyId{1, 1}, key_of(2), 0.0);
  EXPECT_FALSE(adv.attempt_restore(1.0).has_value());
}

TEST(Adversary, GarbagePackagesAreIgnored) {
  Adversary adv(config_with(1, 1));
  adv.observe_package(bytes_of("not an onion at all"), 0.0);
  EXPECT_FALSE(adv.attempt_restore(0.0).has_value());
}

}  // namespace
}  // namespace emergence::core

// Regression coverage for the ChurnDriver's LifetimeModel generalization.
//
// The hard contract of the refactor: the *default* configuration (no
// explicit model) must replay the pre-generalization churn event sequence
// bit-for-bit at pinned seeds — same death count, same transient count,
// same event times to the last ulp, same replacement ids. The goldens
// below were captured against the pre-refactor driver (the inline
// rng.exponential call) and must never drift.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"
#include "dht/chord_network.hpp"
#include "dht/churn_driver.hpp"
#include "workload/lifetime.hpp"

namespace emergence {
namespace {

struct DeathEvent {
  double at = 0.0;
  std::string dead_prefix;         // first 4 bytes, hex
  std::string replacement_prefix;  // empty when not replaced
};

struct GoldenRun {
  std::uint64_t deaths = 0;
  std::uint64_t transients = 0;
  std::uint64_t replacements = 0;
  std::vector<DeathEvent> first_deaths;
};

/// One pinned world driven to t = 1200: 64 Chord nodes at seed 0xC0FFEE,
/// mean lifetime 400, 25% transient outages with mean downtime 60.
GoldenRun drive_pinned_world(dht::ChurnConfig churn_config) {
  sim::Simulator sim;
  Rng rng(0xC0FFEE);
  dht::NetworkConfig cfg;
  cfg.run_maintenance = true;
  dht::ChordNetwork net(sim, rng, cfg);
  net.bootstrap(64);
  dht::ChurnDriver churn(net, std::move(churn_config));
  GoldenRun run;
  churn.on_death = [&](const dht::NodeId& dead, const dht::NodeId* rep) {
    if (run.first_deaths.size() >= 6) return;
    DeathEvent event;
    event.at = sim.now();
    event.dead_prefix = to_hex(dead.bytes()).substr(0, 8);
    if (rep != nullptr)
      event.replacement_prefix = to_hex(rep->bytes()).substr(0, 8);
    run.first_deaths.push_back(event);
  };
  churn.start();
  sim.run_until(1200.0);
  run.deaths = churn.deaths();
  run.transients = churn.transient_outages();
  run.replacements = churn.replacements();
  return run;
}

dht::ChurnConfig pinned_config() {
  dht::ChurnConfig cfg;
  cfg.mean_lifetime = 400.0;
  cfg.replace_dead_nodes = true;
  cfg.transient_fraction = 0.25;
  cfg.mean_downtime = 60.0;
  return cfg;
}

void expect_golden(const GoldenRun& run) {
  // Captured against the pre-generalization driver (see file comment).
  EXPECT_EQ(run.deaths, 140u);
  EXPECT_EQ(run.transients, 47u);
  EXPECT_EQ(run.replacements, 140u);
  ASSERT_EQ(run.first_deaths.size(), 6u);
  const std::vector<DeathEvent> expected = {
      {0.93329468760557455, "54d5004e", "ed2f56a7"},
      {5.64354698965903, "a835c616", "0712e60c"},
      {23.855742585256742, "e86c2f4f", "a09658ee"},
      {24.579743796041136, "a181a840", "54e38dff"},
      {60.334220245464451, "5a8e6151", "f90e320d"},
      {63.146552594661351, "6b8cc154", "553070af"},
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Bit-equal doubles: the refactor must not perturb a single draw.
    EXPECT_EQ(run.first_deaths[i].at, expected[i].at) << "event " << i;
    EXPECT_EQ(run.first_deaths[i].dead_prefix, expected[i].dead_prefix);
    EXPECT_EQ(run.first_deaths[i].replacement_prefix,
              expected[i].replacement_prefix);
  }
}

TEST(ChurnModels, DefaultConfigReplaysPreRefactorSequenceBitForBit) {
  expect_golden(drive_pinned_world(pinned_config()));
}

TEST(ChurnModels, ExplicitExponentialModelMatchesTheDefault) {
  // Passing the exponential model explicitly must be indistinguishable
  // from the null-model default (including transient/replacement logic).
  dht::ChurnConfig cfg = pinned_config();
  cfg.lifetime = std::make_shared<workload::ExponentialLifetime>(400.0);
  expect_golden(drive_pinned_world(cfg));
}

TEST(ChurnModels, ExponentialSampleIsExactlyRngExponential) {
  const workload::ExponentialLifetime model(250.0);
  Rng a(0xAB), b(0xAB);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(model.sample(a), b.exponential(250.0));
  }
}

TEST(ChurnModels, HeavyTailModelsDriveChurnDeterministically) {
  for (const auto& model :
       std::vector<std::shared_ptr<const workload::LifetimeModel>>{
           std::make_shared<workload::WeibullLifetime>(0.6, 400.0),
           std::make_shared<workload::ParetoLifetime>(1.5, 400.0),
           std::make_shared<workload::TraceLifetime>(
               workload::bundled_session_trace(), 400.0)}) {
    dht::ChurnConfig cfg = pinned_config();
    cfg.lifetime = model;
    const GoldenRun first = drive_pinned_world(cfg);
    const GoldenRun second = drive_pinned_world(cfg);
    EXPECT_GT(first.deaths + first.transients, 0u) << model->name();
    EXPECT_EQ(first.deaths, second.deaths) << model->name();
    EXPECT_EQ(first.transients, second.transients) << model->name();
    ASSERT_EQ(first.first_deaths.size(), second.first_deaths.size());
    for (std::size_t i = 0; i < first.first_deaths.size(); ++i) {
      EXPECT_EQ(first.first_deaths[i].at, second.first_deaths[i].at);
      EXPECT_EQ(first.first_deaths[i].dead_prefix,
                second.first_deaths[i].dead_prefix);
    }
  }
}

TEST(ChurnModels, DriverExposesItsModel) {
  sim::Simulator sim;
  Rng rng(1);
  dht::ChordNetwork net(sim, rng, dht::NetworkConfig{});
  net.bootstrap(8);
  dht::ChurnDriver defaulted(net, pinned_config());
  EXPECT_EQ(defaulted.lifetime_model().name(), "exponential");
  EXPECT_DOUBLE_EQ(defaulted.lifetime_model().mean(), 400.0);

  dht::ChurnConfig cfg = pinned_config();
  cfg.lifetime = std::make_shared<workload::ParetoLifetime>(2.0, 300.0);
  dht::ChurnDriver heavy(net, cfg);
  EXPECT_EQ(heavy.lifetime_model().name(), "pareto");
  EXPECT_DOUBLE_EQ(heavy.lifetime_model().mean(), 300.0);
}

}  // namespace
}  // namespace emergence

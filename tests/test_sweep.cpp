// Tests for the parallel deterministic sweep engine: thread-count
// invariance, equivalence with a flat serial loop (the pre-SweepRunner
// monte_carlo loop structure, re-seeded with the counter-based fork),
// shard-size invariance, and the exact tally type.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "emerge/stat_engine.hpp"
#include "emerge/sweep.hpp"

namespace emergence::core {
namespace {

/// Asserts every field of two EvalResults is bit-identical (exact ==, no
/// tolerance: the engine's determinism contract).
void expect_bit_identical(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.shape.k, b.shape.k);
  EXPECT_EQ(a.shape.l, b.shape.l);
  EXPECT_EQ(a.nodes_used, b.nodes_used);
  EXPECT_EQ(a.analytic.release_ahead, b.analytic.release_ahead);
  EXPECT_EQ(a.analytic.drop, b.analytic.drop);
  EXPECT_EQ(a.monte_carlo.release_ahead, b.monte_carlo.release_ahead);
  EXPECT_EQ(a.monte_carlo.drop, b.monte_carlo.drop);
  EXPECT_EQ(a.release_stderr, b.release_stderr);
  EXPECT_EQ(a.drop_stderr, b.drop_stderr);
  EXPECT_EQ(a.mean_compromised_suffix, b.mean_compromised_suffix);
  ASSERT_EQ(a.alg1.has_value(), b.alg1.has_value());
  if (a.alg1.has_value()) {
    EXPECT_EQ(a.alg1->n, b.alg1->n);
    EXPECT_EQ(a.alg1->d, b.alg1->d);
    EXPECT_EQ(a.alg1->pdead, b.alg1->pdead);
    EXPECT_EQ(a.alg1->resilience.release_ahead, b.alg1->resilience.release_ahead);
    EXPECT_EQ(a.alg1->resilience.drop, b.alg1->resilience.drop);
    EXPECT_EQ(a.alg1->columns.size(), b.alg1->columns.size());
  }
}

/// A small but non-trivial point: enough runs to cross several shards,
/// pinned to the seed's default Monte-Carlo seed 0x5eed.
EvalPoint test_point(double p, bool churn, std::size_t runs = 250) {
  EvalPoint point;
  point.p = p;
  point.population = 2000;
  point.planner.node_budget = 400;
  point.runs = runs;
  point.seed = 0x5eed;
  if (churn) point.churn = ChurnSpec::with_alpha(3.0);
  return point;
}

const SchemeKind kAllSchemes[] = {SchemeKind::kCentralized,
                                  SchemeKind::kDisjoint, SchemeKind::kJoint,
                                  SchemeKind::kShare};

TEST(SweepThreadInvariance, AllSchemesChurnOffBitIdentical) {
  SweepRunner one(SweepOptions{1, 64});
  SweepRunner two(SweepOptions{2, 64});
  SweepRunner eight(SweepOptions{8, 64});
  for (SchemeKind kind : kAllSchemes) {
    const EvalPoint point = test_point(0.3, /*churn=*/false);
    const EvalResult r1 = one.evaluate_point(kind, point);
    const EvalResult r2 = two.evaluate_point(kind, point);
    const EvalResult r8 = eight.evaluate_point(kind, point);
    expect_bit_identical(r1, r2);
    expect_bit_identical(r1, r8);
  }
}

TEST(SweepThreadInvariance, AllSchemesChurnOnBitIdentical) {
  SweepRunner one(SweepOptions{1, 64});
  SweepRunner two(SweepOptions{2, 64});
  SweepRunner eight(SweepOptions{8, 64});
  for (SchemeKind kind : kAllSchemes) {
    const EvalPoint point = test_point(0.2, /*churn=*/true);
    const EvalResult r1 = one.evaluate_point(kind, point);
    const EvalResult r2 = two.evaluate_point(kind, point);
    const EvalResult r8 = eight.evaluate_point(kind, point);
    expect_bit_identical(r1, r2);
    expect_bit_identical(r1, r8);
  }
}

TEST(SweepThreadInvariance, FixedShapeBitIdentical) {
  SweepRunner one(SweepOptions{1, 32});
  SweepRunner eight(SweepOptions{8, 32});
  const PathShape shape{3, 10};
  for (bool churn : {false, true}) {
    const EvalPoint point = test_point(0.25, churn);
    expect_bit_identical(one.evaluate_fixed_shape(SchemeKind::kJoint, shape, point),
                         eight.evaluate_fixed_shape(SchemeKind::kJoint, shape, point));
    expect_bit_identical(
        one.evaluate_fixed_shape(SchemeKind::kShare, PathShape{2, 5}, point),
        eight.evaluate_fixed_shape(SchemeKind::kShare, PathShape{2, 5}, point));
  }
}

TEST(SweepThreadInvariance, ShardSizeDoesNotChangeResults) {
  // Exact integer tallies make the aggregate independent of the shard
  // decomposition, not just of the thread count.
  const EvalPoint point = test_point(0.3, /*churn=*/true);
  const EvalResult base =
      SweepRunner(SweepOptions{1, 64}).evaluate_point(SchemeKind::kJoint, point);
  for (std::size_t shard_size : {std::size_t{1}, std::size_t{7},
                                 std::size_t{1000}}) {
    SweepRunner runner(SweepOptions{4, shard_size});
    expect_bit_identical(base, runner.evaluate_point(SchemeKind::kJoint, point));
  }
}

// The free functions (what every test and bench used before SweepRunner
// existed) must agree with an explicitly-constructed runner.
TEST(SweepSerialEquivalence, FreeFunctionsMatchExplicitRunner) {
  const EvalPoint point = test_point(0.35, /*churn=*/false);
  SweepRunner runner(SweepOptions{3, 16});
  expect_bit_identical(evaluate_point(SchemeKind::kDisjoint, point),
                       runner.evaluate_point(SchemeKind::kDisjoint, point));
  expect_bit_identical(
      evaluate_fixed_shape(SchemeKind::kCentralized, PathShape{1, 1}, point),
      runner.evaluate_fixed_shape(SchemeKind::kCentralized, PathShape{1, 1},
                                  point));
}

// The engine must reproduce a flat serial loop — the pre-refactor
// monte_carlo structure (one loop over the runs, a fork per run, single
// sequential accumulators) under the engine's counter-based per-run seeding
// — bit-for-bit at the pinned seed. (The per-run seeding itself changed
// with the engine: fork(i) instead of sequential stateful fork(), so MC
// estimates differ numerically from pre-engine outputs while sampling the
// same distributions.)
TEST(SweepSerialEquivalence, MatchesFlatSerialLoop) {
  const PathShape shape{4, 8};
  for (bool churn : {false, true}) {
    const EvalPoint point = test_point(0.3, churn, 300);

    StatEnvironment env;
    env.population = point.population;
    env.malicious_count = static_cast<std::size_t>(
        std::floor(point.p * static_cast<double>(point.population)));
    env.churn = point.churn;

    const Rng master(point.seed);
    RateStat release, drop;
    std::uint64_t suffix_sum = 0;
    for (std::size_t run = 0; run < point.runs; ++run) {
      Rng rng = master.fork(run);
      const StatRunOutcome outcome =
          run_multipath_stat(SchemeKind::kJoint, shape, env, rng);
      release.add(outcome.release_success);
      drop.add(outcome.drop_success);
      suffix_sum += outcome.compromised_suffix;
    }

    SweepRunner runner(SweepOptions{8, 64});
    const EvalResult result =
        runner.evaluate_fixed_shape(SchemeKind::kJoint, shape, point);
    EXPECT_EQ(result.monte_carlo.release_ahead, 1.0 - release.rate());
    EXPECT_EQ(result.monte_carlo.drop, 1.0 - drop.rate());
    EXPECT_EQ(result.release_stderr, release.stderr_rate());
    EXPECT_EQ(result.drop_stderr, drop.stderr_rate());
    EXPECT_EQ(result.mean_compromised_suffix,
              static_cast<double>(suffix_sum) /
                  static_cast<double>(point.runs));
  }
}

TEST(SweepSerialEquivalence, RepeatedEvaluationIsStable) {
  SweepRunner runner(SweepOptions{8, 8});
  const EvalPoint point = test_point(0.3, /*churn=*/true);
  const EvalResult a = runner.evaluate_point(SchemeKind::kShare, point);
  const EvalResult b = runner.evaluate_point(SchemeKind::kShare, point);
  expect_bit_identical(a, b);
}

TEST(SweepTally, AddAndMergeAreExact) {
  StatRunOutcome hit;
  hit.release_success = true;
  hit.drop_success = false;
  hit.compromised_suffix = 3;
  StatRunOutcome miss;
  miss.release_success = false;
  miss.drop_success = true;
  miss.compromised_suffix = 0;

  RunTally left, right, serial;
  for (int i = 0; i < 5; ++i) {
    left.add(hit);
    serial.add(hit);
  }
  for (int i = 0; i < 7; ++i) {
    right.add(miss);
    serial.add(miss);
  }
  left.merge(right);

  EXPECT_EQ(left.runs(), serial.runs());
  EXPECT_EQ(left.release.successes(), serial.release.successes());
  EXPECT_EQ(left.drop.successes(), serial.drop.successes());
  EXPECT_EQ(left.suffix_sum(), serial.suffix_sum());
  EXPECT_EQ(left.suffix_at_least(1), 5u);
  EXPECT_EQ(left.suffix_at_least(3), 5u);
  EXPECT_EQ(left.suffix_at_least(4), 0u);
  EXPECT_EQ(left.mean_suffix(), serial.mean_suffix());
}

TEST(SweepTally, EmptyTallyIsZero) {
  const RunTally tally;
  EXPECT_EQ(tally.runs(), 0u);
  EXPECT_EQ(tally.suffix_sum(), 0u);
  EXPECT_EQ(tally.mean_suffix(), 0.0);
  EXPECT_EQ(tally.suffix_at_least(0), 0u);
}

TEST(SweepRunnerConfig, ZeroRunsYieldsEmptyTally) {
  SweepRunner runner(SweepOptions{4, 64});
  EvalPoint point = test_point(0.3, /*churn=*/false);
  point.runs = 0;
  const RunTally tally = runner.run_tallies(SchemeKind::kCentralized,
                                            PathShape{1, 1}, std::nullopt,
                                            point);
  EXPECT_EQ(tally.runs(), 0u);
}

TEST(SweepRunnerConfig, ResolvesAtLeastOneThread) {
  SweepRunner runner(SweepOptions{0, 64});
  EXPECT_GE(runner.threads(), 1u);
}

TEST(SweepRunnerConfig, WorkerExceptionPropagatesAndRunnerSurvives) {
  // A throwing stat run (degenerate shape) must surface as the same
  // catchable exception the old serial loop threw — from worker threads
  // too — and must not wedge the pool for later evaluations.
  SweepRunner runner(SweepOptions{4, 8});
  const EvalPoint point = test_point(0.3, /*churn=*/false, 100);
  EXPECT_THROW(
      runner.evaluate_fixed_shape(SchemeKind::kJoint, PathShape{0, 5}, point),
      emergence::PreconditionError);
  const EvalResult ok =
      runner.evaluate_fixed_shape(SchemeKind::kJoint, PathShape{2, 5}, point);
  EXPECT_EQ(ok.shape.k, 2u);
  expect_bit_identical(
      ok, SweepRunner(SweepOptions{1, 8})
              .evaluate_fixed_shape(SchemeKind::kJoint, PathShape{2, 5}, point));
}

TEST(SweepRunnerConfig, SharePlanRequiredIffShareScheme) {
  SweepRunner runner(SweepOptions{1, 64});
  const EvalPoint point = test_point(0.1, /*churn=*/false, 10);
  EXPECT_THROW(runner.run_tallies(SchemeKind::kShare, PathShape{2, 4},
                                  std::nullopt, point),
               emergence::PreconditionError);
}

}  // namespace
}  // namespace emergence::core

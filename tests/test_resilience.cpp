// Tests for the closed-form resilience models (paper eqs. 1-3, Lemma 1,
// churn extensions). Small geometries are verified against brute-force
// enumeration of every malicious/honest holder pattern.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "emerge/resilience.hpp"

namespace emergence::core {
namespace {

/// Exact probabilities by enumerating all 2^(k*l) maliciousness patterns of
/// a k x l holder grid (rows = paths, columns = path positions).
struct BruteForce {
  double release_success = 0.0;   // every column has a malicious holder
  double disjoint_drop = 0.0;     // every row has a malicious holder
  double joint_drop = 0.0;        // some column is fully malicious
};

BruteForce brute_force(double p, std::size_t k, std::size_t l) {
  BruteForce out;
  const std::size_t cells = k * l;
  for (std::size_t mask = 0; mask < (1u << cells); ++mask) {
    double prob = 1.0;
    for (std::size_t c = 0; c < cells; ++c)
      prob *= (mask >> c) & 1 ? p : 1.0 - p;

    bool all_columns_hit = true, some_column_full = false;
    for (std::size_t col = 0; col < l; ++col) {
      bool any = false, all = true;
      for (std::size_t row = 0; row < k; ++row) {
        const bool mal = (mask >> (row * l + col)) & 1;
        any = any || mal;
        all = all && mal;
      }
      all_columns_hit = all_columns_hit && any;
      some_column_full = some_column_full || all;
    }
    bool all_rows_hit = true;
    for (std::size_t row = 0; row < k; ++row) {
      bool any = false;
      for (std::size_t col = 0; col < l; ++col)
        any = any || ((mask >> (row * l + col)) & 1);
      all_rows_hit = all_rows_hit && any;
    }

    if (all_columns_hit) out.release_success += prob;
    if (all_rows_hit) out.disjoint_drop += prob;
    if (some_column_full) out.joint_drop += prob;
  }
  return out;
}

TEST(Equations, MatchBruteForceEnumeration) {
  for (double p : {0.1, 0.3, 0.5, 0.7}) {
    for (std::size_t k : {1u, 2u, 3u}) {
      for (std::size_t l : {1u, 2u, 3u, 4u}) {
        const BruteForce exact = brute_force(p, k, l);
        const PathShape shape{k, l};
        EXPECT_NEAR(multipath_release_resilience(p, shape),
                    1.0 - exact.release_success, 1e-12)
            << "Rr p=" << p << " k=" << k << " l=" << l;
        EXPECT_NEAR(disjoint_drop_resilience(p, shape),
                    1.0 - exact.disjoint_drop, 1e-12)
            << "Rd-disjoint p=" << p << " k=" << k << " l=" << l;
        EXPECT_NEAR(joint_drop_resilience(p, shape), 1.0 - exact.joint_drop,
                    1e-12)
            << "Rd-joint p=" << p << " k=" << k << " l=" << l;
      }
    }
  }
}

TEST(Equations, CentralizedIsOneMinusP) {
  for (double p : {0.0, 0.2, 0.5, 1.0}) {
    const Resilience r =
        analytic_resilience(SchemeKind::kCentralized, p, PathShape{1, 1});
    EXPECT_DOUBLE_EQ(r.release_ahead, 1.0 - p);
    EXPECT_DOUBLE_EQ(r.drop, 1.0 - p);
  }
}

TEST(Equations, PaperExampleTwoByThree) {
  // The running example of §III: k = 2 paths, l = 3 holders.
  const PathShape shape{2, 3};
  const double p = 0.2;
  // Rr = 1-(1-0.8^2)^3 = 1-0.36^3
  EXPECT_NEAR(multipath_release_resilience(p, shape),
              1.0 - std::pow(1.0 - 0.64, 3), 1e-12);
  // disjoint: Rd = 1-(1-0.8^3)^2
  EXPECT_NEAR(disjoint_drop_resilience(p, shape),
              1.0 - std::pow(1.0 - 0.512, 2), 1e-12);
  // joint: Rd = (1-0.2^2)^3
  EXPECT_NEAR(joint_drop_resilience(p, shape), std::pow(0.96, 3), 1e-12);
}

TEST(Equations, EndpointsAreExact) {
  const PathShape shape{3, 5};
  EXPECT_DOUBLE_EQ(multipath_release_resilience(0.0, shape), 1.0);
  EXPECT_DOUBLE_EQ(multipath_release_resilience(1.0, shape), 0.0);
  EXPECT_DOUBLE_EQ(disjoint_drop_resilience(0.0, shape), 1.0);
  EXPECT_DOUBLE_EQ(disjoint_drop_resilience(1.0, shape), 0.0);
  EXPECT_DOUBLE_EQ(joint_drop_resilience(0.0, shape), 1.0);
  EXPECT_DOUBLE_EQ(joint_drop_resilience(1.0, shape), 0.0);
}

TEST(Equations, MonotoneInP) {
  const PathShape shape{4, 6};
  double prev_rr = 1.1, prev_rd_d = 1.1, prev_rd_j = 1.1;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double rr = multipath_release_resilience(p, shape);
    const double rd_d = disjoint_drop_resilience(p, shape);
    const double rd_j = joint_drop_resilience(p, shape);
    EXPECT_LE(rr, prev_rr + 1e-12);
    EXPECT_LE(rd_d, prev_rd_d + 1e-12);
    EXPECT_LE(rd_j, prev_rd_j + 1e-12);
    prev_rr = rr;
    prev_rd_d = rd_d;
    prev_rd_j = rd_j;
  }
}

TEST(Equations, ReleaseResilienceImprovesWithL) {
  // More columns force the adversary to compromise more layers.
  for (std::size_t l = 1; l < 30; ++l) {
    EXPECT_LE(multipath_release_resilience(0.3, PathShape{3, l}),
              multipath_release_resilience(0.3, PathShape{3, l + 1}) + 1e-12);
  }
}

TEST(Equations, JointDropResilienceDominatesDisjoint) {
  // §III-C: node-joint routing can only help the drop resilience.
  for (double p : {0.1, 0.3, 0.45}) {
    for (std::size_t k : {2u, 3u, 5u}) {
      for (std::size_t l : {2u, 4u, 8u}) {
        EXPECT_GE(joint_drop_resilience(p, PathShape{k, l}) + 1e-12,
                  disjoint_drop_resilience(p, PathShape{k, l}));
      }
    }
  }
}

TEST(Equations, StableForExtremeGeometry) {
  // Large k*l must not underflow to nonsense.
  const PathShape shape{20, 500};
  const double rr = multipath_release_resilience(0.4, shape);
  const double rd = joint_drop_resilience(0.4, shape);
  EXPECT_GE(rr, 0.0);
  EXPECT_LE(rr, 1.0);
  EXPECT_GE(rd, 0.0);
  EXPECT_LE(rd, 1.0);
}

TEST(Equations, ShareSchemeRequiresAlgorithm1) {
  EXPECT_THROW(analytic_resilience(SchemeKind::kShare, 0.1, PathShape{2, 3}),
               PreconditionError);
}

// -- Lemma 1 (property sweep) ---------------------------------------------------

class Lemma1Sweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t,
                                                 std::size_t>> {};

TEST_P(Lemma1Sweep, JointSchemeSatisfiesLemma1) {
  const auto [p, k, l] = GetParam();
  // Lemma 1: Rr + Rd > 1 for the node-joint scheme whenever p < 0.5.
  EXPECT_TRUE(lemma1_holds(p, PathShape{k, l}))
      << "p=" << p << " k=" << k << " l=" << l;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma1Sweep,
    ::testing::Combine(::testing::Values(0.05, 0.15, 0.25, 0.35, 0.45, 0.49),
                       ::testing::Values<std::size_t>(1, 2, 4, 8),
                       ::testing::Values<std::size_t>(1, 3, 9, 27)));

TEST(Lemma1, CanFailAtOrAboveHalf) {
  // The lemma's guarantee is only claimed for p < 0.5; at p slightly above
  // 0.5 the inequality flips for large geometries.
  EXPECT_FALSE(lemma1_holds(0.6, PathShape{4, 16}));
}

// -- churn extensions -------------------------------------------------------------

TEST(ChurnModel, DisabledMatchesNoChurnEquations) {
  const PathShape shape{3, 4};
  const ChurnSpec none = ChurnSpec::none();
  const Resilience plain = analytic_resilience(SchemeKind::kJoint, 0.25, shape);
  const Resilience churned = joint_churn_resilience(0.25, shape, none);
  EXPECT_DOUBLE_EQ(plain.release_ahead, churned.release_ahead);
  EXPECT_DOUBLE_EQ(plain.drop, churned.drop);
}

TEST(ChurnModel, VanishingAlphaApproachesNoChurn) {
  const PathShape shape{3, 4};
  ChurnSpec tiny = ChurnSpec::with_alpha(1e-9);
  const Resilience churned = joint_churn_resilience(0.25, shape, tiny);
  const Resilience plain = analytic_resilience(SchemeKind::kJoint, 0.25, shape);
  EXPECT_NEAR(churned.release_ahead, plain.release_ahead, 1e-6);
  EXPECT_NEAR(churned.drop, plain.drop, 1e-6);
}

TEST(ChurnModel, ResilienceDegradesWithAlpha) {
  const PathShape shape{4, 8};
  double prev_r = 1.1;
  for (double alpha : {0.5, 1.0, 2.0, 3.0, 5.0}) {
    const Resilience r =
        joint_churn_resilience(0.2, shape, ChurnSpec::with_alpha(alpha));
    EXPECT_LT(r.combined(), prev_r);
    prev_r = r.combined();
  }
}

TEST(ChurnModel, CentralizedClosedForm) {
  // Rr = Rd = (1-p) e^{-alpha p}: exposure of a single renewing slot.
  const double p = 0.2, alpha = 3.0;
  const Resilience r =
      centralized_churn_resilience(p, ChurnSpec::with_alpha(alpha));
  EXPECT_NEAR(r.release_ahead, (1 - p) * std::exp(-alpha * p), 1e-12);
  EXPECT_NEAR(r.drop, r.release_ahead, 1e-12);
}

TEST(ChurnModel, CentralizedAtZeroPIsImmortal) {
  // With no malicious nodes, replication repairs every death: R = 1.
  const Resilience r =
      centralized_churn_resilience(0.0, ChurnSpec::with_alpha(5.0));
  EXPECT_DOUBLE_EQ(r.release_ahead, 1.0);
}

TEST(ChurnModel, DisjointDropIncludesChurnLoss) {
  // Even with p = 0, in-transit packages die with their holders.
  const PathShape shape{2, 10};
  const Resilience r =
      disjoint_churn_resilience(0.0, shape, ChurnSpec::with_alpha(3.0));
  EXPECT_LT(r.drop, 1.0);
  EXPECT_DOUBLE_EQ(r.release_ahead, 1.0);  // nothing to leak to
}

TEST(ChurnModel, JointSurvivesChurnBetterThanDisjoint) {
  const PathShape shape{4, 10};
  const ChurnSpec churn = ChurnSpec::with_alpha(2.0);
  const Resilience joint = joint_churn_resilience(0.1, shape, churn);
  const Resilience disjoint = disjoint_churn_resilience(0.1, shape, churn);
  EXPECT_GT(joint.drop, disjoint.drop);
  EXPECT_DOUBLE_EQ(joint.release_ahead, disjoint.release_ahead);
}

TEST(ChurnModel, DispatcherCoversPatternSchemes) {
  const ChurnSpec churn = ChurnSpec::with_alpha(1.0);
  EXPECT_NO_THROW(analytic_churn_resilience(SchemeKind::kCentralized, 0.1,
                                            PathShape{1, 1}, churn));
  EXPECT_NO_THROW(analytic_churn_resilience(SchemeKind::kDisjoint, 0.1,
                                            PathShape{2, 3}, churn));
  EXPECT_NO_THROW(analytic_churn_resilience(SchemeKind::kJoint, 0.1,
                                            PathShape{2, 3}, churn));
  EXPECT_THROW(analytic_churn_resilience(SchemeKind::kShare, 0.1,
                                         PathShape{2, 3}, churn),
               PreconditionError);
}

}  // namespace
}  // namespace emergence::core

// Known-answer and property tests for the from-scratch crypto substrate.
//
// Vectors: SHA-256 (FIPS 180-4 / NIST examples), HMAC-SHA256 (RFC 4231),
// HKDF (RFC 5869), ChaCha20 (RFC 8439 §2.3.2/§2.4.2), AES (FIPS 197 App. C,
// NIST SP 800-38A CTR).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/hex.hpp"
#include "crypto/aead.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/gf256.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace emergence::crypto {
namespace {

using emergence::bytes_of;
using emergence::from_hex;
using emergence::to_hex;

// -- SHA-256 ------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha256(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto digest = h.finalize();
  EXPECT_EQ(to_hex(Bytes(digest.begin(), digest.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingSplitsAgreeWithOneShot) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog!!");
  const Bytes expected = sha256(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    const auto digest = h.finalize();
    EXPECT_EQ(Bytes(digest.begin(), digest.end()), expected);
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes msg(len, 0x61);
    Sha256 a;
    a.update(msg);
    const auto one = a.finalize();
    Sha256 b;
    for (std::size_t i = 0; i < len; ++i)
      b.update(BytesView(msg.data() + i, 1));
    const auto two = b.finalize();
    EXPECT_EQ(one, two) << "len=" << len;
  }
}

TEST(Sha256, FinalizeTwiceThrows) {
  Sha256 h;
  h.update(bytes_of("x"));
  (void)h.finalize();
  EXPECT_THROW((void)h.finalize(), PreconditionError);
}

// -- HMAC-SHA256 (RFC 4231) ----------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha256(bytes_of("Jefe"),
                         bytes_of("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(
          key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key "
                        "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDiffer) {
  EXPECT_NE(hmac_sha256(bytes_of("k1"), bytes_of("m")),
            hmac_sha256(bytes_of("k2"), bytes_of("m")));
}

// -- HKDF (RFC 5869) -----------------------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3NoSaltNoInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(/*salt=*/{}, ikm, /*info=*/{}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, LengthLimitEnforced) {
  EXPECT_THROW(hkdf_expand(Bytes(32, 1), {}, 255 * 32 + 1),
               PreconditionError);
}

TEST(Hkdf, DistinctInfoGivesDistinctKeys) {
  const Bytes prk = hkdf_extract({}, bytes_of("seed"));
  EXPECT_NE(hkdf_expand(prk, bytes_of("enc"), 32),
            hkdf_expand(prk, bytes_of("mac"), 32));
}

// -- ChaCha20 (RFC 8439) ---------------------------------------------------------

std::array<std::uint8_t, 32> rfc_key() {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  return key;
}

TEST(ChaCha20, Rfc8439BlockFunction) {
  // RFC 8439 §2.3.2 test vector.
  std::array<std::uint8_t, 12> nonce{};
  const Bytes nonce_bytes = from_hex("000000090000004a00000000");
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  const auto block = chacha20_block(rfc_key(), 1, nonce);
  EXPECT_EQ(
      to_hex(Bytes(block.begin(), block.end())),
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  // RFC 8439 §2.4.2: the "sunscreen" plaintext.
  std::array<std::uint8_t, 12> nonce{};
  const Bytes nonce_bytes = from_hex("000000000000004a00000000");
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  const Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  const Bytes ciphertext =
      chacha20_apply(rfc_key(), nonce, /*initial_counter=*/1, plaintext);
  EXPECT_EQ(
      to_hex(ciphertext),
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, ApplyIsAnInvolution) {
  std::array<std::uint8_t, 12> nonce{};
  nonce[0] = 7;
  const Bytes msg = bytes_of("round-trip me please, across block boundaries "
                             "so several keystream blocks are used........");
  const Bytes ct = chacha20_apply(rfc_key(), nonce, 0, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20_apply(rfc_key(), nonce, 0, ct), msg);
}

TEST(ChaCha20, CounterOffsetsProduceDifferentStream) {
  std::array<std::uint8_t, 12> nonce{};
  const Bytes zeros(64, 0);
  EXPECT_NE(chacha20_apply(rfc_key(), nonce, 0, zeros),
            chacha20_apply(rfc_key(), nonce, 1, zeros));
}

// -- AES (FIPS 197 / SP 800-38A) -------------------------------------------------

TEST(Aes, Fips197Aes128Block) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  aes.encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes, Fips197Aes192Block) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  aes.encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256Block) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  aes.encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "8ea2b7ca516745bfeafc49904b496089");
  aes.decrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes, Sp80038aCtrAes128) {
  // NIST SP 800-38A F.5.1 (CTR-AES128.Encrypt), adapted: our counter block
  // is nonce(12) || u32 counter, so we use the vector's initial counter
  // block f0..fc as nonce and 0xf7f8f9ff... hmm -- use the full 16-byte
  // vector layout directly by picking nonce = f0f1f2f3f4f5f6f7f8f9fafb and
  // initial counter 0xfcfdfeff.
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Aes aes(key);
  std::array<std::uint8_t, 12> nonce{};
  const Bytes nonce_bytes = from_hex("f0f1f2f3f4f5f6f7f8f9fafb");
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  Bytes data = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  aes_ctr_xor(aes, nonce, 0xfcfdfeff, data);
  EXPECT_EQ(to_hex(data),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(Aes, CtrRoundTripArbitraryLength) {
  const Aes aes(Bytes(32, 0x42));
  std::array<std::uint8_t, 12> nonce{};
  nonce[5] = 9;
  const Bytes msg = bytes_of("a message that is not a multiple of sixteen");
  Bytes work = msg;
  aes_ctr_xor(aes, nonce, 1, work);
  EXPECT_NE(work, msg);
  aes_ctr_xor(aes, nonce, 1, work);
  EXPECT_EQ(work, msg);
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15, 0)), PreconditionError);
  EXPECT_THROW(Aes(Bytes(33, 0)), PreconditionError);
  EXPECT_NO_THROW(Aes(Bytes(16, 0)));
  EXPECT_NO_THROW(Aes(Bytes(24, 0)));
  EXPECT_NO_THROW(Aes(Bytes(32, 0)));
}

// -- AEAD ------------------------------------------------------------------------

class AeadBackends : public ::testing::TestWithParam<CipherBackend> {};

TEST_P(AeadBackends, SealOpenRoundTrip) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x11));
  const Bytes nonce(12, 0x22);
  const Bytes msg = bytes_of("attack at dawn");
  const Bytes aad = bytes_of("context");
  const Bytes sealed = aead_seal(key, nonce, msg, aad, GetParam());
  EXPECT_EQ(sealed.size(), msg.size() + kAeadOverhead);
  EXPECT_EQ(aead_open(key, sealed, aad, GetParam()), msg);
}

TEST_P(AeadBackends, WrongKeyFails) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x11));
  const SymmetricKey other = SymmetricKey::from_bytes(Bytes(32, 0x12));
  const Bytes sealed =
      aead_seal(key, Bytes(12, 0), bytes_of("m"), {}, GetParam());
  EXPECT_THROW(aead_open(other, sealed, {}, GetParam()), CryptoError);
}

TEST_P(AeadBackends, WrongAadFails) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x11));
  const Bytes sealed =
      aead_seal(key, Bytes(12, 0), bytes_of("m"), bytes_of("a"), GetParam());
  EXPECT_THROW(aead_open(key, sealed, bytes_of("b"), GetParam()), CryptoError);
}

TEST_P(AeadBackends, BitFlipAnywhereFails) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x33));
  Bytes sealed =
      aead_seal(key, Bytes(12, 1), bytes_of("payload bytes"), {}, GetParam());
  for (std::size_t i = 0; i < sealed.size(); i += 5) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    EXPECT_THROW(aead_open(key, tampered, {}, GetParam()), CryptoError)
        << "flip at " << i;
  }
}

TEST_P(AeadBackends, TruncationFails) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x33));
  const Bytes sealed =
      aead_seal(key, Bytes(12, 1), bytes_of("payload"), {}, GetParam());
  const BytesView short_view(sealed.data(), sealed.size() - 1);
  EXPECT_THROW(aead_open(key, short_view, {}, GetParam()), CryptoError);
  EXPECT_THROW(aead_open(key, BytesView(sealed.data(), 10), {}, GetParam()),
               CryptoError);
}

TEST_P(AeadBackends, EmptyPlaintextSupported) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x44));
  const Bytes sealed = aead_seal(key, Bytes(12, 2), {}, {}, GetParam());
  EXPECT_TRUE(aead_open(key, sealed, {}, GetParam()).empty());
}

TEST_P(AeadBackends, BackendsAreIncompatible) {
  const SymmetricKey key = SymmetricKey::from_bytes(Bytes(32, 0x55));
  const CipherBackend mine = GetParam();
  const CipherBackend other = mine == CipherBackend::kChaCha20
                                  ? CipherBackend::kAes256Ctr
                                  : CipherBackend::kChaCha20;
  const Bytes sealed = aead_seal(key, Bytes(12, 3), bytes_of("m"), {}, mine);
  EXPECT_THROW(aead_open(key, sealed, {}, other), CryptoError);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AeadBackends,
                         ::testing::Values(CipherBackend::kChaCha20,
                                           CipherBackend::kAes256Ctr),
                         [](const auto& info) {
                           return info.param == CipherBackend::kChaCha20
                                      ? "ChaCha20"
                                      : "Aes256Ctr";
                         });

TEST(SymmetricKey, FromBytesValidatesLength) {
  EXPECT_THROW(SymmetricKey::from_bytes(Bytes(31, 0)), PreconditionError);
  EXPECT_NO_THROW(SymmetricKey::from_bytes(Bytes(32, 0)));
}

// -- DRBG -------------------------------------------------------------------------

TEST(Drbg, DeterministicForSeed) {
  Drbg a(std::uint64_t{1234}), b(std::uint64_t{1234});
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(std::uint64_t{1}), b(std::uint64_t{2});
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, ForkedStreamsDiverge) {
  Drbg parent(std::uint64_t{7});
  Drbg child = parent.fork();
  EXPECT_NE(parent.bytes(32), child.bytes(32));
}

TEST(Drbg, ForkIsDeterministic) {
  Drbg a(std::uint64_t{7}), b(std::uint64_t{7});
  EXPECT_EQ(a.fork().bytes(16), b.fork().bytes(16));
}

TEST(Drbg, BelowStaysInRangeAndCoversValues) {
  Drbg d(std::uint64_t{99});
  std::array<int, 10> seen{};
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.below(10);
    ASSERT_LT(v, 10u);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Drbg, ByteSeedMatchesHashSemantics) {
  Drbg a(bytes_of("seed material"));
  Drbg b(bytes_of("seed material"));
  Drbg c(bytes_of("other material"));
  EXPECT_EQ(a.bytes(24), b.bytes(24));
  EXPECT_NE(Drbg(bytes_of("seed material")).bytes(24), c.bytes(24));
}

TEST(Drbg, OutputLooksBalanced) {
  // Not a randomness test -- just catches catastrophic bias (e.g. all
  // zeros) in the keystream plumbing.
  Drbg d(std::uint64_t{5});
  const Bytes sample = d.bytes(4096);
  std::size_t ones = 0;
  for (std::uint8_t byte : sample)
    ones += static_cast<std::size_t>(__builtin_popcount(byte));
  const double fraction = static_cast<double>(ones) / (4096.0 * 8.0);
  EXPECT_NEAR(fraction, 0.5, 0.02);
}

// -- GF(256) ----------------------------------------------------------------------

TEST(Gf256, MulAgreesWithKnownValues) {
  // 0x57 * 0x83 = 0xc1 (FIPS 197 §4.2 example).
  EXPECT_EQ(gf256::mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(gf256::mul(0x57, 0x13), 0xfe);
}

TEST(Gf256, MulByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1), a);
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                gf256::mul(static_cast<std::uint8_t>(b),
                           static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, InverseIsTwoSided) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW(gf256::inv(0), emergence::PreconditionError);
  EXPECT_THROW(gf256::div(1, 0), emergence::PreconditionError);
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      const auto product = gf256::mul(static_cast<std::uint8_t>(a),
                                      static_cast<std::uint8_t>(b));
      EXPECT_EQ(gf256::div(product, static_cast<std::uint8_t>(b)), a);
    }
  }
}

TEST(Gf256, DistributiveLaw) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 0; b < 256; b += 13) {
      for (int c = 0; c < 256; c += 19) {
        const auto lhs = gf256::mul(
            static_cast<std::uint8_t>(a),
            gf256::add(static_cast<std::uint8_t>(b),
                       static_cast<std::uint8_t>(c)));
        const auto rhs =
            gf256::add(gf256::mul(static_cast<std::uint8_t>(a),
                                  static_cast<std::uint8_t>(b)),
                       gf256::mul(static_cast<std::uint8_t>(a),
                                  static_cast<std::uint8_t>(c)));
        EXPECT_EQ(lhs, rhs);
      }
    }
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a : {2, 3, 0x53}) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(gf256::pow(static_cast<std::uint8_t>(a), e), acc);
      acc = gf256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

}  // namespace
}  // namespace emergence::crypto

// Tests for the large-N machinery behind the perf suite: the sorted
// live-ring index (vs brute-force oracles, under interleaved churn), the
// run-compressed finger table (vs a dense reference model and the naive
// per-power bootstrap construction), O(log n) lookup-hop growth on 1k vs
// 10k rings, replica-repair timer cadence, and the zero-copy payload
// guarantees of the SharedBytes refactor.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dht/chord_network.hpp"
#include "dht/finger_table.hpp"
#include "dht/kademlia.hpp"
#include "dht/ring_index.hpp"
#include "sim/simulator.hpp"

namespace emergence::dht {
namespace {

// -- LiveRingIndex vs brute force under interleaved add/kill/remove churn ------

std::optional<NodeId> brute_successor_of(const std::vector<NodeId>& live,
                                         const NodeId& id) {
  bool have_next = false, have_wrap = false;
  NodeId next{}, wrap{};
  for (const NodeId& x : live) {
    if (x == id) continue;
    if (id < x && (!have_next || x < next)) {
      next = x;
      have_next = true;
    }
    if (!have_wrap || x < wrap) {
      wrap = x;
      have_wrap = true;
    }
  }
  if (have_next) return next;
  if (have_wrap) return wrap;
  return std::nullopt;
}

std::optional<NodeId> brute_xor_closest(const std::vector<NodeId>& live,
                                        const NodeId& key) {
  if (live.empty()) return std::nullopt;
  NodeId best = live.front();
  for (const NodeId& x : live) {
    if (xor_closer(x, best, key)) best = x;
  }
  return best;
}

TEST(LiveRingIndex, MatchesBruteForceOraclesUnderChurn) {
  Rng rng(20260731);
  LiveRingIndex index;
  std::vector<NodeId> live;

  for (int op = 0; op < 4000; ++op) {
    const double action = rng.real();
    if (live.empty() || action < 0.45) {
      const NodeId fresh =
          NodeId::hash_of_text("ring-" + std::to_string(op));
      live.push_back(fresh);
      index.insert(fresh);
    } else if (action < 0.75) {
      const std::size_t victim = rng.index(live.size());
      index.erase(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_EQ(index.size(), live.size());

    const NodeId probe =
        rng.chance(0.5) && !live.empty()
            ? live[rng.index(live.size())]
            : NodeId::hash_of_text("probe-" + std::to_string(op));
    EXPECT_EQ(index.successor_of(probe), brute_successor_of(live, probe));
    EXPECT_EQ(index.successor_inclusive(probe),
              live.empty() ? std::nullopt : std::optional<NodeId>([&] {
                auto sorted = live;
                std::sort(sorted.begin(), sorted.end());
                auto it =
                    std::lower_bound(sorted.begin(), sorted.end(), probe);
                return it == sorted.end() ? sorted.front() : *it;
              }()));
    EXPECT_EQ(index.xor_closest(probe), brute_xor_closest(live, probe));
  }
}

// -- FingerTable vs a dense reference model ------------------------------------

TEST(FingerTable, MatchesDenseReferenceUnderRandomSets) {
  Rng rng(7);
  FingerTable table;
  std::vector<std::optional<NodeId>> dense(kIdBits);
  // Small id pool: forces long shared runs, splits and re-merges.
  std::vector<NodeId> pool;
  for (int i = 0; i < 5; ++i)
    pool.push_back(NodeId::hash_of_text("finger-" + std::to_string(i)));

  for (int op = 0; op < 5000; ++op) {
    const std::size_t power = rng.index(kIdBits);
    const NodeId& id = pool[rng.index(pool.size())];
    table.set(power, id);
    dense[power] = id;
    if (op % 97 == 0) {
      for (std::size_t p = 0; p < kIdBits; ++p) {
        ASSERT_EQ(table.get(p), dense[p]) << "power " << p << " op " << op;
      }
      // Compression invariant: adjacent runs never mergeable.
      const auto& runs = table.runs();
      for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
        ASSERT_LT(static_cast<int>(runs[i].hi), static_cast<int>(runs[i + 1].lo));
        if (runs[i].hi + 1 == runs[i + 1].lo) {
          ASSERT_NE(runs[i].id, runs[i + 1].id);
        }
      }
    }
  }
}

TEST(FingerTable, RunCountStaysLogarithmicOnBootstrappedRing) {
  sim::Simulator sim;
  Rng rng(11);
  NetworkConfig config;
  config.run_maintenance = false;
  ChordNetwork net(sim, rng, config);
  net.bootstrap(512);
  for (const NodeId& id : net.alive_ids()) {
    // A 512-node ring needs ~log2(512) = 9 distinct fingers; the dense
    // representation stored 160 slots.
    EXPECT_LE(net.node(id)->finger_table().run_count(), 16u);
    EXPECT_GE(net.node(id)->finger_table().run_count(), 2u);
  }
}

// -- bootstrap finger construction vs the naive per-power lower_bound ----------

TEST(ChordBootstrap, FingerRunsMatchNaivePerPowerConstruction) {
  for (std::size_t count : {1u, 2u, 3u, 5u, 17u, 64u, 101u}) {
    sim::Simulator sim;
    Rng rng(3);
    NetworkConfig config;
    config.run_maintenance = false;
    ChordNetwork net(sim, rng, config);
    net.bootstrap(count);

    std::vector<NodeId> ids = net.alive_ids();
    std::sort(ids.begin(), ids.end());
    for (const NodeId& id : ids) {
      const ChordNode* n = net.node(id);
      for (std::size_t p = 0; p < kIdBits; ++p) {
        const NodeId start = id.add_power_of_two(p);
        auto it = std::lower_bound(ids.begin(), ids.end(), start);
        const NodeId expected = it == ids.end() ? ids.front() : *it;
        ASSERT_EQ(n->finger(p), std::optional<NodeId>(expected))
            << "n=" << count << " node " << id.short_hex() << " power " << p;
      }
    }
  }
}

// -- O(log n) lookup-hop growth ------------------------------------------------

double mean_hops_at(std::size_t population, std::size_t lookups) {
  sim::Simulator sim;
  Rng rng(5);
  NetworkConfig config;
  config.run_maintenance = false;
  ChordNetwork net(sim, rng, config);
  net.bootstrap(population);
  for (std::size_t i = 0; i < lookups; ++i) {
    net.lookup(NodeId::hash_of_text("scale-" + std::to_string(i)));
  }
  EXPECT_EQ(net.lookup_stats().failures, 0u);
  return net.lookup_stats().mean_hops();
}

TEST(ChordScale, MeanLookupHopsGrowLogarithmically) {
  // log2(10000)/log2(1000) = 1.333: hops should grow by roughly that
  // factor, and certainly not by the 10x of a linear scan.
  const double hops_1k = mean_hops_at(1000, 400);
  const double hops_10k = mean_hops_at(10000, 400);
  EXPECT_GT(hops_1k, 3.0);
  EXPECT_GT(hops_10k, hops_1k);  // larger ring, more hops
  EXPECT_LT(hops_10k, hops_1k * 1.333 * 1.25);  // ~O(log n), with slack
}

// -- replica-repair timer cadence ---------------------------------------------

TEST(ChordMaintenance, ReplicaRepairFiresAtItsOwnInterval) {
  // Regression: the repair timer used to be re-armed from the stabilize
  // callback, so repair fired at stabilize_interval cadence (~4x too often
  // under the default 30s/120s intervals). With phases drawn uniformly in
  // [0, interval) and each timer re-arming at its own fixed interval, a
  // node fires repair floor((H - phase)/120) + 1 times by horizon H.
  const std::size_t population = 16;
  const double horizon = 1230.0;
  sim::Simulator sim;
  Rng rng(99);
  NetworkConfig config;
  config.run_maintenance = true;
  config.stabilize_interval = 30.0;
  config.replica_repair_interval = 120.0;
  ChordNetwork net(sim, rng, config);
  net.bootstrap(population);
  sim.run_until(horizon);

  // Per node: repair count is 10 or 11, stabilize count 41 or 42.
  const MaintenanceStats& stats = net.maintenance_stats();
  EXPECT_GE(stats.repair_rounds, population * 10);
  EXPECT_LE(stats.repair_rounds, population * 11);
  EXPECT_GE(stats.stabilize_rounds, population * 41);
  EXPECT_LE(stats.stabilize_rounds, population * 42);
  // The old bug would have produced ~stabilize-rate repairs (>= 39/node).
  EXPECT_LT(stats.repair_rounds, stats.stabilize_rounds / 2);
}

TEST(ChordMaintenance, FastRejoinDoesNotDuplicateMaintenanceChains) {
  // A kill-then-rejoin of the same id that beats the node's pending timers
  // must not leave two concurrent stabilize/repair chains: the rejoin arms
  // fresh timers, and the stale ones see a bumped incarnation and stop.
  const std::size_t population = 8;
  sim::Simulator sim;
  Rng rng(123);
  NetworkConfig config;
  config.run_maintenance = true;
  config.stabilize_interval = 30.0;
  config.replica_repair_interval = 120.0;
  ChordNetwork net(sim, rng, config);
  net.bootstrap(population);

  // Rejoin before virtual time advances: every bootstrap timer is still
  // pending, so without the incarnation guard the victim would end up with
  // doubled chains (~2x stabilize cadence for the whole horizon).
  const NodeId victim = net.alive_ids().front();
  net.kill_node(victim);
  net.add_node_with_id(victim);

  const double horizon = 630.0;
  sim.run_until(horizon);
  // Per live chain: 21 or 22 stabilize firings over 630s. One extra chain
  // would add ~21 more, far past the upper bound.
  const MaintenanceStats& stats = net.maintenance_stats();
  EXPECT_GE(stats.stabilize_rounds, population * 21);
  EXPECT_LE(stats.stabilize_rounds, population * 22);
  EXPECT_GE(stats.repair_rounds, population * 5);
  EXPECT_LE(stats.repair_rounds, population * 6);
}

// -- zero-copy payload plumbing ------------------------------------------------

TEST(ZeroCopy, ReplicasShareOneBufferAcrossPutAndRepair) {
  sim::Simulator sim;
  Rng rng(21);
  NetworkConfig config;
  config.run_maintenance = false;
  ChordNetwork net(sim, rng, config);
  net.bootstrap(32);

  const NodeId key = NodeId::hash_of_text("shared-buffer-key");
  SharedBytes value = shared_bytes(bytes_of("zero-copy-payload"));
  const std::uint8_t* raw = value->data();
  ASSERT_TRUE(net.put(key, value));

  std::size_t copies = 0;
  for (const NodeId& id : net.alive_ids()) {
    const SharedBytes stored = net.node(id)->storage().get(key);
    if (stored == nullptr) continue;
    ++copies;
    EXPECT_EQ(stored->data(), raw) << "replica copied instead of sharing";
  }
  EXPECT_EQ(copies, net.config().replication_factor);

  // Repair after the primary dies must still share the original buffer.
  const LookupResult owner = net.lookup(key);
  net.kill_node(owner.node);
  net.run_maintenance_round();
  const SharedBytes after = net.get(key);
  ASSERT_TRUE(after != nullptr);
  EXPECT_EQ(after->data(), raw);
}

TEST(ZeroCopy, MessageDeliveryViewsTheSenderBuffer) {
  sim::Simulator sim;
  Rng rng(22);
  NetworkConfig config;
  config.run_maintenance = false;
  ChordNetwork net(sim, rng, config);
  net.bootstrap(4);

  const NodeId from = net.alive_ids()[0];
  const NodeId to = net.alive_ids()[1];
  SharedBytes payload = shared_bytes(bytes_of("view-not-copy"));
  const std::uint8_t* raw = payload->data();
  bool delivered = false;
  net.set_message_handler(to, [&](const NodeId&, const NodeId&,
                                  BytesView view) {
    EXPECT_EQ(view.data(), raw);
    delivered = true;
  });
  net.send_message(from, to, payload);
  sim.run();
  EXPECT_TRUE(delivered);
}

TEST(ZeroCopy, StoredHandleSurvivesNodeDeath) {
  sim::Simulator sim;
  Rng rng(23);
  NetworkConfig config;
  config.run_maintenance = false;
  ChordNetwork net(sim, rng, config);
  net.bootstrap(8);

  const NodeId key = NodeId::hash_of_text("survivor-handle");
  ASSERT_TRUE(net.put(key, bytes_of("still-readable")));
  const SharedBytes handle = net.get(key);
  ASSERT_TRUE(handle != nullptr);
  // Kill every node: all storage is cleared, but the handle keeps the
  // buffer alive (immutable sharing, no dangling views).
  const std::vector<NodeId> ids = net.alive_ids();
  for (const NodeId& id : ids) net.kill_node(id);
  EXPECT_EQ(string_of(*handle), "still-readable");
}

// -- Kademlia closest_alive is the indexed query, not a scan -------------------

TEST(KademliaScale, ClosestAliveMatchesBruteForceUnderChurn) {
  sim::Simulator sim;
  Rng rng(31);
  KademliaConfig config;
  config.run_maintenance = false;
  KademliaNetwork net(sim, rng, config);
  net.bootstrap(128);

  Rng churn(77);
  for (int round = 0; round < 200; ++round) {
    if (churn.chance(0.5)) {
      const auto& ids = net.alive_ids();
      net.kill_node(ids[churn.index(ids.size())]);
    } else {
      net.add_node();
    }
    const NodeId key =
        NodeId::hash_of_text("kad-probe-" + std::to_string(round));
    std::vector<NodeId> live = net.alive_ids();
    EXPECT_EQ(net.closest_alive(key), *brute_xor_closest(live, key));
  }
}

}  // namespace
}  // namespace emergence::dht

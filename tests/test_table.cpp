// Tests for the experiment table printer (the bench harness output format).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "emerge/experiment/table.hpp"

namespace emergence::core {
namespace {

TEST(FigureTable, PrintsTitleHeadersAndRows) {
  FigureTable table("My Figure", {"p", "R"});
  table.add_row({0.1, 0.95});
  table.add_row({0.2, 0.90});
  std::ostringstream os;
  table.print(os, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("# My Figure"), std::string::npos);
  EXPECT_NE(out.find("p"), std::string::npos);
  EXPECT_NE(out.find("R"), std::string::npos);
  EXPECT_NE(out.find("0.10"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
}

TEST(FigureTable, CaptionPrinted) {
  FigureTable table("T", {"x"});
  table.set_caption("the caption line");
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("# the caption line"), std::string::npos);
}

TEST(FigureTable, RowWidthValidated) {
  FigureTable table("T", {"a", "b"});
  EXPECT_THROW(table.add_row({1.0}), PreconditionError);
  EXPECT_THROW(table.add_row({1.0, 2.0, 3.0}), PreconditionError);
  EXPECT_NO_THROW(table.add_row({1.0, 2.0}));
}

TEST(FigureTable, PerColumnPrecision) {
  FigureTable table("T", {"p", "count"});
  table.set_column_precision(1, 0);
  table.add_row({0.25, 1234.0});
  std::ostringstream os;
  table.print(os, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("0.25"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
  EXPECT_EQ(out.find("1234.00"), std::string::npos);
}

TEST(FigureTable, PrecisionColumnValidated) {
  FigureTable table("T", {"a"});
  EXPECT_THROW(table.set_column_precision(1, 0), PreconditionError);
}

TEST(FigureTable, GnuplotFriendlyCommentPrefix) {
  // Data rows must not start with '#'; metadata rows must.
  FigureTable table("T", {"x"});
  table.add_row({1.0});
  std::ostringstream os;
  table.print(os);
  std::istringstream is(os.str());
  std::string line;
  bool saw_data = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') continue;
    saw_data = true;
    EXPECT_EQ(line.find('#'), std::string::npos);
  }
  EXPECT_TRUE(saw_data);
}

}  // namespace
}  // namespace emergence::core

// End-to-end integration tests: the full protocol stack (Chord DHT + real
// crypto + simulator) for all schemes, including the attack walkthroughs of
// the paper's Figs. 2-5.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cloud/cloud_store.hpp"
#include "common/error.hpp"
#include "common/serial.hpp"
#include "dht/chord_network.hpp"
#include "dht/kademlia.hpp"
#include "emerge/protocol.hpp"
#include "emerge/session_dispatcher.hpp"
#include "sim/simulator.hpp"

namespace emergence::core {
namespace {

struct World {
  sim::Simulator sim;
  Rng rng{2024};
  dht::NetworkConfig net_config;
  std::unique_ptr<dht::ChordNetwork> net;
  cloud::CloudStore cloud;

  explicit World(std::size_t nodes = 64) {
    net_config.run_maintenance = false;  // deterministic tests
    net = std::make_unique<dht::ChordNetwork>(sim, rng, net_config);
    net->bootstrap(nodes);
  }
};

SessionConfig joint_config() {
  SessionConfig c;
  c.kind = SchemeKind::kJoint;
  c.shape = PathShape{2, 3};
  c.emerging_time = 3600.0;
  return c;
}

SessionConfig disjoint_config() {
  SessionConfig c = joint_config();
  c.kind = SchemeKind::kDisjoint;
  return c;
}

SessionConfig share_config() {
  // The Fig. 5 example: k = 2 onion paths, l = 3 columns, n = 3 carriers
  // per column, m = 2-of-3 shares.
  SessionConfig c;
  c.kind = SchemeKind::kShare;
  c.shape = PathShape{2, 3};
  c.carriers_n = 3;
  c.threshold_m = 2;
  c.emerging_time = 3600.0;
  return c;
}

class SchemeEndToEnd : public ::testing::TestWithParam<SessionConfig> {};

TEST_P(SchemeEndToEnd, SecretEmergesExactlyAtReleaseTime) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, GetParam(), 7);
  session.send(bytes_of("meet me at the bridge"), "bob-token");

  // Not released before tr.
  w.sim.run_until(session.release_time() - 1.0);
  EXPECT_FALSE(session.secret_released());
  EXPECT_FALSE(session.receiver_decrypt("bob-token").has_value());

  w.sim.run_until(session.release_time() + 1.0);
  ASSERT_TRUE(session.secret_released());
  EXPECT_DOUBLE_EQ(*session.first_delivery_time(), session.release_time());

  const auto plaintext = session.receiver_decrypt("bob-token");
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, bytes_of("meet me at the bridge"));
}

TEST_P(SchemeEndToEnd, WrongReceiverTokenRejectedByCloud) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, GetParam(), 8);
  session.send(bytes_of("msg"), "bob-token");
  w.sim.run();
  ASSERT_TRUE(session.secret_released());
  EXPECT_FALSE(session.receiver_decrypt("eve-token").has_value());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeEndToEnd,
                         ::testing::Values(joint_config(), disjoint_config(),
                                           share_config()),
                         [](const auto& info) {
                           return to_string(info.param.kind);
                         });

// -- substrate independence: the same protocol over Kademlia -----------------

struct KademliaWorld {
  sim::Simulator sim;
  Rng rng{2024};
  std::unique_ptr<dht::KademliaNetwork> net;
  cloud::CloudStore cloud;

  explicit KademliaWorld(std::size_t nodes = 64) {
    dht::KademliaConfig config;
    config.run_maintenance = false;
    net = std::make_unique<dht::KademliaNetwork>(sim, rng, config);
    net->bootstrap(nodes);
  }
};

class SchemeOnKademlia : public ::testing::TestWithParam<SessionConfig> {};

TEST_P(SchemeOnKademlia, EndToEndOverXorMetricDht) {
  KademliaWorld w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, GetParam(), 7);
  session.send(bytes_of("substrate-independent"), "bob");
  w.sim.run_until(session.release_time() - 1.0);
  EXPECT_FALSE(session.secret_released());
  w.sim.run();
  ASSERT_TRUE(session.secret_released());
  const auto plaintext = session.receiver_decrypt("bob");
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, bytes_of("substrate-independent"));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeOnKademlia,
                         ::testing::Values(joint_config(), disjoint_config(),
                                           share_config()),
                         [](const auto& info) {
                           return to_string(info.param.kind);
                         });

TEST(Protocol, CentralizedStyleSingleHop) {
  World w;
  SessionConfig c;
  c.kind = SchemeKind::kJoint;  // 1x1 joint == centralized storage
  c.shape = PathShape{1, 1};
  c.emerging_time = 600.0;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, c, 9);
  session.send(bytes_of("short"), "t");
  w.sim.run();
  ASSERT_TRUE(session.secret_released());
  EXPECT_DOUBLE_EQ(*session.first_delivery_time(), session.release_time());
}

TEST(Protocol, HoldersAreDistinctNodes) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, share_config(), 10);
  session.send(bytes_of("m"), "t");
  const PathLayout& layout = session.layout();
  std::set<dht::NodeId> seen;
  std::size_t total = 0;
  for (const auto& column : layout.columns) {
    for (const dht::NodeId& id : column) {
      seen.insert(id);
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
  // Fig. 5 geometry: 3 + 3 + 2 holders.
  EXPECT_EQ(total, 8u);
  w.sim.run();
}

TEST(Protocol, ReportCountsPlausible) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, joint_config(), 11);
  session.send(bytes_of("m"), "t");
  w.sim.run();
  const SessionReport& report = session.report();
  // Column 1: 2 sends from the sender; columns 2..3: 2 holders x 2 hops.
  EXPECT_EQ(report.packages_sent, 2u + 4u + 4u);
  EXPECT_EQ(report.key_assignments, 6u);  // all 2x3 holders pre-assigned
  EXPECT_EQ(report.deliveries, 2u);       // both terminal holders deliver
  EXPECT_EQ(report.holders_stuck, 0u);
}

TEST(Protocol, ShareSchemeKeyAssignmentsOnlyColumnOne) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, share_config(), 12);
  session.send(bytes_of("m"), "t");
  w.sim.run();
  EXPECT_EQ(session.report().key_assignments, 3u);  // n carriers of column 1
  EXPECT_TRUE(session.secret_released());
}

// -- drop attacks (Figs. 2(c), 3, 4) ---------------------------------------------

TEST(DropAttack, JointSurvivesOneMaliciousHolderPerColumn) {
  // Fig. 4's point: (H1,1 H2,2 H1,3) malicious cannot cut the node-joint
  // hop graph -- the path through the other holders stays alive.
  World w;
  Adversary adv(Adversary::Config{AttackMode::kDropping, 2, 1,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, joint_config(), 13);
  session.send(bytes_of("m"), "t");
  const PathLayout& layout = session.layout();
  adv.mark_malicious(layout.columns[0][0]);  // H1,1
  adv.mark_malicious(layout.columns[1][1]);  // H2,2
  adv.mark_malicious(layout.columns[2][0]);  // H1,3
  w.sim.run();
  EXPECT_TRUE(session.secret_released());
}

TEST(DropAttack, DisjointDiesWithOneMaliciousHolderPerPath) {
  // Same malicious pattern kills the node-disjoint scheme (Fig. 3 vs 4).
  World w;
  Adversary adv(Adversary::Config{AttackMode::kDropping, 2, 1,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, disjoint_config(), 13);
  session.send(bytes_of("m"), "t");
  const PathLayout& layout = session.layout();
  adv.mark_malicious(layout.columns[0][0]);  // path 1 cut at column 1
  adv.mark_malicious(layout.columns[1][1]);  // path 2 cut at column 2
  w.sim.run();
  EXPECT_FALSE(session.secret_released());
  EXPECT_GT(session.report().packages_dropped_malicious, 0u);
}

TEST(DropAttack, JointDiesWhenAFullColumnIsMalicious) {
  World w;
  Adversary adv(Adversary::Config{AttackMode::kDropping, 2, 1,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, joint_config(), 14);
  session.send(bytes_of("m"), "t");
  adv.mark_malicious(session.layout().columns[1][0]);
  adv.mark_malicious(session.layout().columns[1][1]);
  w.sim.run();
  EXPECT_FALSE(session.secret_released());
}

TEST(DropAttack, ShareSchemeToleratesMinorityCarrierDrop) {
  // One dropped carrier per column leaves m = 2 of n = 3 shares: enough.
  // Share-scheme holders carry individual keys, so onion_slots_k = 0.
  World w;
  Adversary adv(Adversary::Config{AttackMode::kDropping, 0, 2,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, share_config(), 15);
  session.send(bytes_of("m"), "t");
  adv.mark_malicious(session.layout().columns[0][2]);  // extra carrier H3,1
  adv.mark_malicious(session.layout().columns[1][2]);  // extra carrier H3,2
  w.sim.run();
  EXPECT_TRUE(session.secret_released());
}

TEST(DropAttack, ShareSchemeDiesWhenMajorityDrops) {
  World w;
  Adversary adv(Adversary::Config{AttackMode::kDropping, 0, 2,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, share_config(), 16);
  session.send(bytes_of("m"), "t");
  adv.mark_malicious(session.layout().columns[0][0]);
  adv.mark_malicious(session.layout().columns[0][1]);  // 2 of 3 carriers drop
  w.sim.run();
  EXPECT_FALSE(session.secret_released());
}

// -- release-ahead attacks (Fig. 2(b)) -----------------------------------------

TEST(ReleaseAhead, AllColumnsCompromisedRestoresAtStart) {
  // The K4 case: a malicious holder in every column (keys pre-assigned at
  // ts) plus the captured package restores the secret before tr.
  World w;
  Adversary adv(Adversary::Config{AttackMode::kCovert, 2, 1,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, joint_config(), 17);
  session.send(bytes_of("exam questions"), "t");
  const PathLayout& layout = session.layout();
  adv.mark_malicious(layout.columns[0][0]);
  adv.mark_malicious(layout.columns[1][0]);
  adv.mark_malicious(layout.columns[2][1]);
  session.refresh_adversary_exposure();  // coalition held the keys since ts

  // Give the column-1 package time to reach the malicious holder.
  w.sim.run_until(session.start_time() + 10.0);
  const auto stolen = adv.attempt_restore(w.sim.now());
  ASSERT_TRUE(stolen.has_value());
  EXPECT_LT(w.sim.now(), session.release_time());

  // The stolen key decrypts the cloud blob: confidentiality is fully broken.
  w.sim.run();
  ASSERT_TRUE(session.secret_released());
  EXPECT_EQ(*stolen, *session.released_secret());
}

TEST(ReleaseAhead, GapInColumnsBlocksEarlyRestore) {
  // The K3 case of Fig. 2(b): head and tail compromised, middle intact.
  World w;
  Adversary adv(Adversary::Config{AttackMode::kCovert, 2, 1,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, joint_config(), 18);
  session.send(bytes_of("m"), "t");
  const PathLayout& layout = session.layout();
  adv.mark_malicious(layout.columns[0][0]);
  adv.mark_malicious(layout.columns[2][0]);  // column 2 stays clean
  session.refresh_adversary_exposure();

  w.sim.run_until(session.start_time() + 10.0);
  EXPECT_FALSE(adv.attempt_restore(w.sim.now()).has_value());

  // Even at the end of the run the adversary only ever saw the terminal
  // secret via its terminal holder -- one holding period early, never at ts.
  w.sim.run();
  EXPECT_TRUE(session.secret_released());
  ASSERT_TRUE(adv.earliest_secret_time().has_value());
  const double leak_margin =
      session.release_time() - *adv.earliest_secret_time();
  EXPECT_LE(leak_margin, session.holding_period() + 1.0);
  EXPECT_GT(leak_margin, 0.0);
}

TEST(ReleaseAhead, CleanPathsLeakNothing) {
  // The K1 case: no malicious holder anywhere.
  World w;
  Adversary adv(Adversary::Config{AttackMode::kCovert, 2, 1,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, joint_config(), 19);
  session.send(bytes_of("m"), "t");
  w.sim.run();
  EXPECT_TRUE(session.secret_released());
  EXPECT_FALSE(adv.earliest_secret_time().has_value());
  EXPECT_EQ(adv.captured_packages(), 0u);
}

TEST(ReleaseAhead, ShareSchemeNeedsThresholdPerColumn) {
  // One malicious carrier per column captures one share per key: below the
  // m = 2 threshold, so no early restore; the protocol still completes.
  World w;
  Adversary adv(Adversary::Config{AttackMode::kCovert, 0, 2,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, share_config(), 20);
  session.send(bytes_of("m"), "t");
  const PathLayout& layout = session.layout();
  adv.mark_malicious(layout.columns[0][2]);
  adv.mark_malicious(layout.columns[1][2]);
  session.refresh_adversary_exposure();
  w.sim.run_until(session.release_time() - 1.0);
  EXPECT_FALSE(adv.attempt_restore(w.sim.now()).has_value());
  w.sim.run();
  EXPECT_TRUE(session.secret_released());
}

TEST(ReleaseAhead, ShareSchemeThresholdInOneColumnCascades) {
  // m = 2 of n = 3 carriers malicious in column 1 *alone*: their
  // pre-assigned keys open their envelopes of the captured onion, each of
  // which carries one share of every column-2 key — threshold reached, all
  // column-2 keys reconstruct, and the unwrapped inner onion then yields
  // every later column's shares in turn (the fixpoint cascade). The
  // coalition holds the secret right after ts, two full holding periods
  // before tr. Algorithm 1's per-column release tails model exactly this
  // any-column event; the stat engine's share release semantics were fixed
  // to match (stat_engine.cpp) after the e2e cross-validation sweep
  // flagged the divergence.
  World w;
  Adversary adv(Adversary::Config{AttackMode::kCovert, 0, 2,
                                  crypto::CipherBackend::kChaCha20});
  TimedReleaseSession session(*w.net, w.cloud, &adv, share_config(), 21);
  session.send(bytes_of("m"), "t");
  const PathLayout& layout = session.layout();
  adv.mark_malicious(layout.columns[0][0]);
  adv.mark_malicious(layout.columns[0][1]);
  session.refresh_adversary_exposure();
  w.sim.run_until(session.start_time() + 10.0);
  const auto stolen = adv.attempt_restore(w.sim.now());
  ASSERT_TRUE(stolen.has_value());
  EXPECT_LT(w.sim.now(), session.release_time());

  // The stolen secret is the real message key.
  w.sim.run();
  ASSERT_TRUE(session.secret_released());
  EXPECT_EQ(*stolen, *session.released_secret());
}

// -- churn at the protocol level ------------------------------------------------

TEST(ProtocolChurn, JointSurvivesHolderDeathMidHold) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, joint_config(), 22);
  session.send(bytes_of("m"), "t");
  const dht::NodeId victim = session.layout().columns[1][0];
  // Kill one column-2 holder while it is holding the package.
  w.sim.schedule_at(session.start_time() + 1.5 * session.holding_period(),
                    [&] { w.net->kill_node(victim); });
  w.sim.run();
  EXPECT_TRUE(session.secret_released());  // the replica column survives
}

TEST(ProtocolChurn, DisjointLosesPathOnHolderDeath) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, disjoint_config(), 23);
  session.send(bytes_of("m"), "t");
  // Kill one holder per path mid-hold: both paths die, nothing emerges.
  const dht::NodeId victim1 = session.layout().columns[1][0];
  const dht::NodeId victim2 = session.layout().columns[0][1];
  w.sim.schedule_at(session.start_time() + 0.5 * session.holding_period(),
                    [&] { w.net->kill_node(victim2); });
  w.sim.schedule_at(session.start_time() + 1.5 * session.holding_period(),
                    [&] { w.net->kill_node(victim1); });
  w.sim.run();
  EXPECT_FALSE(session.secret_released());
}

TEST(ProtocolChurn, TerminalHolderDeathBeforeReleaseLosesItsCopy) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, joint_config(), 24);
  session.send(bytes_of("m"), "t");
  // Kill one terminal holder after it peeled but before tr: the other
  // terminal holder still delivers.
  const dht::NodeId victim = session.layout().columns[2][0];
  w.sim.schedule_at(session.release_time() - 10.0,
                    [&] { w.net->kill_node(victim); });
  w.sim.run();
  EXPECT_TRUE(session.secret_released());
  EXPECT_EQ(session.report().deliveries, 1u);
}

TEST(Protocol, ConfigValidation) {
  World w;
  SessionConfig bad = share_config();
  bad.threshold_m = 5;  // > carriers_n
  EXPECT_THROW(TimedReleaseSession(*w.net, w.cloud, nullptr, bad, 1),
               PreconditionError);
  SessionConfig tiny = joint_config();
  tiny.emerging_time = 0.5;  // holding period shorter than assembly delay
  EXPECT_THROW(TimedReleaseSession(*w.net, w.cloud, nullptr, tiny, 1),
               PreconditionError);
}

TEST(Protocol, MalformedPackagesAreDiscarded) {
  // A hostile node spams holders with garbage; the protocol must neither
  // crash nor stall.
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, joint_config(), 26);
  session.send(bytes_of("m"), "t");
  const dht::NodeId target = session.layout().columns[0][0];
  const dht::NodeId attacker = w.net->alive_ids().front();
  w.net->send_message(attacker, target, bytes_of("complete garbage"));
  w.net->send_message(attacker, target, Bytes{0x01});  // truncated header
  w.sim.run();
  EXPECT_EQ(session.report().malformed_packages, 2u);
  EXPECT_TRUE(session.secret_released());
}

TEST(Protocol, ForgedSessionPackagesCannotHijackHolderSlots) {
  // An attacker forges a syntactically valid package (wrong session nonce)
  // and races it to a column-2 holder before the real one arrives. The
  // session must ignore it: the slot is not claimed, the genuine package
  // processes normally, and the secret emerges on time.
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, disjoint_config(), 27);
  session.send(bytes_of("m"), "t");
  const dht::NodeId victim = session.layout().columns[1][1];
  Bytes fake;
  {
    BinaryWriter wtr;
    wtr.u8(1);                            // kMsgPackage
    wtr.u64(0xdeadbeefdeadbeefULL);       // forged session nonce
    wtr.u16(2);                           // column
    wtr.u16(1);                           // holder index
    wtr.u16(0);                           // no shares
    wtr.blob(bytes_of("not a column onion"));
    fake = wtr.take();
  }
  w.net->send_message(victim, victim, fake);
  w.sim.run();
  EXPECT_EQ(session.report().holders_stuck, 0u);
  EXPECT_TRUE(session.secret_released());
}

TEST(Protocol, TwoConcurrentSessionsCoexist) {
  // Sessions chain the network's default handler: two messages with
  // different release times travel the same DHT independently.
  World w(96);
  TimedReleaseSession early(*w.net, w.cloud, nullptr, joint_config(), 28);
  SessionConfig late_config = joint_config();
  late_config.emerging_time = 7200.0;
  TimedReleaseSession late(*w.net, w.cloud, nullptr, late_config, 29);

  early.send(bytes_of("first"), "t1");
  late.send(bytes_of("second"), "t2");

  w.sim.run_until(early.release_time() + 1.0);
  EXPECT_TRUE(early.secret_released());
  EXPECT_FALSE(late.secret_released());

  w.sim.run();
  ASSERT_TRUE(late.secret_released());
  EXPECT_EQ(*early.receiver_decrypt("t1"), bytes_of("first"));
  EXPECT_EQ(*late.receiver_decrypt("t2"), bytes_of("second"));
  EXPECT_EQ(early.report().holders_stuck, 0u);
  EXPECT_EQ(late.report().holders_stuck, 0u);
}

TEST(Protocol, SendTwiceRejected) {
  World w;
  TimedReleaseSession session(*w.net, w.cloud, nullptr, joint_config(), 25);
  session.send(bytes_of("m"), "t");
  EXPECT_THROW(session.send(bytes_of("again"), "t"), PreconditionError);
  w.sim.run();
}

// -- dispatcher-managed sessions ----------------------------------------------

TEST(Protocol, DispatchedSessionsDeliverLikeChainedOnes) {
  World w;
  SessionDispatcher dispatcher(*w.net);
  auto first = std::make_unique<TimedReleaseSession>(
      *w.net, w.cloud, nullptr, joint_config(), 91, &dispatcher);
  auto second = std::make_unique<TimedReleaseSession>(
      *w.net, w.cloud, nullptr, joint_config(), 92, &dispatcher);
  first->send(bytes_of("one"), "t1");
  second->send(bytes_of("two"), "t2");
  EXPECT_EQ(dispatcher.live_sessions(), 2u);
  EXPECT_GT(dispatcher.tracked_storage_keys(), 0u);

  w.sim.run();
  ASSERT_TRUE(first->secret_released());
  ASSERT_TRUE(second->secret_released());
  EXPECT_EQ(*first->receiver_decrypt("t1"), bytes_of("one"));
  EXPECT_EQ(*second->receiver_decrypt("t2"), bytes_of("two"));
  EXPECT_EQ(dispatcher.stray_packages(), 0u);
}

TEST(Protocol, RetireErasesStoredKeysAndDeregisters) {
  World w;
  SessionDispatcher dispatcher(*w.net);
  auto session = std::make_unique<TimedReleaseSession>(
      *w.net, w.cloud, nullptr, joint_config(), 93, &dispatcher);
  session->send(bytes_of("m"), "t");
  w.sim.run();
  ASSERT_TRUE(session->secret_released());

  // The pre-assigned layer keys live under the slots' ring points.
  const PathLayout& layout = session->layout();
  const dht::NodeId stored_key = layout.ring_points[0][0];
  EXPECT_NE(w.net->get(stored_key), nullptr);

  session->retire();
  EXPECT_EQ(dispatcher.live_sessions(), 0u);
  EXPECT_EQ(dispatcher.tracked_storage_keys(), 0u);
  EXPECT_EQ(w.net->get(stored_key), nullptr);
  session->retire();  // idempotent
  // Destroying the retired session must not disturb the dispatcher.
  session.reset();
  EXPECT_EQ(dispatcher.live_sessions(), 0u);
}

TEST(Protocol, StrayPackagesForRetiredSessionsAreCountedNotDelivered) {
  World w;
  SessionDispatcher dispatcher(*w.net);
  auto session = std::make_unique<TimedReleaseSession>(
      *w.net, w.cloud, nullptr, joint_config(), 94, &dispatcher);
  session->send(bytes_of("m"), "t");
  // Capture a genuine column-1 package off the wire by replaying what the
  // sender emitted: simplest is to let the world run, retire, then poke a
  // fabricated package at the (now unregistered) nonce via a copy of the
  // default handler path — a foreign well-formed package with an unknown
  // nonce exercises the same branch.
  w.sim.run();
  session->retire();
  session.reset();

  BinaryWriter forged;
  forged.u8(1);                 // kMsgPackage
  forged.u64(0xDEADBEEF);       // no such session
  forged.u16(1);
  forged.u16(0);
  forged.u16(0);                // zero shares
  forged.blob(bytes_of("xx"));  // onion bytes (never decoded)
  const std::vector<dht::NodeId>& alive = w.net->alive_ids();
  w.net->send_message(alive[0], alive[1], forged.take());
  w.sim.run();
  EXPECT_EQ(dispatcher.stray_packages(), 1u);
}

}  // namespace
}  // namespace emergence::core

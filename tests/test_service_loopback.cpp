// The service stack without processes or real sockets: NodeDaemon +
// WireClient on a Simulator clock and a MemoryDatagramHub transport. The
// SAME classes tools/emerged.cpp runs on a WallClock + UdpSocket execute
// here deterministically — ring bootstrap, timed release over the wire,
// and the garbage-tolerance contract are all asserted in virtual time.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/datagram.hpp"
#include "sim/simulator.hpp"

namespace emergence::service {
namespace {

constexpr std::uint32_t kLoopbackIp = 0x7F000001;

Endpoint node_endpoint(std::size_t index) {
  return Endpoint{kLoopbackIp, static_cast<std::uint16_t>(9000 + index)};
}

/// N daemons on one in-process hub: node 0 creates the ring, the rest join
/// through it — the exact bootstrap tools/cluster.sh performs over UDP.
struct Cluster {
  sim::Simulator sim;
  MemoryDatagramHub hub{sim, 0.0005};
  struct Node {
    std::unique_ptr<DatagramSocket> socket;
    std::unique_ptr<NodeDaemon> daemon;
  };
  std::vector<Node> nodes;

  explicit Cluster(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      DaemonConfig config;
      config.listen = node_endpoint(i);
      if (i != 0) config.seed = node_endpoint(0);
      config.name = "node-" + std::to_string(i);
      config.rng_seed = 1000 + i;
      config.stabilize_interval = 0.25;
      config.repair_interval = 1.0;
      Node node;
      node.socket = hub.bind(config.listen);
      node.daemon =
          std::make_unique<NodeDaemon>(sim, *node.socket, config);
      nodes.push_back(std::move(node));
    }
    for (Node& node : nodes) node.daemon->start();
  }

  NodeDaemon* at(const Endpoint& endpoint) {
    for (Node& node : nodes) {
      if (node.daemon->self().addr == endpoint) return node.daemon.get();
    }
    return nullptr;
  }

  /// Follows successor links from node 0; the ring is converged when the
  /// walk closes after visiting every daemon exactly once.
  std::size_t ring_walk_size() {
    std::set<std::string> seen;
    Endpoint cursor = node_endpoint(0);
    for (std::size_t i = 0; i <= nodes.size(); ++i) {
      NodeDaemon* daemon = at(cursor);
      if (daemon == nullptr) break;
      if (!seen.insert(daemon->self().id.to_hex()).second) break;
      if (daemon->successors().empty()) break;
      cursor = daemon->successors().front().addr;
    }
    return seen.size();
  }

  std::uint64_t total_malformed() const {
    std::uint64_t total = 0;
    for (const Node& node : nodes)
      total += node.daemon->stats().malformed_frames();
    return total;
  }
};

TEST(ServiceLoopback, SixteenNodesConvergeIntoOneRing) {
  Cluster cluster(16);
  cluster.sim.run_until(30.0);

  for (const auto& node : cluster.nodes) {
    EXPECT_TRUE(node.daemon->joined());
    EXPECT_TRUE(node.daemon->has_predecessor());
    ASSERT_FALSE(node.daemon->successors().empty());
    // Nobody is its own successor in a converged multi-node ring.
    EXPECT_NE(node.daemon->successors().front().id, node.daemon->self().id);
  }
  EXPECT_EQ(cluster.ring_walk_size(), 16u);
  EXPECT_EQ(cluster.total_malformed(), 0u);
}

struct LoopbackClient {
  std::unique_ptr<DatagramSocket> socket;
  std::unique_ptr<WireClient> client;

  LoopbackClient(Cluster& cluster, const Endpoint& bind) {
    socket = cluster.hub.bind(bind);
    WireClient::Options options;
    options.daemon = node_endpoint(0);
    options.resend_interval = 0.5;
    options.submit_timeout = 20.0;
    client = std::make_unique<WireClient>(
        cluster.sim, *socket, options,
        [&cluster]() { return cluster.sim.step(64) > 0; });
  }
};

TEST(ServiceLoopback, SubmitHoldsForwardAndEmergesOnTheWire) {
  Cluster cluster(16);
  cluster.sim.run_until(30.0);
  ASSERT_EQ(cluster.ring_walk_size(), 16u);

  LoopbackClient lc(cluster, Endpoint{kLoopbackIp, 8999});
  api::SubmitRequest request;
  request.message = bytes_of("the loopback secret");
  request.scheme = core::SchemeKind::kJoint;
  request.shape = core::PathShape{2, 3};
  request.emerging_time = 60.0;  // th = 20s per column
  request.assembly_delay = 1.0;

  const api::SubmitReceipt receipt = lc.client->submit(request);
  EXPECT_NE(receipt.session_nonce, 0u);
  EXPECT_DOUBLE_EQ(receipt.release_time, receipt.start_time + 60.0);

  // Nothing may emerge before tr.
  cluster.sim.run_until(receipt.release_time - 1.0);
  EXPECT_FALSE(lc.client->poll(receipt.session_nonce).has_value());

  const auto event = lc.client->await_event(receipt.session_nonce, 30.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->session_nonce, receipt.session_nonce);
  EXPECT_EQ(Bytes(event->secret), bytes_of("the loopback secret"));
  EXPECT_GE(event->delivery_time, receipt.release_time);
  EXPECT_LE(event->delivery_time, receipt.release_time + 1.0);

  // The emergence came through real package hops, and nothing was mangled.
  std::uint64_t deliveries = 0, packages = 0, stuck = 0;
  for (const auto& node : cluster.nodes) {
    deliveries += node.daemon->report().deliveries;
    packages += node.daemon->report().packages_received;
    stuck += node.daemon->report().holders_stuck;
  }
  EXPECT_GE(deliveries, 1u);
  // k x l = 6 holder slots, columns 2..3 arrive as k packages each.
  EXPECT_GE(packages, 6u);
  EXPECT_EQ(stuck, 0u);
  EXPECT_EQ(cluster.total_malformed(), 0u);
}

TEST(ServiceLoopback, ShareSchemeEmergesViaShamirReassembly) {
  Cluster cluster(16);
  cluster.sim.run_until(30.0);
  ASSERT_EQ(cluster.ring_walk_size(), 16u);

  LoopbackClient lc(cluster, Endpoint{kLoopbackIp, 8998});
  api::SubmitRequest request;
  request.message = bytes_of("shared loopback secret");
  request.scheme = core::SchemeKind::kShare;
  request.shape = core::PathShape{2, 3};
  request.carriers_n = 3;
  request.threshold_m = 2;
  request.emerging_time = 60.0;
  request.assembly_delay = 1.0;

  const api::SubmitReceipt receipt = lc.client->submit(request);
  const auto event = lc.client->await_event(receipt.session_nonce, 100.0);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(Bytes(event->secret), bytes_of("shared loopback secret"));
  EXPECT_GE(event->delivery_time, receipt.release_time);
  EXPECT_EQ(cluster.total_malformed(), 0u);
}

TEST(ServiceLoopback, RejectsImpossibleSubmitWithDiagnostic) {
  Cluster cluster(4);
  cluster.sim.run_until(15.0);

  LoopbackClient lc(cluster, Endpoint{kLoopbackIp, 8997});
  api::SubmitRequest request;
  request.message = bytes_of("x");
  request.emerging_time = 1.0;  // th = 1/3 s < assembly delay
  request.assembly_delay = 1.0;
  EXPECT_THROW(
      {
        try {
          lc.client->submit(request);
        } catch (const ProtocolError& e) {
          EXPECT_NE(std::string(e.what()).find("holding period"),
                    std::string::npos);
          throw;
        }
      },
      ProtocolError);
}

TEST(ServiceLoopback, DaemonSurvivesGarbageAndCountsEveryClass) {
  Cluster cluster(2);
  cluster.sim.run_until(10.0);

  // A raw hub endpoint lobbing malformed datagrams straight at node 0.
  auto attacker = cluster.hub.bind(Endpoint{kLoopbackIp, 8996});
  const Endpoint target = node_endpoint(0);

  attacker->send_to(target, Bytes{0x00, 0x01, 0x02});            // bad magic
  attacker->send_to(target, Bytes{kWireMagic});                  // truncated
  attacker->send_to(target, Bytes{kWireMagic, kWireVersion + 1,  // bad version
                                  1, 0, 0, 0, 0});
  attacker->send_to(target, Bytes{kWireMagic, kWireVersion,      // bad type
                                  0xEE, 0, 0, 0, 0});
  attacker->send_to(target, Bytes{kWireMagic, kWireVersion,      // bad payload
                                  2, 1, 0, 0, 0, 0xFF});
  cluster.sim.run_until(11.0);

  const WireStats& stats = cluster.nodes[0].daemon->stats();
  EXPECT_EQ(stats.bad_magic, 1u);
  EXPECT_EQ(stats.truncated_frames, 1u);
  EXPECT_EQ(stats.version_mismatch, 1u);
  EXPECT_EQ(stats.unknown_type, 1u);
  EXPECT_EQ(stats.malformed_payload, 1u);
  EXPECT_EQ(stats.malformed_frames(), 5u);

  // The daemon keeps serving: the ring still stabilizes and answers.
  cluster.sim.run_until(20.0);
  EXPECT_EQ(cluster.ring_walk_size(), 2u);
}

TEST(ServiceLoopback, StatusWalkMatchesInProcessState) {
  Cluster cluster(8);
  cluster.sim.run_until(30.0);
  ASSERT_EQ(cluster.ring_walk_size(), 8u);

  LoopbackClient lc(cluster, Endpoint{kLoopbackIp, 8995});
  std::set<std::string> walked;
  Endpoint cursor = node_endpoint(0);
  for (std::size_t i = 0; i < 8; ++i) {
    const StatusReply reply = lc.client->status_of(cursor, 10.0);
    EXPECT_TRUE(reply.has_predecessor);
    EXPECT_EQ(reply.malformed_frames, 0u);
    ASSERT_FALSE(reply.successors.empty());
    walked.insert(reply.self.id.to_hex());
    cursor = reply.successors.front().addr;
  }
  EXPECT_EQ(walked.size(), 8u);
}

TEST(ServiceLoopback, MetricsQueryMatchesInProcessRegistry) {
  Cluster cluster(4);
  cluster.sim.run_until(20.0);
  ASSERT_EQ(cluster.ring_walk_size(), 4u);

  LoopbackClient lc(cluster, Endpoint{kLoopbackIp, 8994});
  for (std::size_t i = 0; i < cluster.nodes.size(); ++i) {
    const Endpoint target = node_endpoint(i);
    const MetricsResponse reply = lc.client->metrics_of(target, 10.0);
    ASSERT_FALSE(reply.entries.empty());

    // The wire snapshot is exactly the in-process registry, flattened —
    // modulo the counters the query itself bumped between the daemon's
    // snapshot and ours, so compare the stable daemon-engine series.
    obs::MetricsRegistry local;
    cluster.at(target)->publish_metrics(local);
    auto value_of = [&reply](const std::string& key) {
      for (const auto& [name, value] : reply.entries) {
        if (name == key) return value;
      }
      ADD_FAILURE() << "missing series " << key;
      return -1.0;
    };
    for (const auto& [key, value] : local.counters()) {
      if (key.rfind("emergence_daemon_", 0) == 0) {
        EXPECT_EQ(value_of(key), static_cast<double>(value)) << key;
      }
    }
    EXPECT_EQ(value_of("emergence_joined"), 1.0);
    EXPECT_GE(value_of("emergence_successors"), 1.0);
  }
}

}  // namespace
}  // namespace emergence::service

// Tests for the workload subsystem: goodness-of-fit of every lifetime
// model and arrival process at pinned seeds, fork-stream independence,
// scenario registry/parser validation, Network::erase hygiene, and the
// SessionFleet determinism contract (1/2/8-thread bit-identity, arena
// recycling, exact accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "dht/chord_network.hpp"
#include "dht/kademlia.hpp"
#include "workload/arrival.hpp"
#include "workload/lifetime.hpp"
#include "workload/scenario.hpp"
#include "workload/session_fleet.hpp"

namespace emergence::workload {
namespace {

// -- statistical helpers ------------------------------------------------------

/// Kolmogorov-Smirnov statistic of `samples` against the analytic CDF.
template <typename Cdf>
double ks_statistic(std::vector<double> samples, const Cdf& cdf) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

/// alpha = 0.01 KS acceptance threshold (asymptotic c(0.01) = 1.63). The
/// seeds are pinned, so these tests are deterministic, not flaky; the
/// threshold documents how close the samplers actually are.
double ks_threshold(std::size_t n) {
  return 1.63 / std::sqrt(static_cast<double>(n));
}

std::vector<double> draw(const LifetimeModel& model, std::size_t n,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(model.sample(rng));
  return samples;
}

double sample_mean(const std::vector<double>& samples) {
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

// -- lifetime models ----------------------------------------------------------

TEST(LifetimeModels, WeibullMatchesAnalyticCdf) {
  const WeibullLifetime model(0.6, 400.0);
  const std::vector<double> samples = draw(model, 20000, 0x11);
  EXPECT_NEAR(sample_mean(samples), 400.0, 400.0 * 0.05);
  const double k = model.shape(), lambda = model.scale();
  const double d = ks_statistic(samples, [&](double x) {
    return 1.0 - std::exp(-std::pow(x / lambda, k));
  });
  EXPECT_LT(d, ks_threshold(samples.size()));
}

TEST(LifetimeModels, ParetoMatchesAnalyticCdf) {
  // Lomax / Pareto II: F(x) = 1 - (1 + x/scale)^-alpha. alpha = 2.5 keeps
  // the sample mean well-behaved for the mean check; the KS statistic
  // checks the whole shape.
  const ParetoLifetime model(2.5, 400.0);
  const std::vector<double> samples = draw(model, 20000, 0x22);
  EXPECT_NEAR(sample_mean(samples), 400.0, 400.0 * 0.10);
  const double a = model.alpha(), lambda = model.scale();
  const double d = ks_statistic(samples, [&](double x) {
    return 1.0 - std::pow(1.0 + x / lambda, -a);
  });
  EXPECT_LT(d, ks_threshold(samples.size()));
}

TEST(LifetimeModels, TraceMatchesItsOwnCdf) {
  const TraceLifetime model(bundled_session_trace(), 250.0);
  const std::vector<double> samples = draw(model, 20000, 0x33);
  EXPECT_NEAR(sample_mean(samples), 250.0, 250.0 * 0.05);
  // Forward-evaluate the piecewise-linear inverse: F(x) interpolates the
  // quantile between the knots bracketing x.
  const std::vector<CdfPoint>& table = model.table();
  const auto cdf = [&table](double x) {
    if (x <= table.front().value) return table.front().quantile;
    for (std::size_t i = 1; i < table.size(); ++i) {
      if (x <= table[i].value) {
        const double span = table[i].value - table[i - 1].value;
        const double t = span > 0.0 ? (x - table[i - 1].value) / span : 1.0;
        return table[i - 1].quantile +
               t * (table[i].quantile - table[i - 1].quantile);
      }
    }
    return 1.0;
  };
  const double d = ks_statistic(samples, cdf);
  EXPECT_LT(d, ks_threshold(samples.size()));
}

TEST(LifetimeModels, TraceTableValidation) {
  EXPECT_THROW(TraceLifetime({{0.0, 0.0}}, 100.0), PreconditionError);
  EXPECT_THROW(TraceLifetime({{0.1, 0.0}, {1.0, 1.0}}, 100.0),
               PreconditionError);  // must start at quantile 0
  EXPECT_THROW(TraceLifetime({{0.0, 0.0}, {0.9, 1.0}}, 100.0),
               PreconditionError);  // must end at quantile 1
  EXPECT_THROW(TraceLifetime({{0.0, 0.0}, {0.5, 1.0}, {0.5, 2.0}, {1.0, 3.0}},
                             100.0),
               PreconditionError);  // strictly increasing quantiles
  EXPECT_THROW(TraceLifetime({{0.0, 2.0}, {0.5, 1.0}, {1.0, 3.0}}, 100.0),
               PreconditionError);  // non-decreasing values
  EXPECT_THROW(TraceLifetime(bundled_session_trace(), -1.0),
               PreconditionError);  // positive mean
}

TEST(LifetimeModels, SpecBuildsEveryKindAndRejectsBadParameters) {
  for (LifetimeKind kind :
       {LifetimeKind::kExponential, LifetimeKind::kWeibull,
        LifetimeKind::kPareto, LifetimeKind::kTrace}) {
    LifetimeSpec spec;
    spec.kind = kind;
    spec.shape = 1.7;
    const auto model = spec.build(500.0);
    EXPECT_NEAR(model->mean(), 500.0, 1e-9) << to_string(kind);
    EXPECT_EQ(model->name(), to_string(kind));
  }
  LifetimeSpec bad;
  EXPECT_THROW(bad.build(0.0), PreconditionError);
  bad.kind = LifetimeKind::kPareto;
  bad.shape = 1.0;  // infinite mean
  EXPECT_THROW(bad.build(100.0), PreconditionError);
  bad.kind = LifetimeKind::kWeibull;
  bad.shape = 0.0;
  EXPECT_THROW(bad.build(100.0), PreconditionError);
}

// -- arrival processes --------------------------------------------------------

TEST(ArrivalProcesses, DeterministicSpacingIsExactAndDrawFree) {
  const DeterministicArrivals arrivals(4.0);
  Rng rng(0x44), untouched(0x44);
  double t = 0.0;
  for (int i = 1; i <= 100; ++i) {
    t = arrivals.next_after(t, rng);
    EXPECT_DOUBLE_EQ(t, static_cast<double>(i) * 0.25);
  }
  // The process never draws: the stream is untouched.
  EXPECT_EQ(rng.bits(), untouched.bits());
}

TEST(ArrivalProcesses, PoissonInterArrivalsMatchTheRate) {
  const PoissonArrivals arrivals(10.0);
  Rng rng(0x55);
  const std::size_t n = 20000;
  double t = 0.0;
  std::vector<double> gaps;
  gaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double next = arrivals.next_after(t, rng);
    gaps.push_back(next - t);
    t = next;
  }
  EXPECT_NEAR(sample_mean(gaps), 0.1, 0.1 * 0.05);
  // Exponential gaps: KS against Exp(rate).
  const double d =
      ks_statistic(gaps, [](double x) { return 1.0 - std::exp(-10.0 * x); });
  EXPECT_LT(d, ks_threshold(n));
}

TEST(ArrivalProcesses, DiurnalModulatesTheDay) {
  // Peak quarter (centered on t = period/4) vs trough quarter (3*period/4):
  // intensity ratio approaches (1 + a) / (1 - a) = 9 at a = 0.8.
  const double period = 100.0;
  const DiurnalArrivals arrivals(20.0, 0.8, period);
  Rng rng(0x66);
  std::vector<std::size_t> peak_counts(1, 0), trough_counts(1, 0);
  std::size_t peak = 0, trough = 0;
  double t = 0.0;
  const double horizon = 200.0 * period;
  while (t < horizon) {
    t = arrivals.next_after(t, rng);
    const double phase = std::fmod(t, period) / period;
    if (phase >= 0.125 && phase < 0.375) ++peak;
    if (phase >= 0.625 && phase < 0.875) ++trough;
  }
  ASSERT_GT(trough, 0u);
  const double ratio = static_cast<double>(peak) / static_cast<double>(trough);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 15.0);
  EXPECT_DOUBLE_EQ(arrivals.mean_rate(), 20.0);
}

TEST(ArrivalProcesses, FlashCrowdBurstsDominateTheWindows) {
  const FlashCrowdArrivals arrivals(2.0, 80.0, 50.0, 10.0, 100.0);
  Rng rng(0x77);
  double t = 0.0;
  std::size_t in_burst = 0, outside = 0;
  const double horizon = 100.0 * 100.0;
  while (t < horizon) {
    t = arrivals.next_after(t, rng);
    if (arrivals.rate_at(t) > 2.0) {
      ++in_burst;
    } else {
      ++outside;
    }
  }
  // Burst windows cover 10% of the axis at 40x the base intensity: the
  // expected split is 800 : 1800 per 100s period.
  const double burst_per_second = static_cast<double>(in_burst) / (0.1 * horizon);
  const double base_per_second = static_cast<double>(outside) / (0.9 * horizon);
  EXPECT_NEAR(burst_per_second, 80.0, 80.0 * 0.1);
  EXPECT_NEAR(base_per_second, 2.0, 2.0 * 0.15);
  EXPECT_NEAR(arrivals.mean_rate(), 2.0 + 78.0 * 0.1, 1e-12);
}

TEST(ArrivalProcesses, SpecValidation) {
  ArrivalSpec spec;
  spec.rate = 0.0;
  EXPECT_THROW(spec.build(), PreconditionError);
  spec = ArrivalSpec{};
  spec.kind = ArrivalKind::kDiurnal;
  spec.amplitude = 1.0;
  EXPECT_THROW(spec.build(), PreconditionError);
  spec = ArrivalSpec{};
  spec.kind = ArrivalKind::kFlashCrowd;
  spec.burst_rate = 0.5;  // below base
  EXPECT_THROW(spec.build(), PreconditionError);
}

TEST(ForkStreams, SubStreamsAreIndependentAndStable) {
  const Rng root(0xF00);
  // Stability: fork(i) depends only on (seed, stream id).
  Rng a = root.fork(7), b = Rng(0xF00).fork(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.bits(), b.bits());
  // Independence: distinct streams decorrelate (Pearson r ~ 0 on uniforms).
  Rng x = root.fork(1), y = root.fork(2);
  const std::size_t n = 4096;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = x.real(), v = y.real();
    sx += u; sy += v; sxx += u * u; syy += v * v; sxy += u * v;
  }
  const double nn = static_cast<double>(n);
  const double r = (nn * sxy - sx * sy) /
                   std::sqrt((nn * sxx - sx * sx) * (nn * syy - sy * sy));
  EXPECT_LT(std::abs(r), 0.05);
}

// -- scenarios ----------------------------------------------------------------

TEST(Scenarios, RegistryIsValidAndCoversTheAdvertisedAxes) {
  const std::vector<ScenarioSpec>& registry = scenario_registry();
  EXPECT_GE(registry.size(), 10u);
  std::set<std::string> names;
  std::set<ArrivalKind> arrivals;
  std::set<LifetimeKind> lifetimes;
  bool kademlia = false, dropping = false, share = false, transient = false;
  for (const ScenarioSpec& s : registry) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_NO_THROW(s.validate()) << s.name;
    arrivals.insert(s.arrival.kind);
    lifetimes.insert(s.lifetime.kind);
    kademlia = kademlia || s.backend == core::DhtBackend::kKademlia;
    dropping = dropping || s.attack_mode == core::AttackMode::kDropping;
    share = share || s.scheme == core::SchemeKind::kShare;
    transient = transient || s.transient_fraction > 0.0;
  }
  EXPECT_EQ(arrivals.size(), 4u);   // every arrival process appears
  EXPECT_EQ(lifetimes.size(), 4u);  // every lifetime law appears
  EXPECT_TRUE(kademlia);
  EXPECT_TRUE(dropping);
  EXPECT_TRUE(share);
  EXPECT_TRUE(transient);
}

TEST(Scenarios, ParserResolvesNamesAndOverrides) {
  const ScenarioSpec plain = parse_scenario("poisson-open");
  EXPECT_EQ(plain.name, "poisson-open");

  const ScenarioSpec tuned = parse_scenario(
      "metro-diurnal:population=4096,sessions=777,worlds=3,seed=0x9,"
      "rate=12.5,T=60,alpha=0.01,backend=kademlia,lifetime=pareto,"
      "lifetime-shape=2.25,arrival=poisson,p=0.1");
  EXPECT_EQ(tuned.population, 4096u);
  EXPECT_EQ(tuned.sessions, 777u);
  EXPECT_EQ(tuned.worlds, 3u);
  EXPECT_EQ(tuned.seed, 0x9u);
  EXPECT_DOUBLE_EQ(tuned.arrival.rate, 12.5);
  EXPECT_DOUBLE_EQ(tuned.emerging_time, 60.0);
  EXPECT_EQ(tuned.backend, core::DhtBackend::kKademlia);
  EXPECT_EQ(tuned.lifetime.kind, LifetimeKind::kPareto);
  EXPECT_DOUBLE_EQ(tuned.lifetime.shape, 2.25);
  EXPECT_EQ(tuned.arrival.kind, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(tuned.malicious_p, 0.1);
}

TEST(Scenarios, ParserRejectsMalformedSpecsWithClearDiagnostics) {
  const auto message_of = [](const std::string& text) {
    try {
      parse_scenario(text);
    } catch (const PreconditionError& e) {
      return std::string(e.what());
    }
    return std::string("<no error>");
  };
  EXPECT_NE(message_of("no-such-scenario").find("known:"), std::string::npos);
  EXPECT_NE(message_of("poisson-open:bogus-key=1").find("bogus-key"),
            std::string::npos);
  EXPECT_NE(message_of("poisson-open:rate=fast").find("not a number"),
            std::string::npos);
  EXPECT_NE(message_of("poisson-open:population=-5")
                .find("not a non-negative integer"),
            std::string::npos);
  EXPECT_NE(message_of("poisson-open:population=4").find("population"),
            std::string::npos);  // validate(): too small for holders
  EXPECT_NE(message_of("poisson-open:").find("overrides"), std::string::npos);
  EXPECT_NE(message_of("poisson-open:rate").find("key=value"),
            std::string::npos);
  EXPECT_NE(message_of("poisson-open:backend=ipfs").find("chord or kademlia"),
            std::string::npos);
  EXPECT_THROW(parse_scenario(""), PreconditionError);
}

TEST(Scenarios, BridgesOntoTheE2eRunner) {
  ScenarioSpec spec = find_scenario("share-threshold");
  spec.population = 64;
  const core::E2eScenario e2e = to_e2e_scenario(spec, 25);
  EXPECT_EQ(e2e.kind, core::SchemeKind::kShare);
  EXPECT_EQ(e2e.carriers_n, 4u);
  EXPECT_EQ(e2e.threshold_m, 2u);
  EXPECT_EQ(e2e.population, 64u);
  EXPECT_EQ(e2e.runs, 25u);
  EXPECT_EQ(e2e.sessions, 1u);
  EXPECT_DOUBLE_EQ(e2e.p, spec.malicious_p);
  EXPECT_EQ(e2e.churn, spec.churn);
}

// -- Network::erase hygiene ---------------------------------------------------

template <typename Net>
void exercise_erase(Net& net) {
  const dht::NodeId key = dht::NodeId::hash_of_text("erase-me");
  ASSERT_TRUE(net.put(key, bytes_of("payload")));
  ASSERT_NE(net.get(key), nullptr);
  EXPECT_GE(net.erase(key), 1u);
  EXPECT_EQ(net.get(key), nullptr);
  // Erasing an absent key is a harmless no-op.
  EXPECT_EQ(net.erase(key), 0u);
}

TEST(NetworkErase, ChordErasesPrimaryAndReplicas) {
  sim::Simulator sim;
  Rng rng(0x88);
  dht::ChordNetwork net(sim, rng, dht::NetworkConfig{});
  net.bootstrap(48);
  exercise_erase(net);
}

TEST(NetworkErase, KademliaErasesTheNeighborhood) {
  sim::Simulator sim;
  Rng rng(0x99);
  dht::KademliaNetwork net(sim, rng, dht::KademliaConfig{});
  net.bootstrap(48);
  exercise_erase(net);
}

// -- session fleet ------------------------------------------------------------

ScenarioSpec fleet_scenario() {
  ScenarioSpec s;
  s.name = "fleet-test";
  s.population = 96;
  s.arrival.kind = ArrivalKind::kPoisson;
  s.arrival.rate = 4.0;
  s.sessions = 64;
  s.worlds = 4;
  s.emerging_time = 10.0;
  s.shape = core::PathShape{2, 3};
  s.churn = true;
  s.churn_alpha = 0.05;  // mean lifetime 200 vs ~26s horizon
  s.seed = 0xF1EE7;
  return s;
}

void expect_fleet_tallies_identical(const FleetTally& a, const FleetTally& b) {
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.sessions_started, b.sessions_started);
  EXPECT_EQ(a.sessions_delivered, b.sessions_delivered);
  EXPECT_EQ(a.tally.release.successes(), b.tally.release.successes());
  EXPECT_EQ(a.tally.drop.successes(), b.tally.drop.successes());
  EXPECT_EQ(a.tally.suffix_histogram, b.tally.suffix_histogram);
  EXPECT_EQ(a.latency_us.bins(), b.latency_us.bins());
  EXPECT_EQ(a.packages_sent, b.packages_sent);
  EXPECT_EQ(a.churn_deaths, b.churn_deaths);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.horizon, b.horizon);
}

TEST(SessionFleet, TalliesBitIdenticalAt1And2And8Threads) {
  const ScenarioSpec spec = fleet_scenario();
  core::SweepRunner one(core::SweepOptions{1, 64});
  core::SweepRunner two(core::SweepOptions{2, 64});
  core::SweepRunner eight(core::SweepOptions{8, 64});
  const FleetTally t1 = run_scenario(one, spec);
  const FleetTally t2 = run_scenario(two, spec);
  const FleetTally t8 = run_scenario(eight, spec);
  EXPECT_EQ(t1.sessions_started, spec.sessions);
  expect_fleet_tallies_identical(t1, t2);
  expect_fleet_tallies_identical(t1, t8);
}

TEST(SessionFleet, ExactAccountingAndTimingContract) {
  ScenarioSpec spec = fleet_scenario();
  spec.worlds = 1;
  core::SweepRunner sweeps(core::SweepOptions{1, 64});
  const FleetTally t = run_scenario(sweeps, spec);
  EXPECT_EQ(t.sessions_started, spec.sessions);
  EXPECT_EQ(t.trials(), spec.sessions);
  EXPECT_EQ(t.sessions_delivered + t.tally.drop.successes(),
            t.sessions_started);
  EXPECT_EQ(t.delivered_on_time, t.sessions_delivered);
  EXPECT_EQ(t.payload_mismatches, 0u);
  EXPECT_EQ(t.stray_packages, 0u);
  ASSERT_GT(t.sessions_delivered, 0u);
  // Delivery lands exactly at tr: one latency bin at T microseconds.
  const std::int64_t expect_us = std::llround(spec.emerging_time * 1e6);
  EXPECT_EQ(t.latency_us.percentile(0.5), expect_us);
  EXPECT_EQ(t.latency_us.percentile(0.99), expect_us);
  EXPECT_EQ(t.latency_us.max(), expect_us);
  EXPECT_EQ(t.max_delivery_offset_ns, 0);
}

TEST(SessionFleet, ArenaRecyclesSlots) {
  // Low rate and a short T: sessions overlap only a little, so the arena
  // must stay far below one slot per session.
  ScenarioSpec spec = fleet_scenario();
  spec.worlds = 1;
  spec.arrival.kind = ArrivalKind::kDeterministic;
  spec.arrival.rate = 1.0;
  spec.sessions = 50;
  core::SweepRunner sweeps(core::SweepOptions{1, 64});
  const FleetTally t = run_scenario(sweeps, spec);
  EXPECT_EQ(t.sessions_started, 50u);
  EXPECT_LT(t.arena_slots, 25u);
  EXPECT_EQ(t.peak_live_sessions, t.arena_slots);
}

TEST(SessionFleet, DroppingCoalitionDropsAndCovertCoalitionLeaks) {
  ScenarioSpec spec = fleet_scenario();
  spec.worlds = 2;
  spec.sessions = 60;
  spec.malicious_p = 0.4;
  spec.attack_mode = core::AttackMode::kDropping;
  spec.churn = false;
  core::SweepRunner sweeps(core::SweepOptions{0, 64});
  const FleetTally dropping = run_scenario(sweeps, spec);
  EXPECT_GT(dropping.tally.drop.successes(), 0u);
  EXPECT_GT(dropping.packages_dropped_malicious, 0u);

  spec.attack_mode = core::AttackMode::kCovert;
  const FleetTally covert = run_scenario(sweeps, spec);
  // Covert holders forward everything: no drops, but the terminal column
  // leaks into the margin histogram at p = 0.4.
  EXPECT_EQ(covert.tally.drop.successes(), 0u);
  EXPECT_EQ(covert.sessions_delivered, covert.sessions_started);
  EXPECT_GT(covert.tally.suffix_at_least(1), 0u);
}

TEST(SessionFleet, RunsEveryRegistryScenarioAtSmokeScale) {
  core::SweepRunner sweeps(core::SweepOptions{0, 64});
  for (ScenarioSpec spec : scenario_registry()) {
    spec.population = std::max<std::size_t>(64, spec.population / 16);
    spec.sessions = 40;
    spec.worlds = 2;
    const FleetTally t = run_scenario(sweeps, spec);
    EXPECT_EQ(t.sessions_started, 40u) << spec.name;
    EXPECT_EQ(t.sessions_delivered + t.tally.drop.successes(), 40u)
        << spec.name;
    EXPECT_EQ(t.payload_mismatches, 0u) << spec.name;
    if (spec.exact_delivery()) {
      EXPECT_EQ(t.delivered_on_time, t.sessions_delivered) << spec.name;
    } else {
      // Non-exact transports (the partition-heal axis) deliver late but
      // bounded: within the transport's reap_slack of tr.
      EXPECT_LE(static_cast<double>(t.max_delivery_offset_ns),
                spec.transport.reap_slack(spec.shape.l) * 1e9)
          << spec.name;
    }
  }
}

}  // namespace
}  // namespace emergence::workload

// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace emergence::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15.0);
}

// -- past-clamp semantics ----------------------------------------------------
// schedule_at with at < now used to throw. That precondition was a latent
// landmine for any caller computing an absolute schedule near now (the
// protocol's clamped forwards under lossy transports, redirected schedules
// at window barriers): a float rounding hair below now crashed the run.
// Pinned behavior: past times clamp deterministically to now — the event
// fires, never time-travels, and FIFO-orders after everything already
// pending at now. Negative *relative* delays are still programming errors.
TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 10.0);

  std::vector<int> order;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] { order.push_back(0); });
  // Clamped: fires at now (10.0), after the event already pending at 10.0.
  sim.schedule_at(5.0, [&] {
    order.push_back(1);
    fired_at = sim.now();
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(fired_at, 10.0);
  EXPECT_EQ(sim.now(), 10.0);  // no time travel

  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), emergence::PreconditionError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(9999);
  bool fired = false;
  sim.schedule_at(1.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepLimitsExecution) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(static_cast<double>(i), [&] { ++count; });
  EXPECT_EQ(sim.step(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.step(100), 3u);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), 50.0);
}

TEST(Simulator, ExecutedEventsCounted) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, CancelledEventsNotCounted) {
  Simulator sim;
  const EventId id = sim.schedule_in(1.0, [] {});
  sim.schedule_in(2.0, [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, PendingReflectsCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_in(1.0, [] {});
  sim.schedule_in(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilPastDeadlineThrows) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_THROW(sim.run_until(4.0), emergence::PreconditionError);
}

// -- run_before window semantics ---------------------------------------------
// The domain executor's windows are half-open [start, end): an event at
// exactly the barrier belongs to the NEXT window (run_until's inclusive
// <= deadline would run it twice — once per adjacent window).

TEST(Simulator, RunBeforeExcludesBarrierExactEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });  // exactly at barrier
  sim.run_before(2.0);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), 2.0);  // clock advances to the barrier regardless
  sim.run_before(3.0);  // the barrier event belongs to the next window
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunBeforeRunsChainedSameWindowEvents) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] {
    fired.push_back(sim.now());
    // Scheduled inside the window, lands inside the window: same pass.
    sim.schedule_in(0.5, [&] { fired.push_back(sim.now()); });
    // Lands exactly on the barrier: next window.
    sim.schedule_in(1.0, [&] { fired.push_back(sim.now()); });
  });
  sim.run_before(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5}));
  sim.run_before(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5, 2.0}));
}

TEST(Simulator, RunBeforePastWindowEndThrows) {
  Simulator sim;
  sim.run_before(5.0);
  EXPECT_THROW(sim.run_before(4.0), emergence::PreconditionError);
}

// next_event_time must see through cancelled tombstones at the queue head —
// the executor sizes windows off it, and a stale tombstone time would make
// the window partition depend on cancellation history.
TEST(Simulator, NextEventTimePurgesCancelledTombstones) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(3.0, [] {});
  sim.cancel(a);
  const std::optional<Time> next = sim.next_event_time();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 3.0);

  sim.cancel(sim.schedule_at(4.0, [] {}));
  sim.purge_cancelled();  // explicit purge is also a public operation
  EXPECT_EQ(sim.pending(), 1u);
}

// -- pending() bookkeeping regressions ---------------------------------------
// pending() used to compute queue_.size() - cancelled_.size() on unsigned
// values; cancelling an already-fired or unknown id inflated cancelled_ and
// underflowed the difference. These tests pin the fixed behavior.

TEST(Simulator, CancelAfterFireKeepsPendingCorrect) {
  Simulator sim;
  const EventId first = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.step(1), 1u);  // fires `first`
  sim.cancel(first);           // stale cancel: must be a no-op
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 2u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelUnknownIdKeepsPendingCorrect) {
  Simulator sim;
  sim.cancel(9999);  // never scheduled; used to underflow pending() to 2^64-1
  EXPECT_EQ(sim.pending(), 0u);
  sim.schedule_at(1.0, [] {});
  sim.cancel(424242);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.cancel(id);
  sim.cancel(id);  // second cancel of the same id must not double-count
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, CancelledThenFiredIdCanBeCancelledAgainHarmlessly) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.run();
  sim.cancel(a);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 0u);
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

// -- run_until with same-timestamp events ------------------------------------

TEST(Simulator, RunUntilFiresAllSameTimestampEventsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i)
    sim.schedule_at(3.0, [&order, i] { order.push_back(i); });
  sim.run_until(3.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, RunUntilFiresEventsScheduledAtTheDeadlineDuringTheRun) {
  Simulator sim;
  bool chained = false;
  sim.schedule_at(3.0, [&] {
    sim.schedule_at(3.0, [&] { chained = true; });  // same-instant follow-up
  });
  sim.run_until(3.0);
  EXPECT_TRUE(chained);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilSkipsCancelledHeadAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  const EventId head = sim.schedule_at(2.0, [&] { order.push_back(0); });
  sim.schedule_at(2.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.cancel(head);
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(Simulator, CancelInterleavedWithRunUntilKeepsCountersConsistent) {
  // Regression for the consolidated cancelled-entry purge (ISSUE 3
  // satellite): fire_next and run_until used to maintain separate
  // cancelled_/queue_ bookkeeping; interleaving cancel() with run_until()
  // across deadlines must keep pending()/executed_events() exact, including
  // cancels of already-fired ids and cancels sitting at the queue head.
  Simulator sim;
  std::vector<int> fired;
  const EventId e1 = sim.schedule_at(1.0, [&] { fired.push_back(1); });
  const EventId e2 = sim.schedule_at(2.0, [&] { fired.push_back(2); });
  const EventId e3 = sim.schedule_at(3.0, [&] { fired.push_back(3); });
  const EventId e4 = sim.schedule_at(4.0, [&] { fired.push_back(4); });
  EXPECT_EQ(sim.pending(), 4u);

  sim.cancel(e2);  // tombstone ahead of the first run_until window
  EXPECT_EQ(sim.pending(), 3u);

  sim.run_until(2.5);  // fires e1; consumes e2's tombstone at the head
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.pending(), 2u);

  sim.cancel(e1);  // already fired: no-op
  sim.cancel(e2);  // already purged: no-op
  EXPECT_EQ(sim.pending(), 2u);

  sim.cancel(e3);  // now the queue head is a tombstone again
  EXPECT_EQ(sim.pending(), 1u);

  sim.run_until(5.0);  // skips e3, fires e4
  EXPECT_EQ(fired, (std::vector<int>{1, 4}));
  EXPECT_EQ(sim.executed_events(), 2u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.now(), 5.0);

  sim.cancel(e4);  // fired: no-op; counters untouched
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.step(4) > 0);  // queue genuinely empty, no stale entries
}

TEST(Simulator, NextEventTimePeeksHeadAndPurgesCancelledTombstones) {
  Simulator sim;
  EXPECT_FALSE(sim.next_event_time().has_value());

  const EventId early = sim.schedule_at(5.0, [] {});
  sim.schedule_at(9.0, [] {});
  ASSERT_TRUE(sim.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*sim.next_event_time(), 5.0);

  // Cancelling the head must surface the next live event (and consume the
  // tombstone, like run()/run_until() would).
  sim.cancel(early);
  ASSERT_TRUE(sim.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*sim.next_event_time(), 9.0);
  EXPECT_EQ(sim.pending(), 1u);

  sim.run_until(10.0);
  EXPECT_FALSE(sim.next_event_time().has_value());
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  // Transport regression (PR 6): equal-timestamp events must fire in
  // scheduling order. A retransmit scheduled after an original send that
  // lands on the same instant must never overtake it — the retry chain's
  // determinism (and the TransportStats ordering) depends on it.
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(7.0, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  std::vector<int> expect(16);
  for (int i = 0; i < 16; ++i) expect[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(fired, expect);
}

TEST(Simulator, FifoSurvivesCancelledPeersAtTheSameTimestamp) {
  // Same-instant FIFO with tombstones interleaved: cancelling some peers
  // (including the head) must not reorder the survivors, and a
  // next_event_time() peek mid-way (which purges cancelled heads) must not
  // disturb the order either.
  Simulator sim;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.schedule_at(3.0, [&fired, i] { fired.push_back(i); }));
  }
  sim.cancel(ids[0]);  // head tombstone
  sim.cancel(ids[3]);
  sim.cancel(ids[7]);  // tail tombstone
  ASSERT_TRUE(sim.next_event_time().has_value());  // purges the head tombstone
  EXPECT_DOUBLE_EQ(*sim.next_event_time(), 3.0);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 5, 6}));
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, RetransmitScheduledLaterNeverOvertakesOriginalSend) {
  // The concrete transport shape: an "original" delivery at t=1.0 and a
  // "retransmit" scheduled afterwards for the same t=1.0 (a zero backoff
  // step, or two retry ladders colliding). Events scheduled from inside an
  // event at the current instant also run after everything already queued
  // at that instant.
  Simulator sim;
  std::vector<std::string> order;
  sim.schedule_at(1.0, [&] {
    order.push_back("original");
    // Re-entrant schedule at now: must fire this same instant, after the
    // already-queued retransmit below.
    sim.schedule_at(1.0, [&] { order.push_back("nested"); });
  });
  sim.schedule_at(1.0, [&] { order.push_back("retransmit"); });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"original", "retransmit",
                                             "nested"}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

}  // namespace
}  // namespace emergence::sim

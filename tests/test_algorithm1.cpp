// Tests for Algorithm 1 (the key-share routing planner).
#include <gtest/gtest.h>

#include <cmath>

#include "common/binomial.hpp"
#include "common/error.hpp"
#include "emerge/algorithm1.hpp"

namespace emergence::core {
namespace {

Alg1Inputs base_inputs() {
  Alg1Inputs in;
  in.shape = PathShape{4, 10};
  in.node_budget = 1000;
  in.emerging_time = 3.0;  // alpha = 3
  in.mean_lifetime = 1.0;
  in.p = 0.2;
  return in;
}

TEST(Algorithm1, LineOneUniformAllocation) {
  const Alg1Plan plan = run_algorithm1(base_inputs());
  EXPECT_EQ(plan.n, 100u);  // floor(1000 / 10)
}

TEST(Algorithm1, LineTwoDeathProbability) {
  const Alg1Plan plan = run_algorithm1(base_inputs());
  // pdead = 1 - e^{-T/(λ l)} = 1 - e^{-0.3}
  EXPECT_NEAR(plan.pdead, 1.0 - std::exp(-0.3), 1e-12);
}

TEST(Algorithm1, LineThreeDeadShares) {
  const Alg1Plan plan = run_algorithm1(base_inputs());
  EXPECT_EQ(plan.d, static_cast<std::size_t>(std::floor(
                        plan.pdead * static_cast<double>(plan.n))));
}

TEST(Algorithm1, OneColumnEntryPerColumnBeyondFirst) {
  const Alg1Plan plan = run_algorithm1(base_inputs());
  EXPECT_EQ(plan.columns.size(), base_inputs().shape.l - 1);
  for (std::size_t i = 0; i < plan.columns.size(); ++i)
    EXPECT_EQ(plan.columns[i].column, i + 2);
}

TEST(Algorithm1, ThresholdBalancesTheTwoTails) {
  const Alg1Inputs in = base_inputs();
  const Alg1Plan plan = run_algorithm1(in);
  const std::size_t alive = plan.n - plan.d;
  for (const Alg1Column& col : plan.columns) {
    const double gap_at_m = std::fabs(col.release_tail - col.drop_tail);
    // No other m can do strictly better (line 8's minimization).
    for (std::size_t m = 1; m <= plan.n; ++m) {
      const double release = binom_tail_ge(plan.n, m, in.p);
      const double drop =
          m > alive ? 1.0 : binom_tail_ge(alive, alive - m + 1, in.p);
      EXPECT_GE(std::fabs(release - drop) + 1e-12, gap_at_m);
    }
  }
}

TEST(Algorithm1, ThresholdBetweenBinomialMeans) {
  // For a balanced plan, m must exceed the adversary's expected share count
  // (n*p) and stay below the honest-alive expectation ((n-d)(1-p)).
  const Alg1Inputs in = base_inputs();
  const Alg1Plan plan = run_algorithm1(in);
  const double np = static_cast<double>(plan.n) * in.p;
  const double honest_alive =
      static_cast<double>(plan.n - plan.d) * (1.0 - in.p) + 1.0;
  for (const Alg1Column& col : plan.columns) {
    EXPECT_GT(static_cast<double>(col.m), np * 0.5);
    EXPECT_LT(static_cast<double>(col.m), honest_alive + 1.0);
  }
}

TEST(Algorithm1, CumulativeProbabilitiesAreMonotone) {
  const Alg1Plan plan = run_algorithm1(base_inputs());
  double prev_pr = 0.0, prev_pd = 0.0;
  for (const Alg1Column& col : plan.columns) {
    EXPECT_GE(col.pr + 1e-15, prev_pr);  // line 9 accumulates
    EXPECT_GE(col.pd + 1e-15, prev_pd);
    prev_pr = col.pr;
    prev_pd = col.pd;
  }
}

TEST(Algorithm1, ResilienceInUnitInterval) {
  for (double p : {0.0, 0.1, 0.3, 0.5}) {
    Alg1Inputs in = base_inputs();
    in.p = p;
    const Alg1Plan plan = run_algorithm1(in);
    EXPECT_GE(plan.resilience.release_ahead, 0.0);
    EXPECT_LE(plan.resilience.release_ahead, 1.0);
    EXPECT_GE(plan.resilience.drop, 0.0);
    EXPECT_LE(plan.resilience.drop, 1.0);
  }
}

TEST(Algorithm1, HighResilienceAtLowP) {
  Alg1Inputs in = base_inputs();
  in.p = 0.1;
  const Alg1Plan plan = run_algorithm1(in);
  EXPECT_GT(plan.resilience.combined(), 0.99);
}

TEST(Algorithm1, CollapsesAtHighP) {
  Alg1Inputs in = base_inputs();
  in.p = 0.48;
  const Alg1Plan plan = run_algorithm1(in);
  EXPECT_LT(plan.resilience.combined(), 0.5);
}

TEST(Algorithm1, SharperWithBiggerBudget) {
  // More shares per column -> sharper binomial threshold -> resilience at a
  // fixed sub-critical p improves (Fig. 8's story).
  Alg1Inputs small = base_inputs();
  small.node_budget = 100;
  small.p = 0.22;
  Alg1Inputs large = base_inputs();
  large.node_budget = 10000;
  large.p = 0.22;
  EXPECT_GT(run_algorithm1(large).resilience.combined(),
            run_algorithm1(small).resilience.combined());
}

TEST(Algorithm1, ChurnToleranceByDesign) {
  // Increasing alpha raises d but the m-selection re-balances: resilience
  // at moderate p should degrade only mildly (the share scheme's selling
  // point, Fig. 7).
  Alg1Inputs calm = base_inputs();
  calm.emerging_time = 1.0;
  calm.p = 0.2;
  Alg1Inputs stormy = base_inputs();
  stormy.emerging_time = 5.0;
  stormy.p = 0.2;
  const double r_calm = run_algorithm1(calm).resilience.combined();
  const double r_stormy = run_algorithm1(stormy).resilience.combined();
  EXPECT_GT(r_stormy, 0.95);
  EXPECT_LE(r_stormy, r_calm + 1e-9);
}

TEST(Algorithm1, IndependentModeIsMoreOptimistic) {
  // Without cumulative accumulation the per-column probabilities are
  // smaller, so predicted resilience can only improve.
  Alg1Inputs printed = base_inputs();
  printed.p = 0.3;
  Alg1Inputs indep = printed;
  indep.mode = Alg1Mode::kIndependentColumns;
  const Alg1Plan plan_printed = run_algorithm1(printed);
  const Alg1Plan plan_indep = run_algorithm1(indep);
  EXPECT_GE(plan_indep.resilience.release_ahead + 1e-12,
            plan_printed.resilience.release_ahead);
  EXPECT_GE(plan_indep.resilience.drop + 1e-12, plan_printed.resilience.drop);
}

TEST(Algorithm1, ThresholdForColumnLookup) {
  const Alg1Plan plan = run_algorithm1(base_inputs());
  EXPECT_EQ(plan.threshold_for_column(2), plan.columns.front().m);
  EXPECT_EQ(plan.threshold_for_column(base_inputs().shape.l),
            plan.columns.back().m);
  EXPECT_EQ(plan.threshold_for_column(1), 1u);  // no shares for column 1
}

TEST(Algorithm1, SingleColumnDegeneratesToReplication) {
  Alg1Inputs in = base_inputs();
  in.shape = PathShape{3, 1};
  const Alg1Plan plan = run_algorithm1(in);
  EXPECT_TRUE(plan.columns.empty());
  // Rr = (1-p)^k: the k terminal slots hold the secret directly.
  EXPECT_NEAR(plan.resilience.release_ahead, std::pow(1.0 - in.p, 3), 1e-9);
}

TEST(Algorithm1, ValidatesInputs) {
  Alg1Inputs in = base_inputs();
  in.node_budget = 5;  // fewer than l nodes
  EXPECT_THROW(run_algorithm1(in), PreconditionError);
  in = base_inputs();
  in.p = 1.5;
  EXPECT_THROW(run_algorithm1(in), PreconditionError);
  in = base_inputs();
  in.mean_lifetime = 0.0;
  EXPECT_THROW(run_algorithm1(in), PreconditionError);
}

TEST(Algorithm1, ZeroPIsPerfect) {
  Alg1Inputs in = base_inputs();
  in.p = 0.0;
  const Alg1Plan plan = run_algorithm1(in);
  EXPECT_DOUBLE_EQ(plan.resilience.release_ahead, 1.0);
  // Drop can still fail through churn when d eats into the threshold, but
  // with balanced m it should stay essentially perfect.
  EXPECT_GT(plan.resilience.drop, 0.999);
}

}  // namespace
}  // namespace emergence::core

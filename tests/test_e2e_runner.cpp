// Tests for the end-to-end scenario sweep harness: thread-count invariance
// of the full-stack tallies, cross-validation gates at smoke scale, and the
// regression coverage for the divergences the harness flagged (share-scheme
// release cascade, stored-key replication placement, delivery timing).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "emerge/e2e_runner.hpp"

namespace emergence::core {
namespace {

E2eScenario smoke_scenario() {
  E2eScenario s;
  s.name = "smoke";
  s.kind = SchemeKind::kJoint;
  s.shape = PathShape{2, 3};
  s.population = 48;
  s.p = 0.3;
  s.runs = 24;
  s.seed = 0x5E2E;
  return s;
}

void expect_tallies_identical(const E2eTally& a, const E2eTally& b) {
  EXPECT_EQ(a.tally.release.trials(), b.tally.release.trials());
  EXPECT_EQ(a.tally.release.successes(), b.tally.release.successes());
  EXPECT_EQ(a.tally.drop.successes(), b.tally.drop.successes());
  EXPECT_EQ(a.tally.suffix_histogram, b.tally.suffix_histogram);
  EXPECT_EQ(a.latency_us.bins(), b.latency_us.bins());
  EXPECT_EQ(a.sessions_delivered, b.sessions_delivered);
  EXPECT_EQ(a.delivered_on_time, b.delivered_on_time);
  EXPECT_EQ(a.max_delivery_offset_ns, b.max_delivery_offset_ns);
  EXPECT_EQ(a.churn_deaths, b.churn_deaths);
  EXPECT_EQ(a.packages_sent, b.packages_sent);
  EXPECT_EQ(a.packages_delivered, b.packages_delivered);
  EXPECT_EQ(a.packages_dropped_malicious, b.packages_dropped_malicious);
  EXPECT_EQ(a.malformed_packages, b.malformed_packages);
  EXPECT_EQ(a.holders_stuck, b.holders_stuck);
  EXPECT_EQ(a.key_assignments, b.key_assignments);
  EXPECT_EQ(a.deliveries, b.deliveries);
}

TEST(E2eRunner, TalliesBitIdenticalAt1And2And8Threads) {
  // The acceptance bar of the harness: a scenario's result is a pure
  // function of the scenario, never of the thread count.
  E2eScenario scenario = smoke_scenario();
  scenario.sessions = 2;  // exercise the multi-session path too

  SweepRunner one(SweepOptions{1, 64});
  SweepRunner two(SweepOptions{2, 64});
  SweepRunner eight(SweepOptions{8, 64});
  const E2eTally t1 = E2eRunner(one).run_tallies(scenario);
  const E2eTally t2 = E2eRunner(two).run_tallies(scenario);
  const E2eTally t8 = E2eRunner(eight).run_tallies(scenario);

  EXPECT_EQ(t1.trials(), scenario.runs * scenario.sessions);
  expect_tallies_identical(t1, t2);
  expect_tallies_identical(t1, t8);
}

TEST(E2eRunner, ChurnTalliesBitIdenticalAcrossThreads) {
  // Churn worlds replay maintenance, repair and replacement joins from the
  // run seed alone; address-dependent state anywhere would break this.
  E2eScenario scenario = smoke_scenario();
  scenario.churn = true;
  scenario.churn_alpha = 1.0;
  scenario.runs = 10;

  SweepRunner one(SweepOptions{1, 64});
  SweepRunner eight(SweepOptions{8, 64});
  const E2eTally t1 = E2eRunner(one).run_tallies(scenario);
  const E2eTally t8 = E2eRunner(eight).run_tallies(scenario);
  EXPECT_GT(t1.churn_deaths, 0u);
  expect_tallies_identical(t1, t8);
}

TEST(E2eRunner, RepeatedEvaluationIsDeterministic) {
  SweepRunner sweeps(SweepOptions{0, 64});
  E2eRunner runner(sweeps);
  const E2eTally a = runner.run_tallies(smoke_scenario());
  const E2eTally b = runner.run_tallies(smoke_scenario());
  expect_tallies_identical(a, b);
}

// -- cross-validation gates at smoke scale ------------------------------------

TEST(E2eCrossVal, CovertJointReleaseMatchesStatEngine) {
  SweepRunner sweeps(SweepOptions{0, 64});
  E2eRunner runner(sweeps);
  E2eScenario scenario = smoke_scenario();
  scenario.runs = 80;
  const CrossValResult result = runner.cross_validate(scenario, 4000);

  ASSERT_FALSE(result.metrics.empty());
  for (const CrossValMetric& m : result.metrics) {
    EXPECT_TRUE(m.pass) << m.metric << " fs=" << m.full_stack
                        << " stat=" << m.stat_engine << " bound=" << m.bound;
  }
  // Covert, no churn: every session delivers, exactly at tr.
  EXPECT_EQ(result.full_stack.sessions_delivered, result.full_stack.trials());
  EXPECT_EQ(result.full_stack.delivered_on_time,
            result.full_stack.sessions_delivered);
  EXPECT_EQ(result.full_stack.max_delivery_offset_ns, 0);
}

TEST(E2eCrossVal, ShareSchemeCascadeReleaseMatchesStatEngine) {
  // Regression for the divergence this harness flagged: the stat engine
  // used to require the coalition to reach the Shamir threshold in *every*
  // column, while the attack engine's fixpoint cascades from any one
  // column. Both engines now score the any-column event.
  SweepRunner sweeps(SweepOptions{0, 64});
  E2eRunner runner(sweeps);
  E2eScenario scenario = smoke_scenario();
  scenario.kind = SchemeKind::kShare;
  scenario.carriers_n = 4;
  scenario.threshold_m = 2;
  scenario.runs = 80;
  const CrossValResult result = runner.cross_validate(scenario, 4000);

  for (const CrossValMetric& m : result.metrics) {
    EXPECT_TRUE(m.pass) << m.metric << " fs=" << m.full_stack
                        << " stat=" << m.stat_engine << " bound=" << m.bound;
  }
  // The cascade event is frequent at p = 0.3 (any column with >= 2 of 4
  // malicious carriers); the old all-columns semantics put the stat rate
  // several bounds below the full stack.
  EXPECT_GT(result.stat.release.rate(), 0.3);
}

TEST(E2eCrossVal, DroppingAdversaryDropRateMatchesStatEngine) {
  SweepRunner sweeps(SweepOptions{0, 64});
  E2eRunner runner(sweeps);
  E2eScenario scenario = smoke_scenario();
  scenario.attack_mode = AttackMode::kDropping;
  scenario.runs = 80;
  const CrossValResult result = runner.cross_validate(scenario, 4000);
  for (const CrossValMetric& m : result.metrics) {
    EXPECT_TRUE(m.pass) << m.metric << " fs=" << m.full_stack
                        << " stat=" << m.stat_engine << " bound=" << m.bound;
  }
}

TEST(E2eCrossVal, ChurnAvailabilityMatchesRenewalModel) {
  // Regression for the replication divergence this harness flagged: stored
  // layer keys used to live under a hashed storage key unrelated to the
  // holder's ring point, so replica repair pushed copies to the wrong
  // nodes and churn replacements could never reconstruct — drop rates sat
  // far above the stat engine's renewal model.
  SweepRunner sweeps(SweepOptions{0, 64});
  E2eRunner runner(sweeps);
  E2eScenario scenario = smoke_scenario();
  scenario.p = 0.0;
  scenario.churn = true;
  scenario.churn_alpha = 1.0;
  scenario.runs = 60;
  const CrossValResult result = runner.cross_validate(scenario, 4000);
  for (const CrossValMetric& m : result.metrics) {
    EXPECT_TRUE(m.pass) << m.metric << " fs=" << m.full_stack
                        << " stat=" << m.stat_engine << " bound=" << m.bound;
  }
  EXPECT_GT(result.full_stack.churn_deaths, 0u);
}

TEST(E2eCrossVal, KademliaBackendPasses) {
  SweepRunner sweeps(SweepOptions{0, 64});
  E2eRunner runner(sweeps);
  E2eScenario scenario = smoke_scenario();
  scenario.backend = DhtBackend::kKademlia;
  scenario.runs = 60;
  const CrossValResult result = runner.cross_validate(scenario, 4000);
  for (const CrossValMetric& m : result.metrics) {
    EXPECT_TRUE(m.pass) << m.metric << " fs=" << m.full_stack
                        << " stat=" << m.stat_engine << " bound=" << m.bound;
  }
}

// -- plumbing -----------------------------------------------------------------

TEST(E2eRunner, RestoreMarginPeriods) {
  // tr = 300, th = 100, l = 3.
  EXPECT_EQ(E2eRunner::restore_margin_periods(0.5, 300.0, 100.0, 3), 3u);
  EXPECT_EQ(E2eRunner::restore_margin_periods(100.5, 300.0, 100.0, 3), 2u);
  EXPECT_EQ(E2eRunner::restore_margin_periods(201.1, 300.0, 100.0, 3), 1u);
  EXPECT_EQ(E2eRunner::restore_margin_periods(299.9, 300.0, 100.0, 3), 0u);
  // Clamped to the path length even for possession at (or fractionally
  // before) ts.
  EXPECT_EQ(E2eRunner::restore_margin_periods(-20.0, 300.0, 100.0, 3), 3u);
}

TEST(E2eRunner, RejectsDegenerateScenarios) {
  SweepRunner sweeps(SweepOptions{1, 64});
  E2eRunner runner(sweeps);
  E2eScenario bad = smoke_scenario();
  bad.runs = 0;
  EXPECT_THROW(runner.run_tallies(bad), PreconditionError);
  E2eScenario bad_p = smoke_scenario();
  bad_p.p = 1.5;
  EXPECT_THROW(runner.run_tallies(bad_p), PreconditionError);
  E2eScenario bad_share = smoke_scenario();
  bad_share.kind = SchemeKind::kShare;
  bad_share.carriers_n = 3;
  bad_share.threshold_m = 5;
  EXPECT_THROW(runner.run_tallies(bad_share), PreconditionError);
}

TEST(E2eRunner, DefaultMatrixCoversTheAdvertisedAxes) {
  const std::vector<E2eScenario> matrix = default_crossval_matrix(10);
  bool schemes[4] = {false, false, false, false};
  bool kademlia = false, churn = false, dropping = false, multi = false;
  for (const E2eScenario& s : matrix) {
    schemes[static_cast<std::size_t>(s.kind)] = true;
    kademlia = kademlia || s.backend == DhtBackend::kKademlia;
    churn = churn || s.churn;
    dropping = dropping || s.attack_mode == AttackMode::kDropping;
    multi = multi || s.sessions > 1;
    EXPECT_EQ(s.runs, 10u);
  }
  for (bool scheme : schemes) EXPECT_TRUE(scheme);
  EXPECT_TRUE(kademlia);
  EXPECT_TRUE(churn);
  EXPECT_TRUE(dropping);
  EXPECT_TRUE(multi);
}

}  // namespace
}  // namespace emergence::core

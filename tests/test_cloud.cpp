// Tests for the cloud blob store (availability substrate of Fig. 1).
#include <gtest/gtest.h>

#include "cloud/cloud_store.hpp"

namespace emergence::cloud {
namespace {

TEST(CloudStore, UploadDownloadRoundTrip) {
  CloudStore cloud;
  const BlobId id = cloud.upload(bytes_of("ciphertext"), "token-bob");
  const DownloadResult r = cloud.download(id, "token-bob");
  EXPECT_EQ(r.status, CloudStatus::kOk);
  EXPECT_EQ(r.ciphertext, bytes_of("ciphertext"));
}

TEST(CloudStore, BlobIdIsContentHash) {
  CloudStore cloud;
  const BlobId a = cloud.upload(bytes_of("same"), "t");
  const BlobId b = cloud.upload(bytes_of("same"), "t");
  const BlobId c = cloud.upload(bytes_of("different"), "t");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CloudStore, WrongTokenIsUnauthorized) {
  CloudStore cloud;
  const BlobId id = cloud.upload(bytes_of("secret blob"), "token-bob");
  const DownloadResult r = cloud.download(id, "token-eve");
  EXPECT_EQ(r.status, CloudStatus::kUnauthorized);
  EXPECT_TRUE(r.ciphertext.empty());
  EXPECT_EQ(cloud.unauthorized_attempts(), 1u);
}

TEST(CloudStore, MissingBlobNotFound) {
  CloudStore cloud;
  EXPECT_EQ(cloud.download("nope", "t").status, CloudStatus::kNotFound);
}

TEST(CloudStore, RemoveDeletesBlob) {
  CloudStore cloud;
  const BlobId id = cloud.upload(bytes_of("x"), "t");
  EXPECT_TRUE(cloud.remove(id));
  EXPECT_FALSE(cloud.remove(id));
  EXPECT_EQ(cloud.download(id, "t").status, CloudStatus::kNotFound);
}

TEST(CloudStore, CountsBlobsAndAttempts) {
  CloudStore cloud;
  const BlobId id1 = cloud.upload(bytes_of("1"), "t");
  cloud.upload(bytes_of("2"), "t");
  EXPECT_EQ(cloud.blob_count(), 2u);
  cloud.download(id1, "t");
  cloud.download(id1, "bad");
  cloud.download("missing", "t");
  EXPECT_EQ(cloud.download_attempts(), 3u);
  EXPECT_EQ(cloud.unauthorized_attempts(), 1u);
}

TEST(CloudStore, CiphertextAvailableAnytime) {
  // The cloud is trusted for availability only: downloads succeed before the
  // release time -- without the key the blob is useless, which is the point.
  CloudStore cloud;
  const BlobId id = cloud.upload(bytes_of("enc"), "receiver");
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(cloud.download(id, "receiver").status, CloudStatus::kOk);
}

}  // namespace
}  // namespace emergence::cloud

// Property-test suite pinning the message-level transport model (PR 6):
// latency samples match their configured distributions (KS / chi-square
// style goodness-of-fit at pinned seeds, same harness idiom as
// test_workload.cpp), retry counts stay within the configured budget with
// exact counter accounting, the net= mini-grammar parses and validates,
// and — the load-bearing regression — TransportModel::ideal() leaves the
// pre-transport 1k-node churn+session fleet fingerprint unchanged
// bit-for-bit, while a lossy WAN fleet stays bit-identical at 1/2/8
// threads with nonzero drop/retry counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dht/node_id.hpp"
#include "dht/transport.hpp"
#include "emerge/sweep.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"
#include "workload/session_fleet.hpp"

namespace emergence::dht {
namespace {

// -- goodness-of-fit harness (test_workload.cpp idiom) ------------------------

/// Kolmogorov-Smirnov statistic of `samples` against the analytic CDF.
template <typename Cdf>
double ks_statistic(std::vector<double> samples, const Cdf& cdf) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

/// alpha = 0.01 KS acceptance threshold (asymptotic c(0.01) = 1.63). Seeds
/// are pinned, so these tests are deterministic, not flaky.
double ks_threshold(std::size_t n) {
  return 1.63 / std::sqrt(static_cast<double>(n));
}

std::vector<double> draw_latencies(const TransportModel& model, std::size_t n,
                                   std::uint64_t seed, bool cross = false) {
  Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    samples.push_back(model.sample_latency(rng, cross));
  return samples;
}

/// Standard normal CDF.
double phi(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// -- latency distributions ----------------------------------------------------

TEST(TransportLatency, UniformMatchesAnalyticCdf) {
  TransportModel m;
  m.kind = LatencyKind::kUniform;
  m.min_latency = 0.010;
  m.max_latency = 0.100;
  const std::vector<double> samples = draw_latencies(m, 20000, 0x7A1);
  for (double s : samples) {
    ASSERT_GE(s, m.min_latency);
    ASSERT_LE(s, m.max_latency);
  }
  const double d = ks_statistic(samples, [&](double x) {
    return (x - m.min_latency) / (m.max_latency - m.min_latency);
  });
  EXPECT_LT(d, ks_threshold(samples.size()));
}

TEST(TransportLatency, FixedIsConstantAndConsumesNoDraws) {
  TransportModel m;
  m.kind = LatencyKind::kFixed;
  m.max_latency = 0.042;
  Rng fresh(0xF1);
  Rng replay(0xF1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(m.sample_latency(replay, false), 0.042);
  }
  // Zero draws consumed: the stream is exactly where it started.
  EXPECT_DOUBLE_EQ(replay.real(), fresh.real());
}

TEST(TransportLatency, LogNormalMatchesTruncatedAnalyticCdf) {
  // The straggler preset: exp(N(log 0.030, 1.3)) clamped to
  // [0.0005, 1.5]. The clamp atoms carry < 0.2% of the mass, far below the
  // KS threshold at n = 20000, so the continuous CDF (capped at 1) fits.
  const TransportModel m = TransportModel::straggler();
  ASSERT_EQ(m.kind, LatencyKind::kLogNormal);
  const std::vector<double> samples = draw_latencies(m, 20000, 0x57A);
  for (double s : samples) {
    ASSERT_GE(s, m.min_latency);
    ASSERT_LE(s, m.cap);
  }
  const double d = ks_statistic(samples, [&](double x) {
    if (x >= m.cap) return 1.0;
    return phi((std::log(x) - m.log_mu) / m.log_sigma);
  });
  EXPECT_LT(d, ks_threshold(samples.size()));
  // The tail is genuinely heavy: p99 well above the median.
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted[19800], 4.0 * sorted[10000]);
}

TEST(TransportLatency, ZonedSamplesStayInTheirConfiguredRanges) {
  const TransportModel m = TransportModel::wan();
  ASSERT_EQ(m.kind, LatencyKind::kZoned);
  for (double s : draw_latencies(m, 5000, 0x20E, /*cross=*/false)) {
    ASSERT_GE(s, m.intra_min);
    ASSERT_LE(s, m.intra_max);
  }
  for (double s : draw_latencies(m, 5000, 0x20F, /*cross=*/true)) {
    ASSERT_GE(s, m.inter_min);
    ASSERT_LE(s, m.inter_max);
  }
  // Cross-zone intra-range KS too: within a range the law is uniform.
  const std::vector<double> cross = draw_latencies(m, 20000, 0x21F, true);
  const double d = ks_statistic(cross, [&](double x) {
    return (x - m.inter_min) / (m.inter_max - m.inter_min);
  });
  EXPECT_LT(d, ks_threshold(cross.size()));
}

// -- zones --------------------------------------------------------------------

TEST(TransportZones, AssignmentIsBalancedDeterministicAndSeedKeyed) {
  const TransportModel a = TransportModel::wan();
  const TransportModel b = TransportModel::wan();  // independent memo caches
  TransportModel other = TransportModel::wan();
  other.zone_seed ^= 0x1234567;

  const std::size_t n = 4000;
  std::vector<std::size_t> counts(a.zone_count, 0);
  std::size_t reassigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = NodeId::hash_of_text("zone-node-" + std::to_string(i));
    const std::size_t zone = a.zone_of(id);
    ASSERT_LT(zone, a.zone_count);
    // Pure in (zone_seed, id): a fresh instance agrees everywhere.
    ASSERT_EQ(zone, b.zone_of(id));
    if (zone != other.zone_of(id)) ++reassigned;
    ++counts[zone];
  }
  // Chi-square balance gate against uniform occupancy. 99th percentile of
  // chi2(3) is 11.34; pinned seeds make this deterministic.
  const double expected = static_cast<double>(n) /
                          static_cast<double>(a.zone_count);
  double chi2 = 0.0;
  for (std::size_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 11.34);
  // A different zone_seed is a genuinely different assignment (~3/4 move).
  EXPECT_GT(reassigned, n / 2);
}

// -- retry accounting ---------------------------------------------------------

TEST(TransportRetries, CounterAccountingIsExactAndBounded) {
  // Drive send() directly: a 50% lossy link with 3 retries. The identities
  // attempts == messages + retried, dropped == retried + timed_out and
  // delivered == messages - timed_out must hold exactly, and retried can
  // never exceed messages * max_retries.
  TransportModel m;
  m.kind = LatencyKind::kUniform;
  m.min_latency = 0.010;
  m.max_latency = 0.100;
  m.drop_probability = 0.5;
  m.max_retries = 3;
  m.retry_timeout = 0.25;
  m.retry_backoff = 2.0;
  m.validate();

  sim::Simulator sim;
  Rng rng(0x9E7);
  TransportStats stats;
  const NodeId from = NodeId::hash_of_text("sender");
  const NodeId to = NodeId::hash_of_text("receiver");
  std::uint64_t delivered = 0;
  const std::uint64_t kMessages = 4000;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    m.send(sim, rng, stats, from, to, [&delivered] { ++delivered; });
  }
  sim.run();

  EXPECT_EQ(stats.messages, kMessages);
  EXPECT_EQ(stats.attempts, stats.messages + stats.retried);
  EXPECT_EQ(stats.dropped, stats.retried + stats.timed_out);
  EXPECT_EQ(delivered, stats.messages - stats.timed_out);
  EXPECT_LE(stats.retried, stats.messages * m.max_retries);
  // Every delivered attempt recorded a hop latency.
  EXPECT_EQ(stats.hop_latency_us.count(), delivered);
  // p = 0.5, r = 3: expected timeout rate p^4 = 6.25%; the observed rate
  // must be in the right ballpark (pinned seed, deterministic).
  const double timeout_rate = static_cast<double>(stats.timed_out) /
                              static_cast<double>(stats.messages);
  EXPECT_NEAR(timeout_rate, 0.0625, 0.02);
  // And retransmits genuinely happened.
  EXPECT_GT(stats.retried, 0u);
}

TEST(TransportRetries, NoLossPathConsumesExactlyOneDrawPerMessage) {
  // The bit-identity cornerstone: with no loss model configured, send()
  // must consume exactly one uniform draw and schedule exactly one event —
  // the historical law. A parallel bare-Rng replay must stay in lockstep.
  TransportModel m;
  m.kind = LatencyKind::kUniform;
  m.min_latency = 0.010;
  m.max_latency = 0.100;

  sim::Simulator sim;
  Rng rng(0xB17);
  Rng replay(0xB17);
  TransportStats stats;
  const NodeId from = NodeId::hash_of_text("a");
  const NodeId to = NodeId::hash_of_text("b");
  for (int i = 0; i < 256; ++i) {
    const double base = sim.now();
    m.send(sim, rng, stats, from, to, [] {});
    const double expect =
        base + m.min_latency + replay.real() * (m.max_latency - m.min_latency);
    ASSERT_TRUE(sim.next_event_time().has_value());
    ASSERT_DOUBLE_EQ(*sim.next_event_time(), expect);
    sim.run();  // drain so next_event_time peeks the next message
  }
  EXPECT_EQ(stats.attempts, 256u);
  EXPECT_EQ(stats.dropped, 0u);
}

// -- parse / validate ---------------------------------------------------------

TEST(TransportParse, PresetsAndSubKeysRoundTrip) {
  const TransportModel lossy = TransportModel::parse("lossy:p=0.1;retries=2");
  EXPECT_DOUBLE_EQ(lossy.drop_probability, 0.1);
  EXPECT_EQ(lossy.max_retries, 2u);
  EXPECT_EQ(lossy.kind, LatencyKind::kUniform);

  const TransportModel wan = TransportModel::parse("wan");
  EXPECT_EQ(wan.kind, LatencyKind::kZoned);
  EXPECT_EQ(wan.zone_count, 4u);

  const TransportModel heal =
      TransportModel::parse("partition-heal:start=100;end=220");
  EXPECT_TRUE(heal.has_partition());
  EXPECT_DOUBLE_EQ(heal.partition_start, 100.0);
  EXPECT_DOUBLE_EQ(heal.partition_end, 220.0);

  const TransportModel ideal = TransportModel::parse("ideal");
  EXPECT_EQ(ideal.kind, LatencyKind::kIdeal);
}

TEST(TransportParse, RejectsMalformedSpecs) {
  EXPECT_THROW(TransportModel::parse("warp-drive"), PreconditionError);
  EXPECT_THROW(TransportModel::parse("lossy:p=nope"), PreconditionError);
  EXPECT_THROW(TransportModel::parse("lossy:warp=1"), PreconditionError);
  EXPECT_THROW(TransportModel::parse(""), PreconditionError);
}

TEST(TransportValidate, RejectsInconsistentModels) {
  {
    TransportModel m = TransportModel::lossy(1.0);  // certain loss
    EXPECT_THROW(m.validate(), PreconditionError);
  }
  {
    TransportModel m = TransportModel::lossy(0.05);
    m.max_retries = 64;  // beyond the documented cap
    EXPECT_THROW(m.validate(), PreconditionError);
  }
  {
    TransportModel m;
    m.kind = LatencyKind::kUniform;
    m.min_latency = 0.2;
    m.max_latency = 0.1;  // inverted range
    EXPECT_THROW(m.validate(), PreconditionError);
  }
  {
    TransportModel m = TransportModel::partition_heal(200.0, 100.0);
    EXPECT_THROW(m.validate(), PreconditionError);  // inverted window
  }
}

// -- the golden: ideal() is bit-identical to pre-transport history ------------

TEST(TransportGolden, IdealFleetFingerprintUnchangedBitForBit) {
  // Pinned before the transport model existed (PR 6 baseline): the
  // metro-diurnal 1k-node churn+session fleet at this exact spec produced
  // this FleetTally::fingerprint(). TransportModel::ideal() must reproduce
  // the event sequence — every latency draw, every tally field — exactly.
  core::SweepRunner sweeps(core::SweepOptions{2, 64});
  const workload::ScenarioSpec spec = workload::parse_scenario(
      "metro-diurnal:population=1000,sessions=256,worlds=1,seed=0x60D1E");
  const workload::FleetTally t = workload::run_scenario(sweeps, spec);
  EXPECT_EQ(t.fingerprint(), 14309388127590005301ULL);
  // The explicit net=ideal spelling is the same model.
  const workload::ScenarioSpec explicit_ideal = workload::parse_scenario(
      "metro-diurnal:net=ideal,population=1000,sessions=256,worlds=1,"
      "seed=0x60D1E");
  EXPECT_EQ(workload::run_scenario(sweeps, explicit_ideal).fingerprint(),
            t.fingerprint());
}

// -- thread-count invariance of a lossy WAN fleet -----------------------------

TEST(TransportInvariance, LossyWanFleetBitIdenticalAcrossThreadCounts) {
  // Acceptance shape: geo-zoned WAN latencies + 5% iid loss + retries over
  // a multi-world fleet. Both the protocol tally fingerprint and the
  // transport fingerprint (counters + exact hop histogram) must be
  // bit-identical at 1 / 2 / 8 threads, with nonzero drop/retry activity.
  const workload::ScenarioSpec spec = workload::parse_scenario(
      "wan-geo:net=wan:drop=0.05,population=384,sessions=96,worlds=4,"
      "seed=0xF1EE7");
  core::SweepRunner base(core::SweepOptions{1, 64});
  const workload::FleetTally reference = workload::run_scenario(base, spec);
  EXPECT_GT(reference.transport.dropped, 0u);
  EXPECT_GT(reference.transport.retried, 0u);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    core::SweepRunner pool(core::SweepOptions{threads, 64});
    const workload::FleetTally rerun = workload::run_scenario(pool, spec);
    EXPECT_EQ(rerun.fingerprint(), reference.fingerprint())
        << "threads=" << threads;
    EXPECT_EQ(rerun.transport.fingerprint(), reference.transport.fingerprint())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace emergence::dht
